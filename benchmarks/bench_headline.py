"""HEADLINE — the abstract's claim: "multithreading support can improve the
total throughput of a CGRA by over 30%, 75%, and 150% on 4x4, 6x6, and 8x8
CGRAs, respectively, compared to single-threaded methods".

The paper's numbers are best-configuration improvements; we require the
same thresholds from the best (page size, need, thread count) cell per
array size.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.bench.fig8 import page_sizes_for
from repro.bench.fig9 import best_improvement, run_fig9

THRESHOLDS = {4: 0.30, 6: 0.75, 8: 1.50}


@pytest.mark.parametrize("size", [4, 6, 8])
def test_headline_threshold(benchmark, store, size):
    def run():
        return max(
            best_improvement(run_fig9(size, ps, store=store, repeats=2))
            for ps in page_sizes_for(size)
        )

    best = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        f"{size}x{size}: best improvement {best * 100:.1f}% "
        f"(paper claims > {THRESHOLDS[size] * 100:.0f}%)"
    )
    assert best > THRESHOLDS[size]
