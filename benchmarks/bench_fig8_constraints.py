"""FIG8A/B/C — Fig. 8: performance difference caused by paging constraints.

Regenerates, for each CGRA size, the per-kernel performance percentage
(II_baseline / II_paged) for every page size the paper evaluates, and
checks the paper's qualitative claims:

* with a well-chosen page size the average stays close to the baseline
  ("performance will not be degraded with proper page size selection");
* page size 4 is at least as gentle as page size 2 on the 4x4 array.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.bench.fig8 import page_sizes_for, render_fig8, run_fig8


def _average(rows, ps):
    vals = [r.per_page_size[ps] for r in rows if r.per_page_size.get(ps)]
    return sum(vals) / len(vals) if vals else 0.0


@pytest.mark.parametrize("size", [4, 6, 8])
def test_fig8(benchmark, store, size):
    rows = benchmark.pedantic(
        lambda: run_fig8(size, store=store), iterations=1, rounds=1
    )
    emit(render_fig8(size, rows))
    sizes = page_sizes_for(size)
    best_avg = max(_average(rows, ps) for ps in sizes)
    # shape check: some page size keeps the suite within ~25% of baseline
    assert best_avg > 0.75, f"{size}x{size}: best average {best_avg:.2f}"
    # every kernel maps under the constraints for at least one page size
    for r in rows:
        assert any(v is not None for v in r.per_page_size.values()), r.kernel


def test_fig8_page4_gentler_than_page2_on_4x4(benchmark, store):
    """Fig. 8(a): 'for a page size of 4, performance remains identical ...
    slight performance degradation for a page size of 2 PEs'."""
    rows = benchmark.pedantic(lambda: run_fig8(4, store=store), iterations=1, rounds=1)
    assert _average(rows, 4) >= _average(rows, 2) - 0.02
