"""ABL-PG — ablation: page geometry (Fig. 4's two alternatives).

The paper shows a 4x4 CGRA paged as four 2x2 tiles or four 4x1 columns.
This bench compiles the suite under both geometries and compares the
constrained IIs and page needs, plus the fold-relevant difference: the
quadrant tiling closes the ring physically (wrap adjacency), the column
tiling does not.
"""

from __future__ import annotations

from conftest import emit
from repro.arch.cgra import CGRA
from repro.compiler.paged import map_dfg_paged
from repro.core.paging import PageLayout
from repro.kernels import get_kernel, kernel_names
from repro.util.errors import MappingError
from repro.util.tables import format_table

KERNELS = ["mpeg", "sor", "laplace", "wavelet", "swim", "compress", "gsr", "lowpass"]


def test_geometry_ablation(benchmark, store):
    def run():
        cgra = CGRA(4, 4, rf_depth=16)
        quad = PageLayout(cgra, (2, 2))
        cols = PageLayout(cgra, (4, 1))
        rows = []
        for name in KERNELS:
            dfg = get_kernel(name).build()
            cells = [name]
            for layout in (quad, cols):
                try:
                    pm = map_dfg_paged(dfg, cgra, layout)
                    cells.append(f"II{pm.ii}/{pm.pages_used}p")
                except MappingError:
                    cells.append("n/a")
            rows.append(cells)
        return quad, cols, rows

    quad, cols, rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        format_table(
            ["kernel", "2x2 quadrants", "4x1 columns"],
            rows,
            title="ABL-PG — page geometry ablation (4x4 CGRA, 4 pages)",
        )
    )
    emit(
        f"wrap adjacency: quadrants={quad.ring_wrap_adjacent}, "
        f"columns={cols.ring_wrap_adjacent}"
    )
    assert quad.ring_wrap_adjacent and not cols.ring_wrap_adjacent
    mapped = sum(1 for r in rows if r[1] != "n/a" and r[2] != "n/a")
    assert mapped >= len(KERNELS) - 1
