"""FIG3 — Fig. 3: a recurrence cycle pins the II; unrolling does not help.

The paper's motivating observation: a DFG with a loop-carried cycle has a
minimum II independent of CGRA size, and unrolling k-fold multiplies RecMII
by k, leaving the *effective* II per original iteration unchanged — so a
single thread cannot raise utilization, which is the case for
multithreading (§IV).
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.arch.cgra import CGRA
from repro.compiler.ems import map_dfg
from repro.dfg.analysis import rec_mii
from repro.dfg.builder import DFGBuilder
from repro.dfg.transforms import unroll
from repro.util.tables import format_table


def fig3_dfg():
    """The two-op recurrence of Fig. 3 plus a store to observe it."""
    b = DFGBuilder("fig3")
    a_ph = b.placeholder("a")
    x = b.add(a_ph, b.load("in"), name="a_next")
    y = b.route(x, name="b")
    b.bind_carry(a_ph, y, distance=1, init=(0,))
    b.store("out", x)
    return b.build()


def test_fig3_unrolling_does_not_beat_recurrence(benchmark):
    def run():
        g = fig3_dfg()
        rows = []
        for factor in (1, 2, 4):
            u = unroll(g, factor)
            rmii = rec_mii(u)
            rows.append([factor, u.num_ops, rmii, f"{rmii / factor:.2f}"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        format_table(
            ["unroll", "ops", "RecMII", "effective II/iter"],
            rows,
            title="Fig. 3 — recurrence-limited II under unrolling",
        )
    )
    eff = [float(r[3]) for r in rows]
    assert all(e == pytest.approx(eff[0]) for e in eff)


def test_fig3_ii_independent_of_cgra_size(benchmark):
    def run():
        g = fig3_dfg()
        return {size: map_dfg(g, CGRA(size, size)).ii for size in (4, 6, 8)}

    iis = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(f"Fig. 3 — mapped II per CGRA size: {iis}")
    assert len(set(iis.values())) == 1, "a bigger array must not change II"
