"""FIG6/FIG7 — the PageMaster worked examples, executed for real.

Fig. 6: a kernel using 3 of 4 pages folded onto a single page — executed
cycle-accurately with mirrored intra-page mappings, outputs bit-exact, the
3x slowdown measured, and all transfers through rotating register files.

Fig. 7: the N=6 -> M=5 zigzag transformation — validated against the
§VI-C constraints, including the ring wrap.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.arch.cgra import CGRA
from repro.compiler.constraints import paged_bus_key
from repro.compiler.paged import map_dfg_paged
from repro.core.pagemaster import PageMaster
from repro.core.paging import PageLayout
from repro.core.transform_check import check_placement
from repro.kernels import bind_memory, get_kernel
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.sim.retarget import required_batches, retarget_firings

TRIP = 24


def test_fig6_fold_to_one_page(benchmark, store):
    """mpeg maps onto 3 pages at II=1 (exactly Fig. 6's shape)."""

    def run():
        cgra = CGRA(4, 4, rf_depth=16)
        layout = PageLayout(cgra, (2, 2))
        spec = get_kernel("mpeg")
        pm = map_dfg_paged(spec.build(), cgra, layout)
        _, arrays, expected = spec.fresh(seed=6, trip=TRIP)
        mem = bind_memory(arrays)
        full = simulate(
            lower_mapping(pm.mapping, mem, TRIP),
            cgra,
            mem,
            bus_key=paged_bus_key(pm.layout),
        )
        placement = PageMaster(pm.pages_used, pm.ii, 1).place(
            batches=required_batches(pm.mapping, TRIP)
        )
        _, arrays2, _ = spec.fresh(seed=6, trip=TRIP)
        mem2 = bind_memory(arrays2)
        folded = simulate(
            retarget_firings(pm, placement, [0], mem2, TRIP),
            cgra,
            mem2,
            bus_key=paged_bus_key(pm.layout),
            rf_depth=16,
        )
        ok = all(
            np.array_equal(mem2.snapshot()[k], expected[k]) for k in expected
        )
        return pm, full, folded, ok

    pm, full, folded, ok = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        f"Fig. 6 — mpeg uses {pm.pages_used} pages at II={pm.ii}; "
        f"full run {full.cycles} cycles, folded-to-1-page run "
        f"{folded.cycles} cycles (x{folded.cycles / full.cycles:.2f}), "
        f"correct={ok}, global traffic {folded.global_writes}w "
        f"(register files only), rf depth used {folded.rf_max_depth_used}"
    )
    assert ok
    assert folded.global_writes == 0
    assert folded.cycles / full.cycles <= pm.pages_used + 0.5


def test_fig7_zigzag_n6_m5(benchmark):
    def run():
        p = PageMaster(6, 1, 5, force_zigzag=True).place()
        check_placement(p, require_wrap=True)
        return p

    p = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        f"Fig. 7 — N=6 -> M=5: II_q={float(p.ii_q_effective()):.3f} "
        f"(bound {float(p.ii_q_bound()):.3f}), batch-0 columns "
        f"{[p.col(n, 0) for n in range(6)]}"
    )
    assert p.col(0, 0) == 0  # the scheduling line starts at column 0
    assert float(p.ii_q_effective()) < 6  # strictly better than 1 page
