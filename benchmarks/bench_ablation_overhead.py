"""ABL-OVH — sensitivity to the reconfiguration-overhead assumption.

§VII-B assumes "algorithm execution time is negligible" because thread
transfer dominates.  This bench quantifies the slack in that assumption:
the multithreading improvement (8 threads, 75% need, 4x4/page-4) is swept
against a per-reallocation stall charged to the reshaped thread.  The gain
must decay gracefully and still be positive at overheads far above the
measured PageMaster runtime (sub-millisecond, see ALG1).
"""

from __future__ import annotations

from statistics import mean

from conftest import emit
from repro.pipeline import build_profiles
from repro.sim.system import SystemConfig, improvement, simulate_system
from repro.sim.workload import generate_workload
from repro.util.rng import derive_seed
from repro.util.tables import format_table

OVERHEADS = [0, 10, 100, 1000, 10_000]


def test_overhead_sensitivity(benchmark, store):
    def run():
        profiles = build_profiles(4, 4, store=store)
        nominal = {k: p.ii_paged for k, p in profiles.items()}
        rows = []
        curve = {}
        for ovh in OVERHEADS:
            imps = []
            for r in range(3):
                wl = generate_workload(
                    8,
                    0.75,
                    sorted(profiles),
                    nominal,
                    seed=derive_seed(1, "ovh", r),
                )
                cfg0 = SystemConfig(n_pages=4, profiles=profiles)
                base = simulate_system(wl, cfg0, "single")
                cfg = SystemConfig(
                    n_pages=4, profiles=profiles, reconfig_overhead=ovh
                )
                mt = simulate_system(wl, cfg, "multithreaded")
                imps.append(improvement(base, mt))
            curve[ovh] = mean(imps)
            rows.append([ovh, f"{mean(imps) * 100:+.1f}%"])
        return rows, curve

    rows, curve = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        format_table(
            ["reconfig overhead (cycles)", "improvement"],
            rows,
            title="ABL-OVH — multithreading gain vs reallocation overhead",
        )
    )
    assert curve[0] >= curve[10_000]  # monotone-ish decay
    assert curve[100] > 0.0  # robust well beyond measured transform cost
