"""COMPILE SPEED — cold mapper wall clock per kernel (no artifact cache).

Unlike the figure benches, this target deliberately bypasses the
repository artifact store: the thing under measurement is the
place-and-route mapper itself.  It compiles a fast subset of the 4x4
suite (the full sweep, including the slow sobel/fft searches, is
``python -m repro.bench compile-speed``; its trajectory lives in
``BENCH_compile_speed.json``) and prints the search-effort counters —
routing-state expansions, BFS/DFS invocations, placement probes — that
put the timings in context.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.pipeline.compile import CompileJob, compile_job_stats

# Kernels whose cold compiles are sub-second even on the slowest CI box;
# sobel/fft are excluded on purpose (minutes-scale pre-optimisation).
FAST_KERNELS = ["mpeg", "sor", "gsr", "laplace", "wavelet", "swim"]


@pytest.mark.parametrize("page_size", [2, 4])
def test_cold_compile_fast_suite(benchmark, page_size):
    def run():
        return [
            compile_job_stats(CompileJob(kernel, 4, page_size))[1]
            for kernel in FAST_KERNELS
        ]

    stats = benchmark.pedantic(run, iterations=1, rounds=3)
    lines = []
    for st in stats:
        c = st.counters
        lines.append(
            f"{st.kernel:<10} {st.seconds:7.3f}s  "
            f"expansions={c['expansions']:>7} probes={c['placement_probes']:>6} "
            f"bfs={c['bfs_calls']:>5} dfs={c['dfs_calls']:>5}"
        )
    emit(f"cold 4x4 compiles, page size {page_size}:\n" + "\n".join(lines))
    assert all(st.counters["route_calls"] > 0 for st in stats)
