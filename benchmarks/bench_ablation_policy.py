"""ABL-POL — ablation: runtime page-allocation policy.

The paper evaluates its halving policy (§VII-B).  This bench compares it
against fair-share rebalancing and PPA-style static equal partitioning
(related work [28]) on identical workloads, reporting the improvement each
achieves over the single-threaded baseline.  The dynamic policies must
beat the static one at low thread counts (static slices waste the array
when few threads run — the PPA limitation the paper calls out).
"""

from __future__ import annotations

from statistics import mean

from conftest import emit
from repro.pipeline import build_profiles
from repro.core.policies import (
    FairSharePolicy,
    HalvingPolicy,
    NeedAwareHalvingPolicy,
    StaticEqualPolicy,
)
from repro.sim.system import SystemConfig, improvement, simulate_system
from repro.sim.workload import generate_workload
from repro.util.rng import derive_seed
from repro.util.tables import format_table

SIZE, PAGE_SIZE, N_PAGES = 4, 4, 4


def test_policy_ablation(benchmark, store):
    def run():
        profiles = build_profiles(SIZE, PAGE_SIZE, store=store)
        nominal = {k: p.ii_paged for k, p in profiles.items()}
        policies = {
            "halving (paper)": lambda: HalvingPolicy(),
            "need-aware halving": lambda: NeedAwareHalvingPolicy(),
            "fair share": lambda: FairSharePolicy(),
            "static equal (PPA-like)": lambda: StaticEqualPolicy(N_PAGES),
        }
        rows = []
        results: dict[str, dict[int, float]] = {name: {} for name in policies}
        for n_threads in (1, 2, 4, 8):
            base_cfg = SystemConfig(n_pages=N_PAGES, profiles=profiles)
            row = [n_threads]
            for name, factory in policies.items():
                imps = []
                for r in range(3):
                    wl = generate_workload(
                        n_threads,
                        0.75,
                        sorted(profiles),
                        nominal,
                        seed=derive_seed(0, "ablpol", n_threads, r),
                    )
                    base = simulate_system(wl, base_cfg, "single")
                    cfg = SystemConfig(
                        n_pages=N_PAGES, profiles=profiles, policy=factory()
                    )
                    mt = simulate_system(wl, cfg, "multithreaded")
                    imps.append(improvement(base, mt))
                results[name][n_threads] = mean(imps)
                row.append(f"{mean(imps) * 100:+.1f}%")
            rows.append(row)
        return rows, results

    rows, results = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        format_table(
            [
                "threads",
                "halving (paper)",
                "need-aware halving",
                "fair share",
                "static equal (PPA-like)",
            ],
            rows,
            title="ABL-POL — allocation policy ablation (4x4, page size 4)",
        )
    )
    # dynamic policies dominate static partitioning when the array is
    # under-subscribed (1-2 threads)
    for few in (1, 2):
        assert (
            results["halving (paper)"][few]
            >= results["static equal (PPA-like)"][few] - 1e-9
        )
