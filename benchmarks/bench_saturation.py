"""SAT — the page-count bottleneck (§VII-B.2).

"The case of the 4x4 CGRA is unique, as there are many more threads than
pages, forcing threads to stall ... thus multithreading performance is
limited.  However, as CGRA size increases and subsequently the number of
pages available, multithreading performance greatly improves."

This bench measures queue-wait time and improvement as the thread count
crosses the page count, on a 4-page and a 16-page array.
"""

from __future__ import annotations

from statistics import mean

from conftest import emit
from repro.pipeline import build_profiles
from repro.core.paging import PageLayout, choose_page_shape
from repro.arch.cgra import CGRA
from repro.sim.system import SystemConfig, improvement, simulate_system
from repro.sim.workload import generate_workload
from repro.util.rng import derive_seed
from repro.util.tables import format_table


def _panel(size, page_size, store, thread_counts):
    profiles = build_profiles(size, page_size, store=store)
    n_pages = PageLayout(
        CGRA(size, size), choose_page_shape(page_size, size, size)
    ).num_pages
    nominal = {k: p.ii_paged for k, p in profiles.items()}
    cfg = SystemConfig(n_pages=n_pages, profiles=profiles)
    out = []
    for n_threads in thread_counts:
        imps, waits = [], []
        for r in range(3):
            wl = generate_workload(
                n_threads,
                0.875,
                sorted(profiles),
                nominal,
                seed=derive_seed(2, "sat", size, n_threads, r),
            )
            base = simulate_system(wl, cfg, "single")
            mt = simulate_system(wl, cfg, "multithreaded")
            imps.append(improvement(base, mt))
            waits.append(mt.wait_cycles / max(mt.makespan, 1))
        out.append((n_threads, mean(imps), mean(waits)))
    return n_pages, out


def test_saturation(benchmark, store):
    def run():
        return {
            size: _panel(size, 4, store, (2, 4, 8, 16, 32))
            for size in (4, 8)
        }

    panels = benchmark.pedantic(run, iterations=1, rounds=1)
    for size, (n_pages, rows) in panels.items():
        emit(
            format_table(
                ["threads", "improvement", "wait / makespan"],
                [
                    [t, f"{imp * 100:+.1f}%", f"{w:.2f}"]
                    for (t, imp, w) in rows
                ],
                title=(
                    f"SAT — saturation on {size}x{size} "
                    f"({n_pages} pages, 87.5% need)"
                ),
            )
        )
    # queueing appears once threads exceed pages on the small array
    small_pages, small_rows = panels[4]
    oversub = [w for (t, _, w) in small_rows if t > small_pages]
    undersub = [w for (t, _, w) in small_rows if t <= small_pages]
    assert max(oversub) > max(undersub)
    # the large array sustains growth further: its improvement at 16
    # threads beats the small array's
    big_imp = dict((t, i) for (t, i, _) in panels[8][1])
    small_imp = dict((t, i) for (t, i, _) in small_rows)
    assert big_imp[16] > small_imp[16]
