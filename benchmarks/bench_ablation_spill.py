"""ABL-SPL — ablation: route-through-slots vs memory spilling for
long-lived temporaries (the two implementations of the §VI-B
register-usage constraint).

A value can stay alive either as a chain of per-cycle route slots or as a
store/load round trip through the reserved global-storage buffer.  The
measured trade-off on our fabric: the media kernels' lifetimes are short
(few or no spill candidates, and forcing spills adds memory-bus pressure —
fft gets *worse*), while a synthetic kernel with a genuinely long-lived
value cuts its transfer slots substantially by spilling.  This is exactly
why the paper words the constraint as "use memory for temporaries" while
leaving short transfers on the interconnect.
"""

from __future__ import annotations

from conftest import emit
from repro.arch.cgra import CGRA
from repro.compiler.constraints import register_usage_report
from repro.compiler.ems import map_dfg
from repro.dfg.builder import DFGBuilder
from repro.dfg.spill import spill_long_edges
from repro.kernels import get_kernel
from repro.util.tables import format_table

KERNELS = ["lowpass", "sobel", "yuv2rgb", "fft"]


def long_lived_dfg(levels: int = 10):
    """A deep chain whose first load is also needed at the very end."""
    b = DFGBuilder("longlive")
    first = b.load("in")
    x = first
    for _ in range(levels):
        x = b.add(x, b.const(1))
    b.store("out", b.add(x, first))
    return b.build()


def _slots(mapping) -> int:
    rep = register_usage_report(mapping)
    return rep["self_holds"] + rep["move_hops"]


def test_spill_ablation(benchmark):
    def run():
        cgra = CGRA(4, 4, rf_depth=8)
        rows = []
        for name in KERNELS:
            dfg = get_kernel(name).build()
            plain = map_dfg(dfg, cgra)
            spilled_dfg, n = spill_long_edges(dfg, threshold=3)
            spilled = map_dfg(spilled_dfg, cgra)
            rows.append(
                [name, n, plain.ii, _slots(plain), spilled.ii, _slots(spilled)]
            )
        deep = long_lived_dfg()
        plain = map_dfg(deep, cgra)
        spilled_dfg, n = spill_long_edges(deep, threshold=3)
        spilled = map_dfg(spilled_dfg, cgra)
        rows.append(
            ["longlive*", n, plain.ii, _slots(plain), spilled.ii, _slots(spilled)]
        )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        format_table(
            [
                "kernel",
                "edges spilled",
                "II (routes)",
                "route slots",
                "II (spilled)",
                "route slots",
            ],
            rows,
            title=(
                "ABL-SPL — routing vs memory spilling (4x4; * = synthetic "
                "long-lifetime kernel)"
            ),
        )
    )
    deep_row = rows[-1]
    # the long-lifetime case is where spilling pays: fewer transfer slots
    # at unchanged II
    assert deep_row[5] < deep_row[3]
    assert deep_row[4] <= deep_row[2]
    # media kernels have (almost) nothing worth spilling at this threshold
    assert sum(r[1] for r in rows[:-1]) <= 6
