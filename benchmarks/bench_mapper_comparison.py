"""Mapper comparison — EMS-style greedy vs DRESC-style simulated annealing.

§III's premise: existing CGRA compilation (DRESC's simulated annealing) is
far too slow to run at thread-arrival time, which is why the paper adds
compile-time constraints plus a fast runtime transformation instead of
recompiling.  This bench reproduces that cost gap on the same kernels and
contrasts both with the PageMaster transformation's runtime.
"""

from __future__ import annotations

import time

from conftest import emit
from repro.arch.cgra import CGRA
from repro.compiler.annealing import anneal_map
from repro.compiler.check import validate_mapping
from repro.compiler.ems import map_dfg
from repro.core.pagemaster import PageMaster
from repro.kernels import get_kernel
from repro.util.tables import format_table

KERNELS = ["mpeg", "sor", "laplace", "wavelet"]


def test_mapper_comparison(benchmark):
    def run():
        cgra = CGRA(4, 4)
        rows = []
        for name in KERNELS:
            dfg = get_kernel(name).build()
            t0 = time.perf_counter()
            ems = map_dfg(dfg, cgra)
            t_ems = time.perf_counter() - t0
            validate_mapping(ems)
            t0 = time.perf_counter()
            sa = anneal_map(dfg, cgra, seed=1, max_ii=ems.ii + 4)
            t_sa = time.perf_counter() - t0
            validate_mapping(sa)
            rows.append([name, ems.ii, f"{t_ems * 1e3:.0f}", sa.ii, f"{t_sa * 1e3:.0f}"])
        t0 = time.perf_counter()
        PageMaster(4, 4, 2).place(batches=200)
        t_pm = time.perf_counter() - t0
        return rows, t_pm

    rows, t_pm = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        format_table(
            ["kernel", "EMS II", "EMS ms", "SA II", "SA ms"],
            rows,
            title="mapper comparison (4x4 CGRA)",
        )
    )
    emit(f"PageMaster transformation (4 pages, II 4, 200 batches): {t_pm * 1e3:.2f} ms")
    # the runtime transformation is orders of magnitude below compilation
    slowest_compile = max(float(r[4]) for r in rows)
    assert t_pm * 1e3 < slowest_compile
