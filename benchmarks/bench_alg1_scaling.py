"""ALG1 — Algorithm 1 complexity: "placePage runs in constant time and is
called for each page in P ... low-order polynomial time".

Benchmarks the PageMaster transformation runtime and checks it scales
linearly in the number of page instances placed (N x batches), which is
the paper's claim restated for our batch formulation.
"""

from __future__ import annotations

import time

from conftest import emit
from repro.core.pagemaster import PageMaster
from repro.util.tables import format_table


def _time_placement(n: int, m: int, batches: int) -> float:
    t0 = time.perf_counter()
    PageMaster(n, 2, m, force_zigzag=True).place(batches=batches)
    return time.perf_counter() - t0


def test_alg1_runtime_linear_in_instances(benchmark):
    def run():
        rows = []
        for n, batches in [(8, 200), (16, 200), (32, 200), (16, 400), (16, 800)]:
            m = n - 1  # zigzag path (the expensive one)
            dt = _time_placement(n, m, batches)
            rows.append([n, m, batches, n * batches, f"{dt * 1e3:.1f}"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        format_table(
            ["N", "M", "batches", "instances", "ms"],
            rows,
            title="Algorithm 1 — transformation runtime",
        )
    )
    # linearity: per-instance cost stays within a small factor across sizes
    per_instance = [float(r[4]) / r[3] for r in rows]
    assert max(per_instance) < 8 * min(per_instance)


def test_alg1_is_fast_enough_for_runtime_use(benchmark):
    """§III: scheduling must be fast enough to run at thread arrival.
    A realistic transformation (16 pages, II 4, 500 batches) must be
    sub-10ms — orders of magnitude below a kernel's execution time."""
    dt = benchmark.pedantic(
        lambda: _time_placement(16, 7, 500), iterations=3, rounds=3
    )
    emit(f"16-page, 500-batch transformation: measured in-benchmark")
