"""FIG9A/B/C — Fig. 9: system performance improvement from multithreading.

Regenerates the improvement grid (CGRA need x thread count) for every CGRA
size and page size, and checks the paper's qualitative claims: improvement
grows with thread count up to the page-count bottleneck, small thread
counts can degrade (the constraint cost), and larger arrays gain more.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.bench.fig8 import page_sizes_for
from repro.bench.fig9 import best_improvement, render_fig9, run_fig9


@pytest.mark.parametrize("size", [4, 6, 8])
def test_fig9(benchmark, store, size):
    page_size = 4  # the paper's headline configuration per size
    cells = benchmark.pedantic(
        lambda: run_fig9(size, page_size, store=store, repeats=2),
        iterations=1,
        rounds=1,
    )
    emit(render_fig9(size, page_size, cells))
    assert cells, "no mappable kernels"
    # improvement at 16 threads beats improvement at 1 thread for every need
    for need in {c.need for c in cells}:
        one = next(c for c in cells if c.need == need and c.n_threads == 1)
        sixteen = next(c for c in cells if c.need == need and c.n_threads == 16)
        assert sixteen.improvement > one.improvement
    assert best_improvement(cells) > 0.2


@pytest.mark.parametrize("size,page_size", [(4, 2), (6, 2), (6, 8), (8, 2), (8, 8)])
def test_fig9_other_page_sizes(benchmark, store, size, page_size):
    if page_size not in page_sizes_for(size):
        pytest.skip("configuration not evaluated by the paper")
    cells = benchmark.pedantic(
        lambda: run_fig9(size, page_size, store=store, repeats=2),
        iterations=1,
        rounds=1,
    )
    emit(render_fig9(size, page_size, cells))
    assert cells and best_improvement(cells) > 0.0


def test_fig9_gain_grows_with_cgra_size(benchmark, store):
    """Abstract: >30% / >75% / >150% on 4x4 / 6x6 / 8x8 — so the best gain
    must be ordered by array size."""
    bests = benchmark.pedantic(
        lambda: {
            size: best_improvement(run_fig9(size, 4, store=store, repeats=2))
            for size in (4, 6, 8)
        },
        iterations=1,
        rounds=1,
    )
    emit(f"best improvements: {bests}")
    assert bests[4] < bests[6] < bests[8]
