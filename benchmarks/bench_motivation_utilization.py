"""MOT-U — §IV's motivation, measured cycle-accurately.

The paper argues a single kernel cannot raise the array's utilization
(recurrences pin II regardless of array size), so throughput can only come
from co-residency: ``IPC = N x U_a``.  This bench measures *actual* PE
utilization on the simulated fabric: each one-page kernel alone on the
4x4 array, then four of them co-resident, executed together in one
cycle-accurate simulation.
"""

from __future__ import annotations

from conftest import emit
from repro.arch.cgra import CGRA
from repro.arch.memory import DataMemory
from repro.compiler.constraints import paged_bus_key
from repro.compiler.paged import map_dfg_paged
from repro.core.pagemaster import PageMaster
from repro.core.paging import PageLayout
from repro.kernels import get_kernel
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.sim.retarget import required_batches, retarget_firings
from repro.util.tables import format_table

KERNELS = ["sor", "gsr", "compress", "wavelet"]
TRIP = 32


def test_motivation_utilization(benchmark, store):
    def run():
        cgra = CGRA(4, 4, rf_depth=24)
        layout = PageLayout(cgra, (2, 2))
        compiled = {
            name: map_dfg_paged(get_kernel(name).build(), cgra, layout)
            for name in KERNELS
        }
        rows = []
        solo_utils = {}
        for name, pm in compiled.items():
            spec = get_kernel(name)
            _, arrays, _ = spec.fresh(seed=0, trip=TRIP)
            mem = DataMemory(1 << 16)
            for aname in sorted(arrays):
                mem.bind_array(aname, arrays[aname])
            res = simulate(
                lower_mapping(pm.mapping, mem, TRIP),
                cgra,
                mem,
                bus_key=paged_bus_key(pm.layout),
            )
            solo_utils[name] = res.utilization(cgra)
            rows.append([name, pm.ii, pm.pages_used, f"{res.utilization(cgra) * 100:.1f}%"])

        # four kernels co-resident, one per page, in one simulation
        mem = DataMemory(1 << 16)
        all_firings = []
        for tid, (name, pm) in enumerate(compiled.items()):
            spec = get_kernel(name)
            _, arrays, _ = spec.fresh(seed=100 + tid, trip=TRIP)
            prefix = f"t{tid}/"
            for aname in sorted(arrays):
                mem.bind_array(prefix + aname, arrays[aname])
            placement = PageMaster(pm.pages_used, pm.ii, pm.pages_used).place(
                batches=required_batches(pm.mapping, TRIP)
            )
            all_firings += retarget_firings(
                pm,
                placement,
                [tid],
                mem,
                TRIP,
                array_prefix=prefix,
                firing_tag=f"t{tid}",
                rf_limit=64,
            )
        multi = simulate(
            all_firings, cgra, mem, bus_key=paged_bus_key(layout), rf_depth=64
        )
        return rows, solo_utils, multi.utilization(cgra)

    rows, solo, multi_util = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        format_table(
            ["kernel (alone)", "II", "pages used", "PE utilization"],
            rows,
            title="MOT-U — §IV: single-kernel vs multithreaded utilization (4x4)",
        )
    )
    emit(f"four kernels co-resident: PE utilization {multi_util * 100:.1f}%")
    # co-residency must beat every solo run by a wide margin
    assert multi_util > 2 * max(solo.values())
