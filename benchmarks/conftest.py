"""Shared fixtures for the experiment benchmarks.

Every bench target regenerates one of the paper's tables/figures and
prints the series it produces; compilation results are memoised in the
repository-level artifact store (:mod:`repro.pipeline`) so repeated runs
are fast.
"""

from __future__ import annotations

import pytest

from repro.pipeline import ArtifactStore


@pytest.fixture(scope="session")
def store() -> ArtifactStore:
    return ArtifactStore()


def emit(text: str) -> None:
    """Print a result block, keeping benchmark output readable."""
    print("\n" + text)
