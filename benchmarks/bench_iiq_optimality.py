"""TAB-II — the §VI-C optimality claim, measured.

The paper bounds the transformed II by resource constraints and claims the
algorithm produces an optimal schedule.  This bench sweeps (N, II_p, M) and
reports achieved vs bound: grouped folds (M | N, wrap-free) are exactly
optimal; the zigzag pays a measurable but bounded premium on non-dividing
targets — and the paper's own loose bound ``II_p * floor(N/M)`` is always
met.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import emit
from repro.core.pagemaster import PageMaster
from repro.core.transform_check import check_placement
from repro.util.tables import format_table


def test_iiq_vs_bound_sweep(benchmark):
    def run():
        rows = []
        for n in (4, 6, 8, 12, 16):
            for m in range(1, n + 1):
                p = PageMaster(n, 2, m).place()
                check_placement(p)
                rows.append(
                    (
                        n,
                        m,
                        p.strategy,
                        float(p.ii_q_effective()),
                        float(p.ii_q_bound()),
                        p.ii_q_effective() / p.ii_q_bound(),
                        p.ii_q_effective() >= 2 * (n // m),  # paper bound
                    )
                )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    body = [
        [n, m, strat, f"{eff:.2f}", f"{bound:.2f}", f"{float(ratio):.2f}"]
        for (n, m, strat, eff, bound, ratio, _ok) in rows
    ]
    emit(
        format_table(
            ["N", "M", "strategy", "II_q", "bound N*II/M", "ratio"],
            body,
            title="TAB-II — achieved vs optimal transformed II (II_p = 2)",
        )
    )
    for (n, m, strat, eff, bound, ratio, paper_ok) in rows:
        # the paper's floor bound always holds
        assert paper_ok, (n, m)
        if n % m == 0:
            assert ratio == 1, (n, m)  # grouped folds are exactly optimal
        else:
            # zigzag premium stays bounded; the worst case observed is a
            # near-full non-dividing shrink (N=16 -> M=14, ~1.59x)
            assert ratio < Fraction(17, 10), (n, m)
