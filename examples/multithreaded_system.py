#!/usr/bin/env python3
"""Multithreaded CGRA in action (§VII-B): a mix of threads alternating CPU
work and CGRA kernels, run against (a) the single-threaded non-preemptive
CGRA baseline and (b) the paged, PageMaster-managed CGRA — then a sweep
over thread counts showing the paper's Fig. 9 trend.

Run:  python examples/multithreaded_system.py
"""

from repro.pipeline import ArtifactStore, build_profiles
from repro.sim.system import SystemConfig, improvement, simulate_system
from repro.sim.workload import generate_workload
from repro.util.tables import format_table

SIZE = 4  # 4x4 CGRA
PAGE_SIZE = 4  # four 2x2 pages


def main() -> None:
    store = ArtifactStore()
    print(f"compiling the suite for a {SIZE}x{SIZE} CGRA, page size {PAGE_SIZE} ...")
    profiles = build_profiles(SIZE, PAGE_SIZE, store=store)
    print(store.describe())
    rows = [
        [p.name, p.ii_base, p.ii_paged, p.pages_used, "yes" if p.wrap_used else "no"]
        for p in profiles.values()
    ]
    print(
        format_table(
            ["kernel", "II_base", "II_paged", "pages used", "wrap"],
            rows,
            title="compiled kernel profiles",
        )
    )

    config = SystemConfig(n_pages=4, profiles=profiles)
    nominal = {k: p.ii_paged for k, p in profiles.items()}

    print("\none workload in detail (4 threads, 75% CGRA need):")
    workload = generate_workload(4, 0.75, sorted(profiles), nominal, seed=7)
    base = simulate_system(workload, config, "single")
    mt = simulate_system(workload, config, "multithreaded")
    print(f"  single-threaded CGRA: makespan {base.makespan:>10.0f} cycles, "
          f"threads waited {base.wait_cycles:.0f} cycles")
    print(f"  multithreaded CGRA:   makespan {mt.makespan:>10.0f} cycles, "
          f"{mt.reallocations} reallocations, "
          f"utilization {mt.cgra_utilization:.2f}")
    print(f"  improvement: {improvement(base, mt) * 100:+.1f}%")

    print("\nsweep over thread counts (75% CGRA need, 3 seeds averaged):")
    body = []
    for n_threads in (1, 2, 4, 8, 16):
        imps = []
        for s in range(3):
            wl = generate_workload(
                n_threads, 0.75, sorted(profiles), nominal, seed=100 + s
            )
            b = simulate_system(wl, config, "single")
            m = simulate_system(wl, config, "multithreaded")
            imps.append(improvement(b, m))
        body.append([n_threads, f"{sum(imps) / len(imps) * 100:+.1f}%"])
    print(format_table(["threads", "improvement"], body))


if __name__ == "__main__":
    main()
