#!/usr/bin/env python3
"""Quickstart: compile a media kernel for a paged 4x4 CGRA, execute it
cycle-accurately, then shrink it to half the array at "runtime" with the
PageMaster transformation and show it still computes the same thing at the
predicted cost.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.arch.presets import demo_cgra
from repro.compiler import map_dfg, map_dfg_paged
from repro.compiler.constraints import paged_bus_key
from repro.core.pagemaster import PageMaster
from repro.core.paging import PageLayout
from repro.kernels import bind_memory, get_kernel
from repro.sim import lower_mapping, required_batches, retarget_firings, simulate

TRIP = 32


def main() -> None:
    # --- the hardware: a 4x4 CGRA divided into four 2x2 pages (Fig. 4) ----
    cgra = demo_cgra()  # preset("4x4"): the paper's 4x4 fabric, rf_depth 16
    layout = PageLayout(cgra, (2, 2))
    print(f"hardware: {cgra.describe()}")
    print(f"paging:   {layout}\n")

    # --- the software: the mpeg motion-compensation kernel ----------------
    spec = get_kernel("mpeg")
    dfg, arrays, expected = spec.fresh(seed=42, trip=TRIP)
    print(f"kernel:   {dfg.summary()}")

    # --- baseline compilation (unconstrained, whole array) ----------------
    baseline = map_dfg(dfg, cgra)
    print(f"baseline: {baseline.summary()}")

    # --- paged compilation (§VI-B constraints) -----------------------------
    paged = map_dfg_paged(dfg, cgra, layout)
    print(f"paged:    {paged.summary()}")
    print(
        f"          II {baseline.ii} -> {paged.ii}, "
        f"uses {paged.pages_used} of {layout.num_pages} pages\n"
    )

    # --- run the paged schedule and check against the golden model --------
    mem = bind_memory(arrays)
    res = simulate(
        lower_mapping(paged.mapping, mem, TRIP),
        cgra,
        mem,
        bus_key=paged_bus_key(paged.layout),
    )
    ok = all(np.array_equal(mem.snapshot()[k], expected[k]) for k in expected)
    print(f"full-size run: {res.summary()}  correct={ok}")

    # --- runtime shrink: give half the pages away to another thread -------
    m = max(1, paged.pages_used // 2)
    if m == paged.pages_used:
        print("kernel already fits one page; shrinking is a no-op")
        return
    batches = required_batches(paged.mapping, TRIP)
    placement = PageMaster(
        paged.pages_used, paged.ii, m, wrap_used=paged.wrap_used
    ).place(batches=batches)
    print(f"\nPageMaster: {placement.summary()}")

    _, arrays2, _ = spec.fresh(seed=42, trip=TRIP)
    mem2 = bind_memory(arrays2)
    firings = retarget_firings(paged, placement, list(range(m)), mem2, TRIP)
    res2 = simulate(
        firings, cgra, mem2, bus_key=paged_bus_key(paged.layout), rf_depth=32
    )
    ok2 = all(np.array_equal(mem2.snapshot()[k], expected[k]) for k in expected)
    print(f"shrunk run ({m} pages): {res2.summary()}  correct={ok2}")
    print(
        f"slowdown: x{res2.cycles / res.cycles:.2f} "
        f"(steady-state prediction x{float(placement.ii_q_effective()) / paged.ii:.2f})"
    )


if __name__ == "__main__":
    main()
