#!/usr/bin/env python3
"""Inspecting what a mapped kernel actually does, cycle by cycle.

Shows the debugging workflow a compiler developer would use: render the
mapping on the PE grid, trace its execution (every firing with operand
values), follow one dataflow value through the fabric, and watch the OS
manager's timeline in a small multithreaded run.

Run:  python examples/tracing_and_debugging.py
"""

from repro import viz
from repro.arch import CGRA
from repro.compiler import map_dfg
from repro.kernels import bind_memory, get_kernel
from repro.sim import lower_mapping, simulate
from repro.sim.system import KernelProfile, SystemConfig, simulate_system
from repro.sim.trace import CycleTrace, SystemTimeline
from repro.sim.workload import Segment, ThreadSpec

TRIP = 4


def main() -> None:
    cgra = CGRA(4, 4, rf_depth=8)
    spec = get_kernel("sor")
    dfg, arrays, _ = spec.fresh(seed=0, trip=TRIP)
    mapping = map_dfg(dfg, cgra)

    print("=== the mapping on the grid")
    print(viz.render_mapping(mapping))

    print("\n=== cycle trace (first three cycles)")
    mem = bind_memory(arrays)
    trace = CycleTrace()
    simulate(lower_mapping(mapping, mem, TRIP), cgra, mem, trace=trace)
    print(trace.render(first=0, last=2))

    print("\n=== following the recurrence value ('relax' = out[i])")
    for rec in trace.of_op("relax"):
        print(
            f"  iteration {rec.iteration}: relax({', '.join(map(str, rec.operands))})"
            f" -> {rec.value}  (cycle {rec.cycle}, PE {rec.pe})"
        )

    print("\n=== OS timeline of a tiny multithreaded run")
    profiles = {"k": KernelProfile("k", 2, 2, pages_used=4)}
    workload = [
        ThreadSpec(0, (Segment("cgra", kernel="k", trip=40),)),
        ThreadSpec(1, (Segment("cgra", kernel="k", trip=20),), arrival=20),
    ]
    timeline = SystemTimeline()
    simulate_system(
        workload,
        SystemConfig(n_pages=4, profiles=profiles),
        "multithreaded",
        timeline=timeline,
    )
    print(timeline.render())


if __name__ == "__main__":
    main()
