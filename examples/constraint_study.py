#!/usr/bin/env python3
"""Study of the compile-time paging constraints (§VI-B / Fig. 8): how much
II the ring-topology and register-usage constraints cost each benchmark,
and what the kernels' page needs look like.

Run:  python examples/constraint_study.py [size]
"""

import sys

from repro.bench.fig8 import page_sizes_for, render_fig8, run_fig8
from repro.kernels import kernel_names
from repro.pipeline import ArtifactStore, compile_kernel
from repro.util.tables import format_table


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    store = ArtifactStore()

    print(f"compiling the 11-kernel suite for a {size}x{size} CGRA ...\n")
    rows = run_fig8(size, store=store)
    print(render_fig8(size, rows))

    print("\npage needs (how much of the array each kernel actually uses):")
    body = []
    for name in kernel_names():
        artifact = compile_kernel(name, size, 4, store=store)
        if artifact.unmappable:
            body.append([name, "n/a", "n/a", "n/a"])
            continue
        total = (size * size) // 4
        body.append(
            [
                name,
                artifact.pages_used,
                total,
                f"{artifact.pages_used / total * 100:.0f}%",
            ]
        )
    print(
        format_table(
            ["kernel", "pages used", "pages total", "array share"],
            body,
        )
    )
    print(
        "\nLow page needs are the paper's §IV motivation: a recurrence-bound"
        "\nkernel cannot convert extra PEs into speed, so the unused pages"
        "\nare pure multithreading headroom."
    )


if __name__ == "__main__":
    main()
