#!/usr/bin/env python3
"""Walk through the PageMaster transformation on the paper's own examples.

* Fig. 6 — a schedule using 3 of 4 pages folded onto a single page: pages
  execute in dependency order, one per cycle, and the intra-page mappings
  are mirrored so producers and consumers land on the same physical PE.
* Fig. 7 — the N=6 -> M=5 zigzag: the first iteration forms the
  "scheduling line" with a tail, later batches are placed by the three
  PlacePage cases.

Run:  python examples/pagemaster_walkthrough.py
"""

from repro import viz
from repro.arch import CGRA
from repro.core.mirroring import fold_orientations
from repro.core.pagemaster import PageMaster
from repro.core.paging import PageLayout
from repro.core.transform_check import check_placement


def show_placement(title: str, n: int, ii: int, m: int, batches: int, **kw) -> None:
    placement = PageMaster(n, ii, m, **kw).place(batches=batches)
    check_placement(placement)
    print(f"=== {title}")
    print(viz.render_placement(placement, max_rows=14))
    print()


def main() -> None:
    # Fig. 6: three used pages onto one page — pure sequencing.
    show_placement("Fig. 6 — fold 3 pages onto 1 (grouped)", 3, 1, 1, batches=4)

    # The mirroring that makes the fold work: page n's internal mapping is
    # flipped across the axis of its incoming boundary.
    cgra = CGRA(4, 4)
    layout = PageLayout(cgra, (2, 2))
    orients = fold_orientations(layout)
    print("fold orientations over the 2x2-page snake chain:")
    for n, o in enumerate(orients):
        print(f"  page {n}: {o.value}")
    print()

    # Fig. 7: six pages onto five columns with the zigzag Algorithm 1.
    show_placement(
        "Fig. 7 — N=6 onto M=5 (zigzag Algorithm 1)",
        6,
        1,
        5,
        batches=6,
        force_zigzag=True,
    )

    # A non-dividing shrink: watch the column pattern wander while every
    # §VI-C constraint holds.
    show_placement("N=4, II=2 onto M=3 (zigzag)", 4, 2, 3, batches=6)

    # Steady-state effective II across every target size.
    print("=== steady-state II of a 8-page, II=2 schedule, per target M")
    for m in range(1, 9):
        p = PageMaster(8, 2, m).place()
        print(
            f"  M={m}: II_q={float(p.ii_q_effective()):6.2f} "
            f"(bound {float(p.ii_q_bound()):6.2f}, "
            f"strategy {p.strategy}, efficiency {p.efficiency():.2f})"
        )


if __name__ == "__main__":
    main()
