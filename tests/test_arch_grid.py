"""Unit tests for the mesh interconnect, register files, memory and CGRA."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord, Interconnect
from repro.arch.memory import DataMemory
from repro.arch.register_file import RotatingRegisterFile
from repro.util.errors import ArchitectureError, SimulationError


class TestCoord:
    def test_manhattan(self):
        assert Coord(0, 0).manhattan(Coord(2, 3)) == 5
        assert Coord(1, 1).manhattan(Coord(1, 1)) == 0

    def test_ordering_row_major(self):
        assert Coord(0, 3) < Coord(1, 0)


class TestInterconnect:
    def test_corner_has_two_neighbors(self):
        ic = Interconnect(4, 4)
        assert set(ic.neighbors(Coord(0, 0))) == {Coord(0, 1), Coord(1, 0)}

    def test_interior_has_four_neighbors(self):
        ic = Interconnect(4, 4)
        assert len(ic.neighbors(Coord(1, 1))) == 4

    def test_diagonal_flavour(self):
        ic = Interconnect(4, 4, diagonal=True)
        assert Coord(1, 1) in ic.neighbors(Coord(0, 0))
        assert len(ic.neighbors(Coord(1, 1))) == 8

    def test_torus_wraps(self):
        ic = Interconnect(4, 4, torus=True)
        assert Coord(3, 0) in ic.neighbors(Coord(0, 0))
        assert Coord(0, 3) in ic.neighbors(Coord(0, 0))
        assert all(len(ic.neighbors(c)) == 4 for c in ic.coords())

    def test_self_reachable(self):
        ic = Interconnect(3, 3)
        assert Coord(1, 1) in ic.reachable_in_one(Coord(1, 1))
        assert ic.adjacent_or_same(Coord(1, 1), Coord(1, 1))

    def test_adjacency_symmetric(self):
        ic = Interconnect(5, 3)
        for a in ic.coords():
            for b in ic.coords():
                assert ic.adjacent_or_same(a, b) == ic.adjacent_or_same(b, a)

    def test_index_roundtrip(self):
        ic = Interconnect(3, 5)
        for c in ic.coords():
            assert ic.coord(ic.index(c)) == c

    def test_bad_grid_rejected(self):
        with pytest.raises(ArchitectureError):
            Interconnect(0, 4)

    def test_out_of_grid_queries_rejected(self):
        ic = Interconnect(2, 2)
        with pytest.raises(ArchitectureError):
            ic.neighbors(Coord(5, 5))
        with pytest.raises(ArchitectureError):
            ic.index(Coord(-1, 0))
        with pytest.raises(ArchitectureError):
            ic.coord(99)

    @given(st.integers(1, 6), st.integers(1, 6))
    def test_neighbor_counts_sum(self, rows, cols):
        """Handshake lemma: directed neighbour links == 2 * mesh edges."""
        ic = Interconnect(rows, cols)
        total = sum(len(ic.neighbors(c)) for c in ic.coords())
        expected_edges = rows * (cols - 1) + cols * (rows - 1)
        assert total == 2 * expected_edges


class TestRotatingRegisterFile:
    def test_push_read(self):
        rf = RotatingRegisterFile(4)
        rf.push(0, 10)
        rf.push(2, 20)
        assert rf.read_produced_at(0) == 10
        assert rf.read_produced_at(2) == 20
        assert rf.latest() == 20

    def test_eviction_at_depth(self):
        rf = RotatingRegisterFile(2)
        for c, v in [(0, 1), (1, 2), (2, 3)]:
            rf.push(c, v)
        with pytest.raises(SimulationError):
            rf.read_produced_at(0)
        assert rf.read_produced_at(1) == 2

    def test_time_ordering_enforced(self):
        rf = RotatingRegisterFile(4)
        rf.push(5, 1)
        with pytest.raises(SimulationError):
            rf.push(5, 2)
        with pytest.raises(SimulationError):
            rf.push(3, 2)

    def test_depth_validation(self):
        with pytest.raises(SimulationError):
            RotatingRegisterFile(0)

    def test_occupancy_watermark(self):
        rf = RotatingRegisterFile(3)
        for c in range(10):
            rf.push(c, c)
        assert rf.occupancy() == 3
        assert rf.max_occupancy == 3

    def test_clear(self):
        rf = RotatingRegisterFile(3)
        rf.push(0, 1)
        rf.clear()
        assert rf.latest() is None
        rf.push(0, 2)  # time restarts after clear
        assert rf.latest() == 2

    @given(st.integers(1, 8), st.lists(st.integers(0, 100), min_size=1, max_size=20, unique=True))
    def test_last_depth_values_always_readable(self, depth, cycles):
        cycles = sorted(cycles)
        rf = RotatingRegisterFile(depth)
        for c in cycles:
            rf.push(c, c * 7)
        for c in cycles[-depth:]:
            assert rf.read_produced_at(c) == c * 7


class TestDataMemory:
    def test_bind_and_read(self):
        mem = DataMemory(128)
        spec = mem.bind_array("a", [1, 2, 3])
        assert spec.base == 0 and spec.length == 3
        assert mem.load(spec.base + 1) == 2

    def test_sequential_allocation(self):
        mem = DataMemory(128)
        a = mem.bind_array("a", [0] * 10)
        b = mem.bind_array("b", [0] * 5)
        assert b.base == a.base + a.length

    def test_duplicate_name_rejected(self):
        mem = DataMemory(128)
        mem.bind_array("a", [1])
        with pytest.raises(SimulationError):
            mem.bind_array("a", [2])

    def test_out_of_memory(self):
        mem = DataMemory(4)
        with pytest.raises(SimulationError):
            mem.bind_array("big", [0] * 5)

    def test_global_storage_from_top(self):
        mem = DataMemory(100)
        base = mem.reserve_global_storage(10)
        assert base == 90
        base2 = mem.reserve_global_storage(5)
        assert base2 == 85

    def test_global_storage_collision(self):
        mem = DataMemory(16)
        mem.bind_array("a", [0] * 10)
        with pytest.raises(SimulationError):
            mem.reserve_global_storage(10)

    def test_store_load_roundtrip_and_counts(self):
        mem = DataMemory(16)
        mem.store(3, -7)
        assert mem.load(3) == -7
        assert mem.store_count == 1 and mem.load_count == 1

    def test_bounds_checked(self):
        mem = DataMemory(8)
        with pytest.raises(SimulationError):
            mem.load(8)
        with pytest.raises(SimulationError):
            mem.store(-1, 0)

    def test_snapshot(self):
        mem = DataMemory(64)
        mem.bind_array("x", [5, 6])
        snap = mem.snapshot()
        assert np.array_equal(snap["x"], [5, 6])
        mem.store(0, 99)
        assert snap["x"][0] == 5  # snapshot is a copy

    def test_2d_array_rejected(self):
        mem = DataMemory(64)
        with pytest.raises(SimulationError):
            mem.bind_array("m", np.zeros((2, 2)))


class TestCGRA:
    def test_describe(self, cgra44):
        assert "4x4" in cgra44.describe()

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            CGRA(0, 4)
        with pytest.raises(ArchitectureError):
            CGRA(4, 4, rf_depth=0)
        with pytest.raises(ArchitectureError):
            CGRA(4, 4, mem_ports_per_row=0)

    def test_num_pes(self):
        assert CGRA(6, 6).num_pes == 36


class TestProcessingElement:
    def test_execute_commits(self):
        from repro.arch.isa import Opcode
        from repro.arch.pe import ProcessingElement

        pe = ProcessingElement(Coord(0, 0), rf_depth=4)
        v = pe.execute(Opcode.ADD, [2, 3], None, cycle=5)
        assert v == 5
        assert pe.read_output(5) == 5
        assert pe.firings == 1

    def test_depth_accounting(self):
        from repro.arch.isa import Opcode
        from repro.arch.pe import ProcessingElement

        pe = ProcessingElement(Coord(1, 1), rf_depth=4)
        for c in range(3):
            pe.execute(Opcode.ADD, [c, 0], None, cycle=c)
        assert pe.depth_of(2) == 1  # newest
        assert pe.depth_of(0) == 3  # oldest retained

    def test_depth_of_missing_raises(self):
        from repro.arch.pe import ProcessingElement

        pe = ProcessingElement(Coord(0, 0), rf_depth=2)
        with pytest.raises(SimulationError):
            pe.depth_of(9)

    def test_rf_depth_of_absent_is_zero(self):
        rf = RotatingRegisterFile(2)
        assert rf.depth_of(0) == 0
        rf.push(0, 7)
        assert rf.depth_of(0) == 1
