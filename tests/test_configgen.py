"""Tests for configuration generation (mapping -> per-PE config memory)."""

from __future__ import annotations

import pytest

from repro.arch.cgra import CGRA
from repro.arch.config import ConfigTable, Immediate, ReadNeighbor, SlotConfig
from repro.arch.interconnect import Coord
from repro.arch.isa import Opcode
from repro.compiler.configgen import generate_config, verify_config_against_mapping
from repro.compiler.constraints import assert_register_constraint
from repro.compiler.ems import map_dfg
from repro.compiler.paged import map_dfg_paged
from repro.core.paging import PageLayout
from repro.kernels import bind_memory, get_kernel
from repro.util.errors import MappingError

KERNELS = ["mpeg", "sor", "wavelet", "swim"]


@pytest.fixture(scope="module")
def configs():
    cgra = CGRA(4, 4, rf_depth=8)
    out = {}
    for name in KERNELS:
        spec = get_kernel(name)
        dfg, arrays, _ = spec.fresh(seed=0, trip=4)
        m = map_dfg(dfg, cgra)
        mem = bind_memory(arrays)
        out[name] = (m, generate_config(m, mem))
    return out


class TestGeneration:
    @pytest.mark.parametrize("name", KERNELS)
    def test_slots_match_mapping(self, configs, name):
        m, table = configs[name]
        verify_config_against_mapping(table, m)

    @pytest.mark.parametrize("name", KERNELS)
    def test_register_usage_constraint_holds(self, configs, name):
        _, table = configs[name]
        assert_register_constraint(table)

    @pytest.mark.parametrize("name", KERNELS)
    def test_const_operands_become_immediates(self, configs, name):
        m, table = configs[name]
        # every CONST op of the DFG appears as an Immediate somewhere
        consts = {
            op.immediate
            for op in m.dfg.ops.values()
            if op.opcode is Opcode.CONST
        }
        immediates = {
            src.value
            for slot in table.slots.values()
            for src in slot.operands
            if isinstance(src, Immediate)
        }
        assert consts <= immediates

    @pytest.mark.parametrize("name", KERNELS)
    def test_memory_slots_have_addresses(self, configs, name):
        _, table = configs[name]
        for slot in table.slots.values():
            if slot.opcode in (Opcode.LOAD, Opcode.STORE):
                assert slot.addr is not None

    def test_utilization_matches_mapping(self, configs):
        m, table = configs["swim"]
        assert table.utilization(16) == pytest.approx(m.pe_utilization())

    def test_paged_mapping_configs_too(self):
        cgra = CGRA(4, 4, rf_depth=16)
        layout = PageLayout(cgra, (2, 2))
        spec = get_kernel("gsr")
        dfg, arrays, _ = spec.fresh(seed=0, trip=4)
        pm = map_dfg_paged(dfg, cgra, layout)
        table = generate_config(pm.mapping, bind_memory(arrays))
        verify_config_against_mapping(table, pm.mapping)
        assert_register_constraint(table)

    def test_verify_catches_corruption(self, configs):
        m, table = configs["mpeg"]
        bad = ConfigTable(ii=table.ii, slots=dict(table.slots))
        key = next(iter(bad.slots))
        del bad.slots[key]
        with pytest.raises(MappingError):
            verify_config_against_mapping(bad, m)


class TestConfigModel:
    def test_slot_exclusive(self):
        t = ConfigTable(ii=2)
        c = SlotConfig("a", Opcode.CONST, immediate=1, start=0)
        t.place(Coord(0, 0), c)
        with pytest.raises(MappingError):
            t.place(Coord(0, 0), SlotConfig("b", Opcode.CONST, immediate=2, start=2))

    def test_at_lookup_modulo(self):
        t = ConfigTable(ii=3)
        c = SlotConfig("a", Opcode.CONST, immediate=1, start=1)
        t.place(Coord(1, 1), c)
        assert t.at(Coord(1, 1), 4) is c
        assert t.at(Coord(1, 1), 0) is None

    def test_slot_config_validation(self):
        with pytest.raises(MappingError):
            SlotConfig("x", Opcode.ADD, operands=(), start=0)  # arity
        with pytest.raises(MappingError):
            SlotConfig("x", Opcode.CONST, start=0)  # missing immediate
        with pytest.raises(MappingError):
            SlotConfig("x", Opcode.LOAD, start=0)  # missing address
        with pytest.raises(MappingError):
            SlotConfig("x", Opcode.CONST, immediate=1, start=-1)

    def test_read_neighbor_delta_validated(self):
        with pytest.raises(MappingError):
            ReadNeighbor(Coord(0, 0), delta=0)


class TestConfigDrivenExecution:
    """The configuration memory alone must reproduce the kernel: an
    independent execution path cross-checked against lowering + golden."""

    @pytest.mark.parametrize("name", KERNELS)
    def test_config_execution_matches_golden(self, name):
        import numpy as np

        from repro.sim.cgra_sim import simulate
        from repro.sim.config_exec import unroll_config

        trip = 14
        cgra = CGRA(4, 4, rf_depth=8)
        spec = get_kernel(name)
        dfg, arrays, expected = spec.fresh(seed=7, trip=trip)
        m = map_dfg(dfg, cgra)
        mem = bind_memory(arrays)
        table = generate_config(m, mem)
        res = simulate(unroll_config(table, trip), cgra, mem)
        snap = mem.snapshot()
        for arr in expected:
            assert np.array_equal(snap[arr], expected[arr]), arr
        assert res.firings > 0

    def test_config_and_lowering_produce_same_firing_counts(self):
        from repro.sim.config_exec import unroll_config
        from repro.sim.lowering import lower_mapping

        trip = 9
        cgra = CGRA(4, 4, rf_depth=8)
        spec = get_kernel("sor")
        dfg, arrays, _ = spec.fresh(seed=1, trip=trip)
        m = map_dfg(dfg, cgra)
        mem = bind_memory(arrays)
        table = generate_config(m, mem)
        via_config = unroll_config(table, trip)
        via_mapping = lower_mapping(m, mem, trip)
        assert len(via_config) == len(via_mapping)
        assert {(f.cycle, f.pe) for f in via_config} == {
            (f.cycle, f.pe) for f in via_mapping
        }

    def test_zero_trip(self):
        from repro.sim.config_exec import unroll_config

        cgra = CGRA(4, 4)
        spec = get_kernel("sor")
        dfg, arrays, _ = spec.fresh(seed=1, trip=4)
        m = map_dfg(dfg, cgra)
        table = generate_config(m, bind_memory(arrays))
        assert unroll_config(table, 0) == []

    def test_negative_trip_rejected(self):
        from repro.sim.config_exec import unroll_config
        from repro.arch.config import ConfigTable
        from repro.util.errors import SimulationError

        with pytest.raises(SimulationError):
            unroll_config(ConfigTable(ii=1), -1)
