"""Paged compiler tests: the §VI-B constraints hold, page schedules are
ring-consistent, page need is minimised, and constrained mappings stay
functionally correct."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.cgra import CGRA
from repro.compiler.check import validate_mapping
from repro.compiler.constraints import (
    assert_register_constraint,
    paged_bus_key,
    register_usage_report,
    ring_hop_filter,
)
from repro.compiler.paged import map_dfg_paged
from repro.core.paging import PageLayout
from repro.kernels import bind_memory, get_kernel
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.util.errors import ConstraintViolation, MappingError

FAST = ["mpeg", "sor", "laplace", "wavelet", "swim", "compress", "gsr"]


@pytest.fixture(scope="module")
def paged44():
    cgra = CGRA(4, 4, rf_depth=20)
    layout = PageLayout(cgra, (2, 2))
    out = {}
    for name in FAST:
        out[name] = map_dfg_paged(get_kernel(name).build(), cgra, layout)
    return cgra, layout, out


class TestConstraints:
    def test_ring_consistency_validated(self, paged44):
        _, _, mapped = paged44
        for name, pm in mapped.items():
            pm.page_schedule.validate_ring()

    def test_mapping_validates_with_hop_filter(self, paged44):
        cgra, _, mapped = paged44
        for name, pm in mapped.items():
            hop = ring_hop_filter(pm.layout)
            validate_mapping(
                pm.mapping,
                allowed_pes=list(pm.layout.page_of),
                hop_allowed=hop,
                bus_key=paged_bus_key(pm.layout),
            )

    def test_all_deps_forward_in_ring(self, paged44):
        _, _, mapped = paged44
        for name, pm in mapped.items():
            for (src, dst, kind) in pm.page_schedule.deps:
                if kind == "ring":
                    assert dst[0] == pm.layout.ring_succ(src[0])
                else:
                    assert dst[0] == src[0]

    def test_register_usage_constraint(self, paged44):
        """Every transfer is an explicit per-cycle slot (depth-1 reads)."""
        _, _, mapped = paged44
        from repro.sim.lowering import ResolvedRead

        for name, pm in mapped.items():
            spec = get_kernel(name)
            _, arrays, _ = spec.fresh(seed=0, trip=5)
            mem = bind_memory(arrays)
            for f in lower_mapping(pm.mapping, mem, 5):
                for src in f.operands:
                    if isinstance(src, ResolvedRead):
                        assert f.cycle - src.cycle == 1, name

    def test_register_usage_report_counts(self, paged44):
        _, _, mapped = paged44
        rep = register_usage_report(mapped["sor"].mapping)
        assert rep["self_holds"] >= 0 and rep["move_hops"] >= 0

    def test_assert_register_constraint_on_config(self):
        from repro.arch.config import ConfigTable, ReadNeighbor, SlotConfig
        from repro.arch.interconnect import Coord
        from repro.arch.isa import Opcode

        table = ConfigTable(ii=2)
        table.place(
            Coord(0, 0),
            SlotConfig(
                "bad",
                Opcode.ROUTE,
                operands=(ReadNeighbor(Coord(0, 1), delta=3),),
                start=1,
            ),
        )
        with pytest.raises(ConstraintViolation):
            assert_register_constraint(table)


class TestPageNeed:
    def test_recurrence_kernels_need_one_page(self, paged44):
        """§IV: recurrence-bound kernels cannot use a big array; the
        compiler packs them into a single page at unchanged II."""
        _, _, mapped = paged44
        for name in ("sor", "compress", "gsr"):
            assert mapped[name].pages_used == 1, name

    def test_pages_used_le_total(self, paged44):
        _, layout, mapped = paged44
        for name, pm in mapped.items():
            assert 1 <= pm.pages_used <= layout.num_pages

    def test_activity_shape(self, paged44):
        _, _, mapped = paged44
        for name, pm in mapped.items():
            act = pm.activity()
            assert len(act) == pm.pages_used
            assert all(len(row) == pm.ii for row in act)
            assert any(any(row) for row in act)

    def test_minimize_pages_off_uses_full_layout(self):
        cgra = CGRA(4, 4)
        layout = PageLayout(cgra, (2, 2))
        pm = map_dfg_paged(
            get_kernel("sor").build(), cgra, layout, minimize_pages=False
        )
        assert pm.layout.num_pages == 4


class TestFunctional:
    @pytest.mark.parametrize("name", FAST)
    def test_paged_mapping_computes_correctly(self, paged44, name):
        cgra, _, mapped = paged44
        pm = mapped[name]
        spec = get_kernel(name)
        _, arrays, expected = spec.fresh(seed=9, trip=18)
        mem = bind_memory(arrays)
        simulate(
            lower_mapping(pm.mapping, mem, 18),
            cgra,
            mem,
            bus_key=paged_bus_key(pm.layout),
        )
        snap = mem.snapshot()
        for arr in expected:
            assert np.array_equal(snap[arr], expected[arr]), arr


class TestLayoutMismatch:
    def test_wrong_cgra_rejected(self):
        cgra_a = CGRA(4, 4)
        cgra_b = CGRA(4, 4)
        layout = PageLayout(cgra_a, (2, 2))
        with pytest.raises(MappingError):
            map_dfg_paged(get_kernel("sor").build(), cgra_b, layout)
