"""Unit tests for the PE operation set and its 32-bit semantics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.isa import OPCODE_INFO, Opcode, evaluate, is_memory_op, wrap32
from repro.util.errors import SimulationError

i32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestWrap32:
    def test_identity_in_range(self):
        assert wrap32(123) == 123
        assert wrap32(-123) == -123

    def test_wraps_positive_overflow(self):
        assert wrap32(2**31) == -(2**31)
        assert wrap32(2**32) == 0

    def test_wraps_negative_overflow(self):
        assert wrap32(-(2**31) - 1) == 2**31 - 1

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_always_in_range(self, v):
        w = wrap32(v)
        assert -(2**31) <= w < 2**31

    @given(i32)
    def test_fixed_point_on_i32(self, v):
        assert wrap32(v) == v


class TestEvaluate:
    @pytest.mark.parametrize(
        "op,a,b,expect",
        [
            (Opcode.ADD, 3, 4, 7),
            (Opcode.SUB, 3, 4, -1),
            (Opcode.MUL, -3, 4, -12),
            (Opcode.DIV, 7, 2, 3),
            (Opcode.DIV, -7, 2, -3),  # truncating, not floor
            (Opcode.DIV, 7, 0, 0),
            (Opcode.MOD, 7, 3, 1),
            (Opcode.MOD, -7, 3, -1),
            (Opcode.MOD, 7, 0, 0),
            (Opcode.SHL, 1, 4, 16),
            (Opcode.SHR, -8, 1, -4),  # arithmetic shift
            (Opcode.AND, 0b1100, 0b1010, 0b1000),
            (Opcode.OR, 0b1100, 0b1010, 0b1110),
            (Opcode.XOR, 0b1100, 0b1010, 0b0110),
            (Opcode.MIN, 3, -4, -4),
            (Opcode.MAX, 3, -4, 3),
            (Opcode.LT, 1, 2, 1),
            (Opcode.LE, 2, 2, 1),
            (Opcode.EQ, 2, 3, 0),
            (Opcode.NE, 2, 3, 1),
        ],
    )
    def test_binary_ops(self, op, a, b, expect):
        assert evaluate(op, [a, b]) == expect

    def test_unary_ops(self):
        assert evaluate(Opcode.NEG, [5]) == -5
        assert evaluate(Opcode.NOT, [0]) == -1
        assert evaluate(Opcode.ABS, [-9]) == 9
        assert evaluate(Opcode.ROUTE, [42]) == 42

    def test_select(self):
        assert evaluate(Opcode.SELECT, [1, 10, 20]) == 10
        assert evaluate(Opcode.SELECT, [0, 10, 20]) == 20

    def test_const_needs_immediate(self):
        assert evaluate(Opcode.CONST, [], immediate=7) == 7
        with pytest.raises(SimulationError):
            evaluate(Opcode.CONST, [])

    def test_memory_ops_rejected(self):
        with pytest.raises(SimulationError):
            evaluate(Opcode.LOAD, [])
        with pytest.raises(SimulationError):
            evaluate(Opcode.STORE, [1])

    def test_arity_checked(self):
        with pytest.raises(SimulationError):
            evaluate(Opcode.ADD, [1])

    def test_shift_amount_masked(self):
        assert evaluate(Opcode.SHL, [1, 33]) == 2  # 33 & 31 == 1

    @given(i32, i32)
    def test_add_wraps(self, a, b):
        assert evaluate(Opcode.ADD, [a, b]) == wrap32(a + b)

    @given(i32, i32)
    def test_mul_wraps(self, a, b):
        assert evaluate(Opcode.MUL, [a, b]) == wrap32(a * b)

    @given(i32, i32)
    def test_commutative_ops_commute(self, a, b):
        for op in Opcode:
            info = OPCODE_INFO[op]
            if info.commutative and info.arity == 2:
                assert evaluate(op, [a, b]) == evaluate(op, [b, a])


class TestOpInfo:
    def test_memory_classification(self):
        assert is_memory_op(Opcode.LOAD)
        assert is_memory_op(Opcode.STORE)
        assert not is_memory_op(Opcode.ADD)

    def test_store_passes_value_through(self):
        # STORE's "result" is the stored value, so ordering edges (the
        # spill pattern's store -> loadt token) can hang off it
        assert OPCODE_INFO[Opcode.STORE].produces_value
        assert OPCODE_INFO[Opcode.LOAD].produces_value
        assert OPCODE_INFO[Opcode.LOADT].is_memory

    def test_every_opcode_has_info(self):
        for op in Opcode:
            assert op in OPCODE_INFO
