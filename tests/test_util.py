"""Unit tests for repro.util: RNG determinism, table formatting, errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.errors import ReproError, SimulationError
from repro.util.rng import choice_weighted, derive_seed, make_rng, spawn_rngs
from repro.util.tables import format_grid, format_percent, format_table


class TestRng:
    def test_make_rng_deterministic(self):
        a = make_rng(42).integers(0, 1 << 30, 10)
        b = make_rng(42).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_make_rng_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1 << 30, 10)
        b = make_rng(2).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_make_rng_passthrough(self):
        g = make_rng(7)
        assert make_rng(g) is g

    def test_derive_seed_stable(self):
        assert derive_seed(5, "fig8", 3) == derive_seed(5, "fig8", 3)

    def test_derive_seed_streams_independent(self):
        assert derive_seed(5, "a") != derive_seed(5, "b")
        assert derive_seed(5, 1) != derive_seed(5, 2)

    def test_spawn_rngs_count_and_independence(self):
        rngs = spawn_rngs(9, 4)
        assert len(rngs) == 4
        draws = [r.integers(0, 1 << 30) for r in rngs]
        assert len(set(int(d) for d in draws)) > 1

    def test_spawn_rngs_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_choice_weighted_validates(self):
        rng = make_rng(0)
        with pytest.raises(ValueError):
            choice_weighted(rng, ["a", "b"], [1.0])
        with pytest.raises(ValueError):
            choice_weighted(rng, ["a"], [-1.0])
        with pytest.raises(ValueError):
            choice_weighted(rng, ["a"], [0.0])

    def test_choice_weighted_degenerate(self):
        rng = make_rng(0)
        picks = {choice_weighted(rng, ["x", "y"], [0.0, 3.0]) for _ in range(20)}
        assert picks == {"y"}


class TestTables:
    def test_format_percent(self):
        assert format_percent(1.0) == "100.0%"
        assert format_percent(0.375, digits=2) == "37.50%"

    def test_format_table_basic(self):
        s = format_table(["name", "ii"], [["mpeg", 3], ["sor", 4]])
        lines = s.splitlines()
        assert "name" in lines[0] and "ii" in lines[0]
        assert "mpeg" in lines[2]
        assert len(lines) == 4

    def test_format_table_arity_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_table_title(self):
        s = format_table(["a"], [[1]], title="T")
        assert s.splitlines()[0] == "T"

    def test_format_grid(self):
        g = {(1, "x"): 10, (2, "x"): 20, (1, "y"): 30}
        s = format_grid(g, row_label="threads")
        assert "threads" in s
        assert "-" in s  # missing (2, "y") cell


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SimulationError, ReproError)
        with pytest.raises(ReproError):
            raise SimulationError("boom")
