"""Tests for page-level schedule extraction and fold mirroring."""

from __future__ import annotations

import pytest

from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.compiler.paged import map_dfg_paged
from repro.core.mirroring import boundary_axis, fold_orientations
from repro.core.page_schedule import PageSchedule, extract_page_schedule
from repro.core.paging import Orientation, PageLayout
from repro.kernels import get_kernel
from repro.util.errors import ConstraintViolation, TransformError


@pytest.fixture(scope="module")
def swim_paged():
    cgra = CGRA(4, 4, rf_depth=20)
    layout = PageLayout(cgra, (2, 2))
    return map_dfg_paged(
        get_kernel("swim").build(), cgra, layout, minimize_pages=False
    )


class TestExtraction:
    def test_every_item_accounted(self, swim_paged):
        sched = swim_paged.page_schedule
        n_items = sum(len(inst) for inst in sched.instances.values())
        n_routes = sum(
            len(r.steps) for r in swim_paged.mapping.routes.values()
        )
        assert n_items == len(swim_paged.mapping.placements) + n_routes

    def test_items_carry_local_coords(self, swim_paged):
        sched = swim_paged.page_schedule
        h, w = sched.layout.shape
        for inst in sched.instances.values():
            for item in inst.items:
                assert 0 <= item.local.row < h and 0 <= item.local.col < w

    def test_occupancy_in_unit_range(self, swim_paged):
        assert 0.0 < swim_paged.page_schedule.occupancy() <= 1.0

    def test_instance_lookup_modulo(self, swim_paged):
        sched = swim_paged.page_schedule
        assert sched.instance(0, 0).items == sched.instance(0, sched.ii).items

    def test_empty_instance_returned_for_gaps(self, swim_paged):
        sched = swim_paged.page_schedule
        # instance() never KeyErrors; gaps come back empty
        for n in range(sched.num_pages):
            for t in range(sched.ii):
                inst = sched.instance(n, t)
                assert inst.page == n

    def test_validate_ring_rejects_backward_dep(self, swim_paged):
        sched = swim_paged.page_schedule
        bad = PageSchedule(
            sched.layout,
            sched.ii,
            dict(sched.instances),
            {((1, 0), (0, 1), "ring")},
        )
        with pytest.raises(ConstraintViolation):
            bad.validate_ring()

    def test_validate_ring_rejects_page_changing_self_dep(self, swim_paged):
        sched = swim_paged.page_schedule
        bad = PageSchedule(
            sched.layout, sched.ii, dict(sched.instances), {((0, 0), (1, 1), "self")}
        )
        with pytest.raises(ConstraintViolation):
            bad.validate_ring()

    def test_summary_text(self, swim_paged):
        s = swim_paged.page_schedule.summary()
        assert "pages" in s and "deps" in s


class TestMirroring:
    def test_boundary_axis_quadrants(self):
        cgra = CGRA(4, 4)
        layout = PageLayout(cgra, (2, 2))
        # snake over 2x2 tiles: 0->1 horizontal neighbours, 1->2 vertical
        assert boundary_axis(layout, 0, 1) == "horizontal"
        assert boundary_axis(layout, 1, 2) == "vertical"
        assert boundary_axis(layout, 2, 3) == "horizontal"

    def test_boundary_axis_rejects_non_adjacent(self):
        cgra = CGRA(4, 4)
        layout = PageLayout(cgra, (2, 2))
        with pytest.raises(TransformError):
            boundary_axis(layout, 0, 2)

    def test_fold_orientations_compose(self):
        cgra = CGRA(4, 4)
        layout = PageLayout(cgra, (2, 2))
        o = fold_orientations(layout)
        assert o[0] == Orientation.IDENTITY
        assert o[1] == Orientation.MIRROR_V  # horizontal boundary
        assert o[2] == Orientation.MIRROR_V.compose(Orientation.MIRROR_H)
        assert len(o) == 4

    def test_fold_aligns_boundary_pes(self):
        """The Fig. 6 property: a producer on one side of a page boundary
        and its consumer on the other side land on the SAME physical PE
        when both pages fold onto one tile."""
        cgra = CGRA(4, 4)
        layout = PageLayout(cgra, (4, 1))  # column pages, vertical chain? no: 4x1 tiles side by side
        o = fold_orientations(layout)
        for n in range(1, layout.num_pages):
            # pick any boundary-crossing pair: pe in page n-1 adjacent to
            # pe' in page n
            for pe in layout.coords_of_page(n - 1):
                for nb in cgra.neighbors(pe):
                    if layout.page_of.get(nb) == n:
                        a = layout.place_local(0, layout.local_of[pe], o[n - 1])
                        b = layout.place_local(0, layout.local_of[nb], o[n])
                        assert a == b

    def test_fold_aligns_for_quadrants_too(self):
        cgra = CGRA(4, 4)
        layout = PageLayout(cgra, (2, 2))
        o = fold_orientations(layout)
        for n in range(1, layout.num_pages):
            for pe in layout.coords_of_page(n - 1):
                for nb in cgra.neighbors(pe):
                    if layout.page_of.get(nb) == n:
                        a = layout.place_local(0, layout.local_of[pe], o[n - 1])
                        b = layout.place_local(0, layout.local_of[nb], o[n])
                        assert a == b
