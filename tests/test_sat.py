"""Unit tests for the in-house CDCL solver behind the exact backend.

The solver is the trust root of the exact backend's rung pruning: an
UNSAT verdict deletes greedy attempts outright, so a completeness bug
here would silently change artifacts.  The tests therefore cross-check
verdicts against brute-force enumeration on random instances, pin the
assumption/core/budget API, and verify the determinism the portfolio
engine's byte-identical reduction depends on.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.compiler.sat import (
    Solver,
    add_at_most_k,
    add_at_most_one,
    add_exactly_one,
    luby,
)


def brute_force(num_vars: int, clauses) -> bool:
    """Ground-truth SAT by enumeration (num_vars <= ~12)."""
    for bits in itertools.product((False, True), repeat=num_vars):
        if all(
            any(bits[abs(lit) - 1] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def build(num_vars: int, clauses) -> Solver:
    s = Solver()
    s.new_vars(num_vars)
    for clause in clauses:
        s.add_clause(clause)
    return s


def model_satisfies(s: Solver, clauses) -> bool:
    return all(
        any(s.value(abs(lit)) == (lit > 0) for lit in clause)
        for clause in clauses
    )


# ------------------------------------------------------------------ basics


def test_luby_sequence_prefix():
    assert [luby(i) for i in range(15)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
    ]


def test_empty_instance_is_sat():
    assert Solver().solve() is True


def test_empty_clause_is_unsat():
    s = Solver()
    s.new_var()
    s.add_clause([])
    assert s.solve() is False


def test_tautology_is_dropped():
    s = Solver()
    v = s.new_var()
    s.add_clause([v, -v])
    assert s.solve() is True


def test_contradictory_units_are_unsat():
    s = Solver()
    v = s.new_var()
    s.add_clause([v])
    s.add_clause([-v])
    assert s.solve() is False


def test_unknown_literal_raises():
    s = Solver()
    s.new_var()
    with pytest.raises(ValueError):
        s.add_clause([2])
    with pytest.raises(ValueError):
        s.solve([2])


def test_unit_propagation_chain():
    """x1 and a chain x_i -> x_{i+1} must force every variable true."""
    n = 30
    s = Solver()
    xs = s.new_vars(n)
    s.add_clause([xs[0]])
    for a, b in zip(xs, xs[1:]):
        s.add_clause([-a, b])
    assert s.solve() is True
    assert all(s.value(x) for x in xs)


# --------------------------------------------------- random cross-validation


def random_instance(rng: random.Random):
    num_vars = rng.randint(4, 8)
    num_clauses = rng.randint(num_vars, 4 * num_vars)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        vs = rng.sample(range(1, num_vars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v for v in vs])
    return num_vars, clauses


def test_random_instances_match_brute_force():
    rng = random.Random(0xC6124)
    sat = unsat = 0
    for _ in range(120):
        num_vars, clauses = random_instance(rng)
        s = build(num_vars, clauses)
        verdict = s.solve()
        assert verdict is brute_force(num_vars, clauses)
        if verdict:
            sat += 1
            assert model_satisfies(s, clauses)
        else:
            unsat += 1
    # the mix must actually exercise both answers
    assert sat > 10 and unsat > 10


def test_solver_is_deterministic():
    """Same clauses, fresh solver: same model and same search statistics —
    the property the byte-identical portfolio reduction leans on."""
    rng = random.Random(7)
    for _ in range(20):
        num_vars, clauses = random_instance(rng)
        a, b = build(num_vars, clauses), build(num_vars, clauses)
        ra, rb = a.solve(), b.solve()
        assert ra is rb
        assert a.conflicts == b.conflicts
        assert a.propagations == b.propagations
        if ra:
            assert [a.value(v) for v in range(1, num_vars + 1)] == [
                b.value(v) for v in range(1, num_vars + 1)
            ]


# ------------------------------------------------------------- assumptions


def test_assumptions_flip_models():
    s = Solver()
    x, y = s.new_vars(2)
    s.add_clause([x, y])
    assert s.solve([-x]) is True
    assert not s.value(x) and s.value(y)
    assert s.solve([-y]) is True
    assert s.value(x) and not s.value(y)


def test_assumptions_do_not_pollute_later_solves():
    s = Solver()
    x, y = s.new_vars(2)
    s.add_clause([x, y])
    assert s.solve([-x, -y]) is False
    assert s.solve() is True


def test_unsat_core_is_a_failing_subset():
    s = Solver()
    a, b, c = s.new_vars(3)
    s.add_clause([-a, -b])
    assert s.solve([a, b, c]) is False
    core = s.unsat_core()
    assert core and core <= {a, b, c}
    assert c not in core  # c is irrelevant to the conflict
    # the core itself must be a failing assumption set
    assert s.solve(sorted(core)) is False


# ------------------------------------------------------------------- budget


def pigeonhole(pigeons: int, holes: int) -> Solver:
    s = Solver()
    var = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        s.add_clause(var[p])
    for h in range(holes):
        add_at_most_one(s, [var[p][h] for p in range(pigeons)])
    return s


def test_pigeonhole_unsat():
    assert pigeonhole(5, 4).solve() is False


def test_conflict_budget_returns_none_and_state_stays_usable():
    s = pigeonhole(7, 6)
    assert s.solve(conflict_budget=3) is None
    # the same solver can resume and finish the proof
    assert s.solve() is False


# ------------------------------------------------------------- cardinality


@pytest.mark.parametrize("k", [1, 2, 3])
def test_at_most_k_exact_semantics(k):
    """sum(lits) <= k must hold for *exactly* the assignments with at most
    k bits set — checked over every full assignment via assumptions."""
    n = 6
    s = Solver()
    xs = s.new_vars(n)
    add_at_most_k(s, xs, k)
    for bits in itertools.product((False, True), repeat=n):
        assume = [x if b else -x for x, b in zip(xs, bits)]
        assert s.solve(assume) is (sum(bits) <= k), (k, bits)


def test_at_most_one_small_and_sequential_paths():
    # n=3 takes the pairwise path, n=8 the sequential-counter path
    for n in (3, 8):
        s = Solver()
        xs = s.new_vars(n)
        add_at_most_one(s, xs)
        for bits in itertools.product((False, True), repeat=n):
            assume = [x if b else -x for x, b in zip(xs, bits)]
            assert s.solve(assume) is (sum(bits) <= 1), (n, bits)


def test_exactly_one():
    n = 5
    s = Solver()
    xs = s.new_vars(n)
    add_exactly_one(s, xs)
    for bits in itertools.product((False, True), repeat=n):
        assume = [x if b else -x for x, b in zip(xs, bits)]
        assert s.solve(assume) is (sum(bits) == 1), bits


def test_at_most_k_degenerate_bounds():
    s = Solver()
    xs = s.new_vars(4)
    add_at_most_k(s, xs, 4)  # vacuous
    assert s.solve(xs) is True
    s2 = Solver()
    ys = s2.new_vars(3)
    add_at_most_k(s2, ys, 0)  # forces all false
    assert s2.solve() is True
    assert not any(s2.value(y) for y in ys)
    assert s2.solve([ys[1]]) is False
