"""Tests for the cycle-quantum simulation oracle (:mod:`repro.sim.oracle`),
the invariant checker, the workload fuzzer, and the regression scenarios
for the simulator bugfixes that shipped with the oracle (stall clobbering,
the broken eviction protocol, turnaround accounting, exact wait cycles)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.policies import HalvingPolicy
from repro.sim.fuzz import PriorityEvictionPolicy, make_case, run_fuzz
from repro.sim.oracle import (
    check_invariants,
    compare_results,
    fraction_gcd,
    quantum_for,
    run_oracle,
    verify_system,
)
from repro.sim.system import (
    KernelProfile,
    SystemConfig,
    SystemResult,
    improvement,
    simulate_system,
)
from repro.sim.trace import DecisionTrace, SystemTimeline
from repro.sim.workload import Segment, ThreadSpec
from repro.util.errors import OracleViolation, SimulationError

PROFILES = {
    "fast": KernelProfile("fast", ii_base=1, ii_paged=1, pages_used=1),
    "slow": KernelProfile("slow", ii_base=4, ii_paged=4, pages_used=1),
    "wide": KernelProfile("wide", ii_base=1, ii_paged=2, pages_used=4),
    # ii_base < ii_paged and pages_used == the pool: reshapes of this
    # kernel always cross a rate change, the stall-clobber territory
    "quad": KernelProfile("quad", ii_base=2, ii_paged=4, pages_used=4),
}


def config(n_pages=4, **kw):
    return SystemConfig(n_pages=n_pages, profiles=PROFILES, **kw)


def thread(tid, *segs, arrival=0):
    return ThreadSpec(tid, tuple(segs), arrival)


def verified(workload, cfg, mode):
    """Simulate + oracle-replay + invariant-check; fail the test on any
    divergence."""
    return verify_system(workload, cfg, mode)


class TestQuantum:
    def test_fraction_gcd(self):
        assert fraction_gcd(Fraction(1), Fraction(1, 2)) == Fraction(1, 2)
        assert fraction_gcd(Fraction(8, 3), Fraction(2)) == Fraction(2, 3)
        assert fraction_gcd(Fraction(4), Fraction(6)) == Fraction(2)
        assert fraction_gcd(Fraction(3, 4), Fraction(5, 6)) == Fraction(1, 12)

    def test_quantum_divides_all_rates(self):
        wl = [thread(0, Segment("cgra", kernel="wide", trip=1))]
        cfg = config(reconfig_overhead=3)
        q = quantum_for(wl, cfg, "multithreaded")
        prof = PROFILES["wide"]
        for value in (
            Fraction(1),
            Fraction(3),
            Fraction(prof.ii_paged),
            prof.steady_state_ii_of(1),
            prof.steady_state_ii_of(2),
            prof.steady_state_ii_of(3),
        ):
            assert (value / q).denominator == 1

    def test_single_mode_uses_base_ii(self):
        wl = [thread(0, Segment("cgra", kernel="slow", trip=1))]
        assert quantum_for(wl, config(), "single") == Fraction(1)


class TestOracleParity:
    """The oracle re-derives the event simulator's results exactly on the
    deterministic scenarios whose answers are known in closed form."""

    def test_single_mode_fifo(self):
        wl = [
            thread(0, Segment("cgra", kernel="slow", trip=10)),
            thread(1, Segment("cgra", kernel="slow", trip=10)),
        ]
        result, oracle = verified(wl, config(), "single")
        assert result.makespan == 80
        assert oracle.wait_cycles == 40

    def test_concurrent_small_kernels(self):
        wl = [
            thread(0, Segment("cgra", kernel="slow", trip=10)),
            thread(1, Segment("cgra", kernel="slow", trip=10)),
        ]
        result, oracle = verified(wl, config(), "multithreaded")
        assert result.makespan == 40
        assert oracle.makespan == 40

    def test_expansion_after_departure(self):
        wl = [
            thread(0, Segment("cgra", kernel="wide", trip=8)),
            thread(1, Segment("cgra", kernel="wide", trip=4)),
        ]
        result, oracle = verified(wl, config(), "multithreaded")
        assert result.makespan == 24
        assert oracle.reallocations == result.reallocations == 1

    def test_queueing_wave(self):
        wl = [
            thread(t, Segment("cgra", kernel="slow", trip=5)) for t in range(6)
        ]
        result, oracle = verified(wl, config(), "multithreaded")
        assert result.makespan == 40
        assert float(oracle.wait_cycles) == result.wait_cycles > 0

    def test_staggered_arrivals_with_overhead_and_boundary(self):
        wl = [
            thread(0, Segment("cgra", kernel="wide", trip=9)),
            thread(1, Segment("cgra", kernel="wide", trip=8), arrival=1),
            thread(2, Segment("cpu", cycles=3),
                   Segment("cgra", kernel="slow", trip=4), arrival=2),
        ]
        cfg = config(reconfig_overhead=2, switch_at_iteration_boundary=True)
        result, oracle = verified(wl, cfg, "multithreaded")
        assert len(result.finish_times) == 3

    def test_mixed_cpu_cgra_phases(self):
        wl = [
            thread(
                t,
                Segment("cpu", cycles=7),
                Segment("cgra", kernel="fast", trip=11),
                Segment("cpu", cycles=5),
                Segment("cgra", kernel="wide", trip=3),
            )
            for t in range(3)
        ]
        verified(wl, config(n_pages=5), "multithreaded")
        verified(wl, config(n_pages=5), "single")


class TestOracleCatchesLies:
    """The oracle is only useful if a *wrong* trace fails: tampering with
    the recorded decisions must raise, proving the timing arithmetic is
    re-derived rather than echoed."""

    def _trace(self, wl, cfg, mode):
        decisions = DecisionTrace()
        simulate_system(wl, cfg, mode, decisions=decisions)
        return decisions

    def test_dropped_release_detected(self):
        wl = [
            thread(0, Segment("cgra", kernel="slow", trip=10)),
            thread(1, Segment("cgra", kernel="slow", trip=10)),
        ]
        cfg = config()
        decisions = self._trace(wl, cfg, "multithreaded")
        tampered = decisions.decisions[:-1]
        with pytest.raises(OracleViolation):
            run_oracle(wl, cfg, "multithreaded", tampered)

    def test_shifted_release_time_detected(self):
        wl = [thread(0, Segment("cgra", kernel="slow", trip=10))]
        cfg = config()
        decisions = self._trace(wl, cfg, "multithreaded")
        release = decisions.decisions[-1]
        shifted = decisions.decisions[:-1] + [
            type(release)(
                release.time - 1,
                release.kind,
                release.tid,
                release.reallocations,
                release.residents,
            )
        ]
        with pytest.raises(OracleViolation):
            run_oracle(wl, cfg, "multithreaded", shifted)

    def test_wrong_result_flagged_by_compare(self):
        wl = [thread(0, Segment("cgra", kernel="slow", trip=10))]
        cfg = config()
        timeline = SystemTimeline()
        decisions = DecisionTrace()
        result = simulate_system(
            wl, cfg, "multithreaded", timeline=timeline, decisions=decisions
        )
        oracle = run_oracle(wl, cfg, "multithreaded", decisions)
        assert compare_results(oracle, result) == []
        result.makespan += 1.0
        assert compare_results(oracle, result)


class TestInvariantChecker:
    def _base_result(self, **kw):
        defaults = dict(
            mode="multithreaded",
            makespan=10.0,
            finish_times={0: 10.0},
            cgra_busy_page_cycles=10.0,
            n_pages=2,
            kernel_invocations=1,
            wait_cycles=0.0,
            arrivals={0: 0.0},
        )
        defaults.update(kw)
        return SystemResult(**defaults)

    def test_clean_run_passes(self):
        wl = [
            thread(t, Segment("cgra", kernel="slow", trip=5)) for t in range(6)
        ]
        timeline = SystemTimeline()
        result = simulate_system(
            wl, config(), "multithreaded", timeline=timeline
        )
        assert check_invariants(result, timeline, workload=wl) == []

    def test_busy_pages_over_capacity(self):
        r = self._base_result(cgra_busy_page_cycles=21.0)  # cap = 2*10
        problems = check_invariants(r, SystemTimeline())
        assert any("capacity" in p for p in problems)

    def test_makespan_not_max_finish(self):
        r = self._base_result(makespan=9.0, cgra_busy_page_cycles=9.0)
        problems = check_invariants(r, SystemTimeline())
        assert any("max finish" in p for p in problems)

    def test_finish_before_arrival(self):
        r = self._base_result(arrivals={0: 11.0})
        problems = check_invariants(r, SystemTimeline())
        assert any("before its arrival" in p for p in problems)

    def test_overlapping_allocations_flagged(self):
        timeline = SystemTimeline()
        timeline.record(0, "kernel_start", 0, alloc=(0, 2))
        timeline.record(1, "kernel_start", 1, alloc=(1, 1))  # overlaps
        r = self._base_result(finish_times={0: 10.0, 1: 10.0})
        problems = check_invariants(r, timeline)
        assert any("overlapping" in p for p in problems)

    def test_atomic_rebalance_not_flagged(self):
        # two reallocs at one instant swap segments: transiently
        # overlapping mid-batch, valid once the batch is applied
        timeline = SystemTimeline()
        timeline.record(0, "kernel_start", 0, alloc=(0, 1))
        timeline.record(0, "kernel_start", 1, alloc=(1, 1))
        timeline.record(5, "realloc", 0, alloc=(1, 1))
        timeline.record(5, "realloc", 1, alloc=(0, 1))
        r = self._base_result(
            finish_times={0: 10.0, 1: 10.0}, wait_cycles=0.0
        )
        assert check_invariants(r, timeline) == []

    def test_completion_while_queued_flagged(self):
        timeline = SystemTimeline()
        timeline.record(0, "kernel_start", 0, alloc=(0, 2))
        timeline.record(2, "queued", 0)
        timeline.record(5, "kernel_done", 0)
        r = self._base_result(wait_cycles=0.0)
        problems = check_invariants(r, timeline)
        assert any("while queued" in p for p in problems)

    def test_wait_identity_violation_flagged(self):
        timeline = SystemTimeline()
        timeline.record(0, "queued", 0)
        timeline.record(4, "kernel_start", 0, alloc=(0, 1))
        timeline.record(10, "kernel_done", 0)
        r = self._base_result(wait_cycles=0.0)  # timeline says 4
        problems = check_invariants(r, timeline)
        assert any("wait_cycles" in p for p in problems)

    def test_reshape_of_queued_thread_flagged(self):
        timeline = SystemTimeline()
        timeline.record(0, "queued", 0)
        timeline.record(1, "realloc", 0, alloc=(0, 1))
        r = self._base_result(wait_cycles=0.0)
        problems = check_invariants(r, timeline)
        assert any("reshaped" in p for p in problems)

    def test_missing_invocations_flagged(self):
        wl = [thread(0, Segment("cgra", kernel="slow", trip=1))]
        r = self._base_result(kernel_invocations=0)
        problems = check_invariants(r, SystemTimeline(), workload=wl)
        assert any("invocations" in p for p in problems)


class TestStallClobberRegression:
    """Regression for the reconfiguration stall overwriting the
    iteration-boundary drain (system.py): with both knobs on, the overhead
    must extend the drain stall (``max``), not replace it — the old
    assignment let thread 0 finish at 26, double-running the already-billed
    drain window."""

    def _scenario(self):
        wl = [
            thread(0, Segment("cgra", kernel="quad", trip=4)),
            thread(1, Segment("cgra", kernel="quad", trip=4), arrival=1),
        ]
        cfg = config(
            n_pages=4, reconfig_overhead=1, switch_at_iteration_boundary=True
        )
        return wl, cfg

    def test_exact_finish_times(self):
        wl, cfg = self._scenario()
        result = simulate_system(wl, cfg, "multithreaded")
        # t0 runs at II 4 from t=0; at t=1 it is reshaped to 2 pages with
        # 3/4 of an iteration in flight: drain ends at t=4, the 1-cycle
        # overhead is covered by the drain (max, not overwrite), and the
        # remaining 3 iterations at II 8 finish at 4 + 24 = 28.
        assert result.finish_times[0] == 28
        assert result.finish_times[1] == 33
        assert result.makespan == 33
        assert result.reallocations == 1

    def test_oracle_agrees(self):
        wl, cfg = self._scenario()
        result, oracle = verified(wl, cfg, "multithreaded")
        assert oracle.finish_times[0] == Fraction(28)

    def test_no_busy_billing_past_capacity(self):
        wl, cfg = self._scenario()
        timeline = SystemTimeline()
        result = simulate_system(wl, cfg, "multithreaded", timeline=timeline)
        assert result.cgra_busy_page_cycles <= cfg.n_pages * result.makespan
        assert check_invariants(result, timeline, workload=wl) == []


class _PreemptPolicy(HalvingPolicy):
    """Scripted: thread 1's arrival always confiscates thread 0's pages."""

    def admit(self, n_pages, residents, tid, needs=None):
        if tid == 1 and 0 in residents:
            return {1: residents[0]}
        return super().admit(n_pages, residents, tid, needs)


class TestEvictionRegression:
    """Regression for the eviction protocol: a policy dropping a resident
    emits ``Reallocation(tid, alloc, None)``, and the simulator must bump
    the thread's event version (else the stale completion fires while it
    holds zero pages), start its wait clock, record the queue entry, and
    resume it on re-admission."""

    def _scenario(self):
        wl = [
            thread(0, Segment("cgra", kernel="slow", trip=5)),
            thread(1, Segment("cgra", kernel="slow", trip=4), arrival=8),
        ]
        cfg = SystemConfig(
            n_pages=2,
            profiles=PROFILES,
            policy=_PreemptPolicy(),
        )
        return wl, cfg

    def test_evicted_thread_resumes_and_waits(self):
        wl, cfg = self._scenario()
        timeline = SystemTimeline()
        result = simulate_system(wl, cfg, "multithreaded", timeline=timeline)
        # t0: 2 of 5 iterations by t=8, evicted; t1 runs 8..24; t0 resumes
        # with 3 left, finishing at 36 after 16 cycles queued
        assert result.finish_times == {1: 24.0, 0: 36.0}
        assert result.wait_cycles == 16
        queued = [e for e in timeline.of_thread(0) if e.kind == "queued"]
        assert [e.time for e in queued] == [8.0]
        starts = [e for e in timeline.of_thread(0) if e.kind == "kernel_start"]
        assert [e.time for e in starts] == [0.0, 24.0]

    def test_no_completion_while_evicted(self):
        wl, cfg = self._scenario()
        timeline = SystemTimeline()
        result = simulate_system(wl, cfg, "multithreaded", timeline=timeline)
        assert check_invariants(result, timeline, workload=wl) == []

    def test_oracle_agrees(self):
        wl, cfg = self._scenario()
        result, oracle = verified(wl, cfg, "multithreaded")
        assert oracle.wait_cycles == Fraction(16)

    def test_fuzz_eviction_policy_verifies(self):
        wl = [
            thread(0, Segment("cgra", kernel="slow", trip=3),
                   Segment("cpu", cycles=2),
                   Segment("cgra", kernel="slow", trip=3)),
            thread(1, Segment("cgra", kernel="slow", trip=9), arrival=1),
            thread(2, Segment("cgra", kernel="slow", trip=9), arrival=2),
        ]
        cfg = SystemConfig(
            n_pages=2, profiles=PROFILES, policy=PriorityEvictionPolicy()
        )
        result, oracle = verified(wl, cfg, "multithreaded")
        assert len(result.finish_times) == 3

    def test_same_batch_admit_then_reshape_bills_admission_rate(self):
        # regression: a release can admit an evicted thread and reshape it
        # again within the same decision batch (eviction hand-off followed
        # by the queue drain).  The activation used to read the manager's
        # *final* allocation — billing the in-flight iteration's boundary
        # drain at a rate the thread never ran at (off by 1.5 page-cycles
        # in this scenario)
        wl = [
            thread(0, Segment("cpu", cycles=7),
                   Segment("cgra", kernel="fast", trip=46)),
            thread(1, Segment("cpu", cycles=7),
                   Segment("cgra", kernel="fast", trip=49)),
            thread(2, Segment("cpu", cycles=6),
                   Segment("cgra", kernel="wide", trip=42)),
            thread(3, Segment("cpu", cycles=8),
                   Segment("cgra", kernel="fast", trip=54)),
        ]
        cfg = SystemConfig(
            n_pages=8,
            profiles=PROFILES,
            policy=PriorityEvictionPolicy(),
            reconfig_overhead=3,
            switch_at_iteration_boundary=True,
        )
        result, oracle = verified(wl, cfg, "multithreaded")
        assert result.evictions == 2
        assert result.cgra_busy_page_cycles == float(oracle.busy_page_cycles)


class TestTurnaroundAndImprovement:
    def test_turnaround_measured_from_arrival(self):
        wl = [
            thread(0, Segment("cpu", cycles=100)),
            thread(1, Segment("cpu", cycles=100), arrival=500),
        ]
        result = simulate_system(wl, config(), "multithreaded")
        # mean finish would be (100 + 600) / 2 = 350; turnaround is 100
        assert result.avg_turnaround == 100
        assert result.arrivals == {0: 0.0, 1: 500.0}

    def test_improvement_degenerate_pairs(self):
        empty_a = simulate_system([], config(), "single")
        empty_b = simulate_system([], config(), "multithreaded")
        assert improvement(empty_a, empty_b) == 0.0
        real = simulate_system(
            [thread(0, Segment("cpu", cycles=10))], config(), "single"
        )
        with pytest.raises(SimulationError):
            improvement(empty_a, real)
        with pytest.raises(SimulationError):
            improvement(real, empty_b)

    def test_improvement_normal(self):
        a = simulate_system(
            [thread(0, Segment("cgra", kernel="slow", trip=10))],
            config(),
            "single",
        )
        assert improvement(a, a) == 0.0


class TestWaitCyclesExact:
    def test_fractional_wait_bit_equal(self):
        # wide kernels shrunk below their page need run at fractional
        # steady-state IIs, pushing release instants (and thus queue
        # waits) off the integer grid
        wl = [
            thread(0, Segment("cgra", kernel="wide", trip=7)),
            thread(1, Segment("cgra", kernel="wide", trip=5), arrival=1),
            thread(2, Segment("cgra", kernel="wide", trip=5), arrival=2),
            thread(3, Segment("cgra", kernel="slow", trip=3), arrival=3),
            thread(4, Segment("cgra", kernel="slow", trip=3), arrival=4),
        ]
        cfg = config(n_pages=3)
        result, oracle = verified(wl, cfg, "multithreaded")
        assert result.wait_cycles == float(oracle.wait_cycles)
        assert oracle.wait_cycles > 0

    def test_wait_accumulates_exactly_in_single_mode(self):
        wl = [
            thread(t, Segment("cgra", kernel="slow", trip=10))
            for t in range(3)
        ]
        result, oracle = verified(wl, config(), "single")
        assert result.wait_cycles == float(oracle.wait_cycles) == 120.0


class TestFuzzSweep:
    def test_cases_deterministic(self):
        assert make_case(7, 0) == make_case(7, 0)
        assert make_case(7, 0) != make_case(7, 1)

    def test_small_sweep_green(self):
        report = run_fuzz(n_cases=12, seed=0)
        assert report.ok, report.render()
        assert report.cases == 12
        assert report.runs == 24  # both modes per case
        assert set(report.by_policy) == {
            "halving",
            "need-aware",
            "fair-share",
            "static-equal",
            "best-fit",
            "evicting",
        }
        assert report.by_mode == {"single": 12, "multithreaded": 12}
        assert "all green" in report.render()
