"""Tests for the multithreaded system model (§VII-B): workload generation
and the discrete-event simulation of both CGRA modes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import FairSharePolicy
from repro.sim.oracle import check_invariants
from repro.sim.system import (
    KernelProfile,
    SystemConfig,
    improvement,
)
from repro.sim.system import simulate_system as _simulate_system
from repro.sim.trace import SystemTimeline
from repro.sim.workload import Segment, ThreadSpec, generate_workload
from repro.util.errors import SimulationError, WorkloadError

PROFILES = {
    "fast": KernelProfile("fast", ii_base=1, ii_paged=1, pages_used=1),
    "slow": KernelProfile("slow", ii_base=4, ii_paged=4, pages_used=1),
    "wide": KernelProfile("wide", ii_base=1, ii_paged=2, pages_used=4),
}


def simulate_system(workload, cfg, mode):
    """Checked wrapper: every simulation in this module also records a
    timeline and passes it through the oracle's invariant checker, so the
    whole suite doubles as invariant coverage."""
    timeline = SystemTimeline()
    result = _simulate_system(workload, cfg, mode, timeline=timeline)
    problems = check_invariants(result, timeline, workload=workload)
    assert not problems, "; ".join(problems)
    return result


def config(n_pages=4, **kw):
    return SystemConfig(n_pages=n_pages, profiles=PROFILES, **kw)


def thread(tid, *segs):
    return ThreadSpec(tid, tuple(segs))


class TestWorkloadGeneration:
    def test_shape(self):
        wl = generate_workload(4, 0.5, ["fast", "slow"], {"fast": 1, "slow": 4}, seed=1)
        assert len(wl) == 4
        for t in wl:
            kinds = [s.kind for s in t.segments]
            assert kinds == ["cpu", "cgra"] * (len(kinds) // 2)

    def test_need_fraction_approximated(self):
        for need in (0.5, 0.75, 0.875):
            wl = generate_workload(
                6, need, ["fast"], {"fast": 1}, seed=3, mean_total_work=100_000
            )
            for t in wl:
                assert t.cgra_fraction({"fast": 1}) == pytest.approx(need, abs=0.05)

    def test_deterministic(self):
        a = generate_workload(3, 0.5, ["fast"], {"fast": 1}, seed=9)
        b = generate_workload(3, 0.5, ["fast"], {"fast": 1}, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_workload(0, 0.5, ["fast"], {"fast": 1})
        with pytest.raises(WorkloadError):
            generate_workload(1, 1.5, ["fast"], {"fast": 1})
        with pytest.raises(WorkloadError):
            generate_workload(1, 0.5, [], {})
        with pytest.raises(WorkloadError):
            generate_workload(1, 0.5, ["missing"], {"fast": 1})

    def test_segment_validation(self):
        with pytest.raises(WorkloadError):
            Segment("cpu", cycles=0)
        with pytest.raises(WorkloadError):
            Segment("cgra", kernel="", trip=1)
        with pytest.raises(WorkloadError):
            Segment("banana")


class TestSingleMode:
    def test_one_thread_time(self):
        wl = [thread(0, Segment("cpu", cycles=100), Segment("cgra", kernel="slow", trip=10))]
        res = simulate_system(wl, config(), "single")
        assert res.makespan == 100 + 10 * 4

    def test_fifo_serialisation(self):
        wl = [
            thread(0, Segment("cgra", kernel="slow", trip=10)),
            thread(1, Segment("cgra", kernel="slow", trip=10)),
        ]
        res = simulate_system(wl, config(), "single")
        assert res.makespan == 80  # 40 + 40, serialized
        assert res.wait_cycles == 40

    def test_cpu_overlaps_cgra(self):
        wl = [
            thread(0, Segment("cgra", kernel="slow", trip=25)),
            thread(1, Segment("cpu", cycles=100)),
        ]
        res = simulate_system(wl, config(), "single")
        assert res.makespan == 100


class TestMultithreadedMode:
    def test_small_kernels_run_concurrently(self):
        """Two one-page kernels coexist at full speed (§VII-B: scheduled to
        the unused portion, no transformation)."""
        wl = [
            thread(0, Segment("cgra", kernel="slow", trip=10)),
            thread(1, Segment("cgra", kernel="slow", trip=10)),
        ]
        res = simulate_system(wl, config(), "multithreaded")
        assert res.makespan == 40  # fully parallel

    def test_wide_kernel_shrinks_and_slows(self):
        wl = [
            thread(0, Segment("cgra", kernel="wide", trip=8)),
            thread(1, Segment("cgra", kernel="wide", trip=8)),
        ]
        res = simulate_system(wl, config(), "multithreaded")
        # each on 2 of its 4 needed pages: II_eff = 2 * (4/2) = 4
        assert res.makespan == 8 * 4

    def test_expansion_after_departure(self):
        wl = [
            thread(0, Segment("cgra", kernel="wide", trip=8)),
            thread(1, Segment("cgra", kernel="wide", trip=4)),
        ]
        res = simulate_system(wl, config(), "multithreaded")
        # both at II 4 until t=16 when thread 1 finishes; thread 0 then
        # expands to 4 pages (II 2) with 4 iterations left -> 16 + 8
        assert res.makespan == 24

    def test_queueing_when_more_threads_than_pages(self):
        wl = [
            thread(t, Segment("cgra", kernel="slow", trip=5)) for t in range(6)
        ]
        res = simulate_system(wl, config(n_pages=4), "multithreaded")
        assert res.makespan == 40  # two waves of 20 cycles
        assert res.wait_cycles > 0

    def test_improvement_positive_under_contention(self):
        wl = [
            thread(
                t,
                Segment("cpu", cycles=50),
                Segment("cgra", kernel="slow", trip=20),
                Segment("cpu", cycles=50),
            )
            for t in range(4)
        ]
        base = simulate_system(wl, config(), "single")
        mt = simulate_system(wl, config(), "multithreaded")
        assert improvement(base, mt) > 0.5

    def test_single_thread_pays_constraint_cost(self):
        wl = [thread(0, Segment("cgra", kernel="wide", trip=10))]
        base = simulate_system(wl, config(), "single")
        mt = simulate_system(wl, config(), "multithreaded")
        assert improvement(base, mt) == pytest.approx(1 / 2 - 1)  # ii 1 -> 2

    def test_reconfig_overhead_charged(self):
        wl = [
            thread(0, Segment("cgra", kernel="wide", trip=8)),
            thread(1, Segment("cgra", kernel="wide", trip=8)),
        ]
        fast_res = simulate_system(wl, config(), "multithreaded")
        slow_res = simulate_system(
            wl, config(reconfig_overhead=10), "multithreaded"
        )
        assert slow_res.makespan > fast_res.makespan

    def test_fair_share_policy_plugs_in(self):
        wl = [
            thread(t, Segment("cgra", kernel="slow", trip=5)) for t in range(3)
        ]
        res = simulate_system(
            wl, config(policy=FairSharePolicy()), "multithreaded"
        )
        assert res.makespan == 20

    def test_unknown_kernel_rejected(self):
        wl = [thread(0, Segment("cgra", kernel="nope", trip=1))]
        with pytest.raises(SimulationError):
            simulate_system(wl, config(), "multithreaded")

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            simulate_system([], config(), "turbo")

    def test_utilization_bounded(self):
        wl = [thread(0, Segment("cgra", kernel="slow", trip=10))]
        res = simulate_system(wl, config(), "multithreaded")
        assert 0.0 <= res.cgra_utilization <= 1.0


class TestDeterminismProperty:
    @given(
        n_threads=st.integers(1, 8),
        need=st.sampled_from([0.5, 0.75, 0.875]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_modes_deterministic_and_finite(self, n_threads, need, seed):
        nominal = {k: p.ii_paged for k, p in PROFILES.items()}
        wl = generate_workload(
            n_threads, need, sorted(PROFILES), nominal, seed=seed,
            mean_total_work=5_000,
        )
        r1 = simulate_system(wl, config(), "multithreaded")
        r2 = simulate_system(wl, config(), "multithreaded")
        assert r1.makespan == r2.makespan
        assert r1.makespan > 0
        base = simulate_system(wl, config(), "single")
        assert base.makespan > 0
        # every thread finished in both modes
        assert len(r1.finish_times) == n_threads
        assert len(base.finish_times) == n_threads


class TestArrivals:
    def test_staggered_arrival_shifts_finish(self):
        wl = [
            ThreadSpec(0, (Segment("cpu", cycles=100),), arrival=0),
            ThreadSpec(1, (Segment("cpu", cycles=100),), arrival=500),
        ]
        res = simulate_system(wl, config(), "multithreaded")
        assert res.finish_times[0] == 100
        assert res.finish_times[1] == 600
        assert res.makespan == 600

    def test_generator_staggered(self):
        wl = generate_workload(
            4, 0.5, ["fast"], {"fast": 1}, seed=5, mean_arrival_gap=1000
        )
        arrivals = [t.arrival for t in wl]
        assert arrivals[0] == 0
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0
        res = simulate_system(wl, config(), "multithreaded")
        assert len(res.finish_times) == 4

    def test_generator_default_all_at_zero(self):
        wl = generate_workload(3, 0.5, ["fast"], {"fast": 1}, seed=5)
        assert all(t.arrival == 0 for t in wl)

    def test_late_arrival_into_busy_array(self):
        wl = [
            ThreadSpec(0, (Segment("cgra", kernel="wide", trip=100),), arrival=0),
            ThreadSpec(1, (Segment("cgra", kernel="wide", trip=10),), arrival=50),
        ]
        res = simulate_system(wl, config(), "multithreaded")
        # thread 0 ran alone (II 2) until t=50, then both share at II 4
        assert res.finish_times[1] > 50
        assert len(res.finish_times) == 2


class TestIterationBoundarySwitching:
    def test_switch_waits_for_inflight_iteration(self):
        """§VII-B: with boundary switching, the reshaped thread finishes
        its current iteration at the old rate first."""
        wl = [
            thread(0, Segment("cgra", kernel="wide", trip=8)),
            ThreadSpec(1, (Segment("cgra", kernel="wide", trip=8),), arrival=1),
        ]
        immediate = simulate_system(wl, config(), "multithreaded")
        boundary = simulate_system(
            wl, config(switch_at_iteration_boundary=True), "multithreaded"
        )
        # at t=1 thread 0 is mid-iteration (rate 1*... ii_paged=2): half an
        # iteration in flight; boundary mode finishes it first
        assert boundary.makespan >= immediate.makespan
        assert len(boundary.finish_times) == 2

    def test_boundary_noop_when_switch_lands_on_boundary(self):
        wl = [
            thread(0, Segment("cgra", kernel="wide", trip=8)),
            ThreadSpec(1, (Segment("cgra", kernel="wide", trip=8),), arrival=2),
        ]
        immediate = simulate_system(wl, config(), "multithreaded")
        boundary = simulate_system(
            wl, config(switch_at_iteration_boundary=True), "multithreaded"
        )
        # arrival at t=2 is exactly one full iteration (II 2): no stall
        assert boundary.makespan == immediate.makespan
