"""Cross-module invariants, property-tested.

These tie the layers together: quantities computed independently by the
compiler, the configuration generator, the page-schedule extractor, the
transformation and the simulators must agree with each other.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cgra import CGRA
from repro.compiler.configgen import generate_config
from repro.compiler.ems import MapperConfig, map_dfg
from repro.compiler.mapping import materialized_ops
from repro.compiler.paged import map_dfg_paged
from repro.core.pagemaster import PageMaster, steady_state_ii
from repro.core.paging import PageLayout, choose_page_shape
from repro.core.transform_check import check_placement
from repro.dfg.random_dfg import random_arrays, random_dfg
from repro.kernels import bind_memory, get_kernel, kernel_names
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.util.errors import MappingError


@pytest.fixture(scope="module")
def sor_mapped():
    cgra = CGRA(4, 4, rf_depth=8)
    dfg = get_kernel("sor").build()
    return cgra, dfg, map_dfg(dfg, cgra)


class TestCrossLayerAgreement:
    def test_mapping_vs_config_utilization(self, sor_mapped):
        cgra, dfg, m = sor_mapped
        _, arrays, _ = get_kernel("sor").fresh(seed=0, trip=4)
        table = generate_config(m, bind_memory(arrays))
        assert len(table) == len(m.slot_occupancy())
        assert table.utilization(cgra.num_pes) == pytest.approx(m.pe_utilization())

    def test_simulated_firings_match_slot_math(self, sor_mapped):
        """firings == trip * (materialized ops + route steps - prologue
        skips of loop-carried routes)."""
        cgra, dfg, m = sor_mapped
        trip = 11
        _, arrays, _ = get_kernel("sor").fresh(seed=0, trip=trip)
        mem = bind_memory(arrays)
        res = simulate(lower_mapping(m, mem, trip), cgra, mem)
        expected = trip * len(materialized_ops(dfg))
        for e in dfg.edges.values():
            steps = len(m.route(e.id).steps)
            expected += steps * max(0, trip - e.distance)
        assert res.firings == expected

    def test_page_schedule_occupancy_vs_mapping(self):
        cgra = CGRA(4, 4, rf_depth=16)
        layout = PageLayout(cgra, (2, 2))
        pm = map_dfg_paged(
            get_kernel("swim").build(), cgra, layout, minimize_pages=False
        )
        items = sum(len(i) for i in pm.page_schedule.instances.values())
        routes = sum(len(r.steps) for r in pm.mapping.routes.values())
        assert items == len(pm.mapping.placements) + routes

    def test_profile_ii_eff_matches_placement(self):
        """The system model's steady-state II equals the placement the
        retargeter would actually run."""
        for n, ii_p, m in [(4, 3, 2), (6, 2, 4), (5, 2, 3)]:
            from_placement = PageMaster(n, ii_p, m).place().ii_q_effective()
            assert steady_state_ii(n, ii_p, m) == from_placement


class TestPagedProperties:
    @given(
        kernel=st.sampled_from(["sor", "laplace", "wavelet", "mpeg", "gsr"]),
        size=st.sampled_from([4, 6]),
    )
    @settings(max_examples=12, deadline=None)
    def test_property_paged_ii_at_least_baseline_floor(self, kernel, size):
        """The paged II can beat the baseline heuristic but never the
        recurrence bound, and pages_used never exceeds the layout."""
        from repro.dfg.analysis import rec_mii

        cgra = CGRA(size, size, rf_depth=16)
        layout = PageLayout(cgra, choose_page_shape(4, size, size))
        dfg = get_kernel(kernel).build()
        pm = map_dfg_paged(dfg, cgra, layout)
        assert pm.ii >= rec_mii(dfg)
        assert 1 <= pm.pages_used <= layout.num_pages

    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_property_page_need_consistent_with_activity(self, seed):
        cgra = CGRA(4, 4, rf_depth=16)
        layout = PageLayout(cgra, (2, 2))
        dfg = random_dfg(seed, n_ops=6)
        try:
            pm = map_dfg_paged(
                dfg, cgra, layout, config=MapperConfig(max_ii=8, attempts_per_ii=2)
            )
        except MappingError:
            return
        act = pm.activity()
        # pages_used is an upper bound on the need: the prefix contains the
        # whole mapping and at least one active page (a disconnected random
        # DFG can legally leave a middle page of the prefix idle)
        assert any(any(row) for row in act)
        assert len(act) == pm.pages_used
        assert all(len(row) == pm.ii for row in act)


class TestPlacementProperties:
    @given(
        n=st.integers(1, 10),
        ii=st.integers(1, 3),
        m_frac=st.floats(0.1, 1.0),
        start=st.integers(0, 9),
        batches=st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_finite_placements_always_valid(
        self, n, ii, m_frac, start, batches
    ):
        m = max(1, min(n, round(m_frac * n)))
        pm = PageMaster(n, ii, m, start_page=start % n)
        p = pm.place(batches=batches)
        assert p.batches == batches
        check_placement(p)
        # every batch fully placed, timing monotone per page
        for page in range(n):
            times = [p.time(page, b) for b in range(batches)]
            assert times == sorted(times)
            assert len(set(times)) == len(times)

    @given(n=st.integers(2, 8), ii=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_property_makespan_at_least_work(self, n, ii):
        """No column can hold more than one instance per row: makespan >=
        total instances / M."""
        for m in (1, max(1, n // 2), n):
            p = PageMaster(n, ii, m).place(batches=10)
            assert p.makespan >= (n * 10) / m


class TestWorkloadProperties:
    @given(
        seed=st.integers(0, 300),
        need=st.floats(0.2, 0.9),
        n=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_generated_need_tracks_request(self, seed, need, n):
        from repro.sim.workload import generate_workload

        names = kernel_names()[:3]
        nominal = {k: 2 for k in names}
        wl = generate_workload(
            n, need, names, nominal, seed=seed, mean_total_work=50_000
        )
        for t in wl:
            assert t.cgra_fraction(nominal) == pytest.approx(need, abs=0.08)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_property_random_arrays_cover_every_access(self, seed):
        from repro.sim.reference import run_reference

        dfg = random_dfg(seed, n_ops=7)
        arrays = random_arrays(dfg, seed, trip=9)
        run_reference(dfg, arrays, 9)  # must not hit bounds errors
