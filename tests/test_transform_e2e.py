"""End-to-end PageMaster tests: shrink a compiled kernel to every legal
page count, execute the transformed schedule cycle-accurately, and require
bit-exact outputs plus the predicted steady-state slowdown.

This is the paper's core claim made executable: "using frac of the
original CGRA causes an increase in execution time of only 1/frac".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.cgra import CGRA
from repro.compiler.constraints import paged_bus_key
from repro.compiler.paged import map_dfg_paged
from repro.core.pagemaster import PageMaster
from repro.core.paging import PageLayout
from repro.kernels import bind_memory, get_kernel
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.sim.retarget import required_batches, retarget_firings
from repro.util.errors import TransformError

TRIP = 16
KERNELS = ["sor", "mpeg", "laplace", "swim", "wavelet", "gsr"]


@pytest.fixture(scope="module")
def compiled():
    cgra = CGRA(4, 4, rf_depth=24)
    layout = PageLayout(cgra, (2, 2))
    out = {}
    for name in KERNELS:
        out[name] = map_dfg_paged(
            get_kernel(name).build(), cgra, layout, minimize_pages=False
        )
    return cgra, layout, out


def run_shrunk(cgra, pm, m_cols, trip, *, start_pages=None):
    spec = get_kernel(pm.mapping.dfg.name)
    _, arrays, expected = spec.fresh(seed=7, trip=trip)
    mem = bind_memory(arrays)
    nb = required_batches(pm.mapping, trip)
    placement = PageMaster(
        pm.layout.num_pages, pm.ii, m_cols, wrap_used=pm.wrap_used
    ).place(batches=nb)
    targets = start_pages if start_pages is not None else list(range(m_cols))
    firings = retarget_firings(pm, placement, targets, mem, trip)
    result = simulate(
        firings, cgra, mem, bus_key=paged_bus_key(pm.layout), rf_depth=64
    )
    return result, mem.snapshot(), expected, placement


@pytest.mark.parametrize("name", KERNELS)
@pytest.mark.parametrize("m_cols", [1, 2, 3, 4])
def test_shrunk_execution_bit_exact(compiled, name, m_cols):
    cgra, _, mapped = compiled
    result, snap, expected, _ = run_shrunk(cgra, mapped[name], m_cols, TRIP)
    for arr in expected:
        assert np.array_equal(snap[arr], expected[arr]), (name, m_cols, arr)


@pytest.mark.parametrize("name", KERNELS)
def test_slowdown_tracks_steady_state_ii(compiled, name):
    """Measured cycles scale with the placement's exact steady-state II."""
    cgra, _, mapped = compiled
    pm = mapped[name]
    base, _, _, _ = run_shrunk(cgra, pm, 4, TRIP)
    for m_cols in (1, 2):
        res, _, _, placement = run_shrunk(cgra, pm, m_cols, TRIP)
        predicted = float(placement.ii_q_effective() / pm.ii)
        measured = res.cycles / base.cycles
        assert measured == pytest.approx(predicted, rel=0.15), (name, m_cols)


def test_single_page_fold_uses_only_registers(compiled):
    """Fig. 6 / §VI-E: folded onto one page, every transfer rides the
    rotating register files — zero global-storage traffic."""
    cgra, _, mapped = compiled
    for name in KERNELS:
        res, _, _, _ = run_shrunk(cgra, mapped[name], 1, TRIP)
        assert res.global_writes == 0, name
        assert res.global_reads == 0, name


def test_rf_depth_requirement_matches_paper(compiled):
    """§VI-E: ~N rotating registers suffice for the single-page fold."""
    cgra, layout, mapped = compiled
    n = layout.num_pages
    for name in KERNELS:
        res, _, _, _ = run_shrunk(cgra, mapped[name], 1, TRIP)
        assert res.rf_max_depth_used <= n + 1, (name, res.rf_max_depth_used)


def test_shrink_onto_different_physical_pages(compiled):
    """The target chain can be any contiguous page segment, e.g. the upper
    half of the array while another thread owns the lower half."""
    cgra, _, mapped = compiled
    pm = mapped["sor"]
    res, snap, expected, _ = run_shrunk(cgra, pm, 2, TRIP, start_pages=[2, 3])
    for arr in expected:
        assert np.array_equal(snap[arr], expected[arr])


def test_non_contiguous_targets_rejected(compiled):
    cgra, _, mapped = compiled
    pm = mapped["sor"]
    spec = get_kernel("sor")
    _, arrays, _ = spec.fresh(seed=7, trip=4)
    mem = bind_memory(arrays)
    nb = required_batches(pm.mapping, 4)
    placement = PageMaster(4, pm.ii, 2).place(batches=nb)
    with pytest.raises(TransformError):
        retarget_firings(pm, placement, [0, 2], mem, 4)


def test_insufficient_batches_rejected(compiled):
    cgra, _, mapped = compiled
    pm = mapped["sor"]
    _, arrays, _ = get_kernel("sor").fresh(seed=7, trip=TRIP)
    mem = bind_memory(arrays)
    placement = PageMaster(4, pm.ii, 2).place(batches=3)
    with pytest.raises(TransformError):
        retarget_firings(pm, placement, [0, 1], mem, TRIP)


def test_mismatched_placement_rejected(compiled):
    cgra, _, mapped = compiled
    pm = mapped["sor"]
    _, arrays, _ = get_kernel("sor").fresh(seed=7, trip=4)
    mem = bind_memory(arrays)
    placement = PageMaster(6, pm.ii, 2).place(batches=64)  # wrong N
    with pytest.raises(TransformError):
        retarget_firings(pm, placement, [0, 1], mem, 4)


def test_zigzag_m3_is_faster_than_m2(compiled):
    """More pages -> faster, even through the zigzag path (M=3 of 4)."""
    cgra, _, mapped = compiled
    pm = mapped["swim"]
    res2, _, _, _ = run_shrunk(cgra, pm, 2, TRIP)
    res3, _, _, _ = run_shrunk(cgra, pm, 3, TRIP)
    res4, _, _, _ = run_shrunk(cgra, pm, 4, TRIP)
    assert res4.cycles <= res3.cycles <= res2.cycles


def test_tiny_register_file_falls_back_to_global_storage(compiled):
    """With rf_limit=1 every stretched transfer must ride the reserved
    global storage area instead of rotating registers — results identical,
    traffic all accounted."""
    cgra, _, mapped = compiled
    pm = mapped["mpeg"]
    spec = get_kernel("mpeg")
    _, arrays, expected = spec.fresh(seed=7, trip=TRIP)
    mem = bind_memory(arrays)
    nb = required_batches(pm.mapping, TRIP)
    placement = PageMaster(pm.layout.num_pages, pm.ii, 1).place(batches=nb)
    firings = retarget_firings(pm, placement, [0], mem, TRIP, rf_limit=1)
    res = simulate(firings, cgra, mem, bus_key=paged_bus_key(pm.layout), rf_depth=64)
    snap = mem.snapshot()
    for arr in expected:
        assert np.array_equal(snap[arr], expected[arr]), arr
    assert res.global_writes > 0 and res.global_reads > 0
    # and the timing is unchanged: the placement dictates the cycles
    rf_res, _, _, _ = run_shrunk(cgra, pm, 1, TRIP)
    assert res.cycles == rf_res.cycles


def test_retarget_deterministic(compiled):
    cgra, _, mapped = compiled
    pm = mapped["swim"]
    spec = get_kernel("swim")
    nb = required_batches(pm.mapping, TRIP)
    placement = PageMaster(pm.layout.num_pages, pm.ii, 2).place(batches=nb)
    outs = []
    for _ in range(2):
        _, arrays, _ = spec.fresh(seed=7, trip=TRIP)
        mem = bind_memory(arrays)
        firings = retarget_firings(pm, placement, [0, 1], mem, TRIP)
        outs.append([(f.cycle, f.pe, f.label) for f in firings])
    assert outs[0] == outs[1]
