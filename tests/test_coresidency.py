"""Cycle-accurate space multiplexing: several PageMaster-shrunk kernels
co-resident on ONE CGRA, executed together in a single simulation, each
bit-exact against its own golden model.

This is §V's key requirement made executable end-to-end: "threads are to
be compiled independently of each other.  The generated CGRA schedules of
different kernels can then be combined at runtime to be executed
simultaneously."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.cgra import CGRA
from repro.arch.memory import DataMemory
from repro.compiler.constraints import paged_bus_key
from repro.compiler.paged import map_dfg_paged
from repro.core.pagemaster import PageMaster
from repro.core.paging import PageLayout
from repro.kernels import get_kernel
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.sim.retarget import required_batches, retarget_firings

TRIP = 16


@pytest.fixture(scope="module")
def cgra_and_layout():
    cgra = CGRA(4, 4, rf_depth=24)
    return cgra, PageLayout(cgra, (2, 2))


def compile_thread(name, cgra, layout):
    return map_dfg_paged(get_kernel(name).build(), cgra, layout)


def thread_firings(pm, tid, target_pages, mem, *, trip=TRIP, start_cycle=0):
    """Compile-independent thread: shrink onto its page segment and lower."""
    spec = get_kernel(pm.mapping.dfg.name)
    _, arrays, expected = spec.fresh(seed=100 + tid, trip=trip)
    prefix = f"t{tid}/"
    for aname in sorted(arrays):
        mem.bind_array(prefix + aname, arrays[aname])
    m_cols = len(target_pages)
    placement = PageMaster(
        pm.pages_used, pm.ii, m_cols, wrap_used=pm.wrap_used
    ).place(batches=required_batches(pm.mapping, trip))
    firings = retarget_firings(
        pm,
        placement,
        target_pages,
        mem,
        trip,
        rf_limit=64,
        array_prefix=prefix,
        start_cycle=start_cycle,
        firing_tag=f"t{tid}",
    )
    return firings, expected, prefix


def check_outputs(mem, dfg, expected, prefix):
    for op in dfg.ops.values():
        if op.memref is not None and op.opcode.value == "store":
            got = mem.read_array(prefix + op.memref.array)
            assert np.array_equal(got, expected[op.memref.array]), op.memref.array


def test_two_threads_share_the_array(cgra_and_layout):
    """sor (1 page need) and gsr (1 page need) run simultaneously on
    disjoint halves; both outputs bit-exact, total runtime ~one kernel."""
    cgra, layout = cgra_and_layout
    mem = DataMemory(1 << 16)
    a = compile_thread("sor", cgra, layout)
    b = compile_thread("gsr", cgra, layout)
    fa, ea, pa = thread_firings(a, 0, [0], mem)
    fb, eb, pb = thread_firings(b, 1, [2], mem)
    res = simulate(
        fa + fb, cgra, mem, bus_key=paged_bus_key(layout), rf_depth=64
    )
    check_outputs(mem, a.mapping.dfg, ea, pa)
    check_outputs(mem, b.mapping.dfg, eb, pb)
    solo = simulate(
        thread_firings(a, 0, [0], DataMemory(1 << 16))[0],
        cgra,
        DataMemory(1 << 16),
        check_conflicts=False,
    )
    # co-residency costs (nearly) nothing: both finish within the longer
    # solo runtime plus a pipeline fill
    assert res.cycles <= solo.cycles + 8 * max(a.ii, b.ii)


def test_four_threads_fill_the_array(cgra_and_layout):
    cgra, layout = cgra_and_layout
    mem = DataMemory(1 << 16)
    names = ["sor", "gsr", "compress", "wavelet"]  # all 1-page kernels
    compiled = [compile_thread(n, cgra, layout) for n in names]
    assert all(pm.pages_used == 1 for pm in compiled)
    all_firings = []
    checks = []
    for tid, pm in enumerate(compiled):
        f, e, p = thread_firings(pm, tid, [tid], mem)
        all_firings += f
        checks.append((pm, e, p))
    simulate(all_firings, cgra, mem, bus_key=paged_bus_key(layout), rf_depth=64)
    for pm, e, p in checks:
        check_outputs(mem, pm.mapping.dfg, e, p)


def test_staggered_arrival(cgra_and_layout):
    """A thread launched mid-run (start_cycle > 0) on the free half."""
    cgra, layout = cgra_and_layout
    mem = DataMemory(1 << 16)
    a = compile_thread("sor", cgra, layout)
    b = compile_thread("compress", cgra, layout)
    fa, ea, pa = thread_firings(a, 0, [0, 1][: a.pages_used], mem)
    fb, eb, pb = thread_firings(b, 1, [2], mem, start_cycle=37)
    res = simulate(
        fa + fb, cgra, mem, bus_key=paged_bus_key(layout), rf_depth=64
    )
    check_outputs(mem, a.mapping.dfg, ea, pa)
    check_outputs(mem, b.mapping.dfg, eb, pb)
    assert res.cycles > 37


def test_shrunken_wide_kernel_plus_small_kernel(cgra_and_layout):
    """A multi-page kernel shrunk to half the array while a one-page
    kernel owns a page of the other half."""
    cgra, layout = cgra_and_layout
    mem = DataMemory(1 << 16)
    wide = compile_thread("mpeg", cgra, layout)  # needs 3 pages
    small = compile_thread("sor", cgra, layout)
    assert wide.pages_used >= 2
    fw, ew, pw = thread_firings(wide, 0, [0, 1], mem)  # shrunk to 2 pages
    fs, es, ps = thread_firings(small, 1, [3], mem)
    simulate(fw + fs, cgra, mem, bus_key=paged_bus_key(layout), rf_depth=64)
    check_outputs(mem, wide.mapping.dfg, ew, pw)
    check_outputs(mem, small.mapping.dfg, es, ps)


def test_conflicting_segments_detected(cgra_and_layout):
    """Overlapping target segments are a runtime bug; the simulator's
    PE-exclusivity check catches the collision."""
    from repro.util.errors import SimulationError

    cgra, layout = cgra_and_layout
    mem = DataMemory(1 << 16)
    a = compile_thread("sor", cgra, layout)
    b = compile_thread("gsr", cgra, layout)
    fa, _, _ = thread_firings(a, 0, [0], mem)
    fb, _, _ = thread_firings(b, 1, [0], mem)  # same page: illegal
    with pytest.raises(SimulationError):
        simulate(fa + fb, cgra, mem, bus_key=paged_bus_key(layout), rf_depth=64)
