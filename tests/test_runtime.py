"""Tests for the multithreading runtime: allocation policies and the
CGRA manager (§VII-B thread arrival/departure protocol)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    Allocation,
    FairSharePolicy,
    HalvingPolicy,
    StaticEqualPolicy,
)
from repro.core.runtime import CGRAManager
from repro.util.errors import ReproError


class TestAllocation:
    def test_pages_enumeration(self):
        a = Allocation(2, 3)
        assert a.pages == (2, 3, 4)

    def test_validation(self):
        with pytest.raises(ReproError):
            Allocation(0, 0)
        with pytest.raises(ReproError):
            Allocation(-1, 2)


class TestHalvingPolicy:
    def test_first_thread_gets_everything(self):
        mgr = CGRAManager(8, HalvingPolicy())
        mgr.request(0)
        assert mgr.allocation_of(0) == Allocation(0, 8)

    def test_second_thread_halves_the_first(self):
        """§VII-B: "the thread using the most pages is decreased to use
        half as many pages and the new thread is resized to fit"."""
        mgr = CGRAManager(8, HalvingPolicy())
        mgr.request(0)
        events = mgr.request(1)
        assert mgr.allocation_of(0).length == 4
        assert mgr.allocation_of(1).length == 4
        assert any(e.tid == 0 for e in events)

    def test_four_threads_converge_to_quarters(self):
        mgr = CGRAManager(8, HalvingPolicy())
        for t in range(4):
            mgr.request(t)
        lengths = sorted(a.length for a in mgr.residents.values())
        assert lengths == [2, 2, 2, 2]

    def test_queueing_when_saturated(self):
        mgr = CGRAManager(2, HalvingPolicy())
        for t in range(3):
            mgr.request(t)
        assert mgr.allocation_of(2) is None
        assert mgr.queue == [2]

    def test_release_expands_neighbour(self):
        mgr = CGRAManager(8, HalvingPolicy())
        mgr.request(0)
        mgr.request(1)
        mgr.release(0)
        assert mgr.allocation_of(1).length == 8

    def test_release_admits_queued(self):
        mgr = CGRAManager(2, HalvingPolicy())
        for t in range(3):
            mgr.request(t)
        mgr.release(0)
        assert mgr.allocation_of(2) is not None

    def test_allocations_always_disjoint_and_contiguous(self):
        mgr = CGRAManager(16, HalvingPolicy())
        for t in range(10):
            mgr.request(t)
        taken = []
        for a in mgr.residents.values():
            taken.extend(a.pages)
        assert len(taken) == len(set(taken))

    @given(st.lists(st.sampled_from(["req", "rel"]), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_property_manager_invariants(self, script):
        """Random arrival/departure scripts never violate pool invariants
        (the manager itself re-checks disjointness after every change)."""
        mgr = CGRAManager(8, HalvingPolicy())
        next_tid = 0
        live: list[int] = []
        for action in script:
            if action == "req":
                mgr.request(next_tid)
                live.append(next_tid)
                next_tid += 1
            elif live:
                mgr.release(live.pop(0))
        # every live thread is either resident or queued
        for t in live:
            assert (mgr.allocation_of(t) is not None) or (t in mgr.queue)


class TestFairShare:
    def test_even_split(self):
        mgr = CGRAManager(9, FairSharePolicy())
        for t in range(3):
            mgr.request(t)
        assert sorted(a.length for a in mgr.residents.values()) == [3, 3, 3]

    def test_remainder_distributed(self):
        mgr = CGRAManager(8, FairSharePolicy())
        for t in range(3):
            mgr.request(t)
        assert sorted(a.length for a in mgr.residents.values()) == [2, 3, 3]

    def test_release_rebalances(self):
        mgr = CGRAManager(8, FairSharePolicy())
        for t in range(4):
            mgr.request(t)
        mgr.release(0)
        assert sorted(a.length for a in mgr.residents.values()) == [2, 3, 3]


class TestStaticEqual:
    def test_fixed_slices(self):
        mgr = CGRAManager(8, StaticEqualPolicy(4))
        for t in range(4):
            mgr.request(t)
        assert sorted(a.length for a in mgr.residents.values()) == [2, 2, 2, 2]

    def test_no_resizing_on_release(self):
        mgr = CGRAManager(8, StaticEqualPolicy(4))
        for t in range(4):
            mgr.request(t)
        mgr.release(0)
        assert sorted(a.length for a in mgr.residents.values()) == [2, 2, 2]

    def test_overflow_queues(self):
        mgr = CGRAManager(8, StaticEqualPolicy(2))
        for t in range(3):
            mgr.request(t)
        assert mgr.allocation_of(2) is None

    def test_max_threads_validated(self):
        with pytest.raises(ReproError):
            StaticEqualPolicy(0)


class TestManagerErrors:
    def test_double_request_rejected(self):
        mgr = CGRAManager(4)
        mgr.request(0)
        with pytest.raises(ReproError):
            mgr.request(0)

    def test_unknown_release_rejected(self):
        mgr = CGRAManager(4)
        with pytest.raises(ReproError):
            mgr.release(42)

    def test_queued_release(self):
        mgr = CGRAManager(1)
        mgr.request(0)
        mgr.request(1)  # queued
        assert mgr.release(1) == []
        assert mgr.queue == []

    def test_reallocation_counters(self):
        mgr = CGRAManager(8, HalvingPolicy())
        mgr.request(0)
        mgr.request(1)
        assert mgr.threads[0].reallocations == 2  # initial + halving


class TestNeedAwareHalving:
    def test_grant_trimmed_to_need(self):
        from repro.core.policies import NeedAwareHalvingPolicy

        mgr = CGRAManager(8, NeedAwareHalvingPolicy())
        mgr.request(0, need=2)
        assert mgr.allocation_of(0).length == 2  # not all 8

    def test_surplus_serves_next_arrival_without_shrinking(self):
        from repro.core.policies import NeedAwareHalvingPolicy

        mgr = CGRAManager(8, NeedAwareHalvingPolicy())
        mgr.request(0, need=2)
        events = mgr.request(1, need=4)
        # thread 0 untouched: the newcomer fits in the free surplus
        assert mgr.allocation_of(0).length == 2
        assert mgr.allocation_of(1).length == 4
        assert all(e.tid != 0 for e in events)

    def test_falls_back_to_halving_without_needs(self):
        from repro.core.policies import NeedAwareHalvingPolicy

        mgr = CGRAManager(8, NeedAwareHalvingPolicy())
        mgr.request(0)
        assert mgr.allocation_of(0).length == 8

    def test_release_expansion_respects_need(self):
        from repro.core.policies import NeedAwareHalvingPolicy

        mgr = CGRAManager(4, NeedAwareHalvingPolicy())
        mgr.request(0, need=1)
        mgr.request(1, need=4)
        mgr.release(1)
        assert mgr.allocation_of(0).length == 1  # never grown past its need


class TestBestFit:
    def test_smallest_fitting_segment_trimmed_to_need(self):
        from repro.core.policies import BestFitPolicy

        mgr = CGRAManager(8, BestFitPolicy())
        mgr.request(0, need=2)  # takes 8, trimmed to 2: free = [2..8)
        mgr.request(1, need=4)  # free segment of 6 covers it, trimmed to 4
        assert mgr.allocation_of(0) == Allocation(0, 2)
        assert mgr.allocation_of(1) == Allocation(2, 4)
        # a 2-page need best-fits the remaining 2-page hole exactly
        mgr.request(2, need=2)
        assert mgr.allocation_of(2) == Allocation(6, 2)

    def test_without_need_takes_largest_free_segment(self):
        from repro.core.policies import BestFitPolicy

        mgr = CGRAManager(8, BestFitPolicy())
        mgr.request(0, need=2)
        mgr.request(1)  # no declared need: whole largest free segment
        assert mgr.allocation_of(1) == Allocation(2, 6)

    def test_falls_back_to_halving_when_full(self):
        from repro.core.policies import BestFitPolicy

        mgr = CGRAManager(8, BestFitPolicy())
        mgr.request(0)  # no need: takes all 8
        mgr.request(1)  # no free pages: halving splits thread 0
        assert mgr.allocation_of(0).length == 4
        assert mgr.allocation_of(1).length == 4

    def test_oversized_need_gets_largest_free(self):
        from repro.core.policies import BestFitPolicy

        mgr = CGRAManager(8, BestFitPolicy())
        mgr.request(0, need=2)
        mgr.request(1, need=16)  # nothing fits: grant the largest whole
        assert mgr.allocation_of(1) == Allocation(2, 6)


class TestPriorityEviction:
    def test_default_tid_priority_evicts_latest(self):
        from repro.core.policies import PriorityEvictionPolicy

        mgr = CGRAManager(2, PriorityEvictionPolicy())
        mgr.request(1)
        mgr.request(2)  # halved in
        mgr.release(1)
        mgr.request(3)  # free pages reused, no eviction
        events = mgr.request(0)  # full array: tid 3 (lowest priority) evicted
        assert mgr.allocation_of(0) is not None
        assert mgr.allocation_of(3) is None
        assert 3 in mgr.queue
        assert any(e.tid == 3 and e.after is None for e in events)

    def test_priority_map_overrides_tid_order(self):
        from repro.core.policies import PriorityEvictionPolicy

        # tid 0 is LOW priority here; tid 2 outranks everyone
        pol = PriorityEvictionPolicy({0: 0, 1: 1, 2: 5})
        mgr = CGRAManager(1, pol)
        mgr.request(0)
        events = mgr.request(2)
        assert mgr.allocation_of(2) == Allocation(0, 1)
        assert mgr.allocation_of(0) is None
        assert any(e.tid == 0 and e.after is None for e in events)

    def test_equal_priority_never_evicts(self):
        from repro.core.policies import PriorityEvictionPolicy

        pol = PriorityEvictionPolicy({0: 1, 1: 1})
        mgr = CGRAManager(1, pol)
        mgr.request(0)
        mgr.request(1)
        assert mgr.allocation_of(0) == Allocation(0, 1)
        assert 1 in mgr.queue

    def test_threads_absent_from_map_rank_zero(self):
        from repro.core.policies import PriorityEvictionPolicy

        pol = PriorityEvictionPolicy({5: 3})
        mgr = CGRAManager(1, pol)
        mgr.request(7)  # unknown tid: priority 0
        mgr.request(5)  # mapped: priority 3 -> evicts 7
        assert mgr.allocation_of(5) == Allocation(0, 1)
        assert mgr.allocation_of(7) is None
