"""Tests for the speculative (II, attempt) portfolio engine.

The engine's whole contract is *determinism under races*: whatever order
probes complete in, the reduction must pick the success with the smallest
(ii, attempt) — the rung the serial ladder would have returned — so the
artifact bytes never depend on worker count or scheduling luck.  The
tests here attack that contract directly:

* a ``ScriptedExecutor`` completes probes in an adversarial order (high
  rungs first) with fabricated verdicts, proving canonical reduction
  beats completion order and that cancellation prunes strictly above the
  winner;
* the rng-replay helper is checked against the serial ladder's actual
  perturbation stream;
* ``MapperSpec``/``ProbeTask`` are round-tripped through ``pickle`` and a
  real two-worker process pool is raced against the in-process ladder.
"""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import Future

import pytest

from repro.arch.cgra import CGRA
from repro.compiler.ems import EMSMapper, MapperConfig, map_dfg
from repro.compiler.search import (
    LadderReport,
    MapperSpec,
    ProbeResult,
    ProbeTask,
    SearchContext,
    WorkerBudget,
    lattice,
    portfolio_map,
    run_probe,
)
from repro.kernels import get_kernel
from repro.util.errors import MappingError
from repro.util.rng import make_rng


def _sor():
    return get_kernel("sor").build()


# ------------------------------------------------------------------ the lattice


class TestLattice:
    def test_enumeration_is_lexicographic(self):
        pts = lattice(3, 5, 2)
        assert pts == [(3, 0), (3, 1), (4, 0), (4, 1), (5, 0), (5, 1)]
        assert pts == sorted(pts)

    def test_matches_serial_loop(self):
        cfg = MapperConfig()
        pts = lattice(4, cfg.max_ii, cfg.attempts_per_ii)
        serial = [
            (ii, attempt)
            for ii in range(4, cfg.max_ii + 1)
            for attempt in range(cfg.attempts_per_ii)
        ]
        assert pts == serial


# ------------------------------------------------------------------- rng replay


class TestAttemptOrderReplay:
    """attempt_order(rank) must reproduce the serial ladder's op order at
    that lattice point, including the shared-rng perturbation stream."""

    def test_replay_matches_serial_stream(self):
        dfg = _sor()
        mapper = EMSMapper(CGRA(4, 4))
        cfg = mapper.config
        start_ii = mapper.ladder_start_ii(dfg)
        orders = mapper.attempt_orders(dfg)

        # walk the serial loop for a few rungs, drawing from one stream
        rng = make_rng(cfg.seed)
        serial: dict[tuple[int, int], list[int]] = {}
        for ii in range(start_ii, start_ii + 3):
            for attempt in range(cfg.attempts_per_ii):
                if attempt < len(orders):
                    order = list(orders[attempt])
                else:
                    order = list(orders[0])
                    mapper._perturb(order, rng)
                serial[(ii, attempt)] = order

        # replay every point independently, in a scrambled order
        points = sorted(serial, key=lambda p: (-p[0], -p[1]))
        for ii, attempt in points:
            replayed = mapper.attempt_order(orders, start_ii, ii, attempt)
            assert replayed == serial[(ii, attempt)], (ii, attempt)

    def test_base_attempts_do_not_touch_rng(self):
        dfg = _sor()
        mapper = EMSMapper(CGRA(4, 4))
        orders = mapper.attempt_orders(dfg)
        for attempt in range(len(orders)):
            assert mapper.attempt_order(orders, 4, 9, attempt) == orders[attempt]


# ------------------------------------------------------------------ mapper spec


class TestMapperSpec:
    def test_base_spec_rebuilds_equivalent_mapper(self):
        dfg = _sor()
        cgra = CGRA(4, 4)
        spec = MapperSpec.for_base(cgra, MapperConfig())
        rebuilt = spec.build().map(dfg)
        direct = EMSMapper(cgra, config=MapperConfig()).map(dfg)
        assert rebuilt.ii == direct.ii
        assert rebuilt.placements == direct.placements
        assert rebuilt.routes == direct.routes

    def test_paged_spec_rebuilds_equivalent_mapper(self):
        from repro.core.paging import PageLayout

        dfg = _sor()
        cgra = CGRA(4, 4)
        layout = PageLayout(cgra, (1, 4))
        spec = MapperSpec.for_paged(cgra, layout, MapperConfig())
        assert spec.page_shape == (1, 4)
        assert spec.num_pages == layout.num_pages
        rebuilt = spec.build()
        assert sorted(rebuilt.allowed_pes) == sorted(layout.page_of)
        start = rebuilt.ladder_start_ii(dfg)
        order = rebuilt.attempt_orders(dfg)[0]
        probe = rebuilt._try_map(dfg, start, order)
        # pin against the caller-side paged mapper wiring
        from repro.compiler.constraints import paged_bus_key, ring_hop_filter

        direct = EMSMapper(
            cgra,
            allowed_pes=[pe for pe in cgra.coords() if pe in layout.page_of],
            hop_allowed=ring_hop_filter(layout),
            mem_slots_per_cycle=layout.num_pages
            * layout.shape[0]
            * cgra.mem_ports_per_row,
            bus_key=paged_bus_key(layout),
            pe_rank=lambda pe: layout.page_of[pe],
            config=MapperConfig(),
        )
        ref = direct._try_map(dfg, start, order)
        assert (probe is None) == (ref is None)
        if probe is not None:
            assert probe.placements == ref.placements
            assert probe.routes == ref.routes

    def test_probe_task_round_trips_pickle(self):
        dfg = _sor()
        spec = MapperSpec.for_base(CGRA(4, 4), MapperConfig())
        task = ProbeTask(
            spec=spec,
            dfg=dfg,
            dfg_fp=dfg.fingerprint(),
            start_ii=2,
            ii=2,
            attempt=0,
        )
        back = pickle.loads(pickle.dumps(task))
        assert back.spec == spec
        assert back.dfg.fingerprint() == dfg.fingerprint()
        # the unpickled task is runnable and the verdict carries its point
        res = run_probe(back)
        assert (res.ii, res.attempt) == (2, 0)
        assert res.seconds >= 0.0


# ------------------------------------------------- scripted-completion harness


class ScriptedExecutor:
    """An executor that completes probes in an adversarial, scripted order.

    ``submit`` never runs the probe function: each (ii, attempt) gets a
    fabricated success/fail verdict from *verdicts*, and a pump thread
    releases results strictly in *release_order* — regardless of the
    canonical order — so tests can make a high rung land first.  Futures
    stay PENDING until released, which keeps them cancellable exactly like
    a queued process-pool probe.
    """

    def __init__(self, verdicts, release_order, running_points=()):
        self.verdicts = dict(verdicts)  # (ii, attempt) -> Mapping | None
        self.release_order = list(release_order)
        # points whose futures report "already running" at submit time, so
        # the engine's cancel fails on them — like a live pool probe
        self.running = set(running_points)
        self._held: dict[tuple[int, int], Future] = {}
        self._lock = threading.Condition()
        self._closed = False
        self._pump = threading.Thread(target=self._run, daemon=True)
        self._pump.start()

    def submit(self, fn, task):
        fut: Future = Future()
        point = (task.ii, task.attempt)
        if point in self.running:
            fut.set_running_or_notify_cancel()
        with self._lock:
            self._held[point] = fut
            self._lock.notify_all()
        return fut

    def _release(self, point) -> None:
        fut = self._held.pop(point)
        if point not in self.running and not fut.set_running_or_notify_cancel():
            return  # cancelled while queued, like a real pool
        ii, attempt = point
        fut.set_result(
            ProbeResult(
                ii=ii,
                attempt=attempt,
                mapping=self.verdicts[point],
                seconds=0.01,
                counters={},
            )
        )

    def _run(self) -> None:
        for point in self.release_order:
            with self._lock:
                while point not in self._held and not self._closed:
                    self._lock.wait(timeout=0.05)
                if self._closed:
                    return
                self._release(point)
            # pace releases so the engine all but certainly consumes one
            # verdict before the next lands (labels stay deterministic)
            time.sleep(0.05)
        # drain anything the script didn't name, in canonical order, so a
        # buggy engine deadlocks loudly in the drain instead of hanging;
        # a correct engine cancels/returns long before the grace expires
        deadline = time.monotonic() + 5.0
        time.sleep(0.5)
        while time.monotonic() < deadline:
            with self._lock:
                if self._closed:
                    return
                for point in sorted(self._held):
                    self._release(point)
            time.sleep(0.01)

    def shutdown(self, **_kw) -> None:
        with self._lock:
            self._closed = True
            self._lock.notify_all()


class _FakeMapping:
    """Stand-in success verdict; the engine only stores it, rebinds its
    ``dfg``/``cgra`` attributes and returns it."""

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self.dfg = None
        self.cgra = None


def _scripted_ctx(verdicts, release_order, workers, running_points=()):
    return SearchContext(
        workers=workers,
        executor=ScriptedExecutor(verdicts, release_order, running_points),
        budget=WorkerBudget(workers),
        owns_executor=True,
    )


def _spec_and_start(max_ii=None, attempts_per_ii=6):
    dfg = _sor()
    cgra = CGRA(4, 4)
    cfg = MapperConfig(
        attempts_per_ii=attempts_per_ii,
        **({"max_ii": max_ii} if max_ii is not None else {}),
    )
    spec = MapperSpec.for_base(cgra, cfg)
    start = spec.build().ladder_start_ii(dfg)
    return spec, dfg, cgra, start


# ------------------------------------------------------------ canonical winner


class TestCanonicalReduction:
    def test_late_low_attempt_beats_early_high_attempt(self):
        """(start, 1) succeeds *first*; (start, 0) succeeds later and must
        still win — reduction is by canonical order, not completion order."""
        spec, dfg, cgra, start = _spec_and_start()
        win, lose = _FakeMapping("canonical"), _FakeMapping("fastest")
        verdicts = {(start, 0): win, (start, 1): lose}
        log: list[LadderReport] = []
        ctx = _scripted_ctx(verdicts, [(start, 1), (start, 0)], workers=2)
        with ctx:
            result = portfolio_map(spec, dfg, cgra=cgra, ctx=ctx, log=log)
        assert result is win
        assert result.dfg is dfg and result.cgra is cgra
        (report,) = log
        assert report.winner == (start, 0)
        # the early high-attempt success is not the winner; depending on
        # when the winner's verdict arrived it is recorded as a useful
        # success (landed first) or as waste (batched with the winner)
        outcomes = {(ii, a): o for ii, a, o, _s in report.timeline}
        assert outcomes[(start, 1)] in ("success", "wasted")
        assert outcomes[(start, 0)] == "success"

    def test_high_ii_finishing_first_loses_and_prunes(self):
        """A success on II+1 lands while the II rung is still in flight:
        it must cancel only the rungs *above* itself, and the later II-rung
        success must still win the reduction."""
        spec, dfg, cgra, start = _spec_and_start(attempts_per_ii=2)
        win = _FakeMapping("low-ii")
        early = _FakeMapping("high-ii")
        verdicts = {
            (start, 0): None,  # fail
            (start, 1): win,
            (start + 1, 0): early,
            (start + 1, 1): _FakeMapping("never-used"),
        }
        # (start+1, 0) completes first; then the start rung resolves
        release = [(start + 1, 0), (start, 0), (start, 1)]
        log: list[LadderReport] = []
        ctx = _scripted_ctx(verdicts, release, workers=4)
        with ctx:
            result = portfolio_map(spec, dfg, cgra=cgra, ctx=ctx, log=log)
        assert result is win
        (report,) = log
        assert report.winner == (start, 1)
        outcomes = {(ii, a): o for ii, a, o, _s in report.timeline}
        assert outcomes[(start + 1, 0)] == "success"  # completed before win
        assert outcomes[(start, 0)] == "fail"
        assert outcomes[(start, 1)] == "success"
        # the rung above the early success never ran: cancelled while queued
        assert outcomes[(start + 1, 1)] == "cancelled"
        assert report.probes_cancelled >= 1
        assert report.per_ii()[0][0] == start
        assert report.per_ii()[0][4] == 1  # winning attempt on the start rung

    def test_running_probe_above_winner_is_abandoned_and_charged(self):
        """A probe already *running* when a lower success lands cannot be
        cancelled: the ladder abandons it, counts it as speculation waste,
        and its wall clock is billed to the global account when it finally
        drains back into the pool."""
        from repro.compiler.stats import SEARCH

        spec, dfg, cgra, start = _spec_and_start(attempts_per_ii=2)
        win = _FakeMapping("winner")
        verdicts = {
            (start, 0): win,
            (start, 1): None,
            (start + 1, 0): None,
            (start + 1, 1): None,
        }
        # the winner lands while (start, 1) is running; (start+1, *) are
        # still queued, so they cancel cleanly but (start, 1) cannot
        release = [(start, 0), (start, 1)]
        log: list[LadderReport] = []
        before = SEARCH.snapshot()
        ctx = _scripted_ctx(
            verdicts, release, workers=4, running_points={(start, 1)}
        )
        with ctx:
            result = portfolio_map(spec, dfg, cgra=cgra, ctx=ctx, log=log)
            assert result is win
            (report,) = log
            assert report.winner == (start, 0)
            outcomes = {(ii, a): o for ii, a, o, _s in report.timeline}
            assert outcomes[(start, 1)] == "abandoned"
            assert outcomes[(start + 1, 0)] == "cancelled"
            assert outcomes[(start + 1, 1)] == "cancelled"
            assert report.probes_wasted == 1
            assert report.probes_cancelled == 2
            # the abandoned probe's verdict arrives after the ladder ended;
            # its seconds land in the global waste account via the callback
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if SEARCH.delta(before)["wasted_seconds"] > 0:
                    break
                time.sleep(0.01)
            assert SEARCH.delta(before)["wasted_seconds"] > 0

    def test_exhausted_lattice_raises_mapping_error(self):
        spec, dfg, cgra, start = _spec_and_start(attempts_per_ii=2)
        # clamp the ladder to two rungs and fail every point
        cfg = MapperConfig(attempts_per_ii=2, max_ii=start + 1)
        spec = MapperSpec.for_base(CGRA(4, 4), cfg)
        verdicts = {
            (ii, a) for ii in (start, start + 1) for a in (0, 1)
        }
        verdicts = {p: None for p in verdicts}
        ctx = _scripted_ctx(verdicts, sorted(verdicts), workers=2)
        with ctx, pytest.raises(MappingError, match="could not map"):
            portfolio_map(spec, dfg, cgra=cgra, ctx=ctx)


# --------------------------------------------------------------- worker budget


class TestWorkerBudget:
    def test_blocking_and_speculative_acquire(self):
        b = WorkerBudget(2)
        assert b.acquire()
        assert b.acquire(blocking=False)
        assert not b.acquire(blocking=False)  # pool saturated
        b.release()
        assert b.acquire(blocking=False)
        with pytest.raises(ValueError):
            WorkerBudget(0)


# ------------------------------------------------------------- real pool smoke


class TestRealPoolParity:
    def test_context_requires_two_workers(self):
        with pytest.raises(ValueError):
            SearchContext.create(1)

    def test_two_worker_pool_matches_serial_ladder(self):
        """End-to-end: the speculative engine over a real process pool
        returns the exact mapping of the serial in-process ladder."""
        dfg = _sor()
        cgra = CGRA(4, 4)
        serial = map_dfg(dfg, cgra)
        parallel = map_dfg(dfg, cgra, workers=2)
        assert parallel.ii == serial.ii
        assert parallel.placements == serial.placements
        assert parallel.routes == serial.routes
        assert parallel.dfg is dfg and parallel.cgra is cgra
