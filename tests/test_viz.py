"""Smoke and content tests for the text visualisations."""

from __future__ import annotations

import pytest

from repro import viz
from repro.arch.cgra import CGRA
from repro.compiler.ems import map_dfg
from repro.compiler.paged import map_dfg_paged
from repro.core.pagemaster import PageMaster
from repro.core.paging import PageLayout
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def artifacts():
    cgra = CGRA(4, 4, rf_depth=16)
    layout = PageLayout(cgra, (2, 2))
    dfg = get_kernel("sor").build()
    mapping = map_dfg(dfg, cgra)
    paged = map_dfg_paged(dfg, cgra, layout, minimize_pages=False)
    placement = PageMaster(4, paged.ii, 2).place(batches=8)
    return mapping, layout, paged, placement


def test_render_mapping_contains_ops(artifacts):
    mapping, *_ = artifacts
    text = viz.render_mapping(mapping)
    assert "modulo slot 0" in text
    assert "II=" in text
    # every modulo slot rendered
    assert f"modulo slot {mapping.ii - 1}" in text


def test_render_mapping_slot_cap(artifacts):
    mapping, *_ = artifacts
    text = viz.render_mapping(mapping, max_slots=1)
    assert "modulo slot 1" not in text


def test_render_layout_shows_page_indices(artifacts):
    _, layout, _, _ = artifacts
    text = viz.render_layout(layout)
    assert " 0" in text and " 3" in text
    assert len(text.splitlines()) == 1 + layout.cgra.rows


def test_render_layout_marks_uncovered():
    lay = PageLayout(CGRA(6, 6), (2, 4))
    assert ".." in viz.render_layout(lay)


def test_render_page_schedule(artifacts):
    _, _, paged, _ = artifacts
    text = viz.render_page_schedule(paged.page_schedule)
    assert "page 0" in text
    assert "op" in text


def test_render_placement(artifacts):
    *_, placement = artifacts
    text = viz.render_placement(placement)
    assert "c0" in text and "c1" in text
    assert "PageMaster" in text


def test_render_placement_row_cap(artifacts):
    *_, placement = artifacts
    text = viz.render_placement(placement, max_rows=2)
    assert "more rows" in text
