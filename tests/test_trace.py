"""Tests for execution tracing (cycle trace + system timeline)."""

from __future__ import annotations

import pytest

from repro.arch.cgra import CGRA
from repro.compiler.ems import map_dfg
from repro.kernels import bind_memory, get_kernel
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.sim.system import KernelProfile, SystemConfig, simulate_system
from repro.sim.trace import CycleTrace, SystemTimeline
from repro.sim.workload import Segment, ThreadSpec


class TestCycleTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        cgra = CGRA(4, 4, rf_depth=8)
        spec = get_kernel("laplace")
        dfg, arrays, _ = spec.fresh(seed=0, trip=6)
        m = map_dfg(dfg, cgra)
        mem = bind_memory(arrays)
        trace = CycleTrace()
        res = simulate(lower_mapping(m, mem, 6), cgra, mem, trace=trace)
        return res, trace

    def test_records_every_firing(self, traced):
        res, trace = traced
        assert len(trace.records) == res.firings

    def test_records_carry_values(self, traced):
        _, trace = traced
        stores = trace.of_op("st_out")
        assert stores and all(r.opcode == "store" for r in stores)

    def test_at_cycle_filter(self, traced):
        res, trace = traced
        c0 = trace.at_cycle(trace.records[0].cycle)
        assert c0 and all(r.cycle == c0[0].cycle for r in c0)

    def test_render(self, traced):
        _, trace = traced
        text = trace.render(first=0, last=3)
        assert "c0000" in text
        assert "->" in text

    def test_limit_drops(self):
        trace = CycleTrace(limit=2)
        cgra = CGRA(4, 4)
        spec = get_kernel("laplace")
        dfg, arrays, _ = spec.fresh(seed=0, trip=6)
        m = map_dfg(dfg, cgra)
        mem = bind_memory(arrays)
        simulate(lower_mapping(m, mem, 6), cgra, mem, trace=trace)
        assert len(trace.records) == 2 and trace.dropped > 0
        assert "dropped" in trace.render()


class TestSystemTimeline:
    def test_events_recorded(self):
        profiles = {"k": KernelProfile("k", 1, 1, pages_used=4)}
        wl = [
            ThreadSpec(0, (Segment("cgra", kernel="k", trip=10),)),
            ThreadSpec(1, (Segment("cgra", kernel="k", trip=10),)),
        ]
        tl = SystemTimeline()
        simulate_system(
            wl, SystemConfig(n_pages=4, profiles=profiles), "multithreaded",
            timeline=tl,
        )
        kinds = {e.kind for e in tl.events}
        assert "kernel_start" in kinds
        assert "kernel_done" in kinds
        assert "realloc" in kinds  # thread 0 halved when thread 1 arrived

    def test_queue_event_when_saturated(self):
        profiles = {"k": KernelProfile("k", 1, 1, pages_used=1)}
        wl = [
            ThreadSpec(t, (Segment("cgra", kernel="k", trip=5),))
            for t in range(3)
        ]
        tl = SystemTimeline()
        simulate_system(
            wl, SystemConfig(n_pages=2, profiles=profiles), "multithreaded",
            timeline=tl,
        )
        assert tl.of_kind("queued")

    def test_filters_and_render(self):
        tl = SystemTimeline()
        tl.record(1.0, "kernel_start", 0, "k")
        tl.record(2.0, "kernel_done", 0)
        tl.record(1.5, "kernel_start", 1, "k")
        assert len(tl.of_thread(0)) == 2
        assert len(tl.of_kind("kernel_start")) == 2
        text = tl.render()
        assert text.splitlines()[0].startswith("t=")
        assert len(tl.render(max_events=1).splitlines()) == 1
