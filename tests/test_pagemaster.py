"""Tests for the PageMaster transformation (§VI-D, Algorithm 1).

These validate the paper's formal output constraints (§VI-C) from first
principles via :func:`repro.core.transform_check.check_placement`, plus the
steady-state II properties: grouped folds hit the resource bound exactly,
the zigzag satisfies the full ring including the wrap, and shrinking to one
page degenerates to pure sequencing.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pagemaster import PageMaster, steady_state_ii
from repro.core.transform_check import check_placement
from repro.util.errors import ConstraintViolation, TransformError


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(TransformError):
            PageMaster(0, 1, 1)
        with pytest.raises(TransformError):
            PageMaster(4, 0, 1)
        with pytest.raises(TransformError):
            PageMaster(4, 1, 5)  # M > N
        with pytest.raises(TransformError):
            PageMaster(4, 1, 0)
        with pytest.raises(TransformError):
            PageMaster(4, 1, 2, start_page=7)

    def test_checker_catches_slot_collision(self):
        p = PageMaster(2, 1, 1).place(batches=3)
        (col, t) = p.slots[(0, 0)]
        p.slots[(1, 0)] = (col, t)  # corrupt: duplicate slot
        with pytest.raises(ConstraintViolation):
            check_placement(p)

    def test_checker_catches_time_violation(self):
        p = PageMaster(2, 1, 1).place(batches=3)
        c0, t0 = p.slots[(0, 1)]
        p.slots[(0, 1)] = (c0, 0)  # not after its batch-0 dependency
        with pytest.raises(ConstraintViolation):
            check_placement(p)

    def test_checker_catches_column_violation(self):
        p = PageMaster(6, 1, 3, force_zigzag=True).place(batches=4)
        n, b = 2, 2
        _, t = p.slots[(n, b)]
        # move to a free far-away slot: keep time legal, break the column
        p.slots[(n, b)] = (0 if p.slots[(n, b)][0] == 2 else 2, t + 50)
        with pytest.raises(ConstraintViolation):
            check_placement(p)


class TestGroupedFold:
    @pytest.mark.parametrize("n,m", [(4, 1), (4, 2), (4, 4), (8, 2), (6, 3), (9, 3)])
    def test_hits_resource_bound_exactly(self, n, m):
        for ii in (1, 3):
            p = PageMaster(n, ii, m).place()
            assert p.strategy == "grouped"
            check_placement(p)
            assert p.ii_q_effective() == p.ii_q_bound() == Fraction(n * ii, m)

    def test_m_equals_n_is_identity_rate(self):
        p = PageMaster(5, 3, 5).place()
        assert p.ii_q_effective() == 3

    def test_single_page_is_pure_sequencing(self):
        """Fig. 6: all pages onto one page, one instance per cycle."""
        p = PageMaster(4, 2, 1).place(batches=6)
        check_placement(p)
        times = sorted(t for (_, t) in p.slots.values())
        assert times == list(range(len(p.slots)))  # dense, no holes

    def test_every_slot_filled(self):
        p = PageMaster(6, 2, 2).place(batches=8)
        used = {(c, t) for (c, t) in p.slots.values()}
        assert len(used) == len(p.slots)
        # dense prefix in each column
        for col in range(2):
            col_times = sorted(t for (c, t) in used if c == col)
            assert col_times == list(range(len(col_times)))

    def test_wrap_used_forces_zigzag(self):
        p = PageMaster(4, 1, 2, wrap_used=True).place()
        assert p.strategy == "zigzag"


class TestZigzag:
    @pytest.mark.parametrize(
        "n,m", [(4, 3), (5, 2), (5, 3), (5, 4), (6, 5), (7, 3), (9, 4), (16, 5)]
    )
    def test_constraints_hold(self, n, m):
        p = PageMaster(n, 2, m).place()
        assert p.strategy == "zigzag"
        check_placement(p)

    @pytest.mark.parametrize("n,m", [(4, 4), (6, 6), (8, 4), (6, 2)])
    def test_forced_zigzag_satisfies_full_ring(self, n, m):
        p = PageMaster(n, 1, m, force_zigzag=True).place()
        check_placement(p, require_wrap=True)

    def test_periodicity_detected(self):
        p = PageMaster(6, 2, 5).place()
        assert p.period_batches is not None and p.period_batches > 0
        assert p.period_rows is not None and p.period_rows > 0

    def test_effective_ii_at_least_bound(self):
        for n, m in [(5, 2), (7, 4), (9, 5)]:
            p = PageMaster(n, 2, m).place()
            assert p.ii_q_effective() >= p.ii_q_bound()

    def test_fig7_case_n6_m5(self):
        """The paper's worked example: 6 pages onto 5 columns."""
        p = PageMaster(6, 1, 5).place()
        check_placement(p, require_wrap=True)
        # batch 0 follows the zigzag scheduling line: start page at column
        # 0, ring neighbours fanning outward
        assert p.col(0, 0) == 0
        assert p.col(5, 0) == 1
        assert p.col(1, 0) == 2
        # the leftover page is a tail in a boundary column
        assert p.col(3, 0) in (0, 4)

    def test_start_page_rotates_line(self):
        p = PageMaster(6, 1, 5, start_page=2).place(batches=3)
        assert p.col(2, 0) == 0
        check_placement(p)

    def test_no_irregular_placements_in_standard_configs(self):
        for n, m in [(4, 3), (6, 5), (8, 5), (8, 7), (16, 9)]:
            p = PageMaster(n, 1, m).place()
            assert p.irregular == 0, (n, m)


class TestSteadyStateII:
    def test_exact_for_divisible(self):
        assert steady_state_ii(8, 3, 4) == Fraction(6)

    def test_monotone_in_m(self):
        vals = [steady_state_ii(6, 2, m) for m in range(1, 7)]
        assert all(vals[i] >= vals[i + 1] for i in range(len(vals) - 1))

    @given(
        n=st.integers(1, 12),
        ii=st.integers(1, 4),
        m_frac=st.floats(0.01, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_bound_and_validity(self, n, ii, m_frac):
        m = max(1, min(n, round(m_frac * n)))
        pm = PageMaster(n, ii, m)
        p = pm.place()
        check_placement(p)
        assert p.ii_q_effective() >= p.ii_q_bound()
        if n % m == 0:
            assert p.ii_q_effective() == p.ii_q_bound()

    @given(n=st.integers(2, 10), ii=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_property_zigzag_always_valid(self, n, ii):
        for m in range(1, n + 1):
            p = PageMaster(n, ii, m, force_zigzag=True).place()
            check_placement(p, require_wrap=True)
