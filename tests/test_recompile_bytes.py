"""Regression: cold compilation reproduces the committed artifact store.

The repository commits its compiled-kernel artifacts (``.repro_artifacts``
at the repo root, content-addressed over DFG/arch/mapper fingerprints).
Those bytes are the mapper's observable behaviour: II, placements, routes,
steady-state IIs, serialised canonically.  Any change to candidate
ordering, route tie-breaking, or search pruning that alters results shows
up here as a byte diff — which is exactly the check the integer-indexed
mapper rewrite had to pass, kept as a permanent test so future "harmless"
refactors can't silently change schedules.

Only the sub-second kernels are recompiled (the full 4x4 suite, sobel and
fft included, is exercised by ``python -m repro.bench compile-speed``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.pipeline.compile import CompileJob, compile_many, job_key
from repro.pipeline.store import ArtifactStore

REPO_STORE = Path(__file__).resolve().parents[1] / ".repro_artifacts"

FAST_JOBS = [
    CompileJob(kernel, 4, page_size)
    for kernel in ("mpeg", "sor", "gsr", "laplace", "wavelet")
    for page_size in (2, 4)
]


@pytest.mark.parametrize(
    "job", FAST_JOBS, ids=lambda j: f"{j.kernel}-ps{j.page_size}"
)
def test_cold_recompile_is_byte_identical(job, tmp_path):
    committed = ArtifactStore(REPO_STORE).path_for(job_key(job))
    if not committed.exists():
        pytest.skip(f"no committed artifact for {job.kernel} (store not present)")
    fresh = ArtifactStore(tmp_path / "store")
    compile_many([job], store=fresh)
    produced = fresh.path_for(job_key(job))
    assert produced.exists(), "cold compile did not write its artifact"
    assert produced.read_bytes() == committed.read_bytes(), (
        f"{job.kernel} ps={job.page_size}: recompiled artifact differs from "
        f"the committed store — the mapper's behaviour changed"
    )


@pytest.mark.parametrize("workers", [2, 4])
def test_speculative_recompile_is_byte_identical(workers, tmp_path):
    """The speculative portfolio engine (out-of-order parallel probes with
    canonical reduction, :mod:`repro.compiler.search`) must reproduce the
    committed store bytes at any worker count."""
    store = ArtifactStore(REPO_STORE)
    jobs = [j for j in FAST_JOBS if store.path_for(job_key(j)).exists()]
    if not jobs:
        pytest.skip("committed artifact store not present")
    fresh = ArtifactStore(tmp_path / "store")
    compile_many(jobs, store=fresh, workers=workers)
    for job in jobs:
        produced = fresh.path_for(job_key(job))
        committed = store.path_for(job_key(job))
        assert produced.read_bytes() == committed.read_bytes(), (
            f"{job.kernel} ps={job.page_size} @ workers={workers}: "
            f"speculative compile diverged from the serial artifact"
        )
