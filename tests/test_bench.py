"""Tests for the experiment harness itself (artifact cache, figure drivers,
CLI registry) — using a small kernel subset so they stay fast."""

from __future__ import annotations

import json

import pytest

from repro.arch.cgra import CGRA
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.fig8 import page_sizes_for, render_fig8, run_fig8
from repro.bench.fig9 import best_improvement, render_fig9, run_fig9
from repro.pipeline import (
    ARTIFACT_VERSION,
    ArtifactStore,
    CompileJob,
    build_profiles,
    compile_kernel,
    job_key,
    make_layout,
)

FAST = ["sor", "laplace", "wavelet"]


@pytest.fixture()
def tmp_store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_store):
        a1 = compile_kernel("sor", 4, 4, store=tmp_store)
        a2 = compile_kernel("sor", 4, 4, store=tmp_store)
        assert a1 == a2
        assert tmp_store.stats()["misses"] == 1
        assert tmp_store.stats()["hits"] == 1
        path = tmp_store.path_for(a1.key)
        assert path.exists()
        assert json.loads(path.read_text())["version"] == ARTIFACT_VERSION

    def test_cache_survives_reload(self, tmp_store):
        compile_kernel("sor", 4, 4, store=tmp_store)
        fresh = ArtifactStore(tmp_store.root)
        key = job_key(CompileJob("sor", 4, 4))
        assert fresh.get(key) is not None
        assert fresh.hits == 1

    def test_version_mismatch_discards(self, tmp_store, caplog):
        compile_kernel("sor", 4, 4, store=tmp_store)
        key = job_key(CompileJob("sor", 4, 4))
        path = tmp_store.path_for(key)
        raw = json.loads(path.read_text())
        raw["version"] = -1
        path.write_text(json.dumps(raw))
        fresh = ArtifactStore(tmp_store.root)
        with caplog.at_level("WARNING", logger="repro.pipeline.store"):
            assert fresh.get(key) is None
        assert fresh.misses == 1
        assert any("incompatible" in r.message for r in caplog.records)

    def test_corrupt_cache_tolerated_and_logged(self, tmp_store, caplog):
        key = job_key(CompileJob("sor", 4, 4))
        path = tmp_store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        with caplog.at_level("WARNING", logger="repro.pipeline.store"):
            assert tmp_store.get(key) is None
        assert any("unreadable" in r.message for r in caplog.records)

    def test_profile_fields(self, tmp_store):
        p = compile_kernel("sor", 4, 4, store=tmp_store).profile()
        assert p.name == "sor"
        assert p.ii_base >= 1 and p.ii_paged >= 1
        assert p.pages_used >= 1

    def test_build_profiles_subset(self, tmp_store):
        profs = build_profiles(4, 4, store=tmp_store, kernels=FAST)
        assert set(profs) == set(FAST)


class TestFigureDrivers:
    def test_page_sizes_per_paper(self):
        assert page_sizes_for(4) == [2, 4]
        assert page_sizes_for(6) == [2, 4, 8]
        assert page_sizes_for(8) == [2, 4, 8]

    def test_fig8_rows_and_render(self, tmp_store):
        rows = run_fig8(4, page_sizes=[4], store=tmp_store, kernels=FAST)
        assert len(rows) == len(FAST)
        text = render_fig8(4, rows)
        assert "sor" in text and "average" in text

    def test_fig9_cells_and_render(self, tmp_store):
        cells = run_fig9(
            4,
            4,
            store=tmp_store,
            kernels=FAST,
            repeats=1,
            thread_counts=(1, 4),
            needs=(0.5,),
        )
        assert len(cells) == 2
        text = render_fig9(4, 4, cells)
        assert "threads" in text
        four = next(c for c in cells if c.n_threads == 4)
        one = next(c for c in cells if c.n_threads == 1)
        assert four.improvement > one.improvement
        assert best_improvement(cells) == max(c.improvement for c in cells)

    def test_fig9_empty_without_kernels(self, tmp_store):
        assert run_fig9(4, 4, store=tmp_store, kernels=[]) == []

    def test_make_layout_square(self):
        lay = make_layout(CGRA(4, 4), 4)
        assert lay.shape == (2, 2)


class TestRegistry:
    def test_all_experiments_named(self):
        for name in (
            "fig8_4x4",
            "fig8_6x6",
            "fig8_8x8",
            "fig9_4x4",
            "fig9_6x6",
            "fig9_8x8",
            "headline",
        ):
            assert name in EXPERIMENTS

    def test_run_experiment_uses_shared_cache(self):
        # the repo-level artifact store is warm (committed), so this is fast
        out = run_experiment("fig8_4x4")
        assert "Fig. 8" in out


class TestReporting:
    def test_fig8_records_roundtrip(self, tmp_store, tmp_path):
        import json

        from repro.bench.reporting import fig8_to_records, write_csv, write_json

        rows = run_fig8(4, page_sizes=[4], store=tmp_store, kernels=FAST)
        records = fig8_to_records(4, rows)
        assert len(records) == len(FAST)
        assert all(r["experiment"] == "fig8" for r in records)
        jpath = write_json(records, tmp_path / "out.json")
        assert json.loads(jpath.read_text()) == records
        cpath = write_csv(records, tmp_path / "out.csv")
        lines = cpath.read_text().strip().splitlines()
        assert len(lines) == len(records) + 1
        assert "kernel" in lines[0]

    def test_fig9_records(self, tmp_store):
        from repro.bench.reporting import fig9_to_records

        cells = run_fig9(
            4, 4, store=tmp_store, kernels=FAST, repeats=1,
            thread_counts=(1, 2), needs=(0.5,),
        )
        records = fig9_to_records(4, 4, cells)
        assert len(records) == 2
        assert {r["threads"] for r in records} == {1, 2}

    def test_empty_csv_rejected(self, tmp_path):
        from repro.bench.reporting import write_csv
        from repro.util.errors import ReproError

        with pytest.raises(ReproError):
            write_csv([], tmp_path / "e.csv")

    def test_unmappable_marked(self, tmp_store):
        from repro.bench.reporting import fig8_to_records
        from repro.bench.fig8 import Fig8Row

        rows = [Fig8Row("sobel", 4, {2: None, 4: 0.5})]
        records = fig8_to_records(4, rows)
        assert records[0]["mappable"] is False
        assert records[1]["performance"] == 0.5


class TestCLI:
    def test_list(self, capsys):
        from repro.bench.experiments import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8_4x4" in out and "headline" in out

    def test_single_experiment_with_json(self, capsys, tmp_path):
        import json

        from repro.bench.experiments import main

        out_path = tmp_path / "fig9.json"
        assert main(["fig9_4x4", "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out
        assert "[cache]" in out  # hit/miss counters are reported
        records = json.loads(out_path.read_text())
        assert records and records[0]["experiment"] == "fig9"


class TestPolicyTournament:
    def _tournament(self, **kw):
        from repro.bench.policies import run_tournament

        defaults = dict(n_threads=40, n_pages=8, seed=3)
        defaults.update(kw)
        return run_tournament(**defaults)

    def test_all_policies_all_series(self):
        from repro.bench.policies import SERIES, run_tournament

        results = self._tournament()
        assert set(results) == set(SERIES)
        for rows in results.values():
            assert set(rows) == {
                "halving",
                "need-aware",
                "fair-share",
                "static-equal",
                "best-fit",
                "priority-evict",
            }
            for m in rows.values():
                assert m["makespan"] > 0
                assert 0 <= m["cgra_utilization"] <= 1
                assert m["turnaround_p99"] >= m["turnaround_p50"] > 0

    def test_leaderboard_deterministic_and_ranked(self):
        from repro.bench.policies import leaderboard

        a = leaderboard(self._tournament())
        b = leaderboard(self._tournament())
        # wall clock differs run to run; ranking ignores it entirely
        assert a == b
        assert [r["rank"] for r in a] == list(range(1, len(a) + 1))
        assert a[0]["score"] == 1.0 or a[0]["score"] < a[-1]["score"]

    def test_smoke_subset_verifies_against_oracle(self):
        from repro.bench.policies import leaderboard, run_tournament

        # the CI smoke path: tiny, two policies, oracle-replayed
        results = run_tournament(
            n_threads=10,
            n_pages=4,
            seed=1,
            policies=["halving", "best-fit"],
            verify=True,
        )
        board = leaderboard(results)
        assert {r["policy"] for r in board} == {"halving", "best-fit"}

    def test_bench_file_roundtrip(self, tmp_path):
        from repro.bench.policies import (
            leaderboard,
            update_bench_file,
        )

        results = self._tournament()
        board = leaderboard(results)
        scale = {
            "1k-saturated": {
                "seconds": 1.0,
                "n_threads": 1000,
                "makespan": 10.0,
                "reallocations": 5,
            }
        }
        path = tmp_path / "bench.json"
        update_bench_file(
            scale, results, board, label="first", seed=3, path=path
        )
        scale2 = dict(scale)
        scale2["1k-saturated"] = dict(scale["1k-saturated"], seconds=0.5)
        data = update_bench_file(
            scale2, results, board, label="second", seed=3, path=path
        )
        assert [e["label"] for e in data["entries"]] == ["first", "second"]
        from repro.bench.policies import _speedups

        assert _speedups(data)["1k-saturated"] == 2.0
