"""Tests for the compile service: protocol validation, fair scheduling,
singleflight coalescing, cooperative cancellation, and byte parity between
served responses and offline ``compile_many`` output."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.compiler.search import CancelledSearch, SearchContext
from repro.pipeline import (
    ArtifactStore,
    CompileJob,
    compile_job,
    compile_many,
    job_key,
)
from repro.serve.loadgen import ServeClient, build_schedule, percentile
from repro.serve.protocol import CompileRequest, ProtocolError
from repro.serve.scheduler import CancelToken, FairScheduler, RequestCancelled
from repro.serve.server import ServeServer
from repro.serve.service import CompileService, ServiceConfig
from repro.serve.singleflight import Singleflight


# ------------------------------------------------------------------- protocol


class TestProtocol:
    def test_minimal_request(self):
        req = CompileRequest.from_dict({"kernel": "sor"})
        assert req.size == 4 and req.page_size == 4
        assert req.tenant == "default" and req.priority == 0
        job = req.to_job()
        assert job == CompileJob("sor", 4, 4)

    def test_full_request_roundtrip(self):
        req = CompileRequest.from_dict(
            {
                "kernel": "mpeg",
                "size": 6,
                "page_size": 2,
                "prefer": "column",
                "seed": 3,
                "backend": "hier",
                "tenant": "alpha",
                "priority": 5,
                "request_id": "r-1",
            }
        )
        job = req.to_job()
        assert job.kernel == "mpeg" and job.backend == "hier"
        assert job.prefer == "column" and job.seed == 3

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request field"):
            CompileRequest.from_dict({"kernel": "sor", "kernal": "typo"})

    def test_missing_kernel_rejected(self):
        with pytest.raises(ProtocolError, match="kernel"):
            CompileRequest.from_dict({"size": 4})

    @pytest.mark.parametrize(
        "patch",
        [
            {"size": "4"},
            {"size": True},
            {"page_size": 0},
            {"priority": 1.5},
            {"prefer": "diagonal"},
            {"backend": "quantum"},
            {"tenant": ""},
            {"request_id": 7},
        ],
    )
    def test_bad_fields_rejected(self, patch):
        with pytest.raises(ProtocolError):
            CompileRequest.from_dict({"kernel": "sor", **patch})

    def test_percentile_nearest_rank(self):
        values = sorted(float(v) for v in range(1, 11))
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.99) == 10.0
        assert percentile([], 0.5) == 0.0

    def test_schedule_deterministic(self):
        jobs = [{"kernel": "sor", "size": 4, "page_size": 2}]
        a = build_schedule(jobs, n_requests=10, tenants=["t0", "t1"], seed=7)
        b = build_schedule(jobs, n_requests=10, tenants=["t0", "t1"], seed=7)
        assert a == b
        assert {p["tenant"] for p in a} == {"t0", "t1"}


# ------------------------------------------------------------------ scheduler


def _run(coro):
    return asyncio.run(coro)


class TestFairScheduler:
    def test_priority_order_within_tenant(self):
        async def body():
            sched = FairScheduler(1)
            order: list[str] = []

            def make(label):
                async def work(token):
                    order.append(label)
                    return label

                return work

            reqs = [
                sched.submit(make("low"), priority=0),
                sched.submit(make("high"), priority=2),
                sched.submit(make("mid"), priority=1),
            ]
            sched.start()
            await asyncio.gather(*(r.future for r in reqs))
            await sched.stop()
            return order

        assert _run(body()) == ["high", "mid", "low"]

    def test_weighted_round_robin(self):
        async def body():
            sched = FairScheduler(1, weights={"a": 2})
            order: list[str] = []

            def make(label):
                async def work(token):
                    order.append(label)

                return work

            for label in ("a1", "a2", "a3"):
                sched.submit(make(label), tenant="a")
            reqs = [sched.submit(make(label), tenant="b") for label in ("b1", "b2", "b3")]
            sched.submit(make("a-last"), tenant="a")
            sched.start()
            await asyncio.sleep(0)
            while sched.queued() or sched.stats()["running"]:
                await asyncio.sleep(0.01)
            await sched.stop()
            return order

        order = _run(body())
        # tenant a (weight 2) gets two dispatches per cycle, b (weight 1) one
        assert order[:3] == ["a1", "a2", "b1"]
        assert set(order) == {"a1", "a2", "a3", "a-last", "b1", "b2", "b3"}

    def test_cancelled_queued_request_never_dispatches(self):
        async def body():
            sched = FairScheduler(1)
            release = asyncio.Event()
            ran: list[str] = []

            async def blocker(token):
                await release.wait()
                ran.append("blocker")

            async def victim_work(token):  # pragma: no cover - must not run
                ran.append("victim")

            blocker_req = sched.submit(blocker)
            victim = sched.submit(victim_work)
            sched.start()
            await asyncio.sleep(0.01)  # blocker occupies the only slot
            victim.token.cancel()
            release.set()
            await blocker_req.future
            with pytest.raises(RequestCancelled):
                await victim.future
            stats = sched.stats()
            await sched.stop()
            return ran, stats

        ran, stats = _run(body())
        assert ran == ["blocker"]
        assert stats["cancelled_queued"] == 1
        assert stats["dispatched"] == 1

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            FairScheduler(0)
        with pytest.raises(ValueError):
            FairScheduler(1, weights={"a": 0})


# --------------------------------------------------------------- singleflight


class TestSingleflight:
    def test_join_coalesces_and_leave_refcounts(self):
        async def body():
            sf = Singleflight()
            flight, leader = sf.join("d1")
            assert leader and len(sf) == 1
            same, second_leader = sf.join("d1")
            assert same is flight and not second_leader
            assert sf.coalesced == 1
            sf.resolve(flight, "result")
            assert len(sf) == 0
            sf.leave(flight)
            sf.leave(flight)
            assert not flight.token.cancelled  # resolved before last leave
            return await flight.future

        assert _run(body()) == "result"

    def test_last_leave_fires_cancel_token(self):
        async def body():
            sf = Singleflight()
            flight, _ = sf.join("d2")
            other, _ = sf.join("d2")
            sf.leave(flight)
            assert not flight.token.cancelled  # one waiter still attached
            sf.leave(other)
            assert flight.token.cancelled
            assert sf.cancelled_flights == 1

        _run(body())


# -------------------------------------------------------- service end to end


def _request(kernel="sor", **kw):
    return CompileRequest.from_dict({"kernel": kernel, "page_size": 2, **kw})


class TestCompileService:
    def test_identical_concurrent_requests_compile_once(self, tmp_path, monkeypatch):
        """N identical concurrent requests must trigger exactly one mapper
        invocation; everyone gets the identical bytes."""
        import repro.serve.service as service_mod

        calls: list[str] = []
        real = service_mod.compile_job

        def counting(job, search=None):
            calls.append(job.kernel)
            return real(job, search=search)

        monkeypatch.setattr(service_mod, "compile_job", counting)

        async def body():
            config = ServiceConfig(store_root=str(tmp_path), workers=1, slots=2)
            async with CompileService(config) as service:
                results = await asyncio.gather(
                    *(service.submit(_request()) for _ in range(6))
                )
                stats = service.stats()
            return results, stats

        results, stats = _run(body())
        assert len(calls) == 1
        assert all(r.ok for r in results)
        assert len({r.body for r in results}) == 1
        assert sorted(r.source for r in results) == ["coalesced"] * 5 + ["compiled"]
        assert stats["compiles"] == 1 and stats["coalesced"] == 5
        assert stats["singleflight"]["flights_started"] == 1

    def test_distinct_requests_all_compile(self, tmp_path):
        async def body():
            config = ServiceConfig(store_root=str(tmp_path), workers=1, slots=2)
            async with CompileService(config) as service:
                results = await asyncio.gather(
                    service.submit(_request("sor")),
                    service.submit(_request("mpeg")),
                )
                # a repeat after resolution is a store hit, not a coalesce
                warm = await service.submit(_request("sor"))
                stats = service.stats()
            return results, warm, stats

        results, warm, stats = _run(body())
        assert all(r.ok for r in results)
        assert warm.ok and warm.source == "hit"
        assert stats["compiles"] == 2 and stats["hits"] == 1

    def test_unknown_kernel_is_structured_error(self, tmp_path):
        async def body():
            config = ServiceConfig(store_root=str(tmp_path), workers=1, slots=1)
            async with CompileService(config) as service:
                result = await service.submit(_request("no-such-kernel"))
                stats = service.stats()
            return result, stats

        result, stats = _run(body())
        assert not result.ok
        assert result.error == "WorkloadError"
        assert stats["errors"] == 1

    def test_cancel_queued_request_drops_compile(self, tmp_path, monkeypatch):
        """Cancelling the only waiter of a queued compile drops it: the
        mapper never runs for it and nothing lands in the store."""
        import repro.serve.service as service_mod

        real = service_mod.compile_job

        def slow(job, search=None):
            time.sleep(0.3)
            return real(job, search=search)

        monkeypatch.setattr(service_mod, "compile_job", slow)

        async def body():
            config = ServiceConfig(store_root=str(tmp_path), workers=1, slots=1)
            async with CompileService(config) as service:
                leader = asyncio.ensure_future(service.submit(_request("sor")))
                await asyncio.sleep(0.1)  # leader occupies the only slot
                victim = asyncio.ensure_future(
                    service.submit(_request("mpeg", request_id="victim"))
                )
                await asyncio.sleep(0.05)
                assert await service.cancel("victim")
                res_victim = await victim
                res_leader = await leader
                stats = service.stats()
            return res_leader, res_victim, stats

        res_leader, res_victim, stats = _run(body())
        assert res_leader.ok
        assert not res_victim.ok and res_victim.error == "RequestCancelled"
        assert stats["cancelled"] == 1
        assert stats["store"]["puts"] == 1  # only the leader's artifact
        assert stats["scheduler"]["cancelled_queued"] == 1

    def test_cancel_unknown_request_is_false(self, tmp_path):
        async def body():
            config = ServiceConfig(store_root=str(tmp_path), workers=1, slots=1)
            async with CompileService(config) as service:
                return await service.cancel("nope")

        assert _run(body()) is False


class TestMidLadderCancellation:
    def test_preset_token_stops_ladder(self):
        """A fired cancel token stops the portfolio ladder at a probe
        boundary with CancelledSearch — which is deliberately NOT a
        MappingError, so a cancelled compile can never be stored as a
        bogus 'unmappable' artifact."""
        from repro.util.errors import MappingError

        assert not issubclass(CancelledSearch, MappingError)
        token = CancelToken()
        token.cancel()
        with SearchContext.create(2) as ctx:
            view = ctx.for_request(token.is_set)
            assert view.executor is ctx.executor  # shares the warm pool
            with pytest.raises(CancelledSearch):
                compile_job(CompileJob("sor", 4, 2), search=view)


# ----------------------------------------------------- HTTP server + parity


def _offline_bytes(job: CompileJob, root) -> bytes:
    store = ArtifactStore(root)
    compile_many([job], store=store)
    return store.path_for(job_key(job)).read_bytes()


class TestServeServer:
    def test_served_bytes_match_offline_compile_many(self, tmp_path):
        """The tentpole's acceptance bar: responses byte-identical to
        offline compile_many output, at any concurrency."""
        payloads = [
            {"kernel": "sor", "size": 4, "page_size": 2},
            {"kernel": "mpeg", "size": 4, "page_size": 2},
        ]

        async def body():
            config = ServiceConfig(
                store_root=str(tmp_path / "served"), workers=1, slots=2
            )
            async with ServeServer(config) as server:
                async with ServeClient(server.host, server.port) as client:
                    out = {}
                    for payload in payloads:
                        # twice each: a cold compile and a warm hit must
                        # serve the same bytes
                        status, headers, cold = await client.compile(payload)
                        assert status == 200
                        status, headers, warm = await client.compile(payload)
                        assert status == 200
                        assert headers["x-repro-source"] == "hit"
                        assert cold == warm
                        out[payload["kernel"]] = cold
            return out

        served = _run(body())
        for payload in payloads:
            job = CompileJob(payload["kernel"], 4, 2)
            offline = _offline_bytes(job, tmp_path / f"offline-{job.kernel}")
            assert served[job.kernel] == offline

    def test_http_endpoints_and_errors(self, tmp_path):
        async def body():
            config = ServiceConfig(store_root=str(tmp_path), workers=1, slots=1)
            async with ServeServer(config) as server:
                async with ServeClient(server.host, server.port) as client:
                    health = await client.request("GET", "/healthz")
                    stats = await client.request("GET", "/stats")
                    missing = await client.request("GET", "/no-such-route")
                    bad_method = await client.request("GET", "/compile")
                    unknown_kernel = await client.compile({"kernel": "nope"})
                    bad_field = await client.compile({"kernel": "sor", "oops": 1})
                    ping = await client.request(
                        "POST", "/rpc", {"jsonrpc": "2.0", "id": 1, "method": "ping"}
                    )
                    bad_rpc = await client.request(
                        "POST", "/rpc", {"jsonrpc": "2.0", "id": 2, "method": "nope"}
                    )
            return (
                health,
                stats,
                missing,
                bad_method,
                unknown_kernel,
                bad_field,
                ping,
                bad_rpc,
            )

        import json

        health, stats, missing, bad_method, unknown, bad_field, ping, bad_rpc = _run(
            body()
        )
        assert health[0] == 200 and json.loads(health[2]) == {"ok": True}
        assert stats[0] == 200 and "requests" in json.loads(stats[2])
        assert missing[0] == 404
        assert bad_method[0] == 405
        assert unknown[0] == 404
        assert json.loads(unknown[2])["error"] == "WorkloadError"
        assert bad_field[0] == 400
        assert ping[0] == 200 and json.loads(ping[2])["result"] == "pong"
        assert json.loads(bad_rpc[2])["error"]["code"] == -32601

    def test_rpc_compile_returns_artifact(self, tmp_path):
        async def body():
            config = ServiceConfig(store_root=str(tmp_path), workers=1, slots=1)
            async with ServeServer(config) as server:
                async with ServeClient(server.host, server.port) as client:
                    status, _headers, body_bytes = await client.request(
                        "POST",
                        "/rpc",
                        {
                            "jsonrpc": "2.0",
                            "id": 9,
                            "method": "compile",
                            "params": {"kernel": "sor", "page_size": 2},
                        },
                    )
            return status, body_bytes

        import json

        status, body_bytes = _run(body())
        assert status == 200
        envelope = json.loads(body_bytes)
        assert envelope["id"] == 9
        artifact = envelope["result"]["artifact"]
        assert artifact["kernel"] == "sor"
        assert envelope["result"]["digest"] == job_key(CompileJob("sor", 4, 2)).digest
