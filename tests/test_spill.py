"""Tests for memory spilling of long-lived temporaries (§VI-B's explicit
register-usage mechanism)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.cgra import CGRA
from repro.arch.isa import Opcode
from repro.compiler.check import validate_mapping
from repro.compiler.ems import map_dfg
from repro.dfg.builder import DFGBuilder
from repro.dfg.spill import (
    TMP_ARRAY_PREFIX,
    bind_spill_arrays,
    spill_candidates,
    spill_long_edges,
)
from repro.dfg.validate import validate_dfg
from repro.kernels import bind_memory, get_kernel
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.sim.reference import run_reference
from repro.util.errors import GraphError


def deep_dfg(levels: int = 8):
    """A chain with a long skip edge from the first load to the last add."""
    b = DFGBuilder("deep")
    first = b.load("in")
    x = first
    for _ in range(levels):
        x = b.add(x, b.const(1))
    out = b.add(x, first)  # long edge: first -> here
    b.store("out", out)
    return b.build()


class TestCandidates:
    def test_long_edge_found(self):
        g = deep_dfg()
        cands = spill_candidates(g, threshold=4)
        assert len(cands) == 1

    def test_threshold_filters(self):
        g = deep_dfg()
        assert spill_candidates(g, threshold=100) == []

    def test_const_and_carried_edges_never_spilled(self):
        b = DFGBuilder("rec")
        ph = b.placeholder("ph")
        x = b.load("in")
        y = x
        for _ in range(8):
            y = b.add(y, b.const(3))
        cur = b.add(y, ph)
        b.store("out", cur)
        b.bind_carry(ph, cur, distance=1, init=(0,))
        g = b.build()
        spilled, _n = spill_long_edges(g, threshold=2)
        for e in spilled.edges.values():
            assert e.distance == 0 or not spilled.ops[e.src].memref

    def test_bad_threshold(self):
        with pytest.raises(GraphError):
            spill_candidates(deep_dfg(), threshold=0)


class TestRewrite:
    def test_adds_store_loadt_pair(self):
        g = deep_dfg()
        spilled, n = spill_long_edges(g, threshold=4)
        assert n == 1
        validate_dfg(spilled)
        assert spilled.num_ops == g.num_ops + 2
        opcodes = [op.opcode for op in spilled.ops.values()]
        assert Opcode.LOADT in opcodes

    def test_no_op_when_nothing_long(self):
        g = deep_dfg()
        spilled, n = spill_long_edges(g, threshold=50)
        assert n == 0 and spilled.num_ops == g.num_ops

    def test_reference_equivalence(self):
        g = deep_dfg()
        spilled, _ = spill_long_edges(g, threshold=4, ring=6)
        trip = 15
        arrays = {
            "in": np.arange(1, trip + 1, dtype=np.int64),
            "out": np.zeros(trip, dtype=np.int64),
        }
        ref = run_reference(g, {k: v.copy() for k, v in arrays.items()}, trip)
        arr2 = {k: v.copy() for k, v in arrays.items()}
        for op in spilled.ops.values():
            if op.memref and op.memref.array.startswith(TMP_ARRAY_PREFIX):
                arr2.setdefault(
                    op.memref.array, np.zeros(op.memref.ring, dtype=np.int64)
                )
        got = run_reference(spilled, arr2, trip)
        assert np.array_equal(got["out"], ref["out"])

    def test_mapped_and_simulated_equivalence(self):
        trip = 18
        cgra = CGRA(4, 4, rf_depth=8)
        spec = get_kernel("lowpass")
        dfg, arrays, expected = spec.fresh(seed=5, trip=trip)
        spilled, n = spill_long_edges(dfg, threshold=2)
        assert n >= 1
        m = map_dfg(spilled, cgra)
        validate_mapping(m)
        mem = bind_memory(arrays)
        bind_spill_arrays(spilled, mem)
        simulate(lower_mapping(m, mem, trip), cgra, mem)
        snap = mem.snapshot()
        for arr in expected:
            assert np.array_equal(snap[arr], expected[arr]), arr

    def test_spill_reduces_route_slots_on_deep_graph(self):
        """The point of the constraint: memory round trips replace long
        slot-burning route chains."""
        from repro.compiler.constraints import register_usage_report

        cgra = CGRA(4, 4, rf_depth=8)
        g = deep_dfg(levels=10)
        plain = map_dfg(g, cgra)
        spilled, _ = spill_long_edges(g, threshold=3)
        after = map_dfg(spilled, cgra)
        plain_slots = sum(register_usage_report(plain).values())
        spilled_slots = sum(register_usage_report(after).values())
        assert spilled_slots < plain_slots
