"""Baseline mapper tests: II quality, validity, determinism, and functional
end-to-end equivalence with the reference interpreter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.cgra import CGRA
from repro.compiler.check import validate_mapping
from repro.compiler.ems import EMSMapper, MapperConfig, map_dfg
from repro.dfg.analysis import mii, rec_mii
from repro.dfg.builder import DFGBuilder
from repro.kernels import bind_memory, get_kernel
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.util.errors import MappingError

FAST_KERNELS = ["mpeg", "sor", "laplace", "wavelet", "swim", "compress"]


@pytest.fixture(scope="module")
def mapped44():
    cgra = CGRA(4, 4, rf_depth=8)
    out = {}
    for name in FAST_KERNELS:
        dfg = get_kernel(name).build()
        out[name] = (dfg, map_dfg(dfg, cgra))
    return cgra, out


class TestMappingQuality:
    def test_all_fast_kernels_map(self, mapped44):
        _, mapped = mapped44
        assert set(mapped) == set(FAST_KERNELS)

    def test_mappings_validate(self, mapped44):
        _, mapped = mapped44
        for name, (dfg, m) in mapped.items():
            validate_mapping(m)

    def test_recurrence_kernels_hit_rec_mii(self, mapped44):
        _, mapped = mapped44
        for name in ("sor", "compress"):
            dfg, m = mapped[name]
            assert m.ii == rec_mii(dfg), name

    def test_ii_at_most_small_multiple_of_mii(self, mapped44):
        cgra, mapped = mapped44
        for name, (dfg, m) in mapped.items():
            bound = mii(dfg, cgra.num_pes, cgra.rows * cgra.mem_ports_per_row)
            assert m.ii <= 3 * bound, (name, m.ii, bound)

    def test_deterministic(self):
        cgra = CGRA(4, 4)
        dfg = get_kernel("mpeg").build()
        m1 = map_dfg(dfg, cgra, config=MapperConfig(seed=3))
        m2 = map_dfg(dfg, cgra, config=MapperConfig(seed=3))
        assert m1.ii == m2.ii
        assert m1.placements == m2.placements

    def test_min_ii_respected(self):
        cgra = CGRA(4, 4)
        dfg = get_kernel("laplace").build()
        m = map_dfg(dfg, cgra, min_ii=5)
        assert m.ii >= 5

    def test_consts_not_placed(self, mapped44):
        _, mapped = mapped44
        for name, (dfg, m) in mapped.items():
            const_ids = {
                op.id for op in dfg.ops.values() if op.opcode.value == "const"
            }
            assert not const_ids & set(m.placements)

    def test_unmappable_raises(self):
        cgra = CGRA(2, 2)
        b = DFGBuilder("too_big")
        x = b.load("in")
        for _ in range(40):
            x = b.add(x, b.load("in2"))
        b.store("out", x)
        dfg = b.build()
        with pytest.raises(MappingError):
            EMSMapper(cgra, config=MapperConfig(max_ii=2)).map(dfg)

    def test_empty_dfg_rejected(self):
        from repro.dfg.graph import DFG

        with pytest.raises(MappingError):
            map_dfg(DFG(), CGRA(4, 4))


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("name", FAST_KERNELS)
    def test_simulated_output_matches_golden(self, mapped44, name):
        cgra, mapped = mapped44
        spec = get_kernel(name)
        dfg, m = mapped[name]
        _, arrays, expected = spec.fresh(seed=21, trip=24)
        mem = bind_memory(arrays)
        result = simulate(lower_mapping(m, mem, 24), cgra, mem)
        snap = mem.snapshot()
        for arr in expected:
            assert np.array_equal(snap[arr], expected[arr]), arr
        # steady-state timing: total cycles ~ prologue + trip * II
        assert result.cycles == m.schedule_length + (24 - 1) * m.ii

    def test_zero_trip_runs_nothing(self, mapped44):
        cgra, mapped = mapped44
        dfg, m = mapped["laplace"]
        _, arrays, _ = get_kernel("laplace").fresh(seed=0, trip=4)
        mem = bind_memory(arrays)
        res = simulate(lower_mapping(m, mem, 0), cgra, mem)
        assert res.cycles == 0 and res.firings == 0

    def test_register_constraint_depth_one(self, mapped44):
        """Compiled mappings only ever read depth-1 (output registers):
        the §VI-B register-usage constraint leaves rotating files free."""
        cgra, mapped = mapped44
        from repro.sim.lowering import ResolvedRead

        dfg, m = mapped["swim"]
        _, arrays, _ = get_kernel("swim").fresh(seed=0, trip=6)
        mem = bind_memory(arrays)
        for f in lower_mapping(m, mem, 6):
            for src in f.operands:
                if isinstance(src, ResolvedRead):
                    assert f.cycle - src.cycle == 1


class TestLargerArrays:
    @pytest.mark.parametrize("size", [6, 8])
    def test_maps_and_runs_on_larger_cgras(self, size):
        cgra = CGRA(size, size, rf_depth=8)
        spec = get_kernel("mpeg")
        dfg, arrays, expected = spec.fresh(seed=4, trip=12)
        m = map_dfg(dfg, cgra)
        validate_mapping(m)
        mem = bind_memory(arrays)
        simulate(lower_mapping(m, mem, 12), cgra, mem)
        snap = mem.snapshot()
        assert np.array_equal(snap["out"], expected["out"])

    def test_ii_never_worse_on_bigger_array(self):
        dfg = get_kernel("swim").build()
        ii4 = map_dfg(dfg, CGRA(4, 4)).ii
        ii8 = map_dfg(dfg, CGRA(8, 8)).ii
        assert ii8 <= ii4
