"""Unit tests for CGRA paging: shapes, snake ring order, orientations."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.core.paging import Orientation, PageLayout, choose_page_shape
from repro.util.errors import ArchitectureError


class TestChooseShape:
    def test_square_preference(self):
        assert choose_page_shape(4, 4, 4) == (2, 2)

    def test_column_preference(self):
        assert choose_page_shape(4, 4, 4, prefer="column") == (4, 1)

    def test_row_preference(self):
        assert choose_page_shape(4, 4, 4, prefer="row") == (1, 4)

    def test_size_two(self):
        assert choose_page_shape(2, 4, 4) in ((2, 1), (1, 2))

    def test_size_eight_on_8x8(self):
        h, w = choose_page_shape(8, 8, 8)
        assert h * w == 8

    def test_must_fit_grid(self):
        with pytest.raises(ArchitectureError):
            choose_page_shape(32, 4, 4)  # no 32-PE tile in a 4x4

    def test_rejects_bad_inputs(self):
        with pytest.raises(ArchitectureError):
            choose_page_shape(0, 4, 4)
        with pytest.raises(ArchitectureError):
            choose_page_shape(4, 4, 4, prefer="diagonal")


class TestPageLayout:
    def test_fig4_quadrants(self, layout44_q):
        assert layout44_q.num_pages == 4
        assert layout44_q.page_size == 4
        assert not layout44_q.uncovered

    def test_fig4_columns(self, layout44_c):
        assert layout44_c.num_pages == 4
        # snake over a single tile row: plain left-to-right order
        assert [layout44_c.page_origin(n).col for n in range(4)] == [0, 1, 2, 3]

    def test_quadrant_wrap_is_adjacent(self, layout44_q):
        # 2x2 tiles in a 2x2 tile grid close the ring
        assert layout44_q.ring_wrap_adjacent

    def test_column_wrap_not_adjacent(self, layout44_c):
        assert not layout44_c.ring_wrap_adjacent

    def test_snake_consecutive_pages_adjacent(self):
        for rows, cols, shape in [(4, 4, (2, 2)), (8, 8, (2, 2)), (6, 6, (2, 2)), (8, 8, (2, 4))]:
            lay = PageLayout(CGRA(rows, cols), shape)
            for n in range(lay.num_pages - 1):
                assert lay._pages_adjacent(n, n + 1), (rows, cols, shape, n)

    def test_6x6_with_8pe_pages_partial_cover(self):
        lay = PageLayout(CGRA(6, 6), (2, 4))
        assert lay.num_pages == 3
        assert len(lay.uncovered) == 36 - 24

    def test_page_of_partitions_covered(self):
        lay = PageLayout(CGRA(6, 6), (2, 2))
        assert lay.num_pages == 9
        counts = {}
        for pe, n in lay.page_of.items():
            counts[n] = counts.get(n, 0) + 1
        assert all(c == 4 for c in counts.values())

    def test_local_coords_in_shape(self):
        lay = PageLayout(CGRA(4, 4), (4, 1))
        for pe, loc in lay.local_of.items():
            assert 0 <= loc.row < 4 and loc.col == 0

    def test_place_local_roundtrip_identity(self, layout44_q):
        for pe, n in layout44_q.page_of.items():
            loc = layout44_q.local_of[pe]
            assert layout44_q.place_local(n, loc) == pe

    def test_place_local_bad_inputs(self, layout44_q):
        with pytest.raises(ArchitectureError):
            layout44_q.place_local(0, Coord(5, 5))
        with pytest.raises(ArchitectureError):
            layout44_q.place_local(99, Coord(0, 0))

    def test_ring_succ_pred_inverse(self, layout44_q):
        for n in range(layout44_q.num_pages):
            assert layout44_q.ring_pred(layout44_q.ring_succ(n)) == n

    def test_ring_hop_allowed_semantics(self, layout44_q):
        assert layout44_q.ring_hop_allowed(0, 0)  # same page
        assert layout44_q.ring_hop_allowed(0, 1)  # forward
        assert not layout44_q.ring_hop_allowed(1, 0)  # backward
        assert not layout44_q.ring_hop_allowed(0, 2)  # skip

    def test_ring_hop_wrap_gated_on_allow_wrap(self, layout44_q):
        """The wrap hop is off by default (chain topology) even when the
        tiling closes the loop physically; opting in enables it."""
        n = layout44_q.num_pages - 1
        assert not layout44_q.ring_hop_allowed(n, 0)
        ring = PageLayout(layout44_q.cgra, (2, 2), allow_wrap=True)
        assert ring.ring_hop_allowed(n, 0)

    def test_ring_hop_wrap_needs_physical_adjacency(self):
        cols = PageLayout(CGRA(4, 4), (4, 1), allow_wrap=True)
        assert not cols.ring_hop_allowed(cols.num_pages - 1, 0)

    def test_subchain(self, layout44_q):
        sub = layout44_q.subchain(2)
        assert sub.num_pages == 2
        assert len(sub.uncovered) == 8
        assert not sub.allow_wrap
        assert set(sub.page_of.values()) == {0, 1}
        with pytest.raises(ArchitectureError):
            layout44_q.subchain(0)
        with pytest.raises(ArchitectureError):
            layout44_q.subchain(9)

    def test_shape_too_large(self):
        with pytest.raises(ArchitectureError):
            PageLayout(CGRA(4, 4), (5, 1))

    def test_shape_invalid(self):
        with pytest.raises(ArchitectureError):
            PageLayout(CGRA(4, 4), (0, 2))

    def test_single_page_layout(self):
        lay = PageLayout(CGRA(2, 2), (2, 2))
        assert lay.num_pages == 1
        assert not lay.ring_wrap_adjacent


class TestOrientation:
    @pytest.mark.parametrize("o", list(Orientation))
    def test_involution(self, o):
        shape = (3, 2)
        for r in range(3):
            for c in range(2):
                p = Coord(r, c)
                assert o.apply(o.apply(p, shape), shape) == p

    def test_mirror_h(self):
        assert Orientation.MIRROR_H.apply(Coord(0, 1), (4, 2)) == Coord(3, 1)

    def test_mirror_v(self):
        assert Orientation.MIRROR_V.apply(Coord(2, 0), (4, 2)) == Coord(2, 1)

    def test_rot180_is_composition(self):
        shape = (4, 4)
        for r in range(4):
            for c in range(4):
                p = Coord(r, c)
                a = Orientation.MIRROR_H.apply(Orientation.MIRROR_V.apply(p, shape), shape)
                assert a == Orientation.ROT180.apply(p, shape)

    def test_compose_group_table(self):
        assert Orientation.MIRROR_H.compose(Orientation.MIRROR_V) == Orientation.ROT180
        assert Orientation.MIRROR_H.compose(Orientation.MIRROR_H) == Orientation.IDENTITY
        assert Orientation.IDENTITY.compose(Orientation.ROT180) == Orientation.ROT180

    @given(st.sampled_from(list(Orientation)), st.sampled_from(list(Orientation)))
    def test_compose_matches_apply(self, a, b):
        shape = (4, 4)
        comp = a.compose(b)
        for r in range(4):
            for c in range(4):
                p = Coord(r, c)
                assert comp.apply(p, shape) == a.apply(b.apply(p, shape), shape)

    @given(st.sampled_from(list(Orientation)))
    def test_orientation_is_isometry(self, o):
        """Orientations preserve adjacency within the page."""
        shape = (4, 2)
        pts = [Coord(r, c) for r in range(4) for c in range(2)]
        for p in pts:
            for q in pts:
                d0 = p.manhattan(q)
                d1 = o.apply(p, shape).manhattan(o.apply(q, shape))
                assert d0 == d1
