"""Tests for the trace-driven workload generator (datacenter-scale sim).

Covers the three properties the policy tournament depends on: seeded
determinism (same seed, same trace, bit for bit), arrival-rate sanity for
every arrival model, and the priority-class mix tracking its declared
weights."""

from __future__ import annotations

import pytest

from repro.sim.system import KernelProfile, SystemConfig, simulate_system
from repro.sim.workload import (
    ARRIVAL_MODELS,
    DEFAULT_CLASSES,
    PriorityClass,
    generate_trace,
)
from repro.util.errors import WorkloadError

PROFILES = {
    "fast": KernelProfile("fast", ii_base=1, ii_paged=1, pages_used=1),
    "slow": KernelProfile("slow", ii_base=4, ii_paged=4, pages_used=1),
}
NOMINAL = {"fast": 1, "slow": 4}


def trace(n=200, seed=11, **kw):
    return generate_trace(n, 0.75, ["fast", "slow"], NOMINAL, seed=seed, **kw)


class TestDeterminism:
    @pytest.mark.parametrize("model", ARRIVAL_MODELS)
    def test_same_seed_same_trace(self, model):
        a = trace(arrival_model=model)
        b = trace(arrival_model=model)
        assert a == b

    @pytest.mark.parametrize("model", ARRIVAL_MODELS)
    def test_different_seed_different_trace(self, model):
        assert trace(seed=1, arrival_model=model) != trace(
            seed=2, arrival_model=model
        )

    def test_simulation_of_trace_is_deterministic(self):
        wl = trace(n=40, arrival_model="bursty", mean_total_work=200)
        cfg = SystemConfig(n_pages=4, profiles=PROFILES)
        r1 = simulate_system(wl, cfg, "multithreaded")
        r2 = simulate_system(wl, cfg, "multithreaded")
        assert r1.makespan == r2.makespan
        assert r1.reallocations == r2.reallocations


class TestArrivals:
    @pytest.mark.parametrize("model", ARRIVAL_MODELS)
    def test_nondecreasing_from_zero(self, model):
        arr = [t.arrival for t in trace(arrival_model=model)]
        assert arr[0] == 0
        assert arr == sorted(arr)
        assert all(a >= 0 for a in arr)

    def test_all_at_once(self):
        assert all(t.arrival == 0 for t in trace(arrival_model="all-at-once"))

    def test_poisson_rate(self):
        # mean inter-arrival gap should land near the requested mean
        arr = [
            t.arrival
            for t in trace(
                n=2000, arrival_model="poisson", mean_arrival_gap=50.0
            )
        ]
        mean_gap = arr[-1] / (len(arr) - 1)
        assert mean_gap == pytest.approx(50.0, rel=0.15)

    def test_bursty_clusters_and_rate(self):
        wl = trace(
            n=2000,
            arrival_model="bursty",
            mean_arrival_gap=50.0,
            burst_size=8,
        )
        arr = [t.arrival for t in wl]
        # long-run rate matches poisson's within slack
        mean_gap = arr[-1] / (len(arr) - 1)
        assert mean_gap == pytest.approx(50.0, rel=0.35)
        # but arrivals cluster: far fewer distinct instants than threads
        assert len(set(arr)) < len(arr) / 3

    def test_diurnal_rate_varies_with_phase(self):
        period = 20_000
        wl = trace(
            n=4000,
            arrival_model="diurnal",
            mean_arrival_gap=10.0,
            diurnal_period=period,
            diurnal_amplitude=0.9,
        )
        arr = [t.arrival for t in wl]
        # peak half-cycles (sin > 0) must be denser than trough half-cycles
        peak = sum(1 for a in arr if (a % period) < period / 2)
        trough = len(arr) - peak
        assert peak > 1.5 * trough

    def test_unknown_model_rejected(self):
        with pytest.raises(WorkloadError):
            trace(arrival_model="tidal")


class TestPriorityClasses:
    def test_default_mix_tracks_weights(self):
        wl = trace(n=4000)
        counts = {c.priority: 0 for c in DEFAULT_CLASSES}
        for t in wl:
            counts[t.priority] += 1
        for c in DEFAULT_CLASSES:
            assert counts[c.priority] / len(wl) == pytest.approx(
                c.weight, abs=0.05
            )

    def test_work_scale_orders_thread_lengths(self):
        wl = trace(n=3000, mean_total_work=4000)
        by_pri: dict[int, list[int]] = {}
        for t in wl:
            total = sum(s.cycles for s in t.segments if s.kind == "cpu") + sum(
                s.trip * NOMINAL[s.kernel]
                for s in t.segments
                if s.kind == "cgra"
            )
            by_pri.setdefault(t.priority, []).append(total)
        means = {
            p: sum(v) / len(v) for p, v in by_pri.items()
        }
        # batch (pri 0) threads are the long ones; realtime the short ones
        assert means[0] > means[1] > means[2]

    def test_phase_counts_follow_class(self):
        wl = trace(n=500)
        phases = {c.priority: c.phases for c in DEFAULT_CLASSES}
        for t in wl:
            assert len(t.segments) == 2 * phases[t.priority]

    def test_custom_single_class(self):
        only = (PriorityClass("only", weight=1.0, priority=5, phases=3),)
        wl = trace(n=50, classes=only)
        assert all(t.priority == 5 for t in wl)
        assert all(len(t.segments) == 6 for t in wl)

    def test_class_validation(self):
        with pytest.raises(WorkloadError):
            PriorityClass("bad", weight=0.0, priority=0)
        with pytest.raises(WorkloadError):
            PriorityClass("bad", weight=1.0, priority=0, work_scale=-1.0)
        with pytest.raises(WorkloadError):
            PriorityClass("bad", weight=1.0, priority=0, phases=0)
        with pytest.raises(WorkloadError):
            trace(classes=())
