"""Heterogeneous PE capabilities, fabric presets, and the hierarchical
two-level backend.

Three invariants anchor this file:

* **byte stability** — homogeneous fabrics fingerprint and serialize
  exactly as before the capability model existed (pinned hashes), and
  recompilation on any preset is byte-deterministic;
* **legality everywhere** — a capability restriction is enforced by the
  mapper, the validator, the lowering pass, and the bytes-only artifact
  auditor (rule ``MAP-CAP``) independently;
* **hier never loses** — the hierarchical backend reproduces the flat
  ladder's II (its fallback rungs replay the flat ladder exactly) and is
  deterministic at any worker count.
"""

from __future__ import annotations

import json

import pytest

from repro.arch.capability import ALL_CLASSES, CapabilityMap, OpClass, op_class
from repro.arch.cgra import CGRA
from repro.arch.isa import Opcode
from repro.arch.presets import (
    PRESET_SIZES,
    demo_cgra,
    experiment_cgra,
    mem_columns_for,
    preset,
    preset_names,
)
from repro.core.paging import PageLayout
from repro.kernels import get_kernel
from repro.pipeline.artifact import CompiledKernel
from repro.pipeline.compile import CompileJob, compile_many, job_key
from repro.pipeline.store import ArtifactStore
from repro.util.errors import ArchitectureError

#: Structural hashes of every preset fabric.  These are regression pins:
#: the homogeneous ones must never move (committed artifact addresses
#: hang off them), and the -memcols ones freeze the canonical capability
#: encoding.
PRESET_FINGERPRINTS = {
    "4x4": "449e4e44bcecdfdc",
    "6x6": "536e78bce58e40ff",
    "8x8": "03ad815d700188fe",
    "16x16": "8bd5891021132aee",
    "4x4-memcols": "5f8cd00e86885ff1",
    "6x6-memcols": "ae07f98e31c3c008",
    "8x8-memcols": "ddab4f913e33edb0",
    "16x16-memcols": "1971c0755cbb7294",
}


# -- capability model ----------------------------------------------------------------


class TestCapabilityMap:
    def test_op_class_partition(self):
        assert op_class(Opcode.LOAD) is OpClass.MEM
        assert op_class(Opcode.LOADT) is OpClass.MEM
        assert op_class(Opcode.STORE) is OpClass.MEM
        assert op_class(Opcode.ROUTE) is OpClass.ROUTE
        assert op_class(Opcode.ADD) is OpClass.ALU
        assert op_class(Opcode.CONST) is OpClass.ALU

    def test_homogeneous_is_empty_encoding(self):
        cap = CapabilityMap.homogeneous(4, 4)
        assert cap.is_homogeneous
        assert cap.classes == ()
        assert cap.spec() is None
        for cls_ in ALL_CLASSES:
            assert cap.mask(cls_) is None
            assert cap.ids(cls_) == tuple(range(16))
            assert all(cap.supports_id(cls_, i) for i in range(16))

    def test_universal_class_canonicalizes_away(self):
        # listing every PE for a class is the same as not listing it
        cap = CapabilityMap(2, 2, (("alu", (0, 1, 2, 3)),))
        assert cap.is_homogeneous

    def test_mem_columns(self):
        cap = CapabilityMap.mem_columns(4, 4, (0, 2))
        assert not cap.is_homogeneous
        assert cap.classes == (
            ("mem", (0, 2, 4, 6, 8, 10, 12, 14)),
        )
        for pe_id in range(16):
            on_port = pe_id % 4 in (0, 2)
            assert cap.supports_id(OpClass.MEM, pe_id) == on_port
            assert cap.supports_id(OpClass.ALU, pe_id)
            assert cap.supports_id(OpClass.ROUTE, pe_id)
        mask = cap.mask(OpClass.MEM)
        assert mask is not None and sum(mask) == 8

    def test_spec_round_trip(self):
        cap = CapabilityMap.mem_columns(4, 4, (1, 3))
        again = CapabilityMap.from_spec(4, 4, cap.spec())
        assert again == cap
        assert CapabilityMap.from_spec(4, 4, None) is None

    @pytest.mark.parametrize(
        "classes",
        [
            (("teleport", (0,)),),  # unknown class
            (("mem", (0,)), ("mem", (1,))),  # duplicate class
            (("mem", (99,)),),  # id out of range
        ],
    )
    def test_invalid_encodings_rejected(self, classes):
        with pytest.raises(ArchitectureError):
            CapabilityMap(2, 2, classes)

    def test_mem_columns_validation(self):
        with pytest.raises(ArchitectureError):
            CapabilityMap.mem_columns(4, 4, ())
        with pytest.raises(ArchitectureError):
            CapabilityMap.mem_columns(4, 4, (7,))

    def test_cgra_canonicalizes_homogeneous_map_to_none(self):
        cgra = CGRA(4, 4, rf_depth=16, capability=CapabilityMap.homogeneous(4, 4))
        assert cgra.capability is None
        assert cgra.fingerprint() == PRESET_FINGERPRINTS["4x4"]

    def test_cgra_rejects_mismatched_map(self):
        with pytest.raises(ArchitectureError):
            CGRA(4, 4, rf_depth=16, capability=CapabilityMap.mem_columns(6, 6, (0,)))


# -- presets and fingerprint stability -----------------------------------------------


class TestPresets:
    def test_registry(self):
        assert preset_names() == sorted(PRESET_FINGERPRINTS)
        assert len(preset_names()) == 2 * len(PRESET_SIZES)

    def test_unknown_preset(self):
        with pytest.raises(ArchitectureError, match="unknown fabric preset"):
            preset("5x5")

    def test_demo_is_the_4x4_preset(self):
        assert demo_cgra().fingerprint() == preset("4x4").fingerprint()
        literal = CGRA(4, 4, rf_depth=16)
        assert demo_cgra().fingerprint() == literal.fingerprint()

    @pytest.mark.parametrize("name", sorted(PRESET_FINGERPRINTS))
    def test_fingerprints_pinned(self, name):
        """Homogeneous fingerprints are committed-artifact addresses; a
        change here invalidates the entire stored cache."""
        assert preset(name).fingerprint() == PRESET_FINGERPRINTS[name]

    @pytest.mark.parametrize("size", PRESET_SIZES)
    def test_experiment_rule(self, size):
        cgra = experiment_cgra(size)
        assert (cgra.rows, cgra.cols, cgra.rf_depth) == (size, size, 4 * size)
        assert cgra.fingerprint() == preset(f"{size}x{size}").fingerprint()

    @pytest.mark.parametrize("size", PRESET_SIZES)
    def test_memcols_pages_keep_mem_pes(self, size):
        """Every canonical page tile of a -memcols fabric must contain at
        least one mem-capable PE, else small-page compiles are dead."""
        from repro.core.paging import choose_page_shape

        cgra = preset(f"{size}x{size}-memcols")
        cap = cgra.capability
        assert cap is not None
        # ps=2 tiles are 2x1 (single column): odd-column pages hold no mem
        # PE by design — the mapper simply clusters mem ops elsewhere.
        for ps in [4] if size <= 4 else [4, 8]:
            shape = choose_page_shape(ps, size, size)
            layout = PageLayout(cgra, shape)
            for page in range(layout.num_pages):
                assert layout.class_capable_count(page, OpClass.MEM) > 0, (
                    f"{size}x{size}-memcols page {page} of shape {shape} "
                    f"has no mem-capable PE"
                )
        assert set(mem_columns_for(size)) == set(range(0, size, 2))


# -- capability-aware compilation ----------------------------------------------------


def _compile_one(job: CompileJob, tmp_path, sub="store"):
    store = ArtifactStore(tmp_path / sub)
    (artifact,) = compile_many([job], store=store)
    return artifact, store


class TestCapabilityCompilation:
    def test_mem_ops_land_on_mem_columns(self, tmp_path):
        job = CompileJob("sor", 4, 4, seed=0, arch="4x4-memcols")
        artifact, _ = _compile_one(job, tmp_path)
        assert not artifact.unmappable
        assert artifact.capability is not None
        dfg = get_kernel("sor").build()
        mem_cols = set(mem_columns_for(4))
        mem_placements = 0
        for op_id, _r, c, _t in artifact.placements:
            if op_id in dfg.ops and op_class(dfg.ops[op_id].opcode) is OpClass.MEM:
                assert c in mem_cols, f"mem op{op_id} on non-mem column {c}"
                mem_placements += 1
        assert mem_placements > 0

    def test_homogeneous_artifact_has_no_capability_key(self, tmp_path):
        artifact, _ = _compile_one(CompileJob("sor", 4, 4, seed=0), tmp_path)
        assert artifact.capability is None
        assert "capability" not in json.loads(artifact.to_json())

    def test_memcols_artifact_round_trips(self, tmp_path):
        job = CompileJob("sor", 4, 4, seed=0, arch="4x4-memcols")
        artifact, _ = _compile_one(job, tmp_path)
        raw = json.loads(artifact.to_json())
        assert raw["capability"] == [["mem", [0, 2, 4, 6, 8, 10, 12, 14]]]
        again = CompiledKernel.from_json_dict(raw)
        assert again == artifact
        # materialization rebuilds the heterogeneous fabric and re-validates
        paged = artifact.materialize(get_kernel("sor").build())
        assert paged.mapping.cgra.capability is not None

    def test_lowering_refuses_capability_violation(self, tmp_path):
        """A schedule legal on the homogeneous fabric but not under the
        -memcols restriction must be refused at lowering time."""
        from repro.compiler.mapping import Mapping
        from repro.kernels import bind_memory
        from repro.sim import lower_mapping
        from repro.util.errors import SimulationError

        artifact, _ = _compile_one(CompileJob("sor", 4, 4, seed=0), tmp_path)
        spec = get_kernel("sor")
        dfg, arrays, _ = spec.fresh(seed=1, trip=8)
        paged = artifact.materialize(dfg)
        odd_cols = tuple(c for c in range(4) if c % 2 == 1)
        hetero = CGRA(
            4,
            4,
            rf_depth=16,
            capability=CapabilityMap.mem_columns(4, 4, odd_cols),
        )
        mapping = paged.mapping
        moved = Mapping(
            hetero, mapping.dfg, mapping.ii, mapping.placements, mapping.routes
        )
        mem_cols = {p.pe.col for op_id, p in mapping.placements.items()
                    if op_class(mapping.dfg.ops[op_id].opcode) is OpClass.MEM}
        if mem_cols <= set(odd_cols):
            pytest.skip("schedule happens to satisfy the odd-column fabric")
        with pytest.raises(SimulationError, match="lacks the 'mem' capability"):
            lower_mapping(moved, bind_memory(arrays), 8)

    @pytest.mark.parametrize("arch", ["4x4", "4x4-memcols"])
    def test_recompilation_is_byte_identical_per_preset(self, arch, tmp_path):
        job = CompileJob("gsr", 4, 2, seed=0, arch=arch)
        a, store_a = _compile_one(job, tmp_path, "a")
        b, store_b = _compile_one(job, tmp_path, "b")
        pa = store_a.path_for(job_key(job))
        pb = store_b.path_for(job_key(job))
        assert pa.read_bytes() == pb.read_bytes()
        assert a.to_json() == b.to_json()

    def test_memcols_arch_fp_differs_from_homogeneous(self, tmp_path):
        plain = CompileJob("sor", 4, 4, seed=0)
        hetero = CompileJob("sor", 4, 4, seed=0, arch="4x4-memcols")
        assert job_key(plain).arch_fp != job_key(hetero).arch_fp
        assert job_key(plain).dfg_fp == job_key(hetero).dfg_fp


# -- MAP-CAP: the bytes-only audit layer ---------------------------------------------


class TestMapCapAudit:
    def _write(self, root, artifact: CompiledKernel):
        digest = artifact.key.digest
        path = root / digest[:2] / f"{digest}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(artifact.to_json())
        return path

    def test_clean_memcols_artifact_audits_clean(self, tmp_path):
        from repro.analysis.audit import audit_store

        artifact, _ = _compile_one(
            CompileJob("sor", 4, 4, seed=0, arch="4x4-memcols"), tmp_path
        )
        root = tmp_path / "audit"
        self._write(root, artifact)
        report = audit_store(root)
        assert report.ok, "\n".join(f.render() for f in report.findings)

    def test_capability_violation_is_map_cap(self, tmp_path):
        """Shrink the stored capability map under the placements' feet:
        the auditor must flag MAP-CAP from bytes alone."""
        from repro.analysis.audit import audit_store

        artifact, _ = _compile_one(
            CompileJob("sor", 4, 4, seed=0, arch="4x4-memcols"), tmp_path
        )
        dfg = get_kernel("sor").build()
        used_mem_ids = {
            r * artifact.cols + c
            for (op_id, r, c, _t) in artifact.placements
            if op_id in dfg.ops
            and op_class(dfg.ops[op_id].opcode) is OpClass.MEM
        }
        assert used_mem_ids
        victim = min(used_mem_ids)
        (cls_name, ids), = artifact.capability
        shrunk = tuple(i for i in ids if i != victim)
        raw = json.loads(artifact.to_json())
        raw["capability"] = [[cls_name, list(shrunk)]]
        mutated = CompiledKernel.from_json_dict(raw)
        root = tmp_path / "audit"
        self._write(root, mutated)
        report = audit_store(root)
        ids_found = {f.rule_id for f in report.findings}
        assert "MAP-CAP" in ids_found, ids_found
        assert not report.ok


# -- hierarchical backend ------------------------------------------------------------


HIER_KERNELS = ["sor", "compress", "gsr"]


class TestHierBackend:
    def test_hier_matches_flat_ii(self, tmp_path):
        """The hier ladder's fallback rungs replay the flat ladder, so it
        can never report a worse II than the flat backend."""
        for kernel in HIER_KERNELS:
            flat, _ = _compile_one(
                CompileJob(kernel, 4, 4, seed=0), tmp_path, f"flat-{kernel}"
            )
            hier, _ = _compile_one(
                CompileJob(kernel, 4, 4, seed=0, backend="hier"),
                tmp_path,
                f"hier-{kernel}",
            )
            assert hier.ii_paged == flat.ii_paged, kernel
            assert hier.pages_used == flat.pages_used, kernel

    def test_hier_is_deterministic(self, tmp_path):
        job = CompileJob("compress", 4, 4, seed=0, backend="hier")
        a, _ = _compile_one(job, tmp_path, "a")
        b, _ = _compile_one(job, tmp_path, "b")
        assert a.to_json() == b.to_json()

    def test_hier_serial_equals_portfolio(self, tmp_path):
        """Canonical reduction: the speculative parallel ladder returns
        the serial ladder's bytes for the hier backend too."""
        jobs = [CompileJob(k, 4, 4, seed=0, backend="hier") for k in HIER_KERNELS]
        serial = ArtifactStore(tmp_path / "serial")
        spec = ArtifactStore(tmp_path / "spec")
        compile_many(jobs, store=serial, workers=1)
        compile_many(jobs, store=spec, workers=2)
        for job in jobs:
            a = serial.path_for(job_key(job)).read_bytes()
            b = spec.path_for(job_key(job)).read_bytes()
            assert a == b, f"hier parity violation: {job.kernel}"

    def test_hier_on_memcols_8x8(self, tmp_path):
        """The acceptance fabric: hierarchical mapping on the 8x8
        memory-capable-columns preset, capability-legal by construction."""
        job = CompileJob("sor", 8, 4, seed=0, arch="8x8-memcols", backend="hier")
        artifact, _ = _compile_one(job, tmp_path)
        assert not artifact.unmappable
        dfg = get_kernel("sor").build()
        mem_cols = set(mem_columns_for(8))
        for op_id, _r, c, _t in artifact.placements:
            if op_id in dfg.ops and op_class(dfg.ops[op_id].opcode) is OpClass.MEM:
                assert c in mem_cols

    def test_hier_backend_distinct_mapper_fp(self):
        flat = CompileJob("sor", 4, 4, seed=0)
        hier = CompileJob("sor", 4, 4, seed=0, backend="hier")
        assert job_key(flat).mapper_fp != job_key(hier).mapper_fp


# -- fig8-style run on the scaled fabric ---------------------------------------------


def test_fig8_on_8x8_memcols(tmp_path):
    """II-loss study on the heterogeneous 8x8: the paper's Fig. 8 ratio
    table computes on a preset fabric end to end."""
    from repro.bench.fig8 import run_fig8

    rows = run_fig8(
        8,
        page_sizes=[4],
        kernels=["sor", "compress"],
        seed=0,
        store=ArtifactStore(tmp_path / "store"),
        arch="8x8-memcols",
    )
    assert [r.kernel for r in rows] == ["sor", "compress"]
    for row in rows:
        ratio = row.per_page_size[4]
        assert ratio is not None and ratio > 0
        assert row.ii_base >= 1
