"""Soundness tests for the II feasibility prover and the exact backend.

The prover's contract is one-sided: a bound or certificate may only rule
out IIs at which **no** mapping exists, and the exact backend's SAT
refutations may only prune ladder rungs the greedy attempts would have
failed anyway.  Every test here attacks that direction — real mappings
(the full kernel suite, plus every committed artifact) are replayed
against the bounds, the CNF relaxation, and the pruning ladder, and none
of them may ever be rejected.  The payoff of soundness is byte-stability:
the exact backend must produce bit-for-bit the flat backend's mapping at
any worker count, which the last test class checks end to end.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.arch.cgra import CGRA
from repro.compiler.ems import EMSMapper, MapperConfig, map_dfg
from repro.compiler.exact import (
    ExactMapper,
    encode_modulo_relaxation,
    probe_rung,
)
from repro.compiler.feas import (
    fanin_certificate,
    ii_lower_bound,
    max_distinct_fanin,
    page_order_certificate,
    prune_to,
)
from repro.compiler.stats import COUNTERS
from repro.dfg.graph import DFG, MemRef
from repro.arch.isa import Opcode
from repro.kernels import get_kernel, kernel_names
from repro.util.errors import MappingError

REPO_STORE = Path(__file__).resolve().parents[1] / ".repro_artifacts"


def base_bound(dfg, cgra):
    return ii_lower_bound(
        dfg,
        num_pes=cgra.num_pes,
        mem_slots=cgra.rows * cgra.mem_ports_per_row,
        mem_capable_pes=cgra.num_pes,
        max_ii=MapperConfig().max_ii,
    )


# ---------------------------------------------------------------- the bound


class TestIIBound:
    def test_ladder_starts_at_the_bound(self):
        """Every backend's first rung is ii_lower_bound — the dedup that
        keeps flat/hier/exact from drifting apart."""
        cgra = CGRA(4, 4)
        mapper = EMSMapper(cgra)
        for name in kernel_names():
            dfg = get_kernel(name).build()
            assert mapper.ladder_start_ii(dfg) == base_bound(dfg, cgra).mii

    def test_bound_never_exceeds_achieved_ii(self):
        """Soundness over the whole suite: the mapper actually lands on an
        II, so the provable lower bound must sit at or below it."""
        cgra = CGRA(4, 4)
        for name in kernel_names():
            dfg = get_kernel(name).build()
            mapping = map_dfg(dfg, cgra)
            assert base_bound(dfg, cgra).mii <= mapping.ii, name

    def test_binding_names_a_maximal_term(self):
        for name in kernel_names():
            bound = base_bound(get_kernel(name).build(), CGRA(4, 4))
            assert getattr(bound, bound.binding()) == bound.mii

    def test_mem_capability_term(self):
        """A fabric with a single mem-capable PE floors the II at the
        memory-op count, whatever the grid size."""
        dfg = get_kernel("compress").build()
        n_mem = dfg.num_memory_ops
        assert n_mem > 1
        bound = ii_lower_bound(
            dfg, num_pes=64, mem_slots=64, mem_capable_pes=1, max_ii=64
        )
        assert bound.mem_cap_mii == n_mem
        assert bound.mii >= n_mem

    def test_empty_dfg_raises(self):
        with pytest.raises(MappingError, match="no materialized ops"):
            ii_lower_bound(
                DFG("empty"), num_pes=4, mem_slots=1, mem_capable_pes=4, max_ii=8
            )

    def test_overfull_dfg_raises(self):
        dfg = get_kernel("yuv2rgb").build()
        with pytest.raises(MappingError, match="can never fit"):
            ii_lower_bound(
                dfg, num_pes=1, mem_slots=1, mem_capable_pes=1, max_ii=1
            )

    def test_memory_without_capability_raises(self):
        dfg = get_kernel("compress").build()
        with pytest.raises(MappingError, match="mem-capable PE"):
            ii_lower_bound(
                dfg, num_pes=16, mem_slots=4, mem_capable_pes=0, max_ii=32
            )


class TestCommittedStore:
    """Replay the prover against every committed artifact: an II that a
    mapper actually achieved (and that recompile-bytes pins) must never
    sit below the bound — the MAP-MII audit rule's property, tested
    directly on the store bytes."""

    @pytest.mark.skipif(
        not REPO_STORE.is_dir(), reason="committed artifact store not present"
    )
    def test_no_committed_ii_beats_the_bound(self):
        from repro.analysis.audit import AuditEntry, _audit_mii
        from repro.pipeline.artifact import CompiledKernel
        from repro.pipeline.store import ArtifactStore

        checked = 0
        for path, is_artifact in ArtifactStore(REPO_STORE).walk():
            if not is_artifact:
                continue
            artifact = CompiledKernel.from_json_dict(json.loads(path.read_bytes()))
            if artifact.unmappable:
                continue
            dfg = get_kernel(artifact.kernel).build()
            entry = AuditEntry(path=path.name, status="ok")
            _audit_mii(entry, artifact, dfg)
            assert entry.findings == [], [f.render() for f in entry.findings]
            checked += 1
        assert checked > 50


# ------------------------------------------------------------- certificates


def wide_fanin_dfg() -> DFG:
    """A SELECT fed by three distinct loads: distinct routed fan-in 3."""
    dfg = DFG("fanin3")
    loads = [
        dfg.add_op(Opcode.LOAD, memref=MemRef(a)) for a in ("a", "b", "c")
    ]
    sel = dfg.add_op(Opcode.SELECT)
    for i, ld in enumerate(loads):
        dfg.add_edge(ld, sel, i)
    store = dfg.add_op(Opcode.STORE, memref=MemRef("out"))
    dfg.add_edge(sel, store, 0)
    return dfg


class TestCertificates:
    def test_fanin_counts_distinct_non_const_sources(self):
        dfg = wide_fanin_dfg()
        assert max_distinct_fanin(dfg) == 3
        # CONST operands and duplicate producers don't count
        dup = DFG("dup")
        c = dup.add_op(Opcode.CONST, immediate=7)
        x = dup.add_op(Opcode.LOAD, memref=MemRef("a"))
        add = dup.add_op(Opcode.ADD)
        dup.add_edge(c, add, 0)
        dup.add_edge(x, add, 1)
        mul = dup.add_op(Opcode.MUL)
        dup.add_edge(add, mul, 0)
        dup.add_edge(add, mul, 1)  # both operands are the same value
        assert max_distinct_fanin(dup) == 1

    def test_fanin_certificate_fires_only_on_narrow_fabrics(self):
        dfg = wide_fanin_dfg()
        assert fanin_certificate(dfg, [2, 2]) is not None
        assert fanin_certificate(dfg, [2, 3]) is None

    def test_fanin_certificate_passes_the_suite(self):
        """The paper's kernels must never be refuted on the 4x4 mesh."""
        mapper = EMSMapper(CGRA(4, 4))
        arr_sizes = [len(a) for a in mapper._arr_ids]
        for name in kernel_names():
            assert fanin_certificate(get_kernel(name).build(), arr_sizes) is None

    def test_page_order_certificate(self):
        domains = {0: frozenset({2}), 1: frozenset({0, 1})}
        edges = [(0, 1)]
        assert page_order_certificate(edges, domains, allow_wrap=True) is None
        assert page_order_certificate(edges, domains, allow_wrap=False)
        # forward (or overlapping) traffic is fine
        fwd = {0: frozenset({0, 1}), 1: frozenset({1})}
        assert page_order_certificate(edges, fwd, allow_wrap=False) is None
        # unconstrained ops never trigger
        assert page_order_certificate([(0, 9)], domains, allow_wrap=False) is None

    def test_prune_to_counts_rungs(self):
        before = COUNTERS.snapshot()
        assert prune_to(3, 6) == 6
        assert prune_to(6, 3) == 6
        assert COUNTERS.delta(before)["rungs_pruned"] == 3


# ------------------------------------------------------- the SAT relaxation


class TestRelaxation:
    def test_relaxation_admits_real_mappings(self):
        """The soundness keystone: the assignment induced by an *actual*
        mapping — op placements assumed at their (PE, slot) — must
        satisfy the CNF for every suite kernel.  If this breaks, an UNSAT
        verdict no longer certifies infeasibility."""
        cgra = CGRA(4, 4)
        id_of = cgra.grid_index.id_of
        mapper = EMSMapper(cgra)
        for name in kernel_names():
            dfg = get_kernel(name).build()
            mapping = map_dfg(dfg, cgra)
            solver, X = encode_modulo_relaxation(mapper, dfg, mapping.ii)
            assume = []
            for op_id, pl in mapping.placements.items():
                assert op_id in X, (name, op_id)
                var = X[op_id].get((id_of[pl.pe], pl.time % mapping.ii))
                assert var is not None, (name, op_id, "outside capability domain")
                assume.append(var)
            assert solver.solve(assume) is True, name

    def test_probe_refutes_resource_pigeonhole(self):
        """A kernel with more ops than (PE, slot) pairs is a pigeonhole
        the solver must close (the certificate that prunes rungs): mpeg
        has 10 materialized ops, a 2x2 grid at II 2 offers 8 slots."""
        mapper = EMSMapper(CGRA(2, 2))
        dfg = get_kernel("mpeg").build()
        for ii in (1, 2):
            assert probe_rung(mapper, dfg, ii, conflict_budget=10_000) is False

    def test_probe_accepts_the_achieved_ii(self):
        cgra = CGRA(4, 4)
        mapper = EMSMapper(cgra)
        for name in ("mpeg", "swim", "lowpass"):
            dfg = get_kernel(name).build()
            mapping = map_dfg(dfg, cgra)
            assert probe_rung(
                mapper, dfg, mapping.ii, conflict_budget=50_000
            ) is True, name


# ----------------------------------------------------------- exact backend


class TestExactBackend:
    def test_config_accepts_exact_and_rejects_unknown(self):
        assert MapperConfig(backend="exact").backend == "exact"
        with pytest.raises(Exception):
            MapperConfig(backend="smt")

    def test_backend_is_fingerprinted(self):
        assert (
            MapperConfig(backend="exact").fingerprint()
            != MapperConfig().fingerprint()
        )

    def test_exact_ladder_never_prunes_the_winning_rung(self):
        """ExactMapper must land on the flat ladder's II with identical
        placements and routes — pruning is only ever of dead rungs."""
        cgra = CGRA(4, 4)
        for name in ("mpeg", "compress", "gsr", "sor"):
            dfg = get_kernel(name).build()
            flat = EMSMapper(cgra).map(dfg)
            exact = ExactMapper(cgra, config=MapperConfig(backend="exact")).map(dfg)
            assert exact.ii == flat.ii, name
            assert exact.placements == flat.placements, name
            assert exact.routes == flat.routes, name

    def test_exact_artifacts_match_flat_bytes(self):
        """End to end through the paged pipeline: same payload as flat,
        differing only in the mapper fingerprint (by design — the backend
        is part of the artifact address)."""
        from repro.pipeline.compile import CompileJob, compile_job

        before = COUNTERS.snapshot()
        for kernel in ("mpeg", "compress", "gsr"):
            flat, _ = compile_job(CompileJob(kernel, 4, 2, seed=0))
            exact, _ = compile_job(
                CompileJob(kernel, 4, 2, seed=0, backend="exact")
            )
            fd, ed = flat.to_json_dict(), exact.to_json_dict()
            assert fd.pop("mapper_fp") != ed.pop("mapper_fp")
            assert fd == ed, kernel
        delta = COUNTERS.delta(before)
        # the probes engaged and at least one rung was actually refuted
        # (compress and gsr both have provably-dead rungs on 2x2 pages)
        assert delta["exact_probes"] > 0
        assert delta["exact_wins"] >= 2
        assert delta["rungs_pruned"] >= delta["exact_wins"]

    def test_exact_backend_worker_parity(self, tmp_path):
        """workers in {1, 2, 4} must produce byte-identical exact-backend
        artifacts: speculative probes replay lattice points and never
        consult the solver, so worker count is unobservable."""
        from repro.pipeline.compile import CompileJob, compile_many
        from repro.pipeline.store import ArtifactStore

        job = CompileJob("compress", 4, 2, seed=0, backend="exact")
        payloads = []
        for w in (1, 2, 4):
            store = ArtifactStore(tmp_path / f"w{w}")
            (artifact,) = compile_many([job], store=store, workers=w)
            payloads.append(artifact.to_json())
        assert payloads[0] == payloads[1] == payloads[2]
