"""Unit tests for the DFG model, builder, validation and transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.isa import Opcode
from repro.dfg.builder import DFGBuilder
from repro.dfg.graph import DFG, MemRef
from repro.dfg.transforms import eliminate_dead_ops, unroll
from repro.dfg.validate import validate_dfg
from repro.sim.reference import run_reference
from repro.util.errors import GraphError


def simple_dfg() -> DFG:
    b = DFGBuilder("t")
    x = b.load("in")
    y = b.add(x, b.const(3))
    b.store("out", y)
    return b.build()


def recurrence_dfg() -> DFG:
    b = DFGBuilder("rec")
    prev = b.placeholder("prev")
    cur = b.add(prev, b.load("in"))
    b.store("out", cur)
    b.bind_carry(prev, cur, distance=1, init=(5,))
    return b.build()


class TestGraphModel:
    def test_ids_dense(self):
        g = simple_dfg()
        assert sorted(g.ops) == list(range(g.num_ops))

    def test_in_edges_sorted_by_operand(self):
        b = DFGBuilder("t")
        x = b.const(1)
        y = b.const(2)
        z = b.sub(y, x)  # operand 0 = y, operand 1 = x
        b.store("out", z)
        g = b.build()
        ins = g.in_edges(z.op_id)
        assert [e.operand_index for e in ins] == [0, 1]
        assert ins[0].src == y.op_id and ins[1].src == x.op_id

    def test_memory_op_counts(self):
        g = simple_dfg()
        assert g.num_memory_ops == 2

    def test_duplicate_operand_rejected(self):
        g = DFG()
        a = g.add_op(Opcode.CONST, immediate=1)
        r = g.add_op(Opcode.ROUTE)
        g.add_edge(a, r, 0)
        with pytest.raises(GraphError):
            g.add_edge(a, r, 0)

    def test_store_value_passthrough_edge_allowed(self):
        # spill ordering edges hang off stores (STORE passes its value)
        g = DFG()
        a = g.add_op(Opcode.CONST, immediate=1)
        s = g.add_op(Opcode.STORE, memref=MemRef("out"))
        g.add_edge(a, s, 0)
        r = g.add_op(Opcode.ROUTE)
        g.add_edge(s, r, 0)  # legal: carries the stored value

    def test_operand_index_range_checked(self):
        g = DFG()
        a = g.add_op(Opcode.CONST, immediate=1)
        r = g.add_op(Opcode.ROUTE)
        with pytest.raises(GraphError):
            g.add_edge(a, r, 1)

    def test_distance_init_mismatch(self):
        g = DFG()
        a = g.add_op(Opcode.CONST, immediate=1)
        r = g.add_op(Opcode.ROUTE)
        with pytest.raises(GraphError):
            g.add_edge(a, r, 0, distance=2, init=(0,))

    def test_memref_requirements(self):
        g = DFG()
        with pytest.raises(GraphError):
            g.add_op(Opcode.LOAD)  # no memref
        with pytest.raises(GraphError):
            g.add_op(Opcode.ADD, memref=MemRef("x"))  # memref on ALU op

    def test_to_networkx(self):
        g = recurrence_dfg()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == g.num_ops
        assert nxg.number_of_edges() == g.num_edges

    def test_copy_independent(self):
        g = simple_dfg()
        h = g.copy()
        h.add_op(Opcode.CONST, immediate=9)
        assert h.num_ops == g.num_ops + 1

    def test_relabel_preserves_semantics(self):
        g = recurrence_dfg()
        mapping = {i: g.num_ops - 1 - i for i in g.ops}
        h = g.relabel(mapping)
        arrays = {"in": np.arange(10, dtype=np.int64), "out": np.zeros(10, dtype=np.int64)}
        got_g = run_reference(g, {k: v.copy() for k, v in arrays.items()}, 10)
        got_h = run_reference(h, {k: v.copy() for k, v in arrays.items()}, 10)
        assert np.array_equal(got_g["out"], got_h["out"])

    def test_relabel_requires_bijection(self):
        g = simple_dfg()
        with pytest.raises(GraphError):
            g.relabel({i: 0 for i in g.ops})

    def test_summary_mentions_loop_carried(self):
        assert "1 loop-carried" in recurrence_dfg().summary()


class TestBuilder:
    def test_unbound_placeholder_rejected(self):
        b = DFGBuilder("t")
        b.placeholder("p")
        with pytest.raises(GraphError):
            b.build()

    def test_double_bind_rejected(self):
        b = DFGBuilder("t")
        p = b.placeholder("p")
        c = b.const(1)
        b.bind_carry(p, c, distance=1)
        with pytest.raises(GraphError):
            b.bind_carry(p, c, distance=1)

    def test_bind_non_placeholder_rejected(self):
        b = DFGBuilder("t")
        c = b.const(1)
        with pytest.raises(GraphError):
            b.bind_carry(c, c, distance=1)

    def test_bind_distance_validated(self):
        b = DFGBuilder("t")
        p = b.placeholder()
        c = b.const(1)
        with pytest.raises(GraphError):
            b.bind_carry(p, c, distance=0)

    def test_default_init_zeros(self):
        b = DFGBuilder("t")
        p = b.placeholder()
        c = b.route(p)
        b.store("out", c)
        b.bind_carry(p, c, distance=2)
        g = b.build()
        carried = [e for e in g.edges.values() if e.distance == 2]
        assert carried and carried[0].init == (0, 0)

    def test_clamp_semantics(self):
        b = DFGBuilder("t")
        x = b.load("in")
        b.store("out", b.clamp(x, 0, 255))
        g = b.build()
        arrays = {
            "in": np.array([-5, 100, 300], dtype=np.int64),
            "out": np.zeros(3, dtype=np.int64),
        }
        run_reference(g, arrays, 3)
        assert list(arrays["out"]) == [0, 100, 255]

    def test_arity_mismatch(self):
        b = DFGBuilder("t")
        x = b.const(1)
        with pytest.raises(GraphError):
            b.op(Opcode.ADD, x)


class TestValidate:
    def test_distance0_cycle_rejected(self):
        g = DFG()
        a = g.add_op(Opcode.ROUTE)
        bb = g.add_op(Opcode.ROUTE)
        g.add_edge(a, bb, 0)
        g.add_edge(bb, a, 0)
        with pytest.raises(GraphError):
            validate_dfg(g)

    def test_cycle_through_carry_accepted(self):
        validate_dfg(recurrence_dfg())

    def test_missing_operand_rejected(self):
        g = DFG()
        g.add_op(Opcode.ROUTE)  # route with no input edge
        with pytest.raises(GraphError):
            validate_dfg(g)


class TestUnroll:
    def test_factor_one_is_copy(self):
        g = simple_dfg()
        u = unroll(g, 1)
        assert u.num_ops == g.num_ops

    def test_op_count_scales(self):
        g = simple_dfg()
        u = unroll(g, 3)
        assert u.num_ops == 3 * g.num_ops
        assert u.num_edges == 3 * g.num_edges

    def test_bad_factor(self):
        with pytest.raises(GraphError):
            unroll(simple_dfg(), 0)

    def test_unroll_preserves_semantics_acyclic(self):
        g = simple_dfg()
        u = unroll(g, 2)
        arrays = {"in": np.arange(12, dtype=np.int64), "out": np.zeros(12, dtype=np.int64)}
        ref = run_reference(g, {k: v.copy() for k, v in arrays.items()}, 12)
        got = run_reference(u, {k: v.copy() for k, v in arrays.items()}, 6)
        assert np.array_equal(ref["out"], got["out"])

    def test_unroll_preserves_semantics_recurrence(self):
        g = recurrence_dfg()
        for factor in (2, 3):
            u = unroll(g, factor)
            n = 12
            arrays = {
                "in": np.arange(1, n + 1, dtype=np.int64),
                "out": np.zeros(n, dtype=np.int64),
            }
            ref = run_reference(g, {k: v.copy() for k, v in arrays.items()}, n)
            got = run_reference(u, {k: v.copy() for k, v in arrays.items()}, n // factor)
            assert np.array_equal(ref["out"], got["out"]), factor

    def test_unroll_rejects_modular_memrefs(self):
        b = DFGBuilder("t")
        x = b.load("buf", ring=4)
        b.store("out", x)
        g = b.build()
        with pytest.raises(GraphError):
            unroll(g, 2)

    def test_fig3_recurrence_distance_redistribution(self):
        """Fig. 3: unrolling a distance-1 recurrence gives one distance-1
        edge and factor-1 distance-0 edges between the copies."""
        g = recurrence_dfg()
        u = unroll(g, 2)
        carried = [e for e in u.edges.values() if e.distance > 0]
        # original had 1 loop-carried edge; after x2 unroll exactly one copy
        # still crosses the iteration boundary
        assert len(carried) == 1
        assert carried[0].distance == 1


class TestDeadCode:
    def test_removes_unused_chain(self):
        b = DFGBuilder("t")
        x = b.load("in")
        b.add(x, b.const(1))  # dead: result never stored
        b.store("out", x)
        g = b.build()
        pruned = eliminate_dead_ops(g)
        assert pruned.num_ops == g.num_ops - 2

    def test_keeps_recurrence_feeding_store(self):
        g = recurrence_dfg()
        pruned = eliminate_dead_ops(g)
        assert pruned.num_ops == g.num_ops

    def test_pruned_graph_semantics(self):
        b = DFGBuilder("t")
        x = b.load("in")
        b.mul(b.add(x, b.const(1)), b.const(7))  # dead subtree
        b.store("out", b.add(x, b.const(2)))
        g = b.build()
        pruned = eliminate_dead_ops(g)
        arrays = {"in": np.arange(8, dtype=np.int64), "out": np.zeros(8, dtype=np.int64)}
        ref = run_reference(g, {k: v.copy() for k, v in arrays.items()}, 8)
        got = run_reference(pruned, {k: v.copy() for k, v in arrays.items()}, 8)
        assert np.array_equal(ref["out"], got["out"])
