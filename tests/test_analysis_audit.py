"""Artifact auditor: the committed store is clean, and every class of
corruption is caught with the exact rule id of the invariant it breaks."""

import json
from fractions import Fraction
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.analysis import audit as audit_mod
from repro.analysis.audit import AuditEntry, audit_file, audit_store
from repro.analysis.findings import Severity
from repro.analysis.report import exit_code
from repro.pipeline.artifact import CompiledKernel
from repro.pipeline.store import ArtifactStore

REPO_STORE = Path(__file__).resolve().parents[1] / ".repro_artifacts"

pytestmark = pytest.mark.skipif(
    not REPO_STORE.is_dir(), reason="committed artifact store not present"
)


@pytest.fixture(scope="module")
def committed():
    artifacts = []
    for path, is_artifact in ArtifactStore(REPO_STORE).walk():
        if is_artifact:
            artifacts.append(
                CompiledKernel.from_json_dict(json.loads(path.read_bytes()))
            )
    assert artifacts, "expected committed artifacts"
    return artifacts


@pytest.fixture(scope="module")
def small(committed):
    """Smallest mappable committed artifact — mutation substrate."""
    mappable = [a for a in committed if not a.unmappable]
    return min(mappable, key=lambda a: (len(a.placements), a.key.digest))


def write_artifact(root: Path, payload: dict, *, digest: str | None = None):
    """Canonically encode *payload* at its (or a forced) content address."""
    artifact = CompiledKernel.from_json_dict(payload)
    digest = digest or artifact.key.digest
    path = root / digest[:2] / f"{digest}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(artifact.to_json())
    return path


def audit_ids(root: Path) -> set[str]:
    return {f.rule_id for f in audit_store(root).findings}


def payload_of(artifact: CompiledKernel) -> dict:
    return json.loads(artifact.to_json())


def find_mutation(artifacts, mutate, want: set[str], limit: int = 400):
    """First mutated payload whose solo audit yields exactly *want*.

    *mutate* maps an artifact to an iterator of payload dicts; searching
    (rather than hard-coding coordinates) keeps the tests independent of
    which kernels happen to be committed.
    """
    tried = 0
    for artifact in sorted(
        (a for a in artifacts if not a.unmappable),
        key=lambda a: (len(a.placements), a.key.digest),
    ):
        for payload in mutate(artifact):
            tried += 1
            if tried > limit:
                return None
            entry = _solo_audit(payload)
            if {f.rule_id for f in entry.findings} == want:
                return payload
    return None


def _solo_audit(payload: dict, tmp_root: list = []) -> AuditEntry:
    import tempfile

    if not tmp_root:
        tmp_root.append(Path(tempfile.mkdtemp(prefix="repro-audit-")))
    path = write_artifact(tmp_root[0], payload)
    entry = audit_file(path, path.relative_to(tmp_root[0]).as_posix())
    path.unlink()
    return entry


# -- the committed store is the baseline ---------------------------------------------


def test_committed_store_audits_clean():
    report = audit_store(REPO_STORE)
    assert report.ok
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )
    counts = report.counts()
    assert counts["corrupt"] == 0 and counts["foreign"] == 0
    assert counts["folds_checked"] > 0


def test_clean_artifact_round_trips(tmp_path, small):
    write_artifact(tmp_path, payload_of(small))
    report = audit_store(tmp_path)
    assert report.ok and report.findings == []
    (entry,) = report.entries
    assert entry.kernel == small.kernel
    assert entry.folds_checked == small.pages_used


# -- encoding / addressing corruption ------------------------------------------------


def test_single_byte_corruption_is_art_read(tmp_path, small):
    path = write_artifact(tmp_path, payload_of(small))
    raw = bytearray(path.read_bytes())
    raw[0] = ord("X")  # no longer JSON
    path.write_bytes(bytes(raw))
    assert audit_ids(tmp_path) == {"ART-READ"}
    assert not audit_store(tmp_path).ok

    raw[0] = 0xC5  # invalid UTF-8 continuation — not even decodable
    path.write_bytes(bytes(raw))
    assert audit_ids(tmp_path) == {"ART-READ"}


def test_version_bump_is_art_read(tmp_path, small):
    payload = payload_of(small)
    path = write_artifact(tmp_path, payload_of(small))
    payload["version"] = 99
    path.write_text(json.dumps(payload))
    assert audit_ids(tmp_path) == {"ART-READ"}


def test_non_canonical_encoding_is_art_bytes(tmp_path, small):
    path = write_artifact(tmp_path, payload_of(small))
    path.write_text(json.dumps(json.loads(path.read_text()), indent=2))
    assert audit_ids(tmp_path) == {"ART-BYTES"}


def test_wrong_address_is_art_addr(tmp_path, small):
    write_artifact(tmp_path, payload_of(small), digest="f" * 64)
    assert audit_ids(tmp_path) == {"ART-ADDR"}


def test_unmappable_with_mapping_data_is_art_fields(tmp_path, small):
    payload = payload_of(small)
    payload["unmappable"] = True
    write_artifact(tmp_path, payload)
    assert audit_ids(tmp_path) == {"ART-FIELDS"}


# -- provenance corruption -----------------------------------------------------------


def test_unknown_kernel_is_art_dfg(tmp_path, small):
    payload = payload_of(small)
    payload["kernel"] = "nonesuch"
    write_artifact(tmp_path, payload)
    assert audit_ids(tmp_path) == {"ART-DFG"}


def test_kernel_swap_is_art_dfg(tmp_path, committed, small):
    other = next(
        a.kernel for a in committed if a.kernel != small.kernel
    )
    payload = payload_of(small)
    payload["kernel"] = other
    write_artifact(tmp_path, payload)
    assert audit_ids(tmp_path) == {"ART-DFG"}


def test_geometry_change_is_art_arch(tmp_path, small):
    payload = payload_of(small)
    payload["rows"] += 1
    write_artifact(tmp_path, payload)
    assert "ART-ARCH" in audit_ids(tmp_path)


# -- mapping corruption --------------------------------------------------------------


def test_flipped_placement_pe_is_map_legal(committed):
    def mutate(artifact):
        payload = payload_of(artifact)
        for i, (op, r, c, t) in enumerate(artifact.placements):
            for j, (_, r2, c2, _) in enumerate(artifact.placements):
                if j == i or (r2, c2) == (r, c):
                    continue
                out = json.loads(json.dumps(payload))
                out["placements"][i] = [op, r2, c2, t]
                yield out

    payload = find_mutation(committed, mutate, {"MAP-LEGAL"})
    assert payload is not None, "no placement flip produced a pure MAP-LEGAL"


def test_dropped_route_step_is_map_legal(committed):
    # a missing step breaks route-count legality AND leaves the consumer
    # reading at depth 2 — both invariants are genuinely violated
    def mutate(artifact):
        payload = payload_of(artifact)
        for i, (_, steps, _) in enumerate(artifact.routes):
            if not steps:
                continue
            out = json.loads(json.dumps(payload))
            out["routes"][i][1] = out["routes"][i][1][:-1]
            yield out

    payload = find_mutation(committed, mutate, {"MAP-LEGAL", "MAP-REGDEPTH"})
    assert payload is not None, "no route-step drop produced MAP-LEGAL"


def test_broken_ring_hop_is_map_ring(committed):
    def mutate(artifact):
        payload = payload_of(artifact)
        if artifact.pages_used < 2:
            return
        pes = {(r, c) for (_, r, c, _) in artifact.placements}
        for i, (op, r, c, t) in enumerate(artifact.placements):
            for (r2, c2) in sorted(pes):
                if (r2, c2) == (r, c):
                    continue
                out = json.loads(json.dumps(payload))
                out["placements"][i] = [op, r2, c2, t]
                yield out

    payload = find_mutation(committed, mutate, {"MAP-RING"})
    assert payload is not None, "no placement move produced a pure MAP-RING"


def test_time_shift_breaks_register_depth(committed):
    def mutate(artifact):
        if artifact.ii_paged != 1:
            return  # ii==1 keeps the page schedule legal, isolating depth
        payload = payload_of(artifact)
        for i, (op, r, c, t) in enumerate(artifact.placements):
            out = json.loads(json.dumps(payload))
            out["placements"][i] = [op, r, c, t + 1]
            yield out

    payload = find_mutation(
        committed, mutate, {"MAP-LEGAL", "MAP-REGDEPTH"}
    )
    assert payload is not None, "no time shift produced a register-depth break"


def test_lowered_ii_is_map_mii(committed):
    """An II edited below the provable minimum trips MAP-MII — the one
    rule that needs no mapping data, only the stored geometry — alongside
    whatever slot/fold rules the now-overpacked schedule also breaks."""
    victim = next(
        a
        for a in sorted(committed, key=lambda a: (len(a.placements), a.key.digest))
        if not a.unmappable and a.ii_base > 1 and a.ii_paged > 1
    )
    payload = payload_of(victim)
    payload["ii_base"] = 1
    payload["ii_paged"] = 1
    entry = _solo_audit(payload)
    ids = {f.rule_id for f in entry.findings}
    assert "MAP-MII" in ids
    mii = [f for f in entry.findings if f.rule_id == "MAP-MII"]
    assert any("base II 1" in f.message for f in mii)
    assert any("paged II 1" in f.message for f in mii)


# -- fold corruption -----------------------------------------------------------------


def test_steady_table_value_corruption_is_fold_table(tmp_path, small):
    payload = payload_of(small)
    payload["steady_ii"][0][1] += 1
    write_artifact(tmp_path, payload)
    assert audit_ids(tmp_path) == {"FOLD-TABLE"}


def test_steady_table_coverage_gap_is_fold_table(tmp_path, committed):
    multi = min(
        (a for a in committed if not a.unmappable and a.pages_used >= 2),
        key=lambda a: (len(a.placements), a.key.digest),
    )
    payload = payload_of(multi)
    payload["steady_ii"] = payload["steady_ii"][:-1]
    write_artifact(tmp_path, payload)
    assert audit_ids(tmp_path) == {"FOLD-TABLE"}


def _fold_stub(n=2, ii=1, wrap=False):
    return SimpleNamespace(pages_used=n, ii_paged=ii, wrap_used=wrap)


def test_fold_legality_catches_time_inversion():
    entry = AuditEntry(path="x", status="ok")
    placement = SimpleNamespace(
        slots={(0, 0): (0, 2), (0, 1): (0, 1), (1, 0): (1, 3), (1, 1): (1, 4)}
    )
    audit_mod._check_fold_legality(entry, _fold_stub(), placement, 2)
    assert [f.rule_id for f in entry.findings] == ["FOLD-DEPS"]
    assert "not later" in entry.findings[0].message


def test_fold_legality_catches_double_booking():
    entry = AuditEntry(path="x", status="ok")
    placement = SimpleNamespace(
        slots={(0, 0): (0, 0), (0, 1): (0, 1), (1, 0): (0, 0), (1, 1): (0, 1)}
    )
    audit_mod._check_fold_legality(entry, _fold_stub(), placement, 2)
    assert [f.rule_id for f in entry.findings] == ["FOLD-DEPS"]
    assert "double-booked" in entry.findings[0].message


def test_fold_legality_catches_column_jump():
    entry = AuditEntry(path="x", status="ok")
    placement = SimpleNamespace(
        slots={(0, 0): (0, 0), (0, 1): (3, 1), (1, 0): (1, 0), (1, 1): (2, 1)}
    )
    audit_mod._check_fold_legality(entry, _fold_stub(), placement, 2)
    assert [f.rule_id for f in entry.findings] == ["FOLD-DEPS"]
    assert "spans columns" in entry.findings[0].message


def test_fold_bound_envelope():
    stub = _fold_stub(n=4, ii=2)  # resource bound for M=2: 2*4/2 = 4
    entry = AuditEntry(path="x", status="ok")
    audit_mod._check_fold_bound(entry, stub, Fraction(3), 2)
    assert [f.rule_id for f in entry.findings] == ["FOLD-BOUND"]  # below

    entry = AuditEntry(path="x", status="ok")
    audit_mod._check_fold_bound(entry, stub, Fraction(5), 2)
    assert [f.rule_id for f in entry.findings] == ["FOLD-BOUND"]  # M|N inexact

    entry = AuditEntry(path="x", status="ok")
    audit_mod._check_fold_bound(entry, stub, Fraction(4), 2)
    assert entry.findings == []  # grouped fold, exact

    wrap = _fold_stub(n=4, ii=2, wrap=True)  # zigzag: 2x envelope applies
    entry = AuditEntry(path="x", status="ok")
    audit_mod._check_fold_bound(entry, wrap, Fraction(7), 2)
    assert entry.findings == []

    entry = AuditEntry(path="x", status="ok")
    audit_mod._check_fold_bound(entry, wrap, Fraction(9), 2)
    assert [f.rule_id for f in entry.findings] == ["FOLD-BOUND"]  # over 2x


# -- store hygiene -------------------------------------------------------------------


def test_foreign_files_are_tolerated_and_reported(tmp_path, small):
    write_artifact(tmp_path, payload_of(small))
    (tmp_path / "README.txt").write_text("not an artifact\n")
    shard = tmp_path / small.key.digest[:2]
    (shard / "notes.md").write_text("scratch\n")

    store = ArtifactStore(tmp_path)
    assert store.get(small.key) is not None  # reads unaffected

    report = audit_store(tmp_path)
    assert report.ok  # foreign files never fail the audit outright
    foreign = [e for e in report.entries if e.status == "foreign"]
    assert sorted(e.path for e in foreign) == sorted(
        ["README.txt", f"{small.key.digest[:2]}/notes.md"]
    )
    assert {f.rule_id for f in report.findings} == {"STORE-FOREIGN"}
    assert all(f.severity is Severity.WARNING for f in report.findings)
    assert exit_code(report.findings) == 0
    assert exit_code(report.findings, strict=True) == 1


def test_store_walk_is_sorted(tmp_path, small, committed):
    for artifact in committed[:5]:
        write_artifact(tmp_path, payload_of(artifact))
    (tmp_path / "zzz.txt").write_text("stray\n")
    walked = [p for p, _ in ArtifactStore(tmp_path).walk()]
    assert walked == sorted(walked)


def test_cli_contract(tmp_path, small):
    from repro.analysis.cli import main

    write_artifact(tmp_path, payload_of(small))
    assert main(["audit", "--store", str(tmp_path)]) == 0

    payload = payload_of(small)
    payload["steady_ii"][0][1] += 1
    write_artifact(tmp_path, payload)  # same address: overwrites clean copy
    assert main(["audit", "--store", str(tmp_path)]) == 1

    assert main(["audit", "--store", str(tmp_path / "missing")]) == 2
    assert main(["rules"]) == 0
