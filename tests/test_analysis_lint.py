"""Determinism lint: one firing and one non-firing fixture per rule id,
suppression mechanics, and the clean-tree baseline gate."""

import textwrap

import pytest

from repro.analysis.findings import Severity
from repro.analysis.lint import default_root, lint_paths, lint_tree
from repro.analysis.registry import all_rules, get_rule
from repro.analysis.report import exit_code
from repro.analysis.suppressions import parse_suppressions


def lint_source(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], base=tmp_path)


def rule_ids(findings):
    return [f.rule_id for f in findings]


# -- fixtures per rule id ------------------------------------------------------------


FIRES = {
    "DET-SET-ITER": """
        def f(xs):
            s = set(xs)
            out = []
            for x in s:
                out.append(x)
            return out
        """,
    "DET-DIR-SCAN": """
        import os

        def f(d):
            return [p for p in os.listdir(d)]
        """,
    "DET-RNG-SEED": """
        import random

        def f():
            return random.random()
        """,
    "DET-ID-ORDER": """
        def f(ops):
            return sorted(ops, key=lambda o: id(o))
        """,
    "DET-HASH-ORDER": """
        def f(name):
            return hash(name) % 16
        """,
    "DET-WALL-CLOCK": """
        import time

        def f():
            return {"stamp": time.time()}
        """,
    "DET-MUT-DEFAULT": """
        def f(acc=[]):
            acc.append(1)
            return acc
        """,
    "DET-FLOAT-EQ": """
        def f(energy):
            return energy == 0.0
        """,
}

CLEAN = {
    "DET-SET-ITER": """
        def f(xs):
            s = set(xs)
            total = sum(x for x in s)  # order-insensitive reduction
            out = []
            for x in sorted(s):
                out.append(x)
            return out, total
        """,
    "DET-DIR-SCAN": """
        import os

        def f(d):
            return sorted(os.listdir(d))
        """,
    "DET-RNG-SEED": """
        from repro.util.rng import make_rng

        def f(seed):
            return make_rng(seed).random()
        """,
    "DET-ID-ORDER": """
        def f(ops):
            return sorted(ops, key=lambda o: o.op_id)
        """,
    "DET-HASH-ORDER": """
        from repro.util.fingerprint import canonical_fingerprint

        def f(name):
            return canonical_fingerprint({"name": name})
        """,
    "DET-WALL-CLOCK": """
        import time

        def f():
            t0 = time.perf_counter()  # measurement clocks are fine
            return time.perf_counter() - t0
        """,
    "DET-MUT-DEFAULT": """
        def f(acc=None):
            acc = [] if acc is None else acc
            acc.append(1)
            return acc
        """,
    "DET-FLOAT-EQ": """
        def f(energy):
            return abs(energy) < 1e-9
        """,
}


@pytest.mark.parametrize("rule_id", sorted(FIRES))
def test_rule_fires_on_fixture(tmp_path, rule_id):
    findings = lint_source(tmp_path, FIRES[rule_id])
    assert rule_id in rule_ids(findings), findings


@pytest.mark.parametrize("rule_id", sorted(CLEAN))
def test_rule_quiet_on_clean_fixture(tmp_path, rule_id):
    findings = lint_source(tmp_path, CLEAN[rule_id])
    assert rule_id not in rule_ids(findings), findings


def test_every_lint_rule_has_fixtures():
    checkable = {
        r.id for r in all_rules() if r.kind == "lint" and r.checker is not None
    }
    assert checkable == set(FIRES) == set(CLEAN)


# -- rule-specific edges -------------------------------------------------------------


def test_set_iter_tracks_attributes_and_unions(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class Sched:
            deps: set

            def walk(self):
                for d in self.deps:
                    print(d)

        def g(a, b):
            for x in a | {1, 2}:
                print(x)
        """,
    )
    assert rule_ids(findings).count("DET-SET-ITER") == 2


def test_dir_scan_pathlib_methods(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def f(root):
            for p in root.rglob("*.py"):
                print(p)
            for q in sorted(root.glob("*.json")):
                print(q)
        """,
    )
    assert rule_ids(findings).count("DET-DIR-SCAN") == 1


def test_rng_rule_exempts_the_seeding_choke_point(tmp_path):
    nest = tmp_path / "repro" / "util"
    nest.mkdir(parents=True)
    path = nest / "rng.py"
    path.write_text("import random\nr = random.Random()\n")
    assert lint_paths([path], base=tmp_path) == []


@pytest.mark.parametrize(
    "call",
    [
        "np.random.PCG64()",
        "np.random.MT19937()",
        "np.random.Philox()",
        "np.random.SFC64()",
        "np.random.PCG64DXSM()",
        "np.random.SeedSequence()",
        "np.random.default_rng()",
        "np.random.default_rng(None)",
        "np.random.PCG64(seed=None)",
    ],
)
def test_rng_rule_fires_on_unseeded_numpy_constructors(tmp_path, call):
    findings = lint_source(
        tmp_path, f"import numpy as np\n\ndef f():\n    return {call}\n"
    )
    assert rule_ids(findings) == ["DET-RNG-SEED"], findings
    assert "draws OS entropy" in findings[0].message


@pytest.mark.parametrize(
    "call",
    [
        "np.random.PCG64(seed)",
        "np.random.PCG64(seed=seed)",
        "np.random.MT19937(seed)",
        "np.random.SeedSequence(seed)",
        "np.random.SeedSequence(entropy=seed)",
        "np.random.default_rng(seed)",
        "np.random.default_rng(seed=seed)",
        "np.random.Generator(np.random.PCG64(seed))",
    ],
)
def test_rng_rule_quiet_on_seeded_numpy_constructors(tmp_path, call):
    findings = lint_source(
        tmp_path, f"import numpy as np\n\ndef f(seed):\n    return {call}\n"
    )
    assert findings == [], findings


def test_wall_clock_rule_names_the_target(tmp_path):
    (finding,) = lint_source(
        tmp_path,
        """
        import os

        def f():
            return os.getpid()
        """,
    )
    assert finding.rule_id == "DET-WALL-CLOCK"
    assert "os.getpid" in finding.message


def test_unparseable_module_is_a_finding(tmp_path):
    findings = lint_source(tmp_path, "def broken(:\n")
    assert rule_ids(findings) == ["LINT-PARSE"]


# -- suppressions --------------------------------------------------------------------


def test_suppression_with_reason_silences(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def f(energy):
            return energy == 0.0  # repro: allow[DET-FLOAT-EQ] integer-valued by construction
        """,
    )
    assert findings == []


def test_standalone_suppression_covers_next_line(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def f(energy):
            # repro: allow[DET-FLOAT-EQ] integer-valued by construction
            return energy == 0.0
        """,
    )
    assert findings == []


def test_suppression_without_reason_does_not_silence(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def f(energy):
            return energy == 0.0  # repro: allow[DET-FLOAT-EQ]
        """,
    )
    ids = rule_ids(findings)
    assert "DET-FLOAT-EQ" in ids and "SUP-REASON" in ids


def test_unused_suppression_is_reported(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def f(x):
            return x + 1  # repro: allow[DET-FLOAT-EQ] nothing here fires
        """,
    )
    assert rule_ids(findings) == ["SUP-UNUSED"]


def test_unknown_rule_id_is_reported(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def f(energy):
            return energy == 0.0  # repro: allow[NO-SUCH-RULE] wrong id
        """,
    )
    ids = rule_ids(findings)
    assert "SUP-UNKNOWN" in ids and "DET-FLOAT-EQ" in ids


def test_suppression_examples_in_docstrings_are_inert(tmp_path):
    findings = lint_source(
        tmp_path,
        '''
        def f():
            """Example: x  # repro: allow[RULE-ID] reason."""
            return 1
        ''',
    )
    assert findings == []


def test_parse_suppressions_multi_id():
    (sup,) = parse_suppressions(
        "x = 1  # repro: allow[RULE-A, RULE-B] shared reason\n"
    )
    assert sup.rule_ids == ("RULE-A", "RULE-B")
    assert sup.reason == "shared reason"
    assert sup.target_line == 1


# -- catalogue and baseline ----------------------------------------------------------


def test_rule_catalogue_is_stable():
    ids = [r.id for r in all_rules()]
    assert ids == sorted(ids)
    assert get_rule("DET-SET-ITER").severity is Severity.ERROR
    with pytest.raises(KeyError):
        get_rule("NO-SUCH-RULE")


def test_repro_tree_is_lint_clean():
    findings = lint_tree(default_root())
    assert findings == [], "\n".join(f.render() for f in findings)


def test_exit_code_contract():
    assert exit_code([]) == 0
    assert exit_code([], strict=True) == 0
    warn = [f for f in _warn_findings()]
    assert exit_code(warn) == 0
    assert exit_code(warn, strict=True) == 1


def _warn_findings():
    from repro.analysis.findings import Finding

    yield Finding(
        file="x.py",
        line=1,
        col=0,
        rule_id="SUP-UNUSED",
        severity=Severity.WARNING,
        message="stale",
    )
