"""Tests for the DRESC-style simulated-annealing mapper (second baseline)
and its paging-constrained variant (§IX mapper independence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.cgra import CGRA
from repro.compiler.annealing import anneal_map, anneal_map_paged
from repro.compiler.check import validate_mapping
from repro.compiler.constraints import paged_bus_key, ring_hop_filter
from repro.core.page_schedule import extract_page_schedule
from repro.core.pagemaster import PageMaster
from repro.core.paging import PageLayout
from repro.compiler.paged import PagedMapping
from repro.kernels import bind_memory, get_kernel
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.sim.retarget import required_batches, retarget_firings
from repro.util.errors import MappingError


class TestAnnealBaseline:
    @pytest.mark.parametrize("name", ["sor", "laplace", "wavelet"])
    def test_maps_and_validates(self, name):
        cgra = CGRA(4, 4)
        m = anneal_map(get_kernel(name).build(), cgra, seed=1, max_ii=12)
        validate_mapping(m)

    def test_functionally_correct(self):
        cgra = CGRA(4, 4, rf_depth=8)
        spec = get_kernel("laplace")
        dfg, arrays, expected = spec.fresh(seed=5, trip=10)
        m = anneal_map(dfg, cgra, seed=3, max_ii=12)
        mem = bind_memory(arrays)
        simulate(lower_mapping(m, mem, 10), cgra, mem)
        assert np.array_equal(mem.read_array("out"), expected["out"])

    def test_deterministic_per_seed(self):
        cgra = CGRA(4, 4)
        dfg = get_kernel("wavelet").build()
        m1 = anneal_map(dfg, cgra, seed=7, max_ii=12)
        m2 = anneal_map(dfg, cgra, seed=7, max_ii=12)
        assert m1.placements == m2.placements

    def test_failure_raises(self):
        cgra = CGRA(2, 2)
        dfg = get_kernel("yuv2rgb").build()
        with pytest.raises(MappingError):
            anneal_map(dfg, cgra, seed=0, max_ii=2, iterations=200, restarts=1)

    def test_empty_rejected(self):
        from repro.dfg.graph import DFG

        with pytest.raises(MappingError):
            anneal_map(DFG(), CGRA(4, 4))


class TestMapperIndependence:
    """§IX: the transformation framework is independent of the mapper —
    an annealing-produced paged mapping shrinks and still computes."""

    def test_annealed_mapping_is_ring_consistent(self):
        cgra = CGRA(4, 4, rf_depth=24)
        layout = PageLayout(cgra, (2, 2))
        dfg = get_kernel("laplace").build()
        m = anneal_map_paged(dfg, cgra, layout, seed=2, max_ii=12)
        hop = ring_hop_filter(layout)
        validate_mapping(
            m, allowed_pes=list(layout.page_of), hop_allowed=hop
        )
        extract_page_schedule(m, layout).validate_ring()

    def test_annealed_mapping_shrinks_correctly(self):
        trip = 10
        cgra = CGRA(4, 4, rf_depth=24)
        layout = PageLayout(cgra, (2, 2))
        spec = get_kernel("laplace")
        dfg, arrays, expected = spec.fresh(seed=4, trip=trip)
        m = anneal_map_paged(dfg, cgra, layout, seed=2, max_ii=12)
        schedule = extract_page_schedule(m, layout)
        pm = PagedMapping(m, layout, schedule)
        placement = PageMaster(
            layout.num_pages, m.ii, 1, wrap_used=pm.wrap_used
        ).place(batches=required_batches(m, trip))
        mem = bind_memory(arrays)
        firings = retarget_firings(pm, placement, [0], mem, trip, rf_limit=64)
        simulate(
            firings, cgra, mem, bus_key=paged_bus_key(layout), rf_depth=64
        )
        assert np.array_equal(mem.read_array("out"), expected["out"])
