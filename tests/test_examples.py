"""Smoke tests: every shipped example must run to completion in-process.

(The examples double as integration tests of the public API; the bench
cache keeps the two that compile the whole suite fast.)
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "pagemaster_walkthrough", "tracing_and_debugging"],
)
def test_example_runs(name, capsys):
    load_example(name).main()
    out = capsys.readouterr().out
    assert out.strip(), name


def test_example_files_exist():
    expected = {
        "quickstart.py",
        "pagemaster_walkthrough.py",
        "multithreaded_system.py",
        "constraint_study.py",
        "tracing_and_debugging.py",
    }
    assert expected <= {p.name for p in EXAMPLES.glob("*.py")}


def test_quickstart_reports_correct(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "correct=True" in out
    assert "correct=False" not in out
