"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.arch import CGRA
from repro.core.paging import PageLayout


@pytest.fixture
def cgra44() -> CGRA:
    """The paper's smallest configuration: 4x4 mesh."""
    return CGRA(4, 4, rf_depth=8)


@pytest.fixture
def cgra44_deep() -> CGRA:
    """4x4 with a rotating file deep enough for single-page folds."""
    return CGRA(4, 4, rf_depth=24)


@pytest.fixture
def layout44_q(cgra44_deep) -> PageLayout:
    """4x4 divided into four 2x2 pages (Fig. 4 left)."""
    return PageLayout(cgra44_deep, (2, 2))


@pytest.fixture
def layout44_c(cgra44_deep) -> PageLayout:
    """4x4 divided into four 4x1 column pages (Fig. 4 right)."""
    return PageLayout(cgra44_deep, (4, 1))
