"""Unit tests for compiler building blocks: mapping model, reservation
table, router."""

from __future__ import annotations

import pytest

from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.compiler.mapping import (
    Mapping,
    Placement,
    Route,
    RouteStep,
    edge_gap,
    materialized_edges,
    materialized_ops,
)
from repro.compiler.mrt import ReservationTable
from repro.compiler.routing import commit_route, find_route, release_route
from repro.dfg.builder import DFGBuilder
from repro.util.errors import MappingError


def tiny_dfg():
    b = DFGBuilder("tiny")
    x = b.load("in")
    y = b.add(x, b.const(1))
    b.store("out", y)
    return b.build()


class TestMaterialization:
    def test_consts_not_materialized(self):
        g = tiny_dfg()
        mat = materialized_ops(g)
        assert len(mat) == g.num_ops - 1  # one const dropped

    def test_const_edges_not_materialized(self):
        g = tiny_dfg()
        edges = materialized_edges(g)
        assert len(edges) == g.num_edges - 1


class TestReservationTable:
    def test_claim_release_cycle(self, cgra44):
        t = ReservationTable(cgra44, ii=2)
        pe = Coord(0, 0)
        t.claim(pe, 0, "a")
        assert not t.slot_free(pe, 2)  # modulo II
        t.release(pe, 0)
        assert t.slot_free(pe, 2)

    def test_double_claim_rejected(self, cgra44):
        t = ReservationTable(cgra44, ii=2)
        t.claim(Coord(1, 1), 3, "a")
        with pytest.raises(MappingError):
            t.claim(Coord(1, 1), 5, "b")  # same modulo slot

    def test_bus_capacity_default_per_row(self, cgra44):
        t = ReservationTable(cgra44, ii=1)
        t.claim(Coord(0, 0), 0, "ld0", memory=True)
        assert not t.bus_free(Coord(0, 3), 0)  # same row
        assert t.bus_free(Coord(1, 0), 0)  # other row
        with pytest.raises(MappingError):
            t.claim(Coord(0, 1), 0, "ld1", memory=True)

    def test_bus_release(self, cgra44):
        t = ReservationTable(cgra44, ii=1)
        t.claim(Coord(0, 0), 0, "ld", memory=True)
        t.release(Coord(0, 0), 0, memory=True)
        assert t.bus_free(Coord(0, 1), 0)

    def test_custom_bus_key(self, cgra44):
        t = ReservationTable(cgra44, ii=1, bus_key=lambda pe: pe.col % 2)
        t.claim(Coord(0, 0), 0, "a", memory=True)
        assert not t.bus_free(Coord(3, 2), 0)  # same segment (even col)
        assert t.bus_free(Coord(3, 1), 0)

    def test_release_unclaimed_rejected(self, cgra44):
        t = ReservationTable(cgra44, ii=2)
        with pytest.raises(MappingError):
            t.release(Coord(0, 0), 0)

    def test_copy_is_independent(self, cgra44):
        t = ReservationTable(cgra44, ii=2)
        t.claim(Coord(0, 0), 0, "a")
        c = t.copy()
        c.claim(Coord(0, 0), 1, "b")
        assert t.slot_free(Coord(0, 0), 1)

    def test_bad_ii(self, cgra44):
        with pytest.raises(MappingError):
            ReservationTable(cgra44, ii=0)


class TestRouting:
    def test_direct_link(self, cgra44):
        mrt = ReservationTable(cgra44, ii=4)
        steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(0, 1), 1)
        assert steps == ()

    def test_direct_link_requires_adjacency(self, cgra44):
        mrt = ReservationTable(cgra44, ii=4)
        assert find_route(cgra44, mrt, Coord(0, 0), 0, Coord(3, 3), 1) is None

    def test_non_causal_rejected(self, cgra44):
        mrt = ReservationTable(cgra44, ii=4)
        assert find_route(cgra44, mrt, Coord(0, 0), 5, Coord(0, 1), 5) is None

    def test_multi_hop_route_times(self, cgra44):
        mrt = ReservationTable(cgra44, ii=8)
        steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(3, 3), 6)
        assert steps is not None and len(steps) == 5
        assert [s.time for s in steps] == [1, 2, 3, 4, 5]
        # chain is physically contiguous
        holder = Coord(0, 0)
        for s in steps:
            assert cgra44.adjacent_or_same(s.pe, holder)
            holder = s.pe
        assert cgra44.adjacent_or_same(Coord(3, 3), holder)

    def test_route_respects_occupancy(self, cgra44):
        mrt = ReservationTable(cgra44, ii=2)
        # block the entire escape neighbourhood of (0,0) at time 1 (mod 0 &
        # 1 as needed)
        for pe in [Coord(0, 0), Coord(0, 1), Coord(1, 0)]:
            mrt.claim(pe, 1, "blocker")
        steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(0, 1), 4)
        assert steps is None

    def test_route_longer_than_ii_self_collision_avoided(self, cgra44):
        # gap > II forces the DFS path not to reuse its own modulo slots
        mrt = ReservationTable(cgra44, ii=2)
        steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(0, 0), 6)
        assert steps is not None
        used = {(s.pe, s.time % 2) for s in steps}
        assert len(used) == len(steps)

    def test_hop_filter_blocks(self, cgra44):
        mrt = ReservationTable(cgra44, ii=4)
        never = lambda a, b: False  # noqa: E731
        assert (
            find_route(cgra44, mrt, Coord(0, 0), 0, Coord(0, 1), 2, hop_allowed=never)
            is None
        )

    def test_commit_and_release(self, cgra44):
        mrt = ReservationTable(cgra44, ii=8)
        steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(2, 0), 4)
        commit_route(mrt, 7, steps)
        for s in steps:
            assert not mrt.slot_free(s.pe, s.time)
        release_route(mrt, steps)
        for s in steps:
            assert mrt.slot_free(s.pe, s.time)


class TestMappingModel:
    def test_edge_gap_with_distance(self):
        g = tiny_dfg()
        e = list(g.edges.values())[0]
        assert edge_gap(e, t_src=3, t_dst=4, ii=2) == 1

    def test_schedule_length_and_stages(self, cgra44):
        g = tiny_dfg()
        m = Mapping(cgra44, g, ii=2)
        mat = materialized_ops(g)
        for i, op_id in enumerate(mat):
            m.placements[op_id] = Placement(op_id, Coord(0, i), i)
        assert m.schedule_length == len(mat)
        assert m.stage_count == 2  # ceil(3 / 2)

    def test_placement_missing_raises(self, cgra44):
        m = Mapping(cgra44, tiny_dfg(), ii=1)
        with pytest.raises(MappingError):
            m.placement(0)

    def test_holder_before_prefers_route_tail(self, cgra44):
        g = tiny_dfg()
        m = Mapping(cgra44, g, ii=4)
        e = [e for e in g.edges.values() if not g.ops[e.src].opcode.value == "const"][0]
        m.placements[e.src] = Placement(e.src, Coord(0, 0), 0)
        m.placements[e.dst] = Placement(e.dst, Coord(0, 2), 3)
        m.routes[e.id] = Route(
            e.id, (RouteStep(Coord(0, 1), 1), RouteStep(Coord(0, 2), 2))
        )
        holder, t = m.holder_before(e)
        assert holder == Coord(0, 2) and t == 2

    def test_invalid_ii(self, cgra44):
        with pytest.raises(MappingError):
            Mapping(cgra44, tiny_dfg(), ii=0)

    def test_negative_time_rejected(self):
        with pytest.raises(MappingError):
            Placement(0, Coord(0, 0), -1)
