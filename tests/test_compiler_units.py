"""Unit tests for compiler building blocks: mapping model, reservation
table, router."""

from __future__ import annotations

import pytest

from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.compiler.mapping import (
    Mapping,
    Placement,
    Route,
    RouteStep,
    edge_gap,
    materialized_edges,
    materialized_ops,
)
from repro.compiler.mrt import ReservationTable
from repro.compiler.routing import commit_route, find_route, release_route
from repro.dfg.builder import DFGBuilder
from repro.util.errors import MappingError


def tiny_dfg():
    b = DFGBuilder("tiny")
    x = b.load("in")
    y = b.add(x, b.const(1))
    b.store("out", y)
    return b.build()


class TestMaterialization:
    def test_consts_not_materialized(self):
        g = tiny_dfg()
        mat = materialized_ops(g)
        assert len(mat) == g.num_ops - 1  # one const dropped

    def test_const_edges_not_materialized(self):
        g = tiny_dfg()
        edges = materialized_edges(g)
        assert len(edges) == g.num_edges - 1


class TestReservationTable:
    def test_claim_release_cycle(self, cgra44):
        t = ReservationTable(cgra44, ii=2)
        pe = Coord(0, 0)
        t.claim(pe, 0, "a")
        assert not t.slot_free(pe, 2)  # modulo II
        t.release(pe, 0)
        assert t.slot_free(pe, 2)

    def test_double_claim_rejected(self, cgra44):
        t = ReservationTable(cgra44, ii=2)
        t.claim(Coord(1, 1), 3, "a")
        with pytest.raises(MappingError):
            t.claim(Coord(1, 1), 5, "b")  # same modulo slot

    def test_bus_capacity_default_per_row(self, cgra44):
        t = ReservationTable(cgra44, ii=1)
        t.claim(Coord(0, 0), 0, "ld0", memory=True)
        assert not t.bus_free(Coord(0, 3), 0)  # same row
        assert t.bus_free(Coord(1, 0), 0)  # other row
        with pytest.raises(MappingError):
            t.claim(Coord(0, 1), 0, "ld1", memory=True)

    def test_bus_release(self, cgra44):
        t = ReservationTable(cgra44, ii=1)
        t.claim(Coord(0, 0), 0, "ld", memory=True)
        t.release(Coord(0, 0), 0, memory=True)
        assert t.bus_free(Coord(0, 1), 0)

    def test_custom_bus_key(self, cgra44):
        t = ReservationTable(cgra44, ii=1, bus_key=lambda pe: pe.col % 2)
        t.claim(Coord(0, 0), 0, "a", memory=True)
        assert not t.bus_free(Coord(3, 2), 0)  # same segment (even col)
        assert t.bus_free(Coord(3, 1), 0)

    def test_release_unclaimed_rejected(self, cgra44):
        t = ReservationTable(cgra44, ii=2)
        with pytest.raises(MappingError):
            t.release(Coord(0, 0), 0)

    def test_copy_is_independent(self, cgra44):
        t = ReservationTable(cgra44, ii=2)
        t.claim(Coord(0, 0), 0, "a")
        c = t.copy()
        c.claim(Coord(0, 0), 1, "b")
        assert t.slot_free(Coord(0, 0), 1)

    def test_bad_ii(self, cgra44):
        with pytest.raises(MappingError):
            ReservationTable(cgra44, ii=0)


class TestRouting:
    def test_direct_link(self, cgra44):
        mrt = ReservationTable(cgra44, ii=4)
        steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(0, 1), 1)
        assert steps == ()

    def test_direct_link_requires_adjacency(self, cgra44):
        mrt = ReservationTable(cgra44, ii=4)
        assert find_route(cgra44, mrt, Coord(0, 0), 0, Coord(3, 3), 1) is None

    def test_non_causal_rejected(self, cgra44):
        mrt = ReservationTable(cgra44, ii=4)
        assert find_route(cgra44, mrt, Coord(0, 0), 5, Coord(0, 1), 5) is None

    def test_multi_hop_route_times(self, cgra44):
        mrt = ReservationTable(cgra44, ii=8)
        steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(3, 3), 6)
        assert steps is not None and len(steps) == 5
        assert [s.time for s in steps] == [1, 2, 3, 4, 5]
        # chain is physically contiguous
        holder = Coord(0, 0)
        for s in steps:
            assert cgra44.adjacent_or_same(s.pe, holder)
            holder = s.pe
        assert cgra44.adjacent_or_same(Coord(3, 3), holder)

    def test_route_respects_occupancy(self, cgra44):
        mrt = ReservationTable(cgra44, ii=2)
        # block the entire escape neighbourhood of (0,0) at time 1 (mod 0 &
        # 1 as needed)
        for pe in [Coord(0, 0), Coord(0, 1), Coord(1, 0)]:
            mrt.claim(pe, 1, "blocker")
        steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(0, 1), 4)
        assert steps is None

    def test_route_longer_than_ii_self_collision_avoided(self, cgra44):
        # gap > II forces the DFS path not to reuse its own modulo slots
        mrt = ReservationTable(cgra44, ii=2)
        steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(0, 0), 6)
        assert steps is not None
        used = {(s.pe, s.time % 2) for s in steps}
        assert len(used) == len(steps)

    def test_hop_filter_blocks(self, cgra44):
        mrt = ReservationTable(cgra44, ii=4)
        never = lambda a, b: False  # noqa: E731
        assert (
            find_route(cgra44, mrt, Coord(0, 0), 0, Coord(0, 1), 2, hop_allowed=never)
            is None
        )

    def test_commit_and_release(self, cgra44):
        mrt = ReservationTable(cgra44, ii=8)
        steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(2, 0), 4)
        commit_route(mrt, 7, steps)
        for s in steps:
            assert not mrt.slot_free(s.pe, s.time)
        release_route(mrt, steps)
        for s in steps:
            assert mrt.slot_free(s.pe, s.time)


class TestMappingModel:
    def test_edge_gap_with_distance(self):
        g = tiny_dfg()
        e = list(g.edges.values())[0]
        assert edge_gap(e, t_src=3, t_dst=4, ii=2) == 1

    def test_schedule_length_and_stages(self, cgra44):
        g = tiny_dfg()
        m = Mapping(cgra44, g, ii=2)
        mat = materialized_ops(g)
        for i, op_id in enumerate(mat):
            m.placements[op_id] = Placement(op_id, Coord(0, i), i)
        assert m.schedule_length == len(mat)
        assert m.stage_count == 2  # ceil(3 / 2)

    def test_placement_missing_raises(self, cgra44):
        m = Mapping(cgra44, tiny_dfg(), ii=1)
        with pytest.raises(MappingError):
            m.placement(0)

    def test_holder_before_prefers_route_tail(self, cgra44):
        g = tiny_dfg()
        m = Mapping(cgra44, g, ii=4)
        e = [e for e in g.edges.values() if not g.ops[e.src].opcode.value == "const"][0]
        m.placements[e.src] = Placement(e.src, Coord(0, 0), 0)
        m.placements[e.dst] = Placement(e.dst, Coord(0, 2), 3)
        m.routes[e.id] = Route(
            e.id, (RouteStep(Coord(0, 1), 1), RouteStep(Coord(0, 2), 2))
        )
        holder, t = m.holder_before(e)
        assert holder == Coord(0, 2) and t == 2

    def test_invalid_ii(self, cgra44):
        with pytest.raises(MappingError):
            Mapping(cgra44, tiny_dfg(), ii=0)

    def test_negative_time_rejected(self):
        with pytest.raises(MappingError):
            Placement(0, Coord(0, 0), -1)


class TestReservationCounters:
    """The flat table's per-slot free counters and bus use-counts must
    agree with a brute-force scan of the occupancy array at every point of
    an interleaved claim/release history (satellite of the integer-indexed
    mapper PR: ``free_slots_at`` is O(1) *because* of these counters)."""

    def _assert_counters_agree(self, t, cgra):
        for m in range(t.ii):
            brute = sum(
                1 for pe in cgra.interconnect.coords() if t.slot_free(pe, m)
            )
            assert t.free_slots_at(m) == brute, f"slot {m}"
        assert t.occupancy == t.ii * cgra.num_pes - sum(
            t.free_slots_at(m) for m in range(t.ii)
        )

    def test_interleaved_claim_release_with_bus(self, cgra44):
        import random

        rng = random.Random(7)
        t = ReservationTable(cgra44, ii=3)
        pes = list(cgra44.interconnect.coords())
        held: list[tuple[Coord, int, bool]] = []
        for step in range(300):
            if held and rng.random() < 0.45:
                pe, time, memory = held.pop(rng.randrange(len(held)))
                t.release(pe, time, memory=memory)
            else:
                pe = rng.choice(pes)
                time = rng.randrange(0, 12)
                if not t.slot_free(pe, time):
                    continue
                memory = rng.random() < 0.4 and t.bus_free(pe, time)
                t.claim(pe, time, f"op{step}", memory=memory)
                held.append((pe, time, memory))
            if step % 25 == 0:
                self._assert_counters_agree(t, cgra44)
        self._assert_counters_agree(t, cgra44)
        for pe, time, memory in held:
            t.release(pe, time, memory=memory)
        # fully drained: every counter back to its initial state
        assert t.occupancy == 0
        for m in range(t.ii):
            assert t.free_slots_at(m) == cgra44.num_pes
        for pe in pes:
            for m in range(t.ii):
                assert t.bus_free(pe, m)

    def test_copy_preserves_counter_agreement(self, cgra44):
        t = ReservationTable(cgra44, ii=2)
        t.claim(Coord(0, 0), 0, "a", memory=True)
        t.claim(Coord(1, 1), 1, "b")
        dup = t.copy()
        dup.claim(Coord(2, 2), 0, "c", memory=True)
        dup.release(Coord(0, 0), 0, memory=True)
        self._assert_counters_agree(t, cgra44)
        self._assert_counters_agree(dup, cgra44)
        # original untouched by the copy's mutations
        assert not t.slot_free(Coord(0, 0), 0)
        assert dup.slot_free(Coord(0, 0), 0)


class TestRoutingDeterminism:
    """Route choice must be a pure function of (fabric, reservations,
    query) — never of set/dict iteration order.  The goal tables are
    explicitly ordered (goal PEs sorted by id, memoized hint), so the same
    query on equal reservation state yields byte-identical steps across
    repeated calls, fresh contexts, and warm memo tables."""

    def _occupied_mrt(self, cgra, ii):
        mrt = ReservationTable(cgra, ii=ii)
        # stake out an asymmetric obstacle field so tie-breaks matter
        for pe, time in [
            (Coord(0, 1), 1),
            (Coord(1, 1), 2),
            (Coord(2, 1), 0),
            (Coord(1, 2), 1),
            (Coord(2, 3), 2),
        ]:
            mrt.claim(pe, time, "obstacle")
        return mrt

    def test_bfs_route_stable_across_fresh_contexts(self, cgra44):
        ref = None
        for _ in range(5):
            mrt = self._occupied_mrt(cgra44, ii=8)
            steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(3, 3), 7)
            assert steps is not None
            if ref is None:
                ref = steps
            assert steps == ref

    def test_dfs_route_stable_across_fresh_contexts(self, cgra44):
        ref = None
        for _ in range(5):
            mrt = self._occupied_mrt(cgra44, ii=2)
            steps = find_route(cgra44, mrt, Coord(0, 0), 0, Coord(3, 3), 8)
            assert steps is not None
            if ref is None:
                ref = steps
            assert steps == ref

    def test_warm_memo_matches_cold_context(self, cgra44):
        from repro.compiler.routing import RoutingContext

        ctx = RoutingContext(cgra44)
        query = (Coord(0, 0), 0, Coord(3, 3), 7)
        cold = find_route(cgra44, self._occupied_mrt(cgra44, 8), *query)
        warm1 = find_route(
            cgra44, self._occupied_mrt(cgra44, 8), *query, ctx=ctx
        )
        warm2 = find_route(
            cgra44, self._occupied_mrt(cgra44, 8), *query, ctx=ctx
        )
        assert cold == warm1 == warm2

    def test_goal_table_explicitly_ordered(self, cgra44):
        from repro.compiler.routing import RoutingContext

        ctx = RoutingContext(cgra44)
        gi = cgra44.grid_index
        for dst_id in range(gi.num_pes):
            goal, mask, min_dist, hint = ctx.goal_table(dst_id)
            assert list(goal) == sorted(goal)
            assert all(mask[g] for g in goal)
            assert sum(mask) == len(goal)
            # pruning bound is tight at the goals themselves
            assert all(min_dist[g] == 0 for g in goal)
            assert hint is not None and mask[hint]
