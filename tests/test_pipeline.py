"""Tests for the compilation pipeline: fingerprints, the CompiledKernel
artifact, the content-addressed store, and the compile_many() fan-out."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.cgra import CGRA
from repro.compiler.ems import MapperConfig
from repro.dfg.graph import DFG
from repro.kernels import get_kernel
from repro.pipeline import (
    ArtifactKey,
    ArtifactStore,
    CompiledKernel,
    CompileJob,
    compile_job,
    compile_many,
    job_key,
)


# ---------------------------------------------------------------- fingerprints


class TestFingerprints:
    def test_dfg_fingerprint_stable(self):
        assert get_kernel("sor").build().fingerprint() == get_kernel("sor").build().fingerprint()

    def test_dfg_fingerprint_ignores_names(self):
        d = get_kernel("sor").build()
        renamed = DFG()
        remap = {}
        for op in d.ops.values():
            o = renamed.add_op(op.opcode, name=f"x{op.id}", immediate=op.immediate,
                               memref=op.memref)
            remap[op.id] = o.id
        for e in d.edges.values():
            renamed.add_edge(remap[e.src], remap[e.dst], e.operand_index,
                             distance=e.distance, init=e.init)
        assert renamed.fingerprint() == d.fingerprint()

    def test_dfg_fingerprint_changes_on_mutation(self):
        fps = {get_kernel(k).build().fingerprint() for k in ("sor", "laplace", "wavelet")}
        assert len(fps) == 3

    def test_arch_fingerprint(self):
        assert CGRA(4, 4).fingerprint() == CGRA(4, 4).fingerprint()
        assert CGRA(4, 4).fingerprint() != CGRA(6, 6).fingerprint()
        assert CGRA(4, 4).fingerprint() != CGRA(4, 4, rf_depth=16).fingerprint()
        assert CGRA(4, 4).fingerprint() != CGRA(4, 4, torus=True).fingerprint()

    def test_mapper_fingerprint(self):
        assert MapperConfig().fingerprint() == MapperConfig().fingerprint()
        assert MapperConfig(seed=1).fingerprint() != MapperConfig(seed=2).fingerprint()

    def test_job_key_sensitivity(self):
        base = job_key(CompileJob("sor", 4, 4))
        assert job_key(CompileJob("sor", 4, 4)) == base
        # each knob lands in a different fingerprint component
        assert job_key(CompileJob("laplace", 4, 4)).dfg_fp != base.dfg_fp
        assert job_key(CompileJob("sor", 6, 4)).arch_fp != base.arch_fp
        assert job_key(CompileJob("sor", 4, 2)).arch_fp != base.arch_fp
        assert job_key(CompileJob("sor", 4, 4, seed=9)).mapper_fp != base.mapper_fp

    def test_key_digest_shape(self):
        key = job_key(CompileJob("sor", 4, 4))
        assert len(key.digest) == 64
        assert str(key) == f"{key.dfg_fp}/{key.arch_fp}/{key.mapper_fp}"


# ------------------------------------------------------- round-trip (property)

_hex = st.text("0123456789abcdef", min_size=16, max_size=16)
_coords = st.tuples(
    st.integers(0, 7), st.integers(0, 7), st.integers(0, 63)
)


def _artifacts():
    placements = st.lists(
        st.tuples(st.integers(0, 99), st.integers(0, 7), st.integers(0, 7),
                  st.integers(0, 63)),
        max_size=8,
        unique_by=lambda p: p[0],
    ).map(lambda ps: tuple(sorted(ps)))
    routes = st.lists(
        st.tuples(
            st.integers(0, 99),
            st.lists(_coords, max_size=4).map(tuple),
            st.one_of(st.none(), _coords),
        ),
        max_size=8,
        unique_by=lambda r: r[0],
    ).map(lambda rs: tuple(sorted(rs, key=lambda r: r[0])))
    steady = st.lists(
        st.tuples(st.integers(1, 8), st.integers(1, 100), st.integers(1, 8)),
        max_size=8,
        unique_by=lambda s: s[0],
    ).map(lambda ss: tuple(sorted(ss)))
    return st.builds(
        CompiledKernel,
        kernel=st.sampled_from(["sor", "laplace", "fft", "synthetic"]),
        rows=st.integers(2, 8),
        cols=st.integers(2, 8),
        rf_depth=st.integers(1, 32),
        mem_ports_per_row=st.integers(1, 4),
        page_shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
        layout_wrap=st.booleans(),
        seed=st.integers(0, 2**31),
        dfg_fp=_hex,
        arch_fp=_hex,
        mapper_fp=_hex,
        ii_base=st.integers(1, 64),
        unmappable=st.booleans(),
        ii_paged=st.integers(0, 64),
        pages_used=st.integers(0, 16),
        wrap_used=st.booleans(),
        placements=placements,
        routes=routes,
        steady_ii=steady,
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_artifacts())
    def test_serialize_deserialize_lossless(self, artifact):
        back = CompiledKernel.from_json_dict(artifact.to_json_dict())
        assert back == artifact
        # and re-serialization is byte-identical (canonical form)
        assert back.to_json() == artifact.to_json()

    def test_real_artifact_roundtrip(self):
        artifact, _ = compile_job(CompileJob("sor", 4, 4))
        back = CompiledKernel.from_json_dict(artifact.to_json_dict())
        assert back == artifact
        assert back.steady_table() == artifact.steady_table()
        assert back.profile() == artifact.profile()


# ---------------------------------------------------------- cache correctness


class TestCacheCorrectness:
    def test_cold_equals_warm(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        job = CompileJob("sor", 4, 4)
        cold = compile_many([job], store=store)[0]
        warm = compile_many([job], store=store)[0]
        assert cold == warm
        assert cold.to_json() == warm.to_json()
        assert store.misses == 1 and store.hits == 1

    def test_warm_run_invokes_no_mapper(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "store")
        job = CompileJob("sor", 4, 4)
        compile_many([job], store=store)
        # a warm run must not call the mapper at all
        import repro.pipeline.compile as pc

        def boom(*a, **k):  # pragma: no cover - would signal a stale-cache bug
            raise AssertionError("mapper invoked on warm cache")

        monkeypatch.setattr(pc, "compile_job", boom)
        warm = compile_many([job], store=store)
        assert warm[0] is not None
        assert store.misses == 1  # unchanged

    def test_mutation_invalidates(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        base = CompileJob("sor", 4, 4)
        compile_many([base], store=store)
        for other in (
            CompileJob("laplace", 4, 4),   # different DFG
            CompileJob("sor", 6, 4),       # different arch
            CompileJob("sor", 4, 2),       # different page shape
            CompileJob("sor", 4, 4, seed=3),  # different mapper config
        ):
            assert store.get(job_key(other)) is None, other
        assert store.hits == 0

    def test_no_stale_hit_on_key_mismatch(self, tmp_path, caplog):
        # a file whose content disagrees with its address must be discarded
        store = ArtifactStore(tmp_path / "store")
        job = CompileJob("sor", 4, 4)
        artifact = compile_many([job], store=store)[0]
        wrong = ArtifactKey("0" * 16, artifact.arch_fp, artifact.mapper_fp)
        path = store.path_for(wrong)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(artifact.to_json())
        with caplog.at_level("WARNING", logger="repro.pipeline.store"):
            assert store.get(wrong) is None
        assert any("does not match its address" in r.message for r in caplog.records)

    def test_profile_steady_table_preserved(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        artifact = compile_many([CompileJob("sor", 4, 4)], store=store)[0]
        prof = artifact.profile()
        for m, num, den in artifact.steady_ii:
            assert prof.steady_state_ii_of(m) == Fraction(num, den)

    def test_materialize_matches_fingerprint(self):
        artifact, _ = compile_job(CompileJob("sor", 4, 4))
        paged = artifact.materialize(get_kernel("sor").build())
        assert paged.ii == artifact.ii_paged
        assert paged.pages_used == artifact.pages_used
        from repro.util.errors import ArtifactError

        with pytest.raises(ArtifactError):
            artifact.materialize(get_kernel("laplace").build())


# ------------------------------------------------------------ parallel fan-out


class TestParallelFanout:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_match_serial_byte_for_byte(self, tmp_path, workers):
        # speculative (II, attempt) probes race out of order across the
        # pool; canonical reduction must keep the artifacts byte-identical
        jobs = [CompileJob(k, 4, 4) for k in ("sor", "laplace", "wavelet")]
        serial = compile_many(jobs, store=ArtifactStore(tmp_path / "s"), workers=1)
        par = compile_many(
            jobs, store=ArtifactStore(tmp_path / "p"), workers=workers
        )
        assert [a.to_json() for a in serial] == [a.to_json() for a in par]

    def test_speculative_compile_records_search_stats(self):
        from repro.compiler.search import SearchContext
        from repro.pipeline.compile import compile_job_stats

        job = CompileJob("sor", 4, 4)
        _, serial_stats = compile_job_stats(job)
        assert serial_stats.search is None
        with SearchContext.create(2) as ctx:
            artifact, stats = compile_job_stats(job, search=ctx)
        assert stats.search is not None
        assert stats.search["ladders"] >= 1
        assert stats.search["probes_launched"] >= 1
        assert stats.search["speculation_efficiency"] <= 1.0
        assert "search" in stats.as_record()
        # and the speculative artifact matches the serial one byte for byte
        serial_artifact, _ = compile_job(job)
        assert artifact.to_json() == serial_artifact.to_json()

    def test_duplicate_jobs_compiled_once(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        job = CompileJob("sor", 4, 4)
        out = compile_many([job, job, job], store=store)
        assert len(out) == 3
        assert out[0] == out[1] == out[2]
        assert store.misses == 1 and store.puts == 1

    def test_compile_time_counted(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        compile_many([CompileJob("sor", 4, 4)], store=store)
        assert store.compile_seconds > 0
        warm_before = store.compile_seconds
        compile_many([CompileJob("sor", 4, 4)], store=store)
        assert store.compile_seconds == warm_before  # hits cost nothing


# ------------------------------------------------------- store thread safety


class TestStoreConcurrency:
    def test_concurrent_same_key_puts(self, tmp_path):
        """Threads persisting the same key race only on the final atomic
        replace: unique temp names mean no thread can clobber another's
        half-written file, every put succeeds, and the stored artifact
        stays readable throughout."""
        import threading

        store = ArtifactStore(tmp_path / "store")
        artifact = compile_many([CompileJob("sor", 4, 4)])[0]
        n_threads, per_thread = 8, 5
        barrier = threading.Barrier(n_threads)
        failures: list[BaseException] = []

        def hammer():
            try:
                barrier.wait()
                for _ in range(per_thread):
                    assert store.put(artifact) is not None
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                failures.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert store.puts == n_threads * per_thread
        # no temp-file debris, and the artifact reads back intact
        leftovers = [p for p in (tmp_path / "store").rglob("*.tmp")]
        assert leftovers == []
        assert store.get(artifact.key) == artifact

    def test_counters_locked_under_threads(self, tmp_path):
        """hit/miss/put/compile_seconds increments never lose updates when
        hammered from concurrent threads (the PR-9 merge discipline)."""
        import threading

        store = ArtifactStore(tmp_path / "store")
        n_threads, per_thread = 8, 50
        barrier = threading.Barrier(n_threads)

        def hammer(tid: int):
            barrier.wait()
            for i in range(per_thread):
                store.note_compile_time(1.0)
                key = ArtifactKey(f"dfg-{tid}-{i}", "arch", "mapper")
                assert store.get(key) is None  # counted miss, under the lock

        threads = [
            threading.Thread(target=hammer, args=(tid,)) for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert store.compile_seconds == float(total)
        assert store.misses == total
        assert store.stats()["misses"] == total
        store.reset_stats()
        assert store.stats() == {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "compile_seconds": 0.0,
        }


# ------------------------------------------------------ batch fault isolation


class TestBatchOutcomes:
    def test_failures_isolated_per_job(self, tmp_path):
        from repro.pipeline import CompileFailure, compile_many_outcomes
        from repro.util.errors import WorkloadError

        store = ArtifactStore(tmp_path / "store")
        jobs = [
            CompileJob("sor", 4, 2),
            CompileJob("no-such-kernel", 4, 2),
            CompileJob("mpeg", 4, 2),
        ]
        outcomes = compile_many_outcomes(jobs, store=store)
        assert isinstance(outcomes[0], CompiledKernel)
        assert isinstance(outcomes[2], CompiledKernel)
        failure = outcomes[1]
        assert isinstance(failure, CompileFailure)
        assert failure.error == "WorkloadError"
        # the siblings still compiled and were stored
        assert store.puts == 2
        # compile_many surfaces the same batch as the first original error
        with pytest.raises(WorkloadError):
            compile_many(jobs, store=ArtifactStore(tmp_path / "raise"))
        # and the good jobs' artifacts are byte-identical to a clean batch
        clean = compile_many([jobs[0], jobs[2]])
        assert outcomes[0].to_json() == clean[0].to_json()
        assert outcomes[2].to_json() == clean[1].to_json()

    def test_coordination_threads_bounded(self):
        from repro.pipeline.compile import (
            MAX_COORDINATION_THREADS,
            _coordination_threads,
        )

        assert _coordination_threads(3, 8) == 3  # never more than misses
        assert _coordination_threads(1000, 4) == MAX_COORDINATION_THREADS
        # but never fewer threads than probe workers to feed
        assert _coordination_threads(1000, 64) == 64
