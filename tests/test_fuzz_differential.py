"""Differential fuzzing: random kernels, mapped and simulated, must agree
bit-exactly with the reference interpreter — through the baseline
compiler, the paged compiler, and PageMaster shrinks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cgra import CGRA
from repro.compiler.check import validate_mapping
from repro.compiler.constraints import paged_bus_key
from repro.compiler.ems import MapperConfig, map_dfg
from repro.compiler.paged import map_dfg_paged
from repro.core.pagemaster import PageMaster
from repro.core.paging import PageLayout
from repro.dfg.random_dfg import random_arrays, random_dfg
from repro.dfg.validate import validate_dfg
from repro.kernels.spec import bind_memory
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.sim.reference import run_reference
from repro.sim.retarget import required_batches, retarget_firings
from repro.util.errors import MappingError

TRIP = 12


def reference_outputs(dfg, seed):
    arrays = random_arrays(dfg, seed, TRIP)
    expected = run_reference(dfg, {k: v.copy() for k, v in arrays.items()}, TRIP)
    return arrays, expected


def outputs_of(mem, dfg):
    return {
        op.memref.array: mem.read_array(op.memref.array)
        for op in dfg.ops.values()
        if op.memref is not None and op.opcode.value == "store"
    }


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_property_random_dfgs_well_formed(seed):
    dfg = random_dfg(seed, n_ops=int(5 + seed % 9))
    validate_dfg(dfg)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_property_baseline_map_simulate_equals_reference(seed):
    dfg = random_dfg(seed, n_ops=int(4 + seed % 8))
    cgra = CGRA(4, 4, rf_depth=8)
    try:
        m = map_dfg(dfg, cgra, config=MapperConfig(max_ii=10, attempts_per_ii=2))
    except MappingError:
        return  # rare congested case: not a correctness failure
    validate_mapping(m)
    arrays, expected = reference_outputs(dfg, seed)
    mem = bind_memory(arrays)
    simulate(lower_mapping(m, mem, TRIP), cgra, mem)
    for name, data in outputs_of(mem, dfg).items():
        assert np.array_equal(data, expected[name]), name


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_property_paged_and_shrunk_equal_reference(seed):
    dfg = random_dfg(seed, n_ops=int(4 + seed % 6))
    cgra = CGRA(4, 4, rf_depth=24)
    layout = PageLayout(cgra, (2, 2))
    try:
        pm = map_dfg_paged(
            dfg, cgra, layout, config=MapperConfig(max_ii=10, attempts_per_ii=2)
        )
    except MappingError:
        return
    arrays, expected = reference_outputs(dfg, seed)
    bk = paged_bus_key(pm.layout)

    mem = bind_memory({k: v.copy() for k, v in arrays.items()})
    simulate(lower_mapping(pm.mapping, mem, TRIP), cgra, mem, bus_key=bk)
    for name, data in outputs_of(mem, dfg).items():
        assert np.array_equal(data, expected[name]), ("paged", name)

    for m_cols in {1, max(1, pm.pages_used // 2), pm.pages_used}:
        placement = PageMaster(
            pm.pages_used, pm.ii, m_cols, wrap_used=pm.wrap_used
        ).place(batches=required_batches(pm.mapping, TRIP))
        mem2 = bind_memory({k: v.copy() for k, v in arrays.items()})
        firings = retarget_firings(
            pm, placement, list(range(m_cols)), mem2, TRIP, rf_limit=64
        )
        simulate(firings, cgra, mem2, bus_key=bk, rf_depth=64)
        for name, data in outputs_of(mem2, dfg).items():
            assert np.array_equal(data, expected[name]), ("shrunk", m_cols, name)


@pytest.mark.parametrize("seed", [3, 17, 99, 256, 1024])
def test_known_seeds_full_pipeline(seed):
    """Deterministic regression points through the whole pipeline."""
    dfg = random_dfg(seed, n_ops=8, n_outputs=2)
    validate_dfg(dfg)
    cgra = CGRA(4, 4, rf_depth=24)
    m = map_dfg(dfg, cgra)
    validate_mapping(m)
    arrays, expected = reference_outputs(dfg, seed)
    mem = bind_memory(arrays)
    simulate(lower_mapping(m, mem, TRIP), cgra, mem)
    for name, data in outputs_of(mem, dfg).items():
        assert np.array_equal(data, expected[name])
