"""Tests for pass 3 — the interprocedural effect & concurrency analysis.

Fixture packages are built on disk (the pass is package-level: module
names, import resolution, and display paths all derive from the tree), one
firing and one clean fixture per flow rule, plus callgraph-resolution and
SCC-fixpoint unit coverage, the COUNTERS-revert mutation test, and the
end-to-end run over the installed ``repro`` tree asserting the committed
baseline is clean.
"""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.cli import main
from repro.analysis.flow import analyze_tree
from repro.analysis.flow.callgraph import build_callgraph
from repro.analysis.flow.concurrency import check_races, find_roots
from repro.analysis.flow.contracts import Contract, check_contracts
from repro.analysis.flow.effects import infer_effects
from repro.analysis.registry import flow_rules


def make_pkg(tmp_path: Path, files: dict[str, str], name: str = "pkg") -> Path:
    pkg = tmp_path / name
    pkg.mkdir()
    (pkg / "__init__.py").write_text(files.pop("__init__.py", ""))
    for rel, src in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src))
    return pkg


def flow_findings(pkg: Path, contracts=()) -> list:
    """Run the full pass over a fixture package (contract registry empty
    unless the test supplies one — the defaults name repro entrypoints)."""
    return analyze_tree(pkg, contracts=tuple(contracts)).findings


# --------------------------------------------------------------- call graph


SHAPES = {
    "shapes.py": """
        class Box:
            def __init__(self):
                self.items = []

            def put(self, x):
                self.items.append(x)


        class Crate(Box):
            pass


        def fill(n):
            b = Box()
            for i in range(n):
                b.put(i)
            return b


        def fill_crate(c):
            Crate().put(c)
    """,
    "uses.py": """
        from pkg.shapes import fill


        def run(n):
            return fill(n)
    """,
}


def test_callgraph_resolves_functions_methods_and_ctors(tmp_path):
    pkg = make_pkg(tmp_path, dict(SHAPES))
    graph = build_callgraph(pkg)
    assert "pkg.shapes.fill" in graph.functions
    assert "pkg.shapes.Box.put" in graph.functions
    fill = graph.functions["pkg.shapes.fill"]
    callees = {s.callee for s in fill.calls if s.callee}
    # Box() resolves to the constructor, b.put(i) through the local's
    # inferred class
    assert "pkg.shapes.Box.__init__" in callees
    assert "pkg.shapes.Box.put" in callees
    # range() stays an unknown/external callee, not a project edge
    externals = {s.external for s in fill.calls if s.external}
    assert "range" in externals


def test_callgraph_resolves_inherited_methods_and_imports(tmp_path):
    pkg = make_pkg(tmp_path, dict(SHAPES))
    graph = build_callgraph(pkg)
    # Crate has no put of its own; resolution walks the project base
    assert graph.method_of("pkg.shapes.Crate", "put") == "pkg.shapes.Box.put"
    run = graph.functions["pkg.uses.run"]
    assert {s.callee for s in run.calls} == {"pkg.shapes.fill"}


def test_callgraph_classifies_global_mutability(tmp_path):
    pkg = make_pkg(
        tmp_path,
        {
            "state.py": """
                import re
                import threading

                TABLE = {}
                NAMES = ("a", "b")
                PATTERN = re.compile(r"x")
                LOCK = threading.Lock()
                TLS = threading.local()
            """,
        },
    )
    graph = build_callgraph(pkg)
    kinds = {g.name: g.kind for g in graph.globals.values()}
    assert kinds["TABLE"] == "mutable"
    assert kinds["NAMES"] == "immutable"
    assert kinds["PATTERN"] == "immutable"
    assert kinds["LOCK"] == "lock"
    assert kinds["TLS"] == "thread-local"


# ------------------------------------------------------------------- effects


def test_effect_fixpoint_over_mutual_recursion(tmp_path):
    pkg = make_pkg(
        tmp_path,
        {
            "scc.py": """
                STATE = []


                def ping(n):
                    if n <= 0:
                        return 0
                    return pong(n - 1)


                def pong(n):
                    STATE.append(n)
                    return ping(n - 1)
            """,
        },
    )
    graph = build_callgraph(pkg)
    summaries = infer_effects(graph)
    # the write surfaces in pong directly and reaches ping through the SCC
    for fn in ("pkg.scc.pong", "pkg.scc.ping"):
        assert "pkg.scc.STATE" in summaries[fn].writes, fn
    wit = summaries["pkg.scc.ping"].witness_for("write:pkg.scc.STATE")
    assert wit is not None and wit.via[0] == "pkg.scc.ping"
    # the direct write site stays attributed to pong only (race anchors)
    assert "pkg.scc.STATE" in summaries["pkg.scc.pong"].write_sites
    assert "pkg.scc.STATE" not in summaries["pkg.scc.ping"].write_sites


def test_param_mutation_binds_to_globals_at_call_sites(tmp_path):
    pkg = make_pkg(
        tmp_path,
        {
            "bind.py": """
                ACC = []


                def push(acc, x):
                    acc.append(x)


                def record(x):
                    push(ACC, x)
            """,
        },
    )
    summaries = infer_effects(build_callgraph(pkg))
    assert summaries["pkg.bind.push"].mutated_params == {"acc"}
    # the caller bound ACC to the mutated parameter: record writes ACC,
    # anchored at its own call line
    rec = summaries["pkg.bind.record"]
    assert "pkg.bind.ACC" in rec.writes
    assert "pkg.bind.ACC" in rec.write_sites


def test_hazard_effects_detected_and_seeded_rng_exempt(tmp_path):
    pkg = make_pkg(
        tmp_path,
        {
            "hz.py": """
                import random
                import time

                import numpy as np


                def roll():
                    return random.random()

                def seeded(seed):
                    return np.random.default_rng(seed)

                def stamp():
                    return time.time()

                def measure():
                    return time.perf_counter()

                def dump(path, text):
                    path.write_text(text)
            """,
        },
    )
    summaries = infer_effects(build_callgraph(pkg))
    assert summaries["pkg.hz.roll"].hazards == {"unseeded-rng"}
    assert summaries["pkg.hz.seeded"].hazards == set()
    assert summaries["pkg.hz.stamp"].hazards == {"wall-clock"}
    assert summaries["pkg.hz.measure"].hazards == set()  # perf_counter is fine
    assert summaries["pkg.hz.dump"].hazards == {"io"}


# -------------------------------------------------- rule fixtures: firing/clean


RACE_SHARED_FIRES = {
    "work.py": """
        from concurrent.futures import ThreadPoolExecutor

        TOTALS = {}


        def job(x):
            TOTALS[x] = x * 2


        def fan_out(items):
            with ThreadPoolExecutor() as tp:
                for it in items:
                    tp.submit(job, it)
    """,
}

RACE_SHARED_CLEAN = {
    "work.py": """
        import threading
        from concurrent.futures import ThreadPoolExecutor

        TOTALS = {}
        _LOCK = threading.Lock()


        def job(x):
            with _LOCK:
                TOTALS[x] = x * 2


        def fan_out(items):
            with ThreadPoolExecutor() as tp:
                for it in items:
                    tp.submit(job, it)
    """,
}

RACE_FORK_FIRES = {
    "fork.py": """
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        CACHE = {}


        def worker(x):
            return CACHE.get(x, 0) + x


        def refresh(items):
            for k in items:
                CACHE[k] = k


        def drive(items):
            with ThreadPoolExecutor() as tp:
                tp.submit(refresh, items)
            with ProcessPoolExecutor() as pp:
                return [pp.submit(worker, i) for i in items]
    """,
}

RACE_FORK_CLEAN = {
    "fork.py": """
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        CACHE = {}


        def worker(x):
            return x + 1


        def refresh(items):
            for k in items:
                CACHE[k] = k


        def drive(items):
            with ThreadPoolExecutor() as tp:
                tp.submit(refresh, items)
            with ProcessPoolExecutor() as pp:
                return [pp.submit(worker, i) for i in items]
    """,
}

CONTRACT_SRC = {
    "pure.py": """
        import random


        def helper():
            return random.random()


        def entry(x):
            return helper() + x


        def clean_entry(x):
            return x + 1
    """,
}


def test_race_shared_mut_fires_and_anchors_at_write(tmp_path):
    pkg = make_pkg(tmp_path, dict(RACE_SHARED_FIRES))
    findings = flow_findings(pkg)
    hits = [f for f in findings if f.rule_id == "RACE-SHARED-MUT"]
    assert len(hits) == 1
    assert hits[0].file == "pkg/work.py"
    assert "TOTALS" in hits[0].message and "job" in hits[0].message


def test_race_shared_mut_clean_under_lock(tmp_path):
    pkg = make_pkg(tmp_path, dict(RACE_SHARED_CLEAN))
    assert flow_findings(pkg) == []


def test_race_fork_state_fires_at_worker_entrypoint(tmp_path):
    pkg = make_pkg(tmp_path, dict(RACE_FORK_FIRES))
    findings = flow_findings(pkg)
    hits = [f for f in findings if f.rule_id == "RACE-FORK-STATE"]
    assert len(hits) == 1
    assert hits[0].file == "pkg/fork.py"
    assert "worker" in hits[0].message and "CACHE" in hits[0].message


def test_race_fork_state_clean_when_worker_is_pure(tmp_path):
    pkg = make_pkg(tmp_path, dict(RACE_FORK_CLEAN))
    findings = flow_findings(pkg)
    assert [f for f in findings if f.rule_id == "RACE-FORK-STATE"] == []


def test_flow_contract_fires_with_witness_chain(tmp_path):
    pkg = make_pkg(tmp_path, dict(CONTRACT_SRC))
    contract = Contract(
        name="pure-entry",
        entrypoints=("pkg.pure.entry",),
        description="test contract",
    )
    findings = flow_findings(pkg, contracts=(contract,))
    hits = [f for f in findings if f.rule_id == "FLOW-CONTRACT"]
    assert len(hits) == 1
    assert "unseeded-rng" in hits[0].message
    # the witness chain names the path the effect travelled
    assert "pkg.pure.entry -> pkg.pure.helper" in hits[0].message


def test_flow_contract_clean_entrypoint_passes(tmp_path):
    pkg = make_pkg(tmp_path, dict(CONTRACT_SRC))
    contract = Contract(
        name="pure-entry",
        entrypoints=("pkg.pure.clean_entry",),
        description="test contract",
    )
    assert flow_findings(pkg, contracts=(contract,)) == []


def test_flow_contract_reports_stale_entrypoint(tmp_path):
    pkg = make_pkg(tmp_path, dict(CONTRACT_SRC))
    contract = Contract(
        name="ghost",
        entrypoints=("pkg.pure.missing",),
        description="test contract",
    )
    findings = flow_findings(pkg, contracts=(contract,))
    assert len(findings) == 1
    assert findings[0].rule_id == "FLOW-CONTRACT"
    assert "stale" in findings[0].message


def test_every_flow_rule_has_firing_and_clean_coverage():
    """The three flow rules above are exactly the registered catalogue."""
    ids = {r.id for r in flow_rules()}
    assert ids == {"RACE-SHARED-MUT", "RACE-FORK-STATE", "FLOW-CONTRACT"}


# ------------------------------------------------------------- suppressions


def test_reasoned_suppression_silences_flow_finding(tmp_path):
    files = dict(RACE_SHARED_FIRES)
    files["work.py"] = files["work.py"].replace(
        "TOTALS[x] = x * 2",
        "TOTALS[x] = x * 2  # repro: allow[RACE-SHARED-MUT] test: sharded by x",
    )
    pkg = make_pkg(tmp_path, files)
    assert flow_findings(pkg) == []


def test_stale_flow_suppression_reported_by_flow_not_lint(tmp_path):
    files = dict(RACE_SHARED_CLEAN)
    files["work.py"] = files["work.py"].replace(
        "TOTALS[x] = x * 2",
        "TOTALS[x] = x * 2  # repro: allow[RACE-SHARED-MUT] nothing fires here",
    )
    pkg = make_pkg(tmp_path, files)
    findings = flow_findings(pkg)
    assert [f.rule_id for f in findings] == ["SUP-UNUSED"]
    # and the per-file lint leaves the judgement to the flow pass
    from repro.analysis.lint import lint_tree

    assert [f for f in lint_tree(pkg) if f.rule_id == "SUP-UNUSED"] == []


# ------------------------------------------------------------ mutation test


def test_reverting_counters_fix_refires_race(tmp_path):
    """Textually revert routing.py to the pre-PR direct COUNTERS mutation
    and assert the race rule catches exactly the bug this PR fixed."""
    src = Path(repro.__file__).parent
    dst = tmp_path / "repro"
    shutil.copytree(src, dst, ignore=shutil.ignore_patterns("__pycache__"))
    routing = dst / "compiler" / "routing.py"
    text = routing.read_text()
    assert "from repro.compiler.stats import counters" in text
    routing.write_text(
        text.replace(
            "from repro.compiler.stats import counters",
            "from repro.compiler.stats import COUNTERS",
        ).replace("counters().", "COUNTERS.")
    )
    report = analyze_tree(dst)
    hits = [
        f
        for f in report.findings
        if f.rule_id == "RACE-SHARED-MUT" and "routing" in f.file
    ]
    assert hits, "reverted COUNTERS mutation must re-fire RACE-SHARED-MUT"
    assert all("COUNTERS" in f.message for f in hits)


# ------------------------------------------------------------------- e2e/CLI


def test_flow_baseline_is_clean_over_repro_tree():
    report = analyze_tree()
    assert report.findings == []
    # the concurrency surface the pass certifies is actually in view
    entries = {e for r in report.roots for e in r.entries}
    assert "repro.compiler.search.run_probe" in entries
    # compile_many's thread fan-out maps the fault-isolating wrapper, so
    # that is the root the pass sees; compile_job stays certified through
    # it (and through its own contract)
    assert "repro.pipeline.compile._job_outcome" in entries


def test_default_contracts_cover_live_entrypoints():
    graph = build_callgraph()
    summaries = infer_effects(graph)
    assert check_contracts(graph, summaries) == []


def test_cli_flow_exit_codes_and_json(tmp_path, capsys):
    assert main(["flow"]) == 0
    capsys.readouterr()

    pkg = make_pkg(tmp_path, dict(RACE_SHARED_FIRES))
    code = main(["flow", "--root", str(pkg), "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert any(f["rule"] == "RACE-SHARED-MUT" for f in payload["findings"])

    assert main(["flow", "--root", str(tmp_path / "missing")]) == 2


def test_cli_all_includes_flow_and_stays_clean(capsys):
    assert main(["all", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "flow:" in out


def test_cli_rules_lists_flow_rules(capsys):
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("RACE-SHARED-MUT", "RACE-FORK-STATE", "FLOW-CONTRACT"):
        assert rid in out


def test_cli_summaries_dump(capsys):
    assert main(["flow", "--summaries"]) == 0
    payload = json.loads(capsys.readouterr().out)
    probe = payload["repro.compiler.search.run_probe"]
    assert "mutates-global" in probe["effects"]
    assert "repro.compiler.stats.COUNTERS" in probe["writes"]
