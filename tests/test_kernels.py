"""Tests of the benchmark suite: every kernel's DFG must be well-formed and
agree with its independent numpy golden model under the reference
interpreter, across seeds and trip counts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.isa import Opcode
from repro.dfg.analysis import rec_mii
from repro.dfg.validate import validate_dfg
from repro.kernels import SUITE, bind_memory, get_kernel, kernel_names
from repro.sim.reference import run_reference
from repro.util.errors import WorkloadError

ALL = kernel_names()


class TestSuiteRegistry:
    def test_eleven_benchmarks(self):
        """§VII-A: a set of 11 benchmarks."""
        assert len(SUITE) == 11

    def test_papers_names_present(self):
        for name in [
            "mpeg",
            "yuv2rgb",
            "sor",
            "compress",
            "gsr",
            "laplace",
            "lowpass",
            "swim",
            "sobel",
            "wavelet",
        ]:
            assert name in SUITE

    def test_unknown_kernel_raises(self):
        with pytest.raises(WorkloadError):
            get_kernel("quicksort")

    def test_descriptions_nonempty(self):
        for spec in SUITE.values():
            assert spec.description


@pytest.mark.parametrize("name", ALL)
class TestEveryKernel:
    def test_dfg_well_formed(self, name):
        validate_dfg(get_kernel(name).build())

    def test_matches_golden(self, name):
        spec = get_kernel(name)
        dfg, arrays, expected = spec.fresh(seed=11, trip=33)
        got = run_reference(dfg, {k: v.copy() for k, v in arrays.items()}, 33)
        for arr in expected:
            assert np.array_equal(got[arr], expected[arr]), arr

    def test_deterministic_per_seed(self, name):
        spec = get_kernel(name)
        _, a1, e1 = spec.fresh(seed=5, trip=10)
        _, a2, e2 = spec.fresh(seed=5, trip=10)
        for k in a1:
            assert np.array_equal(a1[k], a2[k])
        for k in e1:
            assert np.array_equal(e1[k], e2[k])

    def test_different_seeds_differ(self, name):
        spec = get_kernel(name)
        _, a1, _ = spec.fresh(seed=1, trip=32)
        _, a2, _ = spec.fresh(seed=2, trip=32)
        assert any(not np.array_equal(a1[k], a2[k]) for k in a1)

    def test_has_memory_traffic(self, name):
        dfg = get_kernel(name).build()
        opcodes = {op.opcode for op in dfg.ops.values()}
        assert Opcode.LOAD in opcodes and Opcode.STORE in opcodes

    def test_bind_memory_layout(self, name):
        spec = get_kernel(name)
        _, arrays, _ = spec.fresh(seed=0, trip=8)
        mem = bind_memory(arrays)
        for aname, data in arrays.items():
            assert np.array_equal(mem.read_array(aname), data)


class TestRecurrenceKernels:
    """§IV/Fig. 3: the recurrence kernels have a size-independent RecMII."""

    @pytest.mark.parametrize("name,expected", [("sor", 4), ("compress", 4), ("gsr", 4)])
    def test_rec_mii(self, name, expected):
        assert rec_mii(get_kernel(name).build()) == expected

    @pytest.mark.parametrize("name", ["mpeg", "laplace", "lowpass", "wavelet", "fft"])
    def test_acyclic_kernels(self, name):
        assert rec_mii(get_kernel(name).build()) == 1


@given(seed=st.integers(0, 2**16), trip=st.integers(1, 40))
@settings(max_examples=25, deadline=None)
def test_property_reference_matches_golden_all_kernels(seed, trip):
    """The DFG encoding and the golden model agree for arbitrary seeds and
    trip counts (spot-checked on a rotating kernel choice)."""
    name = ALL[seed % len(ALL)]
    spec = get_kernel(name)
    dfg, arrays, expected = spec.fresh(seed=seed, trip=trip)
    got = run_reference(dfg, {k: v.copy() for k, v in arrays.items()}, trip)
    for arr in expected:
        assert np.array_equal(got[arr], expected[arr]), (name, arr)
