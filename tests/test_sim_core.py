"""Unit tests for the cycle-accurate simulator core and lowering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.cgra import CGRA
from repro.arch.config import AddressPattern
from repro.arch.interconnect import Coord
from repro.arch.isa import Opcode
from repro.arch.memory import DataMemory
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import Firing, GlobalSlot, ResolvedRead, resolve_addr
from repro.sim.reference import run_reference
from repro.dfg.builder import DFGBuilder
from repro.dfg.graph import MemRef
from repro.util.errors import SimulationError


def F(cycle, pe, opcode, label="f", **kw):
    return Firing(cycle=cycle, pe=pe, label=label, opcode=opcode, **kw)


class TestSimulatorContracts:
    def test_pe_double_booking_rejected(self, cgra44):
        mem = DataMemory(64)
        firings = [
            F(0, Coord(0, 0), Opcode.CONST, "a", immediate=1),
            F(0, Coord(0, 0), Opcode.CONST, "b", immediate=2),
        ]
        with pytest.raises(SimulationError):
            simulate(firings, cgra44, mem)

    def test_bus_capacity_enforced(self, cgra44):
        mem = DataMemory(64)
        mem.bind_array("x", [1, 2, 3, 4])
        firings = [
            F(0, Coord(0, 0), Opcode.LOAD, "l0", addr=0),
            F(0, Coord(0, 1), Opcode.LOAD, "l1", addr=1),
        ]
        with pytest.raises(SimulationError):
            simulate(firings, cgra44, mem)
        # different rows: fine
        ok = [
            F(0, Coord(0, 0), Opcode.LOAD, "l0", addr=0),
            F(0, Coord(1, 0), Opcode.LOAD, "l1", addr=1),
        ]
        res = simulate(ok, cgra44, DataMemoryWith(mem))
        assert res.loads == 2

    def test_custom_bus_key(self, cgra44):
        mem = DataMemory(64)
        mem.bind_array("x", [1, 2])
        firings = [
            F(0, Coord(0, 0), Opcode.LOAD, "l0", addr=0),
            F(0, Coord(0, 3), Opcode.LOAD, "l1", addr=1),
        ]
        res = simulate(firings, cgra44, mem, bus_key=lambda pe: pe.col)
        assert res.loads == 2

    def test_read_of_future_value_rejected(self, cgra44):
        mem = DataMemory(64)
        firings = [
            F(0, Coord(0, 0), Opcode.CONST, "c", immediate=5),
            F(
                1,
                Coord(0, 1),
                Opcode.ROUTE,
                "r",
                operands=(ResolvedRead(Coord(0, 0), 1),),
            ),
        ]
        with pytest.raises(SimulationError):
            simulate(firings, cgra44, mem)

    def test_read_of_never_produced_rejected(self, cgra44):
        mem = DataMemory(64)
        firings = [
            F(
                1,
                Coord(0, 1),
                Opcode.ROUTE,
                "r",
                operands=(ResolvedRead(Coord(3, 3), 0),),
            ),
        ]
        with pytest.raises(SimulationError):
            simulate(firings, cgra44, mem)

    def test_rf_depth_enforced(self, cgra44):
        mem = DataMemory(64)
        firings = [F(c, Coord(0, 0), Opcode.CONST, f"c{c}", immediate=c) for c in range(6)]
        firings.append(
            F(
                9,
                Coord(0, 1),
                Opcode.ROUTE,
                "deep",
                operands=(ResolvedRead(Coord(0, 0), 0),),
            )
        )
        with pytest.raises(SimulationError):
            simulate(firings, cgra44, mem, rf_depth=3)
        res = simulate(firings, cgra44, mem, rf_depth=6)
        assert res.rf_max_depth_used == 6

    def test_load_store_hazard_same_cycle(self, cgra44):
        mem = DataMemory(64)
        mem.bind_array("x", [7])
        firings = [
            F(0, Coord(0, 0), Opcode.CONST, "v", immediate=9),
            F(
                1,
                Coord(0, 0),
                Opcode.STORE,
                "st",
                operands=(ResolvedRead(Coord(0, 0), 0),),
                addr=0,
            ),
            F(1, Coord(1, 0), Opcode.LOAD, "ld", addr=0),
        ]
        with pytest.raises(SimulationError):
            simulate(firings, cgra44, mem)

    def test_double_store_same_address_rejected(self, cgra44):
        mem = DataMemory(64)
        mem.bind_array("x", [0])
        firings = [
            F(0, Coord(0, 0), Opcode.CONST, "v", immediate=1),
            F(
                1,
                Coord(0, 0),
                Opcode.STORE,
                "s1",
                operands=(ResolvedRead(Coord(0, 0), 0),),
                addr=0,
            ),
            F(
                1,
                Coord(1, 0),
                Opcode.STORE,
                "s2",
                operands=(ResolvedRead(Coord(0, 0), 0),),
                addr=0,
            ),
        ]
        with pytest.raises(SimulationError):
            simulate(firings, cgra44, mem)

    def test_global_slot_roundtrip(self, cgra44):
        mem = DataMemory(64)
        slot = GlobalSlot(3, 0)
        firings = [
            F(
                0,
                Coord(0, 0),
                Opcode.CONST,
                "p",
                immediate=42,
                global_writes=(slot,),
            ),
            F(5, Coord(3, 3), Opcode.ROUTE, "c", operands=(slot,)),
        ]
        res = simulate(firings, cgra44, mem)
        assert res.global_writes == 1 and res.global_reads == 1

    def test_global_read_before_write_rejected(self, cgra44):
        mem = DataMemory(64)
        firings = [
            F(0, Coord(0, 0), Opcode.ROUTE, "c", operands=(GlobalSlot(1, 0),)),
        ]
        with pytest.raises(SimulationError):
            simulate(firings, cgra44, mem)

    def test_negative_cycle_rejected(self, cgra44):
        mem = DataMemory(64)
        with pytest.raises(SimulationError):
            simulate([F(-1, Coord(0, 0), Opcode.CONST, immediate=0)], cgra44, mem)

    def test_utilization_metric(self, cgra44):
        mem = DataMemory(64)
        firings = [F(0, Coord(0, 0), Opcode.CONST, "c", immediate=0)]
        res = simulate(firings, cgra44, mem)
        assert res.utilization(cgra44) == pytest.approx(1 / 16)


def DataMemoryWith(src):  # tiny helper: fresh memory with same arrays
    mem = DataMemory(src.size)
    for name, arr in src.snapshot().items():
        mem.bind_array(name, arr)
    return mem


class TestAddressing:
    def test_address_pattern_affine(self):
        p = AddressPattern(base=100, stride=3, offset=2)
        assert p.resolve(0) == 102
        assert p.resolve(5) == 117

    def test_address_pattern_ring(self):
        p = AddressPattern(base=10, stride=1, offset=0, ring=4)
        assert [p.resolve(i) for i in range(6)] == [10, 11, 12, 13, 10, 11]

    def test_resolve_addr_bounds(self):
        mem = DataMemory(64)
        mem.bind_array("a", [0] * 4)
        assert resolve_addr(MemRef("a", stride=1, offset=0), 3, mem) == 3
        with pytest.raises(SimulationError):
            resolve_addr(MemRef("a", stride=1, offset=0), 4, mem)
        with pytest.raises(SimulationError):
            resolve_addr(MemRef("missing"), 0, mem)


class TestReferenceInterpreter:
    def test_negative_trip_rejected(self):
        b = DFGBuilder("t")
        b.store("out", b.load("in"))
        g = b.build()
        with pytest.raises(SimulationError):
            run_reference(g, {"in": np.zeros(1), "out": np.zeros(1)}, -1)

    def test_out_of_bounds_index_rejected(self):
        b = DFGBuilder("t")
        b.store("out", b.load("in", offset=10))
        g = b.build()
        arrays = {
            "in": np.zeros(4, dtype=np.int64),
            "out": np.zeros(4, dtype=np.int64),
        }
        with pytest.raises(SimulationError):
            run_reference(g, arrays, 1)

    def test_unbound_array_rejected(self):
        b = DFGBuilder("t")
        b.store("out", b.load("nope"))
        g = b.build()
        with pytest.raises(SimulationError):
            run_reference(g, {"out": np.zeros(1, dtype=np.int64)}, 1)

    def test_carry_inits_used(self):
        b = DFGBuilder("t")
        ph = b.placeholder("prev")
        b.store("out", ph)
        b.bind_carry(ph, b.load("in"), distance=2, init=(100, 200))
        g = b.build()
        arrays = {
            "in": np.arange(5, dtype=np.int64),
            "out": np.zeros(5, dtype=np.int64),
        }
        run_reference(g, arrays, 5)
        assert list(arrays["out"]) == [100, 200, 0, 1, 2]
