"""Mid-kernel dynamic reshaping, cycle-accurately.

The paper's runtime shrinks and *expands* threads while they run ("threads
are expanded as other threads complete", §VII-B).  These tests execute a
kernel in two phases — first iterations on a PageMaster-shrunk schedule,
the rest on the full schedule (or another shrink) — handing execution over
at an iteration boundary, and require the final memory to be bit-exact
against the uninterrupted golden run.

For recurrence kernels the boundary state (the loop-carried values of the
last iterations of phase one) is handed off the way the paper's hardware
does implicitly: the runtime reads the carried values out of phase one and
preloads them as the next schedule's initial register contents (the DFG
edges' ``init`` values).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

import numpy as np
import pytest

from repro.arch.cgra import CGRA
from repro.compiler.constraints import paged_bus_key
from repro.compiler.mapping import Mapping
from repro.compiler.paged import map_dfg_paged
from repro.core.pagemaster import PageMaster
from repro.core.paging import PageLayout
from repro.kernels import bind_memory, get_kernel
from repro.sim.cgra_sim import simulate
from repro.sim.lowering import lower_mapping
from repro.sim.retarget import required_batches, retarget_firings
from repro.sim.trace import CycleTrace

TRIP = 20
SPLIT = 8


@pytest.fixture(scope="module")
def env():
    cgra = CGRA(4, 4, rf_depth=24)
    layout = PageLayout(cgra, (2, 2))
    return cgra, layout


def shrunk_firings(pm, mem, trip, m_cols, *, first_iteration=0):
    placement = PageMaster(
        pm.layout.num_pages, pm.ii, m_cols, wrap_used=pm.wrap_used
    ).place(batches=required_batches(pm.mapping, trip))
    return retarget_firings(
        pm,
        placement,
        list(range(m_cols)),
        mem,
        trip,
        rf_limit=64,
        first_iteration=first_iteration,
    )


@pytest.mark.parametrize("name", ["mpeg", "laplace", "swim", "wavelet"])
def test_expand_mid_kernel_acyclic(env, name):
    """Phase 1 shrunk to one page, phase 2 on the full array."""
    cgra, layout = env
    pm = map_dfg_paged(get_kernel(name).build(), cgra, layout, minimize_pages=False)
    spec = get_kernel(name)
    _, arrays, expected = spec.fresh(seed=13, trip=TRIP)
    mem = bind_memory(arrays)
    bk = paged_bus_key(layout)
    phase1 = shrunk_firings(pm, mem, SPLIT, 1)
    simulate(phase1, cgra, mem, bus_key=bk, rf_depth=64)
    phase2 = lower_mapping(
        pm.mapping, mem, TRIP - SPLIT, first_iteration=SPLIT
    )
    simulate(phase2, cgra, mem, bus_key=bk, rf_depth=64)
    snap = mem.snapshot()
    for arr in expected:
        assert np.array_equal(snap[arr], expected[arr]), (name, arr)


@pytest.mark.parametrize("name", ["sor", "gsr", "compress"])
def test_expand_mid_kernel_with_recurrence_handoff(env, name):
    """Recurrence kernels: carried values captured from phase one become
    phase two's preloaded initial registers."""
    cgra, layout = env
    dfg = get_kernel(name).build()
    pm = map_dfg_paged(dfg, cgra, layout, minimize_pages=False)
    spec = get_kernel(name)
    _, arrays, expected = spec.fresh(seed=13, trip=TRIP)
    mem = bind_memory(arrays)
    bk = paged_bus_key(layout)

    trace = CycleTrace()
    simulate(
        shrunk_firings(pm, mem, SPLIT, 2),
        cgra,
        mem,
        bus_key=bk,
        rf_depth=64,
        trace=trace,
    )

    # state handoff: for each loop-carried edge, read the producer's values
    # for iterations SPLIT-d .. SPLIT-1 out of the phase-one trace
    dfg2 = dfg.copy()
    for eid, e in list(dfg2.edges.items()):
        if e.distance == 0:
            continue
        producer = dfg.ops[e.src].label
        # labels are '<label>#<i>': match the producer exactly
        by_iter = {
            r.iteration: r.value
            for r in trace.records
            if r.label.split("#")[0] == producer
        }
        init = tuple(by_iter[SPLIT - e.distance + k] for k in range(e.distance))
        dfg2.edges[eid] = dc_replace(e, init=init)
    mapping2 = Mapping(
        cgra, dfg2, pm.ii, pm.mapping.placements, pm.mapping.routes
    )
    phase2 = lower_mapping(mapping2, mem, TRIP - SPLIT, first_iteration=SPLIT)
    simulate(phase2, cgra, mem, bus_key=bk, rf_depth=64)
    snap = mem.snapshot()
    for arr in expected:
        assert np.array_equal(snap[arr], expected[arr]), (name, arr)


def test_shrink_then_shrink_differently(env):
    """M=2 for the first iterations, then M=1 — two transformations of the
    same compiled schedule chained at a boundary."""
    cgra, layout = env
    name = "laplace"
    pm = map_dfg_paged(get_kernel(name).build(), cgra, layout, minimize_pages=False)
    spec = get_kernel(name)
    _, arrays, expected = spec.fresh(seed=13, trip=TRIP)
    mem = bind_memory(arrays)
    bk = paged_bus_key(layout)
    simulate(shrunk_firings(pm, mem, SPLIT, 2), cgra, mem, bus_key=bk, rf_depth=64)
    simulate(
        shrunk_firings(pm, mem, TRIP - SPLIT, 1, first_iteration=SPLIT),
        cgra,
        mem,
        bus_key=bk,
        rf_depth=64,
    )
    snap = mem.snapshot()
    for arr in expected:
        assert np.array_equal(snap[arr], expected[arr]), arr
