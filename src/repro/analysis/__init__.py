"""Static analysis for the repro stack: two passes, one rule registry.

* :mod:`repro.analysis.lint` — AST determinism lint over the source tree
  (hash-order iteration, unseeded RNG, wall-clock values, unsorted
  directory scans, mutable defaults, float equality, ...);
* :mod:`repro.analysis.audit` — mapper-independent artifact auditor
  re-proving every stored :class:`~repro.pipeline.artifact.CompiledKernel`
  from bytes alone (content address, canonical encoding, mapping legality,
  §VI-B constraints, PageMaster foldability for every M <= N).

CLI: ``python -m repro.analysis {lint,audit,all,rules} [--json] [--strict]``.
"""

from repro.analysis.audit import AuditReport, audit_store
from repro.analysis.findings import Finding, Severity
from repro.analysis.lint import lint_paths, lint_tree
from repro.analysis.registry import Rule, all_rules, get_rule
from repro.analysis.report import exit_code, render_json, render_text

__all__ = [
    "AuditReport",
    "audit_store",
    "Finding",
    "Severity",
    "lint_paths",
    "lint_tree",
    "Rule",
    "all_rules",
    "get_rule",
    "exit_code",
    "render_json",
    "render_text",
]
