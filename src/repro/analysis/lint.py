"""Pass 1 — the determinism lint.

An AST-driven rule engine over the ``repro`` source tree.  Every rule in
the shared registry (:mod:`repro.analysis.registry`) with an attached
checker runs over every module; findings are filtered through
``# repro: allow[RULE-ID] reason`` suppressions
(:mod:`repro.analysis.suppressions`), and suppression hygiene itself is
enforced (missing reasons, unused or unknown-rule suppressions are
findings).  The walk, the rule order, and the finding order are all
canonical, so two runs over the same tree produce byte-identical reports —
the lint holds itself to the property it checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import (
    Rule,
    flow_rule_ids,
    known_rule_ids,
    lint_rules,
    register,
)
from repro.analysis.rules import collect_imports
from repro.analysis.suppressions import Suppression, parse_suppressions

__all__ = ["ModuleContext", "lint_paths", "lint_tree", "default_root"]


SUP_REASON = register(
    Rule(
        id="SUP-REASON",
        kind="lint",
        severity=Severity.ERROR,
        summary="suppression without a reason",
        fix_hint="state why the flagged code is safe: "
        "# repro: allow[RULE-ID] <reason>",
    )
)

SUP_UNUSED = register(
    Rule(
        id="SUP-UNUSED",
        kind="lint",
        severity=Severity.WARNING,
        summary="suppression that silences nothing",
        fix_hint="delete the stale # repro: allow[...] comment",
    )
)

SUP_UNKNOWN = register(
    Rule(
        id="SUP-UNKNOWN",
        kind="lint",
        severity=Severity.ERROR,
        summary="suppression naming an unknown rule id",
        fix_hint="use an id from `python -m repro.analysis rules`",
    )
)

LINT_PARSE = register(
    Rule(
        id="LINT-PARSE",
        kind="lint",
        severity=Severity.ERROR,
        summary="module could not be parsed",
        fix_hint="fix the syntax error; the lint cannot vouch for a module "
        "it cannot read",
    )
)


@dataclass
class ModuleContext:
    """Everything a rule checker needs about one source module."""

    path: Path
    display: str
    source: str
    tree: ast.Module
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, display: str | None = None) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return cls(
            path=path,
            display=display or str(path),
            source=source,
            tree=tree,
            parents=parents,
            imports=collect_imports(tree),
        )

    def finding(
        self, rule: Rule, node: ast.AST, message: str | None = None
    ) -> Finding:
        return Finding(
            file=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule.id,
            severity=rule.severity,
            message=message or rule.summary,
            fix_hint=rule.fix_hint,
        )


def default_root() -> Path:
    """The installed ``repro`` package source tree (what CI lints)."""
    import repro

    return Path(repro.__file__).parent


def _lint_module(ctx: ModuleContext) -> list[Finding]:
    raw: list[Finding] = []
    for rule in lint_rules():
        if rule.checker is None:
            continue
        raw.extend(rule.checker(ctx))

    suppressions = parse_suppressions(ctx.source)
    by_line: dict[int, list[Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.target_line, []).append(sup)

    kept: list[Finding] = []
    for f in raw:
        covering = [s for s in by_line.get(f.line, []) if s.covers(f.rule_id)]
        valid = [s for s in covering if s.reason]
        if valid:
            for s in valid:
                s.used = True
            continue
        # a reason-less suppression does not silence the finding, but the
        # engine still records that it was aimed at something
        for s in covering:
            s.used = True
        kept.append(f)

    known = known_rule_ids()
    flow_ids = flow_rule_ids()
    for s in suppressions:
        where = ast.Constant(value=None)
        where.lineno, where.col_offset = s.comment_line, 0
        for rid in s.rule_ids:
            if rid not in known:
                kept.append(
                    ctx.finding(
                        SUP_UNKNOWN, where, f"unknown rule id {rid!r} in allow[]"
                    )
                )
        if not s.reason:
            kept.append(
                ctx.finding(
                    SUP_REASON,
                    where,
                    f"allow[{', '.join(s.rule_ids)}] has no reason",
                )
            )
        elif not s.used and any(rid in flow_ids for rid in s.rule_ids):
            # flow-rule suppressions are judged by the flow pass (this
            # per-file engine cannot know what the whole-program pass hit)
            continue
        elif not s.used:
            kept.append(
                ctx.finding(
                    SUP_UNUSED,
                    where,
                    f"allow[{', '.join(s.rule_ids)}] matched no finding",
                )
            )
    return kept


def lint_paths(
    paths: Iterable[Path], *, base: Path | None = None
) -> list[Finding]:
    """Lint the given files, returning canonically ordered findings."""
    findings: list[Finding] = []
    for path in sorted(paths):
        display = str(path.relative_to(base)) if base else str(path)
        try:
            ctx = ModuleContext.parse(path, display)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            findings.append(
                Finding(
                    file=display,
                    line=getattr(exc, "lineno", None) or 1,
                    col=0,
                    rule_id=LINT_PARSE.id,
                    severity=LINT_PARSE.severity,
                    message=f"unparseable module: {exc}",
                    fix_hint=LINT_PARSE.fix_hint,
                )
            )
            continue
        findings.extend(_lint_module(ctx))
    return sorted(findings)


def lint_tree(root: Path | None = None) -> list[Finding]:
    """Lint every ``*.py`` under *root* (default: the repro package)."""
    root = root or default_root()
    if root.is_file():
        return lint_paths([root], base=root.parent)
    return lint_paths(sorted(root.rglob("*.py")), base=root.parent)


def worst_severity(findings: Sequence[Finding]) -> Severity | None:
    if not findings:
        return None
    return min((f.severity for f in findings), key=lambda s: s.rank)
