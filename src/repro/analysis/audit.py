"""Pass 2 — the independent artifact auditor.

Loads every :class:`~repro.pipeline.artifact.CompiledKernel` in an artifact
store *from bytes alone* — no mapper, no cache state, no trust in the
process that wrote it — and proves the full invariant suite:

* **encoding** — the JSON is the canonical byte encoding of its own
  content, and the file sits at the address its fingerprints dictate;
* **provenance** — the stored DFG/architecture fingerprints match an
  independent re-derivation from the kernel registry and the stored
  geometry;
* **mapping legality** — :func:`repro.compiler.check.validate_mapping` over
  the materialized mapping, with the §VI-B ring-topology hop filter and the
  fold-safe banked bus budgets, plus an explicit register-depth-1 re-check
  (every value is read exactly one cycle after it was produced or
  re-emitted, so the rotating register file stays free for PageMaster);
* **foldability** — for every target ``M <= N`` the PageMaster fold
  preserves all page dependencies on chain-adjacent columns without
  double-booking a slot, the stored steady-state II table matches an
  independent recomputation exactly, and the achieved ``II_q`` respects the
  paper's ``II_q ~ II_p * N / M`` model: never below the resource bound
  ``II_p * N / M``, *equal* to it whenever ``M`` divides ``N`` on a
  wrap-free schedule (the grouped fold is optimal), and within 2x of it for
  the zigzag fold (Algorithm 1's worst observed efficiency is 0.5).

Every violation carries the rule id of the invariant it broke — the
corruption taxonomy — so a failed audit names *what* is wrong and *where*,
not just that bytes differ.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.util.errors import (
    ArchitectureError,
    ArtifactError,
    ConstraintViolation,
    MappingError,
    TransformError,
)

__all__ = ["AuditEntry", "AuditReport", "audit_store", "ARTIFACT_NAME_RE"]

#: Shape of a store-resident artifact path relative to the store root:
#: a two-hex-digit shard directory, then ``<sha256>.json``.
ARTIFACT_NAME_RE = re.compile(r"^[0-9a-f]{2}/[0-9a-f]{64}\.json$")


ART_READ = register(
    Rule(
        id="ART-READ",
        kind="audit",
        severity=Severity.ERROR,
        summary="artifact unreadable (bad JSON or foreign schema version)",
        fix_hint="delete the file and recompile; the store treats it as a "
        "miss but the audit will not vouch for a store holding garbage",
    )
)
ART_ADDR = register(
    Rule(
        id="ART-ADDR",
        kind="audit",
        severity=Severity.ERROR,
        summary="artifact does not live at its content address",
        fix_hint="recompute sha256(dfg_fp/arch_fp/mapper_fp); the file name "
        "and shard directory must match it",
    )
)
ART_BYTES = register(
    Rule(
        id="ART-BYTES",
        kind="audit",
        severity=Severity.ERROR,
        summary="artifact bytes are not the canonical encoding",
        fix_hint="artifacts must round-trip byte-identically through "
        "CompiledKernel.to_json(); rewrite with the canonical encoder",
    )
)
ART_FIELDS = register(
    Rule(
        id="ART-FIELDS",
        kind="audit",
        severity=Severity.ERROR,
        summary="artifact fields are internally inconsistent",
        fix_hint="recompile; the geometry/II/page-need fields contradict "
        "each other",
    )
)
ART_DFG = register(
    Rule(
        id="ART-DFG",
        kind="audit",
        severity=Severity.ERROR,
        summary="stored DFG fingerprint does not match the kernel registry",
        fix_hint="the kernel changed (or the name is foreign); recompile so "
        "the address reflects the real DFG",
    )
)
ART_ARCH = register(
    Rule(
        id="ART-ARCH",
        kind="audit",
        severity=Severity.ERROR,
        summary="stored architecture fingerprint does not match the stored "
        "geometry",
        fix_hint="re-derive from rows/cols/rf_depth/mem_ports/page_shape; "
        "a mismatch means the artifact lies about what it was compiled for",
    )
)
MAP_LEGAL = register(
    Rule(
        id="MAP-LEGAL",
        kind="audit",
        severity=Severity.ERROR,
        summary="mapping violates placement/slot/route/bus legality",
        fix_hint="validate_mapping rejected the materialized schedule; the "
        "artifact was corrupted or written by a buggy mapper",
    )
)
MAP_RING = register(
    Rule(
        id="MAP-RING",
        kind="audit",
        severity=Severity.ERROR,
        summary="mapping violates the §VI-B ring-topology constraint",
        fix_hint="every inter-page hop must stay on-page or move to the "
        "ring successor; recompile with the paged compiler",
    )
)
MAP_CAP = register(
    Rule(
        id="MAP-CAP",
        kind="audit",
        severity=Severity.ERROR,
        summary="mapping places an op on a PE lacking its capability class",
        fix_hint="on a heterogeneous fabric every op (and route step) must "
        "sit on a PE whose capability mask includes the op's class; "
        "recompile with the capability-aware mapper",
    )
)
MAP_REGDEPTH = register(
    Rule(
        id="MAP-REGDEPTH",
        kind="audit",
        severity=Severity.ERROR,
        summary="mapping violates the §VI-B register-usage (depth-1) "
        "constraint",
        fix_hint="every read must consume a value produced or re-emitted "
        "exactly one cycle earlier; deeper reads would steal the rotating "
        "file PageMaster needs",
    )
)
MAP_MII = register(
    Rule(
        id="MAP-MII",
        kind="audit",
        severity=Severity.ERROR,
        summary="stored II beats the provable minimum initiation interval",
        fix_hint="the II lower bound (max of ResMII, memory-slot, "
        "memory-capability and RecMII terms, re-derived from the kernel "
        "registry and the artifact's stored geometry alone) is sound for "
        "every legal mapping; an II below it means the artifact bytes are "
        "corrupt or the store was written by a broken mapper",
    )
)
FOLD_TABLE = register(
    Rule(
        id="FOLD-TABLE",
        kind="audit",
        severity=Severity.ERROR,
        summary="stored steady-state II table disagrees with recomputation",
        fix_hint="the simulator would plan with wrong throughput numbers; "
        "recompile to refresh the table",
    )
)
FOLD_DEPS = register(
    Rule(
        id="FOLD-DEPS",
        kind="audit",
        severity=Severity.ERROR,
        summary="PageMaster fold breaks a page dependency or double-books a "
        "slot",
        fix_hint="fold placements must keep ring/self dependencies on "
        "chain-adjacent columns, strictly later in time, one instance per "
        "(column, time) slot",
    )
)
FOLD_BOUND = register(
    Rule(
        id="FOLD-BOUND",
        kind="audit",
        severity=Severity.ERROR,
        summary="fold II_q outside the paper's bound envelope",
        fix_hint="II_q must satisfy II_p*N/M <= II_q, with equality when M "
        "divides N (wrap-free), and II_q <= 2*II_p*N/M for the zigzag fold",
    )
)
STORE_FOREIGN = register(
    Rule(
        id="STORE-FOREIGN",
        kind="audit",
        severity=Severity.WARNING,
        summary="foreign file inside the artifact store",
        fix_hint="only sharded content-addressed artifacts belong under "
        ".repro_artifacts/; move or delete the stray file",
    )
)


@dataclass
class AuditEntry:
    """Audit outcome for one file in the store."""

    path: str  # store-relative, '/'-separated
    status: str  # "ok" | "corrupt" | "foreign"
    kernel: str | None = None
    findings: list[Finding] = field(default_factory=list)
    folds_checked: int = 0

    def as_record(self) -> dict:
        return {
            "path": self.path,
            "status": self.status,
            "kernel": self.kernel,
            "folds_checked": self.folds_checked,
            "findings": [f.as_record() for f in self.findings],
        }


@dataclass
class AuditReport:
    """Outcome of auditing one store: entries in canonical path order."""

    root: str
    entries: list[AuditEntry] = field(default_factory=list)

    @property
    def findings(self) -> list[Finding]:
        return sorted(f for e in self.entries for f in e.findings)

    @property
    def ok(self) -> bool:
        return all(e.status != "corrupt" for e in self.entries)

    def counts(self) -> dict[str, int]:
        out = {"ok": 0, "corrupt": 0, "foreign": 0}
        for e in self.entries:
            out[e.status] += 1
        out["folds_checked"] = sum(e.folds_checked for e in self.entries)
        return out

    def as_record(self) -> dict:
        return {
            "root": self.root,
            "counts": self.counts(),
            "entries": [e.as_record() for e in self.entries],
        }

    def summary(self) -> str:
        c = self.counts()
        return (
            f"audited {c['ok'] + c['corrupt']} artifact(s) in {self.root}: "
            f"{c['ok']} ok, {c['corrupt']} corrupt, {c['foreign']} foreign "
            f"file(s), {c['folds_checked']} fold(s) verified"
        )


def _finding(rule: Rule, path: str, message: str, line: int = 1) -> Finding:
    return Finding(
        file=path,
        line=line,
        col=0,
        rule_id=rule.id,
        severity=rule.severity,
        message=message,
        fix_hint=rule.fix_hint,
    )


def _audit_encoding(entry: AuditEntry, raw: bytes, artifact) -> None:
    canonical = artifact.to_json().encode("utf-8")
    if canonical != raw:
        entry.findings.append(
            _finding(
                ART_BYTES,
                entry.path,
                f"file is {len(raw)} byte(s), canonical encoding is "
                f"{len(canonical)}; store bytes must equal to_json() exactly",
            )
        )
    digest = artifact.key.digest
    expected = f"{digest[:2]}/{digest}.json"
    if entry.path != expected:
        entry.findings.append(
            _finding(
                ART_ADDR,
                entry.path,
                f"content address is {expected}, file lives at {entry.path}",
            )
        )


def _audit_fields(entry: AuditEntry, artifact) -> bool:
    """Internal consistency of the plain fields; False aborts deeper checks."""
    problems: list[str] = []
    if artifact.rows < 1 or artifact.cols < 1:
        problems.append(f"grid {artifact.rows}x{artifact.cols} is empty")
    h, w = artifact.page_shape
    if h < 1 or w < 1 or h > artifact.rows or w > artifact.cols:
        problems.append(
            f"page shape {h}x{w} does not fit {artifact.rows}x{artifact.cols}"
        )
    if artifact.ii_base < 1:
        problems.append(f"ii_base {artifact.ii_base} < 1")
    if artifact.unmappable:
        if artifact.placements or artifact.routes or artifact.steady_ii:
            problems.append("unmappable artifact carries mapping data")
    else:
        if artifact.ii_paged < 1:
            problems.append(f"ii_paged {artifact.ii_paged} < 1")
        if artifact.pages_used < 1:
            problems.append(f"pages_used {artifact.pages_used} < 1")
        if h and w:
            max_pages = (artifact.rows // h) * (artifact.cols // w)
            if artifact.pages_used > max_pages:
                problems.append(
                    f"pages_used {artifact.pages_used} exceeds the "
                    f"{max_pages} page(s) the grid holds"
                )
        if artifact.wrap_used and not artifact.layout_wrap:
            problems.append("wrap_used without a wrap-capable layout")
        if not artifact.placements:
            problems.append("mappable artifact has no placements")
    for msg in problems:
        entry.findings.append(_finding(ART_FIELDS, entry.path, msg))
    return not problems


def _audit_provenance(entry: AuditEntry, artifact) -> object | None:
    """Re-derive the DFG and architecture fingerprints; returns the rebuilt
    DFG (None if the mapping-level checks cannot proceed)."""
    from repro.kernels import get_kernel, kernel_names
    from repro.util.errors import ReproError
    from repro.util.fingerprint import canonical_fingerprint

    try:
        dfg = get_kernel(artifact.kernel).build()
    except (ReproError, KeyError):
        entry.findings.append(
            _finding(
                ART_DFG,
                entry.path,
                f"kernel {artifact.kernel!r} is not in the registry "
                f"({', '.join(kernel_names())})",
            )
        )
        return None
    if dfg.fingerprint() != artifact.dfg_fp:
        entry.findings.append(
            _finding(
                ART_DFG,
                entry.path,
                f"stored dfg_fp {artifact.dfg_fp} != registry DFG "
                f"{dfg.fingerprint()} for kernel {artifact.kernel!r}",
            )
        )
        return None
    cgra = _build_cgra(artifact)
    arch_fp = canonical_fingerprint(
        {"cgra": cgra.fingerprint(), "page_shape": list(artifact.page_shape)}
    )
    if arch_fp != artifact.arch_fp:
        entry.findings.append(
            _finding(
                ART_ARCH,
                entry.path,
                f"stored arch_fp {artifact.arch_fp} != re-derived {arch_fp}",
            )
        )
    return dfg


def _build_cgra(artifact):
    from repro.arch.capability import CapabilityMap
    from repro.arch.cgra import CGRA

    return CGRA(
        artifact.rows,
        artifact.cols,
        rf_depth=artifact.rf_depth,
        mem_ports_per_row=artifact.mem_ports_per_row,
        capability=CapabilityMap(artifact.rows, artifact.cols, artifact.capability)
        if artifact.capability is not None
        else None,
    )


def _audit_mapping(entry: AuditEntry, artifact, dfg) -> None:
    from repro.compiler.check import validate_mapping
    from repro.compiler.constraints import paged_bus_key, ring_hop_filter
    from repro.compiler.mapping import materialized_edges
    from repro.util.errors import CapabilityViolation

    try:
        paged = artifact.materialize(dfg)
    except CapabilityViolation as exc:
        entry.findings.append(_finding(MAP_CAP, entry.path, str(exc)))
        return
    except ConstraintViolation as exc:
        entry.findings.append(_finding(MAP_RING, entry.path, str(exc)))
        return
    except (MappingError, ArchitectureError, ArtifactError, TransformError) as exc:
        entry.findings.append(_finding(MAP_LEGAL, entry.path, str(exc)))
        return
    layout = paged.layout
    cgra = paged.mapping.cgra
    try:
        validate_mapping(
            paged.mapping,
            allowed_pes=[pe for pe in cgra.coords() if pe in layout.page_of],
            hop_allowed=ring_hop_filter(layout),
            bus_key=paged_bus_key(layout),
        )
    except CapabilityViolation as exc:
        entry.findings.append(_finding(MAP_CAP, entry.path, str(exc)))
    except ConstraintViolation as exc:
        entry.findings.append(_finding(MAP_RING, entry.path, str(exc)))
    except (MappingError, ArchitectureError) as exc:
        entry.findings.append(_finding(MAP_LEGAL, entry.path, str(exc)))

    _audit_capability(entry, artifact, dfg)

    # register-usage constraint (§VI-B): depth-1 reads, re-checked
    # explicitly so a violation is named, not folded into route legality
    mapping = paged.mapping
    for e in materialized_edges(dfg):
        try:
            holder, held_at = mapping.route_origin(e)
            steps = mapping.route(e.id).steps
            dst = mapping.placement(e.dst)
        except MappingError:
            continue  # already reported by validate_mapping
        reads = [(s.pe, s.time) for s in steps] + [(dst.pe, dst.time)]
        for pe, t in reads:
            if t != held_at + 1:
                entry.findings.append(
                    _finding(
                        MAP_REGDEPTH,
                        entry.path,
                        f"edge {e.id}: read at {pe} t={t} is depth "
                        f"{t - held_at} from the value held at t={held_at}",
                    )
                )
                break
            holder, held_at = pe, t


def _audit_capability(entry: AuditEntry, artifact, dfg) -> None:
    """Bytes-level capability legality: re-checked straight off the stored
    placement/route tuples, so a capability violation is caught even when
    materialization itself fails for an unrelated reason."""
    if artifact.capability is None:
        return
    from repro.arch.capability import CapabilityMap, OpClass, op_class

    try:
        cap = CapabilityMap(artifact.rows, artifact.cols, artifact.capability)
    except ArchitectureError as exc:
        entry.findings.append(_finding(MAP_CAP, entry.path, str(exc)))
        return
    for (op_id, r, c, _t) in artifact.placements:
        op = dfg.ops.get(op_id)
        if op is None:
            continue  # dangling op id is MAP-LEGAL territory
        cls = op_class(op.opcode)
        pe_id = r * artifact.cols + c
        if not cap.supports_id(cls, pe_id):
            entry.findings.append(
                _finding(
                    MAP_CAP,
                    entry.path,
                    f"op{op_id} ({cls.value}) stored on PE({r},{c}), which "
                    f"lacks the {cls.value!r} capability",
                )
            )
    for (edge_id, steps, _tap) in artifact.routes:
        for (r, c, _t) in steps:
            pe_id = r * artifact.cols + c
            if not cap.supports_id(OpClass.ROUTE, pe_id):
                entry.findings.append(
                    _finding(
                        MAP_CAP,
                        entry.path,
                        f"edge {edge_id}: route step on PE({r},{c}), which "
                        f"lacks the 'route' capability",
                    )
                )
                break


def _audit_mii(entry: AuditEntry, artifact, dfg) -> None:
    """MAP-MII: the stored IIs must respect the provable lower bound.

    The bound is re-derived from artifact bytes alone — the registry DFG
    (already fingerprint-matched by provenance) and the stored grid/page
    geometry — via the same :func:`repro.compiler.feas.ii_lower_bound`
    every backend's ladder starts from.  The terms only assume what any
    legal modulo schedule must satisfy (one op per (PE, slot), memory
    issue-slot and capability budgets, recurrence circuits), so an II
    *below* the bound is impossible, whatever heuristic produced it.
    """
    from repro.arch.capability import OpClass
    from repro.compiler.feas import ii_lower_bound
    from repro.core.paging import PageLayout

    cgra = _build_cgra(artifact)
    mem_mask = cgra.class_mask(OpClass.MEM)

    def check(label: str, ii: int, pe_ids, mem_slots: int) -> None:
        n_pes = len(pe_ids)
        mem_capable = (
            n_pes if mem_mask is None else sum(1 for p in pe_ids if mem_mask[p])
        )
        try:
            bound = ii_lower_bound(
                dfg,
                num_pes=n_pes,
                mem_slots=max(1, mem_slots),
                mem_capable_pes=max(1, mem_capable),
                max_ii=ii,
            )
        except MappingError as exc:
            entry.findings.append(
                _finding(
                    MAP_MII,
                    entry.path,
                    f"{label} II {ii} stored for a kernel that provably "
                    f"cannot map: {exc}",
                )
            )
            return
        if ii < bound.mii:
            entry.findings.append(
                _finding(
                    MAP_MII,
                    entry.path,
                    f"{label} II {ii} beats the provable lower bound "
                    f"{bound.mii} (binding term: {bound.binding()})",
                )
            )

    check(
        "base",
        artifact.ii_base,
        list(range(cgra.num_pes)),
        cgra.rows * cgra.mem_ports_per_row,
    )
    try:
        layout = PageLayout(cgra, tuple(artifact.page_shape))
    except (ArchitectureError, MappingError):
        return  # geometry problems are ART-ARCH/MAP-LEGAL territory
    gi = cgra.grid_index
    covered = [gi.id_of[pe] for pe in cgra.coords() if pe in layout.page_of]
    check(
        "paged",
        artifact.ii_paged,
        covered,
        layout.num_pages * layout.shape[0] * cgra.mem_ports_per_row,
    )


def _audit_fold(entry: AuditEntry, artifact) -> None:
    from repro.core.pagemaster import PageMaster

    n, ii_p = artifact.pages_used, artifact.ii_paged
    stored = artifact.steady_table()
    expected_targets = set(range(1, n + 1))
    if set(stored) != expected_targets:
        entry.findings.append(
            _finding(
                FOLD_TABLE,
                entry.path,
                f"steady table covers M={sorted(stored)}, expected "
                f"M=1..{n}",
            )
        )
        return
    for m in range(1, n + 1):
        try:
            placement = PageMaster(
                n, ii_p, m, wrap_used=artifact.wrap_used
            ).place()
        except TransformError as exc:
            entry.findings.append(
                _finding(FOLD_DEPS, entry.path, f"M={m}: {exc}")
            )
            continue
        entry.folds_checked += 1
        _check_fold_legality(entry, artifact, placement, m)
        achieved = placement.ii_q_effective()
        if stored[m] != achieved:
            entry.findings.append(
                _finding(
                    FOLD_TABLE,
                    entry.path,
                    f"M={m}: stored II_q {stored[m]} != recomputed {achieved}",
                )
            )
        _check_fold_bound(entry, artifact, achieved, m)


def _check_fold_legality(entry: AuditEntry, artifact, placement, m: int) -> None:
    n = artifact.pages_used
    slots = placement.slots
    occupied: dict[tuple[int, int], tuple[int, int]] = {}
    for (page, batch) in sorted(slots):
        col, t = slots[(page, batch)]
        if (col, t) in occupied:
            entry.findings.append(
                _finding(
                    FOLD_DEPS,
                    entry.path,
                    f"M={m}: slot (col {col}, t {t}) double-booked by "
                    f"{occupied[(col, t)]} and {(page, batch)}",
                )
            )
            return
        occupied[(col, t)] = (page, batch)
        if batch == 0:
            continue
        deps = [(page, "self")]
        if page > 0 or artifact.wrap_used:
            deps.append(((page - 1) % n, "ring"))
        for src_page, kind in deps:
            src_col, src_t = slots[(src_page, batch - 1)]
            if t <= src_t:
                entry.findings.append(
                    _finding(
                        FOLD_DEPS,
                        entry.path,
                        f"M={m}: {kind} dep of page {page} batch {batch} "
                        f"not later than its producer (t {t} <= {src_t})",
                    )
                )
                return
            if abs(col - src_col) > 1:
                entry.findings.append(
                    _finding(
                        FOLD_DEPS,
                        entry.path,
                        f"M={m}: {kind} dep of page {page} batch {batch} "
                        f"spans columns {src_col}->{col} (> 1 hop)",
                    )
                )
                return


def _check_fold_bound(entry: AuditEntry, artifact, achieved, m: int) -> None:
    n, ii_p = artifact.pages_used, artifact.ii_paged
    resource = Fraction(ii_p * n, m)
    grouped = n % m == 0 and not artifact.wrap_used
    if achieved < resource:
        entry.findings.append(
            _finding(
                FOLD_BOUND,
                entry.path,
                f"M={m}: II_q {achieved} beats the resource bound "
                f"{resource} — impossible, the table is corrupt",
            )
        )
    elif grouped and achieved != resource:
        entry.findings.append(
            _finding(
                FOLD_BOUND,
                entry.path,
                f"M={m} divides N={n} wrap-free: grouped fold must meet "
                f"II_p*N/M = {resource} exactly, got {achieved}",
            )
        )
    elif achieved > 2 * resource:
        entry.findings.append(
            _finding(
                FOLD_BOUND,
                entry.path,
                f"M={m}: II_q {achieved} exceeds 2x the resource bound "
                f"{resource} (zigzag efficiency below 0.5)",
            )
        )


def audit_file(path: Path, rel: str) -> AuditEntry:
    """Audit one store-resident file (already known to be artifact-shaped)."""
    from repro.pipeline.artifact import CompiledKernel

    entry = AuditEntry(path=rel, status="ok")
    try:
        raw = path.read_bytes()
        payload = json.loads(raw)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        entry.findings.append(
            _finding(ART_READ, rel, f"unreadable artifact: {exc}")
        )
        entry.status = "corrupt"
        return entry
    try:
        artifact = CompiledKernel.from_json_dict(payload)
    except ArtifactError as exc:
        entry.findings.append(_finding(ART_READ, rel, str(exc)))
        entry.status = "corrupt"
        return entry
    entry.kernel = artifact.kernel
    _audit_encoding(entry, raw, artifact)
    if _audit_fields(entry, artifact):
        dfg = _audit_provenance(entry, artifact)
        if dfg is not None and not artifact.unmappable:
            _audit_mapping(entry, artifact, dfg)
            _audit_mii(entry, artifact, dfg)
            _audit_fold(entry, artifact)
    if any(f.severity is Severity.ERROR for f in entry.findings):
        entry.status = "corrupt"
    return entry


def audit_store(root: Path | str | None = None) -> AuditReport:
    """Audit every file under the store at *root* (default: the standard
    ``.repro_artifacts`` location honouring ``$REPRO_CACHE_DIR``)."""
    from repro.pipeline.store import ArtifactStore

    store = root if isinstance(root, ArtifactStore) else ArtifactStore(root)
    report = AuditReport(root=str(store.root))
    for path, is_artifact in store.walk():
        rel = path.relative_to(store.root).as_posix()
        if not is_artifact:
            entry = AuditEntry(path=rel, status="foreign")
            entry.findings.append(
                _finding(
                    STORE_FOREIGN,
                    rel,
                    "not a sharded content-addressed artifact; skipped",
                )
            )
            report.entries.append(entry)
            continue
        report.entries.append(audit_file(path, rel))
    return report
