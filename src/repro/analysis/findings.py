"""The finding model shared by both analysis passes.

A :class:`Finding` is one diagnostic from either the determinism lint
(anchored at a source ``file:line``) or the artifact auditor (anchored at a
store path).  Findings are plain data, canonically ordered, and carry the
rule id that produced them so reports, suppressions, and CI gates all speak
the same vocabulary (see :mod:`repro.analysis.registry` for the catalogue).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How a finding gates CI.

    ``ERROR`` findings fail the build always; ``WARNING`` findings fail it
    only under ``--strict`` (the required CI step runs strict, so a clean
    tree stays clean).
    """

    ERROR = "error"
    WARNING = "warning"

    @property
    def rank(self) -> int:
        return 0 if self is Severity.ERROR else 1


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: what rule fired, where, why, and how to fix it."""

    file: str
    line: int
    col: int
    rule_id: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    fix_hint: str = field(compare=False, default="")

    def render(self) -> str:
        loc = f"{self.file}:{self.line}" + (f":{self.col}" if self.col else "")
        text = f"{loc}: [{self.severity.value}] {self.rule_id}: {self.message}"
        if self.fix_hint:
            text += f"\n    fix: {self.fix_hint}"
        return text

    def as_record(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }
