"""``python -m repro.analysis`` — the CI entry point for all three passes.

Subcommands:

* ``lint [--root PATH]`` — run the determinism lint over the source tree
  (default: the installed ``repro`` package);
* ``audit [--store PATH]`` — run the artifact auditor over a store
  (default: the standard ``.repro_artifacts`` location);
* ``flow [--root PATH] [--summaries]`` — interprocedural effect &
  concurrency analysis over the whole package (``--summaries`` dumps the
  per-function effect summaries as JSON);
* ``all`` — every pass, combined report, worst exit code wins;
* ``rules`` — print the rule catalogue.

``--json`` switches to the machine-readable report, ``--strict`` makes
warnings gate the build (the required CI step runs ``all --strict``).
Exit codes: 0 clean, 1 findings, 2 the analysis itself failed to run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding
from repro.analysis.report import (
    EXIT_FATAL,
    exit_code,
    render_json,
    render_text,
)

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--json", action="store_true", help="emit the JSON report"
    )
    common.add_argument(
        "--strict",
        action="store_true",
        help="warnings gate the build too (CI runs this)",
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="determinism lint + artifact auditor + flow analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser(
        "lint", parents=[common], help="determinism lint over the source tree"
    )
    lint.add_argument(
        "--root",
        type=Path,
        default=None,
        help="file or package directory to lint (default: the repro package)",
    )

    audit = sub.add_parser(
        "audit", parents=[common], help="audit every artifact in a store"
    )
    audit.add_argument(
        "--store",
        type=Path,
        default=None,
        help="store root (default: .repro_artifacts / $REPRO_CACHE_DIR)",
    )

    flow = sub.add_parser(
        "flow",
        parents=[common],
        help="interprocedural effect & concurrency analysis",
    )
    flow.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to analyze (default: the repro package)",
    )
    flow.add_argument(
        "--summaries",
        action="store_true",
        help="dump per-function effect summaries as JSON and exit",
    )

    both = sub.add_parser(
        "all", parents=[common], help="all passes, worst exit code wins"
    )
    both.add_argument("--root", type=Path, default=None)
    both.add_argument("--store", type=Path, default=None)

    sub.add_parser("rules", parents=[common], help="print the rule catalogue")
    return parser


def _run_lint(root: Path | None) -> list[Finding]:
    from repro.analysis.lint import lint_tree

    if root is not None and not root.exists():
        raise FileNotFoundError(f"lint root {root} does not exist")
    return lint_tree(root)


def _run_audit(store: Path | None) -> tuple[list[Finding], dict, str]:
    from repro.analysis.audit import audit_store

    if store is not None and not store.is_dir():
        raise FileNotFoundError(f"artifact store {store} does not exist")
    report = audit_store(store)
    return report.findings, {"audit": report.as_record()}, report.summary()


def _run_flow(root: Path | None) -> tuple[list[Finding], dict, str]:
    from repro.analysis.flow import analyze_tree

    if root is not None and not root.exists():
        raise FileNotFoundError(f"flow root {root} does not exist")
    report = analyze_tree(root)
    stats = report.stats()
    summary = (
        f"flow: {stats['functions']} functions / {stats['modules']} modules, "
        f"{stats['roots']} concurrency roots, {stats['findings']} findings"
    )
    return report.findings, {"flow": stats}, summary


def _print_rules(as_json: bool) -> int:
    from repro.analysis.registry import all_rules

    rules = all_rules()
    if as_json:
        import json

        print(
            json.dumps(
                [
                    {
                        "id": r.id,
                        "kind": r.kind,
                        "severity": r.severity.value,
                        "summary": r.summary,
                        "fix_hint": r.fix_hint,
                    }
                    for r in rules
                ],
                indent=2,
            )
        )
        return 0
    width = max(len(r.id) for r in rules)
    for r in rules:
        print(f"{r.id:<{width}}  {r.kind:<5}  {r.severity.value:<7}  {r.summary}")
    return 0


def _print_summaries(root: Path | None) -> int:
    import json

    from repro.analysis.flow import analyze_tree

    if root is not None and not root.exists():
        print(f"repro.analysis: fatal: flow root {root} does not exist",
              file=sys.stderr)
        return EXIT_FATAL
    report = analyze_tree(root)
    print(json.dumps(report.summary_records(), indent=2, sort_keys=True))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "rules":
        return _print_rules(args.json)
    if args.command == "flow" and args.summaries:
        return _print_summaries(args.root)

    findings: list[Finding] = []
    payload: dict = {}
    extra: list[str] = []
    try:
        if args.command in ("lint", "all"):
            findings.extend(_run_lint(args.root))
        if args.command in ("audit", "all"):
            audit_findings, audit_payload, summary = _run_audit(args.store)
            findings.extend(audit_findings)
            payload.update(audit_payload)
            extra.append(summary)
        if args.command in ("flow", "all"):
            flow_findings, flow_payload, summary = _run_flow(args.root)
            findings.extend(flow_findings)
            payload.update(flow_payload)
            extra.append(summary)
    except (FileNotFoundError, NotADirectoryError, PermissionError) as exc:
        print(f"repro.analysis: fatal: {exc}", file=sys.stderr)
        return EXIT_FATAL

    title = f"repro.analysis {args.command}"
    if args.json:
        print(render_json(findings, title=title, payload=payload))
    else:
        print(render_text(findings, title=title, extra=extra))
    return exit_code(findings, strict=args.strict)
