"""Bottom-up interprocedural effect inference over the call graph.

Each function gets an :class:`EffectSummary` drawn from a small effect
lattice:

* ``mutates-global`` — writes a module-level variable (rebinding through a
  ``global`` statement, attribute/subscript stores, in-place container
  methods, or mutating a parameter that a call site bound to a global);
* ``reads-global`` — reads a *mutable* module-level variable;
* ``mutates-param`` — mutates one of its own parameters in place;
* ``unseeded-rng`` — draws from hidden/entropy-seeded RNG state;
* ``wall-clock`` — observes wall-clock time or process identity;
* ``io`` — touches the filesystem, streams, or subprocesses;
* ``nondet-iter`` — iterates an unordered set directly.

Direct effects come from one AST pass per function (reusing the call
graph's scope resolution); transitive effects are propagated bottom-up
over the condensation of the call graph — Tarjan emits strongly-connected
components callee-first, and mutually-recursive components are iterated to
a fixpoint (the lattice is finite and the transfer function monotone, so
this terminates).  Every inherited effect carries a *witness*: the source
site that introduced it plus the call chain it travelled, so a contract
violation can print exactly why.

The analysis is alias-unaware by design: mutating the object returned by a
function call (``counters().x += 1``) is not recognised as a global write.
That boundary is documented in DESIGN.md §12 and is exactly why the
counter hot paths fetch-and-increment through an accessor — the accessor
pattern is the *fix* the race rule steers code toward.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.flow.callgraph import (
    MUTATING_METHODS,
    CallGraph,
    CallSite,
    FunctionNode,
    Resolution,
    _FunctionLinker,
)
from repro.analysis.rules.randomness import (
    _NUMPY_SEED_REQUIRED,
    _NUMPY_SEEDED_API,
    _has_explicit_seed,
)

__all__ = [
    "HAZARD_EFFECTS",
    "ALL_EFFECTS",
    "Witness",
    "WriteSite",
    "EffectSummary",
    "infer_effects",
]

#: Effects introduced by calls out of the project (leaf hazards).
HAZARD_EFFECTS = ("unseeded-rng", "wall-clock", "io", "nondet-iter")

#: The full lattice, for documentation and the ``rules`` listing.
ALL_EFFECTS = (
    "mutates-global",
    "reads-global",
    "mutates-param",
) + HAZARD_EFFECTS

#: External callables that observe wall-clock time or process identity.
#: ``perf_counter``/``monotonic``/``process_time`` are deliberately absent:
#: they are legitimate for *measuring* and never shape artifact bytes.
_WALL_CLOCK_TARGETS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.asctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.getpid",
        "os.getppid",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: External callables that do filesystem / stream / subprocess I/O.
_IO_TARGETS = frozenset(
    {
        "open",
        "input",
        "print",
        "os.listdir",
        "os.scandir",
        "os.walk",
        "os.remove",
        "os.replace",
        "os.rename",
        "os.makedirs",
        "os.mkdir",
        "os.rmdir",
        "os.unlink",
        "os.chdir",
    }
)

_IO_PREFIXES = ("shutil.", "tempfile.", "subprocess.")

#: Attribute-call names that read or write files on pathlib-ish receivers.
#: ``replace`` is deliberately absent (``str.replace`` collision).
_IO_METHODS = frozenset(
    {
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
        "mkdir",
        "rmdir",
        "unlink",
        "touch",
    }
)


@dataclass(frozen=True)
class Witness:
    """Why a summary carries an effect: the introducing site and the call
    chain (outermost first) the effect travelled to reach this function."""

    display: str
    line: int
    detail: str
    via: tuple[str, ...] = ()

    def chain(self) -> str:
        path = " -> ".join(self.via) if self.via else ""
        site = f"{self.display}:{self.line}: {self.detail}"
        return f"{path} ({site})" if path else site


@dataclass(frozen=True)
class WriteSite:
    """One *direct* store to a module global inside a function body (the
    anchor the race rules report and suppressions target)."""

    display: str
    line: int
    locked: bool
    detail: str


@dataclass
class EffectSummary:
    """The inferred effect set of one function, with provenance."""

    qualname: str
    writes: dict[str, bool] = field(default_factory=dict)  # global -> all locked
    reads: set[str] = field(default_factory=set)
    mutated_params: set[str] = field(default_factory=set)
    hazards: set[str] = field(default_factory=set)
    witnesses: dict[str, Witness] = field(default_factory=dict)
    #: direct stores only (this body), per global — race-rule anchors
    write_sites: dict[str, list[WriteSite]] = field(default_factory=dict)

    @property
    def effects(self) -> set[str]:
        out = set(self.hazards)
        if self.writes:
            out.add("mutates-global")
        if self.reads:
            out.add("reads-global")
        if self.mutated_params:
            out.add("mutates-param")
        return out

    def witness_for(self, key: str) -> Witness | None:
        return self.witnesses.get(key)

    def _note(self, key: str, witness: Witness) -> None:
        self.witnesses.setdefault(key, witness)

    def add_write(self, g: str, locked: bool, witness: Witness,
                  site: WriteSite | None = None) -> bool:
        changed = False
        prev = self.writes.get(g)
        if prev is None:
            self.writes[g] = locked
            changed = True
        elif prev and not locked:
            self.writes[g] = False
            changed = True
        self._note(f"write:{g}", witness)
        if site is not None:
            sites = self.write_sites.setdefault(g, [])
            if site not in sites:
                sites.append(site)
                changed = True
        return changed

    def add_read(self, g: str, witness: Witness) -> bool:
        if g in self.reads:
            return False
        self.reads.add(g)
        self._note(f"read:{g}", witness)
        return True

    def add_param(self, p: str, witness: Witness) -> bool:
        if p in self.mutated_params:
            return False
        self.mutated_params.add(p)
        self._note(f"param:{p}", witness)
        return True

    def add_hazard(self, name: str, witness: Witness) -> bool:
        if name in self.hazards:
            return False
        self.hazards.add(name)
        self._note(name, witness)
        return True

    def as_record(self) -> dict:
        return {
            "effects": sorted(self.effects),
            "writes": {
                g: {"locked": locked}
                for g, locked in sorted(self.writes.items())
            },
            "reads": sorted(self.reads),
            "mutated_params": sorted(self.mutated_params),
            "witnesses": {
                k: {
                    "site": f"{w.display}:{w.line}",
                    "detail": w.detail,
                    "via": list(w.via),
                }
                for k, w in sorted(self.witnesses.items())
            },
        }


# ------------------------------------------------------------ direct effects


def _store_root(node: ast.AST) -> tuple[ast.AST, int]:
    """Peel attribute/subscript layers off a store target; returns the root
    expression and how many layers were peeled."""
    depth = 0
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
        depth += 1
    return node, depth


class _DirectEffects(_FunctionLinker):
    """Second pass over one function body: same scope resolution as the
    linker, but records stores and mutable-global reads instead of call
    sites (those are already on the node)."""

    def __init__(self, graph: CallGraph, fn: FunctionNode, summary: EffectSummary):
        super().__init__(graph, graph.modules[fn.module], fn)
        self.summary = summary

    def visit_Call(self, node: ast.Call) -> None:  # calls already linked
        self.generic_visit(node)

    # -- stores ---------------------------------------------------------------

    def _record_store(self, target: ast.AST, lineno: int, detail: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, lineno, detail)
            return
        root, depth = _store_root(target)
        if not isinstance(root, ast.Name):
            return
        name = root.id
        if depth == 0:
            # plain-name (re)binding: a global write only under `global`
            if name not in self.global_decls:
                return
            qual = self.info.globals.get(name, f"{self.info.name}.{name}")
            self._global_store(qual, lineno, detail)
            return
        res = self.resolve_name(name)
        if res.kind == "param":
            self.summary.add_param(
                res.ref,
                Witness(self.fn.display, lineno, detail, (self.fn.qualname,)),
            )
        elif res.kind == "global":
            self._global_store(res.ref, lineno, detail)

    def _global_store(self, qual: str, lineno: int, detail: str) -> None:
        gvar = self.graph.globals.get(qual)
        if gvar is not None and gvar.kind in ("thread-local", "lock"):
            return  # per-thread / synchronisation state is not shared data
        locked = self.lock_depth > 0
        self.summary.add_write(
            qual,
            locked,
            Witness(self.fn.display, lineno, detail, (self.fn.qualname,)),
            WriteSite(self.fn.display, lineno, locked, detail),
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._record_store(t, node.lineno, "assignment")
        super().visit_Assign(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store(node.target, node.lineno, "augmented assignment")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_store(node.target, node.lineno, "assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for t in node.targets:
            self._record_store(t, node.lineno, "del")
        self.generic_visit(node)

    # -- reads ----------------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            res = self.resolve_name(node.id)
            if res.kind == "global":
                gvar = self.graph.globals.get(res.ref)
                if gvar is not None and gvar.kind == "mutable":
                    self.summary.add_read(
                        res.ref,
                        Witness(
                            self.fn.display,
                            node.lineno,
                            f"reads {gvar.name}",
                            (self.fn.qualname,),
                        ),
                    )
        self.generic_visit(node)

    # -- unordered iteration --------------------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
            and self.resolve_name(node.func.id).kind == "external"
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self.summary.add_hazard(
                "nondet-iter",
                Witness(
                    self.fn.display,
                    node.lineno,
                    "iterates a set (unordered)",
                    (self.fn.qualname,),
                ),
            )
        self.generic_visit(node)


def _interpret_call_site(
    graph: CallGraph, fn: FunctionNode, site: CallSite, summary: EffectSummary
) -> None:
    """Direct effects a single call site contributes regardless of any
    project callee: external hazards, in-place container methods on
    parameter/global receivers, and the ``setattr`` builtin."""
    here = (fn.qualname,)

    def wit(detail: str) -> Witness:
        return Witness(fn.display, site.lineno, detail, here)

    # setattr(x, ...) mutates its first argument
    if site.external == "setattr" and site.args:
        res = site.args[0]
        if res.kind == "param":
            summary.add_param(res.ref, wit("setattr on parameter"))
        elif res.kind == "global":
            gvar = graph.globals.get(res.ref)
            if gvar is None or gvar.kind not in ("thread-local", "lock"):
                locked = site.lock_depth > 0
                summary.add_write(
                    res.ref,
                    locked,
                    wit("setattr on module global"),
                    WriteSite(fn.display, site.lineno, locked,
                              "setattr on module global"),
                )

    # in-place container methods on a param/global receiver
    if site.method in MUTATING_METHODS and site.recv is not None:
        if site.recv.kind == "param":
            summary.add_param(site.recv.ref, wit(f".{site.method}() on parameter"))
        elif site.recv.kind == "global":
            gvar = graph.globals.get(site.recv.ref)
            if gvar is None or gvar.kind not in ("thread-local", "lock"):
                locked = site.lock_depth > 0
                detail = f".{site.method}() on module global"
                summary.add_write(
                    site.recv.ref,
                    locked,
                    wit(detail),
                    WriteSite(fn.display, site.lineno, locked, detail),
                )

    # pathlib-style file access is a method on an arbitrary receiver — it
    # has no external dotted target, so check before the early return
    if site.method in _IO_METHODS and site.callee is None:
        summary.add_hazard("io", wit(f".{site.method}() file access"))

    # external hazards
    target = site.external
    if target is None:
        return
    if target in _WALL_CLOCK_TARGETS:
        summary.add_hazard("wall-clock", wit(f"calls {target}"))
    elif target in _IO_TARGETS or target.startswith(_IO_PREFIXES):
        summary.add_hazard("io", wit(f"calls {target}"))
    elif target == "random" or target.startswith("random."):
        rest = target.partition(".")[2]
        node = site.node
        if not (rest == "Random" and node is not None and node.args):
            summary.add_hazard("unseeded-rng", wit(f"calls stdlib {target}"))
    elif target.startswith("numpy.random."):
        attr = target.rsplit(".", 1)[1]
        node = site.node
        if attr == "default_rng" or attr in _NUMPY_SEED_REQUIRED:
            if node is not None and not _has_explicit_seed(node):
                summary.add_hazard(
                    "unseeded-rng", wit(f"{target}() without a seed")
                )
        elif attr not in _NUMPY_SEEDED_API:
            summary.add_hazard("unseeded-rng", wit(f"legacy global RNG {target}"))


# --------------------------------------------------------------- propagation


def _tarjan_sccs(graph: CallGraph) -> list[list[str]]:
    """Iterative Tarjan over project call edges; SCCs come out callee-first
    (reverse topological order of the condensation)."""
    edges: dict[str, list[str]] = {}
    for qual, fn in graph.functions.items():
        outs = sorted(
            {s.callee for s in fn.calls if s.callee and s.callee in graph.functions}
        )
        edges[qual] = outs
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for start in sorted(graph.functions):
        if start in index:
            continue
        work: list[tuple[str, int]] = [(start, 0)]
        while work:
            node, ei = work.pop()
            if ei == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            outs = edges[node]
            while ei < len(outs):
                succ = outs[ei]
                if succ not in index:
                    work.append((node, ei + 1))
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
                ei += 1
            if advanced:
                continue
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def _bindings(
    callee: FunctionNode, site: CallSite
) -> dict[str, Resolution]:
    """Map callee parameter names to the caller-side resolutions bound at
    this call site (receiver binds ``self`` for method-style calls)."""
    out: dict[str, Resolution] = {}
    params = list(callee.params)
    if not params:
        return out
    pos = params
    if callee.cls is not None:
        if site.recv is not None:
            out[params[0]] = site.recv
            pos = params[1:]
        elif callee.name == "__init__":
            pos = params[1:]  # `self` is the fresh instance
    for i, res in enumerate(site.args):
        if i < len(pos):
            out[pos[i]] = res
    for name, res in site.keywords:
        if name in params:
            out[name] = res
    return out


def _propagate_site(
    graph: CallGraph,
    caller: FunctionNode,
    site: CallSite,
    caller_sum: EffectSummary,
    callee_sum: EffectSummary,
) -> bool:
    callee = graph.functions[site.callee]
    changed = False

    def lift(key: str, detail: str) -> Witness:
        inner = callee_sum.witness_for(key)
        if inner is not None:
            return Witness(inner.display, inner.line, inner.detail,
                           (caller.qualname,) + inner.via)
        return Witness(caller.display, site.lineno, detail, (caller.qualname,))

    for hazard in callee_sum.hazards:
        changed |= caller_sum.add_hazard(hazard, lift(hazard, f"via {site.raw}"))
    for g, locked in callee_sum.writes.items():
        eff_locked = locked or site.lock_depth > 0
        changed |= caller_sum.add_write(g, eff_locked, lift(f"write:{g}", f"via {site.raw}"))
    for g in callee_sum.reads:
        changed |= caller_sum.add_read(g, lift(f"read:{g}", f"via {site.raw}"))
    binding = _bindings(callee, site)
    for p in callee_sum.mutated_params:
        res = binding.get(p)
        if res is None:
            continue
        if res.kind == "param":
            changed |= caller_sum.add_param(res.ref, lift(f"param:{p}", f"via {site.raw}"))
        elif res.kind == "global":
            gvar = graph.globals.get(res.ref)
            if gvar is not None and gvar.kind in ("thread-local", "lock"):
                continue
            locked = site.lock_depth > 0
            detail = f"{site.raw}() mutates {res.ref.rsplit('.', 1)[-1]}"
            changed |= caller_sum.add_write(
                res.ref,
                locked,
                Witness(caller.display, site.lineno, detail, (caller.qualname,)),
                WriteSite(caller.display, site.lineno, locked, detail),
            )
    return changed


def infer_effects(graph: CallGraph) -> dict[str, EffectSummary]:
    """Per-function effect summaries for every project function, computed
    bottom-up over the SCC condensation with per-component fixpoints."""
    summaries = {q: EffectSummary(q) for q in graph.functions}
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        _DirectEffects(graph, fn, summaries[qual]).run()
        for site in fn.calls:
            _interpret_call_site(graph, fn, site, summaries[qual])
    for scc in _tarjan_sccs(graph):
        changed = True
        while changed:
            changed = False
            for qual in scc:
                fn = graph.functions[qual]
                caller_sum = summaries[qual]
                for site in fn.calls:
                    if site.callee is None or site.callee not in summaries:
                        continue
                    changed |= _propagate_site(
                        graph, fn, site, caller_sum, summaries[site.callee]
                    )
    return summaries
