"""Pass 3 — interprocedural effect & concurrency analysis (``flow``).

Where the lint (pass 1) judges one file at a time and the audit (pass 2)
judges committed artifacts, the flow pass judges the *program*: it builds
a whole-project call graph (:mod:`.callgraph`), infers per-function effect
summaries bottom-up over its SCC condensation (:mod:`.effects`), then
checks two things against them — that no mutable module global is written
racily from concurrent roots (:mod:`.concurrency`), and that every
declared determinism contract's entrypoints stay inside their effect
budget (:mod:`.contracts`).

Findings ride the same machinery as the other passes: the shared
:class:`~repro.analysis.findings.Finding` model, ``# repro:
allow[RULE-ID] reason`` suppressions (flow owns the stale-suppression
check for flow-only rule ids; the lint owns reason/unknown-id hygiene and
skips flow ids in its unused check), the text/JSON reporters, and the
0/1/2 CLI exit contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.callgraph import CallGraph, build_callgraph
from repro.analysis.flow.concurrency import Root, check_races, find_roots
from repro.analysis.flow.contracts import Contract, check_contracts
from repro.analysis.flow.effects import EffectSummary, infer_effects
from repro.analysis.registry import flow_rule_ids
from repro.analysis.suppressions import Suppression, parse_suppressions

__all__ = ["FlowReport", "analyze_tree"]


@dataclass
class FlowReport:
    """Everything one flow run produced."""

    findings: list[Finding]
    graph: CallGraph
    summaries: dict[str, EffectSummary]
    roots: list[Root]

    def summary_records(self) -> dict:
        """The ``--summaries`` payload: per-function effect summaries,
        canonically ordered and JSON-ready."""
        return {
            qual: self.summaries[qual].as_record()
            for qual in sorted(self.summaries)
        }

    def stats(self) -> dict:
        return {
            "modules": len(self.graph.modules),
            "functions": len(self.graph.functions),
            "globals": len(self.graph.globals),
            "roots": len(self.roots),
            "findings": len(self.findings),
        }


def _apply_suppressions(
    graph: CallGraph, raw: list[Finding]
) -> list[Finding]:
    """Filter findings through reasoned ``allow[]`` comments, then report
    stale flow-only suppressions (the lint's unused check skips them)."""
    flow_ids = flow_rule_ids()
    sups_by_display: dict[str, list[Suppression]] = {}
    for name in sorted(graph.modules):
        info = graph.modules[name]
        sups_by_display[info.display] = parse_suppressions(info.source)

    kept: list[Finding] = []
    for f in raw:
        covering = [
            s
            for s in sups_by_display.get(f.file, [])
            if s.target_line == f.line and s.covers(f.rule_id)
        ]
        valid = [s for s in covering if s.reason]
        if valid:
            for s in valid:
                s.used = True
            continue
        for s in covering:  # aimed, but reason-less: lint reports SUP-REASON
            s.used = True
        kept.append(f)

    for display in sorted(sups_by_display):
        for s in sups_by_display[display]:
            if not s.reason or s.used or not s.rule_ids:
                continue
            if all(rid in flow_ids for rid in s.rule_ids):
                kept.append(
                    Finding(
                        file=display,
                        line=s.comment_line,
                        col=0,
                        rule_id="SUP-UNUSED",
                        severity=Severity.WARNING,
                        message=(
                            f"allow[{', '.join(s.rule_ids)}] matched no "
                            "flow finding"
                        ),
                        fix_hint="delete the stale # repro: allow[...] comment",
                    )
                )
    return sorted(kept)


def analyze_tree(
    root: Path | None = None,
    contracts: tuple[Contract, ...] | None = None,
) -> FlowReport:
    """Run the full flow pass over the package at *root* (default: the
    installed ``repro`` tree).  Unparseable modules are skipped here —
    pass 1 owns the parse-error finding."""
    graph = build_callgraph(root)
    summaries = infer_effects(graph)
    roots = find_roots(graph)
    raw = check_races(graph, summaries, roots)
    raw.extend(check_contracts(graph, summaries, contracts))
    findings = _apply_suppressions(graph, raw)
    return FlowReport(
        findings=findings, graph=graph, summaries=summaries, roots=roots
    )
