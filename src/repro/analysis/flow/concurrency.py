"""Concurrency-root enumeration and the race rules.

A *concurrency root* is a site that hands a callable to another thread or
process: ``ThreadPoolExecutor.submit``/``.map``, ``ProcessPoolExecutor``
probes, ``Future.add_done_callback`` (callbacks run on executor threads),
and ``threading.Thread(target=...)``.  A ``.submit`` on a receiver the
call graph cannot type (``ctx.executor.submit(...)``) becomes an
*unknown*-kind root that conservatively participates in both race rules.
Roots submitted inside a loop or comprehension (or via ``.map``) are
*multi* roots: two copies of the same entrypoint may run concurrently, so
they count twice when weighing writers.

**RACE-SHARED-MUT** — a mutable module global is written *without a lock*
in code reachable from concurrency roots whose combined weight is ≥ 2.
The finding anchors at each unlocked write site (that is where a lock or a
thread-local context fixes it, and where a suppression belongs).

**RACE-FORK-STATE** — a process-pool (or unknown) worker entrypoint reads
or writes a mutable module global that thread-side roots concurrently
write.  Locks do not help here: the child forks a snapshot mid-update and
a ``threading.Lock`` does not survive the fork.  The finding anchors at
the worker entrypoint's ``def`` line.

Lock awareness is lexical: a write inside ``with <lock>:`` — where the
context manager resolves to a ``threading.Lock``-family module global (or
a dotted name ending in ``lock``) — counts as locked.  ``threading.local``
globals are exempt from both rules by construction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.callgraph import CallGraph, FunctionNode
from repro.analysis.flow.effects import EffectSummary, WriteSite
from repro.analysis.registry import Rule, register
from repro.analysis.rules import resolve_call_target

__all__ = ["RACE_SHARED_MUT", "RACE_FORK_STATE", "Root", "find_roots", "check_races"]


RACE_SHARED_MUT = register(
    Rule(
        id="RACE-SHARED-MUT",
        kind="flow",
        severity=Severity.ERROR,
        summary="mutable module global written without a lock from ≥2 "
        "concurrent roots",
        fix_hint="guard the write with a module lock, or give each job a "
        "thread-local context merged under a lock (see compiler/stats.py)",
    )
)

RACE_FORK_STATE = register(
    Rule(
        id="RACE-FORK-STATE",
        kind="flow",
        severity=Severity.ERROR,
        summary="process-pool worker touches a mutable global that parent "
        "threads write (locks do not survive the fork)",
        fix_hint="pass the state through the task payload, or make the "
        "worker's copy per-process scratch that never flows back",
    )
)

_EXECUTOR_CLASSES = {
    "concurrent.futures.ThreadPoolExecutor": "thread",
    "concurrent.futures.thread.ThreadPoolExecutor": "thread",
    "ThreadPoolExecutor": "thread",
    "concurrent.futures.ProcessPoolExecutor": "process",
    "concurrent.futures.process.ProcessPoolExecutor": "process",
    "ProcessPoolExecutor": "process",
}


@dataclass(frozen=True)
class Root:
    """One concurrency root: where work was handed off, to what kind of
    executor, and which project functions it enters."""

    kind: str  # "thread" | "process" | "unknown"
    owner: str  # qualname of the function containing the hand-off site
    display: str
    line: int
    label: str  # e.g. "tp.map", "executor.submit", "Thread(target=...)"
    entries: tuple[str, ...]  # project-function qualnames entered
    multi: bool  # may run >1 copy concurrently

    @property
    def weight(self) -> int:
        return 2 if self.multi else 1

    def describe(self) -> str:
        mark = " xN" if self.multi else ""
        return f"{self.label}{mark} at {self.display}:{self.line}"


# ------------------------------------------------------------- root discovery


def _executor_vars(fn: FunctionNode, imports: dict[str, str]) -> dict[str, str]:
    """Local names bound to executor instances in this function body."""
    out: dict[str, str] = {}
    for node in ast.walk(fn.node):
        value = None
        names: list[str] = []
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            value = node.value
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    target = resolve_call_target(item.context_expr.func, imports)
                    if target in _EXECUTOR_CLASSES:
                        out[item.optional_vars.id] = _EXECUTOR_CLASSES[target]
            continue
        if value is None or not names:
            continue
        target = resolve_call_target(value.func, imports)
        if target in _EXECUTOR_CLASSES:
            for name in names:
                out[name] = _EXECUTOR_CLASSES[target]
    return out


def _loop_ranges(fn: FunctionNode) -> list[tuple[int, int]]:
    ranges = []
    for node in ast.walk(fn.node):
        if isinstance(
            node,
            (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
             ast.DictComp, ast.GeneratorExp),
        ):
            end = getattr(node, "end_lineno", None) or node.lineno
            ranges.append((node.lineno, end))
    return ranges


def _entries_of_arg(
    graph: CallGraph, fn: FunctionNode, arg_node: ast.AST | None, arg_res
) -> tuple[str, ...]:
    """Project functions a submitted callable enters.  Handles direct
    function references, lambdas (their inlined calls belong to the
    enclosing function), and ``functools.partial``."""
    if arg_res is not None and arg_res.kind == "function":
        return (arg_res.ref,)
    if isinstance(arg_node, ast.Lambda):
        lo = arg_node.lineno
        hi = getattr(arg_node, "end_lineno", None) or lo
        hits = []
        for site in fn.calls:
            if site.callee and lo <= site.lineno <= hi:
                hits.append(site.callee)
        return tuple(sorted(set(hits)))
    if isinstance(arg_node, ast.Call):
        # functools.partial(f, ...) — recurse on the wrapped callable
        for site in fn.calls:
            if site.node is arg_node and site.external in (
                "functools.partial",
                "partial",
            ):
                inner = site.node.args[0] if site.node.args else None
                inner_res = site.args[0] if site.args else None
                return _entries_of_arg(graph, fn, inner, inner_res)
    return ()


def find_roots(graph: CallGraph) -> list[Root]:
    roots: list[Root] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        info = graph.modules[fn.module]
        executors = _executor_vars(fn, info.imports)
        loops = _loop_ranges(fn)

        def in_loop(line: int) -> bool:
            return any(lo <= line <= hi for lo, hi in loops)

        for site in fn.calls:
            node = site.node
            if node is None:
                continue
            if site.method in ("submit", "map"):
                recv_name = None
                if isinstance(node.func, ast.Attribute) and isinstance(
                    node.func.value, ast.Name
                ):
                    recv_name = node.func.value.id
                kind = executors.get(recv_name) if recv_name else None
                if kind is None:
                    if site.method == "map":
                        continue  # unknown-receiver .map: too common to flag
                    # builtin-free `.submit` on an untyped receiver: assume
                    # an executor of unknown kind (participates in both rules)
                    kind = "unknown"
                arg_node = node.args[0] if node.args else None
                arg_res = site.args[0] if site.args else None
                entries = _entries_of_arg(graph, fn, arg_node, arg_res)
                if not entries:
                    continue
                roots.append(
                    Root(
                        kind=kind,
                        owner=qual,
                        display=fn.display,
                        line=site.lineno,
                        label=f"{recv_name or site.raw.split('.')[0]}.{site.method}",
                        entries=entries,
                        multi=site.method == "map" or in_loop(site.lineno),
                    )
                )
            elif site.method == "add_done_callback":
                arg_node = node.args[0] if node.args else None
                arg_res = site.args[0] if site.args else None
                entries = _entries_of_arg(graph, fn, arg_node, arg_res)
                if not entries:
                    continue
                roots.append(
                    Root(
                        kind="thread",
                        owner=qual,
                        display=fn.display,
                        line=site.lineno,
                        label=f"{site.raw}",
                        entries=entries,
                        multi=in_loop(site.lineno),
                    )
                )
            elif site.external in ("threading.Thread", "Thread"):
                target_node = None
                target_res = None
                for name, res in site.keywords:
                    if name == "target":
                        target_res = res
                for kw in node.keywords:
                    if kw.arg == "target":
                        target_node = kw.value
                entries = _entries_of_arg(graph, fn, target_node, target_res)
                if not entries:
                    continue
                roots.append(
                    Root(
                        kind="thread",
                        owner=qual,
                        display=fn.display,
                        line=site.lineno,
                        label="Thread(target=...)",
                        entries=entries,
                        multi=in_loop(site.lineno),
                    )
                )
    return roots


# --------------------------------------------------------------- reachability


def _reachable(graph: CallGraph, entries: tuple[str, ...]) -> dict[str, tuple[str, ...]]:
    """Functions reachable from *entries* over resolved call edges, each
    mapped to one call chain (entry first) for diagnostics."""
    chains: dict[str, tuple[str, ...]] = {}
    queue: list[str] = []
    for e in entries:
        if e in graph.functions and e not in chains:
            chains[e] = (e,)
            queue.append(e)
    while queue:
        cur = queue.pop(0)
        for site in graph.functions[cur].calls:
            nxt = site.callee
            if nxt and nxt in graph.functions and nxt not in chains:
                chains[nxt] = chains[cur] + (nxt,)
                queue.append(nxt)
    return chains


# --------------------------------------------------------------------- checks


@dataclass
class _GlobalAccess:
    """How the concurrent world touches one mutable global."""

    writer_roots: list[Root] = field(default_factory=list)
    unlocked_sites: list[tuple[Root, str, WriteSite]] = field(default_factory=list)
    # (root, chain string, site)


def check_races(
    graph: CallGraph,
    summaries: dict[str, EffectSummary],
    roots: list[Root] | None = None,
) -> list[Finding]:
    roots = find_roots(graph) if roots is None else roots
    findings: list[Finding] = []
    reach = {root: _reachable(graph, root.entries) for root in roots}

    # --- RACE-SHARED-MUT -----------------------------------------------------
    access: dict[str, _GlobalAccess] = {}
    for root in roots:
        if root.kind == "process":
            continue  # workers share nothing with the parent after fork
        for fn_qual, chain in reach[root].items():
            summ = summaries.get(fn_qual)
            if summ is None:
                continue
            for g, sites in summ.write_sites.items():
                gvar = graph.globals.get(g)
                if gvar is None or gvar.kind != "mutable":
                    continue
                acc = access.setdefault(g, _GlobalAccess())
                if root not in acc.writer_roots:
                    acc.writer_roots.append(root)
                chain_str = " -> ".join(chain)
                for site in sites:
                    if not site.locked:
                        acc.unlocked_sites.append((root, chain_str, site))
    for g in sorted(access):
        acc = access[g]
        weight = sum(r.weight for r in acc.writer_roots)
        if weight < 2 or not acc.unlocked_sites:
            continue
        gvar = graph.globals[g]
        root_list = "; ".join(r.describe() for r in acc.writer_roots)
        emitted: set[tuple[str, int]] = set()
        for root, chain_str, site in acc.unlocked_sites:
            key = (site.display, site.line)
            if key in emitted:
                continue
            emitted.add(key)
            findings.append(
                Finding(
                    file=site.display,
                    line=site.line,
                    col=0,
                    rule_id=RACE_SHARED_MUT.id,
                    severity=RACE_SHARED_MUT.severity,
                    message=(
                        f"module global `{gvar.name}` ({g}) is written without "
                        f"a lock ({site.detail}) but is reachable-for-write "
                        f"from {weight} concurrent roots: {root_list}; "
                        f"write reached via {chain_str}"
                    ),
                    fix_hint=RACE_SHARED_MUT.fix_hint,
                )
            )

    # --- RACE-FORK-STATE -----------------------------------------------------
    emitted_fork: set[tuple[str, int, str]] = set()
    thread_roots = [r for r in roots if r.kind in ("thread", "unknown")]
    for proc in roots:
        if proc.kind not in ("process", "unknown"):
            continue
        for entry in proc.entries:
            entry_fn = graph.functions.get(entry)
            if entry_fn is None:
                continue
            entry_reach = _reachable(graph, (entry,))
            touched: dict[str, str] = {}  # global -> how
            for fn_qual in entry_reach:
                summ = summaries.get(fn_qual)
                if summ is None:
                    continue
                for g in summ.reads:
                    if graph.globals.get(g) and graph.globals[g].kind == "mutable":
                        touched.setdefault(g, "reads")
                for g in summ.writes:
                    if graph.globals.get(g) and graph.globals[g].kind == "mutable":
                        touched[g] = "writes"
            if not touched:
                continue
            for t in thread_roots:
                if t is proc or set(t.entries) == set(proc.entries):
                    continue
                t_writes: set[str] = set()
                for fn_qual in reach[t]:
                    summ = summaries.get(fn_qual)
                    if summ is not None:
                        t_writes.update(
                            g
                            for g in summ.writes
                            if graph.globals.get(g)
                            and graph.globals[g].kind == "mutable"
                        )
                for g in sorted(t_writes & set(touched)):
                    key = (entry_fn.display, entry_fn.lineno, g)
                    if key in emitted_fork:
                        continue
                    emitted_fork.add(key)
                    gvar = graph.globals[g]
                    findings.append(
                        Finding(
                            file=entry_fn.display,
                            line=entry_fn.lineno,
                            col=0,
                            rule_id=RACE_FORK_STATE.id,
                            severity=RACE_FORK_STATE.severity,
                            message=(
                                f"worker entrypoint `{entry_fn.name}` "
                                f"(submitted at {proc.describe()}) {touched[g]} "
                                f"mutable global `{gvar.name}` ({g}) that "
                                f"thread-side root {t.describe()} writes; the "
                                "fork may snapshot it mid-update and locks do "
                                "not survive the fork"
                            ),
                            fix_hint=RACE_FORK_STATE.fix_hint,
                        )
                    )
    return findings
