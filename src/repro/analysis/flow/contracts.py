"""Declared determinism contracts, checked against inferred effects.

A :class:`Contract` names a set of entrypoints — concurrent worker
functions, fingerprint/canonicalization choke points — and the effect
budget everything transitively reachable from them may spend.  The flow
pass checks each entrypoint's :class:`~repro.analysis.flow.effects
.EffectSummary` against that budget and fires **FLOW-CONTRACT** for every
effect outside it, printing the witness call chain (who introduced the
effect, through which calls it reached the entrypoint).

This is the static counterpart of the recompile-parity tests: parity
catches a broken determinism contract *after* the fact on the workloads it
happens to compile; the contract check proves the absence of whole effect
classes (hidden RNG, wall-clock, unsanctioned global mutation) on *every*
path through the entrypoints, including paths no test exercises.  Neither
subsumes the other — the analysis is alias-unaware and trusts its external
hazard tables, so parity stays the oracle (DESIGN.md §12).

Contracts are declared here, in code, so a new concurrent entrypoint has
to either register a contract or show up as uncovered in review — the
registry is the checklist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.effects import EffectSummary
from repro.analysis.registry import Rule, register

__all__ = ["FLOW_CONTRACT", "Contract", "DEFAULT_CONTRACTS", "check_contracts"]


FLOW_CONTRACT = register(
    Rule(
        id="FLOW-CONTRACT",
        kind="flow",
        severity=Severity.ERROR,
        summary="entrypoint reaches an effect outside its declared "
        "determinism contract",
        fix_hint="remove the effect, route it through a sanctioned channel "
        "(explicit seed, task payload, locked merge), or extend the "
        "contract in analysis/flow/contracts.py with a justification",
    )
)


@dataclass(frozen=True)
class Contract:
    """The effect budget for a family of entrypoints.

    ``allow_effects`` whitelists lattice elements wholesale
    (``"reads-global"`` permits reading any mutable global;
    ``"mutates-param"`` permits in-place argument mutation).
    ``allow_global_writes`` whitelists *specific* globals for writing —
    writes to anything else violate the contract even if locked.
    """

    name: str
    entrypoints: tuple[str, ...]
    description: str
    allow_effects: frozenset[str] = frozenset()
    allow_global_writes: frozenset[str] = frozenset()
    allow_global_reads: frozenset[str] = field(default_factory=frozenset)

    def permits_read(self, g: str) -> bool:
        return "reads-global" in self.allow_effects or g in self.allow_global_reads


#: Sanctioned side channels of the compile pipeline: the process-wide stat
#: totals (merged under ``stats._MERGE_LOCK``) and the per-process probe
#: context cache.  Everything else a worker touches must arrive through
#: its task payload.
_STATS_CHANNEL = frozenset(
    {
        "repro.compiler.stats.COUNTERS",
        "repro.compiler.stats.SEARCH",
    }
)

DEFAULT_CONTRACTS: tuple[Contract, ...] = (
    Contract(
        name="probe-worker",
        entrypoints=("repro.compiler.search.run_probe",),
        description="process-pool probe workers: results must be a pure "
        "function of the task payload; per-process scratch (stat totals, "
        "the context cache) never flows back except as explicit counter "
        "deltas in the result",
        allow_effects=frozenset({"mutates-param", "reads-global"}),
        allow_global_writes=_STATS_CHANNEL
        | frozenset({"repro.compiler.search._CTX_CACHE"}),
    ),
    Contract(
        name="compile-job",
        entrypoints=(
            "repro.pipeline.compile.compile_job",
            "repro.pipeline.compile.compile_job_stats",
        ),
        description="concurrent compile-thread jobs: artifact bytes must "
        "depend only on the job spec; stat totals merge through the locked "
        "job-counter context",
        allow_effects=frozenset({"mutates-param", "reads-global"}),
        allow_global_writes=_STATS_CHANNEL
        | frozenset({"repro.compiler.search._CTX_CACHE"}),
    ),
    Contract(
        name="artifact-store",
        entrypoints=(
            "repro.pipeline.store.ArtifactStore.get",
            "repro.pipeline.store.ArtifactStore.put",
        ),
        description="the shared artifact store: file I/O is its whole job "
        "(atomic temp-write + replace), pid/thread-id observation only "
        "names temp files and never reaches artifact bytes, and counter "
        "mutation happens under the per-store lock — nothing else may "
        "leak in",
        allow_effects=frozenset(
            {"mutates-param", "reads-global", "io", "wall-clock"}
        ),
    ),
    Contract(
        name="serve-worker",
        entrypoints=("repro.serve.service.CompileService._compile_blocking",),
        description="compile-service worker threads: served bytes must be "
        "a pure function of the request's job (read back from the store "
        "file, so byte-identical to offline compile_many); store I/O and "
        "temp-name pid/tid are the store contract's business, stat totals "
        "merge through the locked channels",
        allow_effects=frozenset(
            {"mutates-param", "reads-global", "io", "wall-clock"}
        ),
        allow_global_writes=_STATS_CHANNEL
        | frozenset({"repro.compiler.search._CTX_CACHE"}),
    ),
    Contract(
        name="fingerprint",
        entrypoints=("repro.util.fingerprint.canonical_fingerprint",),
        description="the content-addressing choke point: strictly pure — "
        "no I/O, no clock, no RNG, no global or argument mutation",
        allow_effects=frozenset(),
    ),
)


def check_contracts(
    graph: CallGraph,
    summaries: dict[str, EffectSummary],
    contracts: tuple[Contract, ...] | None = None,
) -> list[Finding]:
    contracts = DEFAULT_CONTRACTS if contracts is None else contracts
    findings: list[Finding] = []
    for contract in contracts:
        for entry in contract.entrypoints:
            fn = graph.functions.get(entry)
            summ = summaries.get(entry)
            if fn is None or summ is None:
                findings.append(
                    Finding(
                        file=f"<contract {contract.name}>",
                        line=0,
                        col=0,
                        rule_id=FLOW_CONTRACT.id,
                        severity=FLOW_CONTRACT.severity,
                        message=(
                            f"declared entrypoint `{entry}` does not exist "
                            "in the call graph — the contract registry is "
                            "stale"
                        ),
                        fix_hint="update the entrypoint list in "
                        "analysis/flow/contracts.py",
                    )
                )
                continue
            violations: list[str] = []
            for hazard in sorted(summ.hazards):
                if hazard in contract.allow_effects:
                    continue
                wit = summ.witness_for(hazard)
                violations.append(
                    f"{hazard}: {wit.chain() if wit else 'no witness'}"
                )
            for g in sorted(summ.writes):
                if g in contract.allow_global_writes:
                    continue
                wit = summ.witness_for(f"write:{g}")
                violations.append(
                    f"mutates-global {g}: {wit.chain() if wit else 'no witness'}"
                )
            for g in sorted(summ.reads):
                if contract.permits_read(g):
                    continue
                wit = summ.witness_for(f"read:{g}")
                violations.append(
                    f"reads-global {g}: {wit.chain() if wit else 'no witness'}"
                )
            if "mutates-param" not in contract.allow_effects:
                for p in sorted(summ.mutated_params):
                    wit = summ.witness_for(f"param:{p}")
                    violations.append(
                        f"mutates-param {p}: "
                        f"{wit.chain() if wit else 'no witness'}"
                    )
            for violation in violations:
                findings.append(
                    Finding(
                        file=fn.display,
                        line=fn.lineno,
                        col=0,
                        rule_id=FLOW_CONTRACT.id,
                        severity=FLOW_CONTRACT.severity,
                        message=(
                            f"contract `{contract.name}` entrypoint "
                            f"`{fn.name}` reaches effect outside its budget "
                            f"— {violation}"
                        ),
                        fix_hint=FLOW_CONTRACT.fix_hint,
                    )
                )
    return findings
