"""Project-wide call graph construction for the flow pass.

Builds, from the AST alone, a call graph over every module of the ``repro``
package: module functions, methods of locally-defined classes, module-level
global variables (classified by mutability), and one resolved
:class:`CallSite` per call expression.  Resolution is *best effort and
explicitly conservative*: a call whose target cannot be proven to be a
project function becomes an **unknown-callee** site that still carries the
externally-resolved dotted name (``time.time``, ``np.argsort`` …) and the
receiver/argument bindings, so the effect pass can interpret known external
hazards and bind parameter mutations without pretending to understand
arbitrary Python.

Scoping is the real thing: parameters and local assignments shadow module
globals, ``global`` declarations un-shadow them, nested functions and
lambdas extend the local scope, and import aliases resolve through
:func:`repro.analysis.rules.collect_imports` exactly as the lint rules do.
Nested function and lambda bodies are attributed to their *enclosing*
top-level function (conservative inlining): their calls and effects count
as the parent's, which over-approximates (a nested helper that is never
called still contributes) but never misses a reachable effect.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.rules import collect_imports, dotted_name

__all__ = [
    "MUTATING_METHODS",
    "Resolution",
    "CallSite",
    "GlobalVar",
    "FunctionNode",
    "ClassInfo",
    "ModuleInfo",
    "CallGraph",
    "build_callgraph",
]


#: Method names that mutate their receiver in place (the standard container
#: protocol).  Used for both parameter-mutation and global-mutation checks.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "__setitem__",
        "__delitem__",
    }
)

#: External constructors whose results are immutable for our purposes.
_IMMUTABLE_CALLS = frozenset(
    {
        "frozenset",
        "tuple",
        "re.compile",
        "property",
        "operator.itemgetter",
        "operator.attrgetter",
        "operator.methodcaller",
        "collections.namedtuple",
        "typing.TypeVar",
    }
)

#: External constructors that build synchronisation primitives.
_LOCK_CALLS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Condition",
        "threading.Event",
    }
)


@dataclass(frozen=True)
class Resolution:
    """Where a bare name (or a receiver / argument) points.

    ``kind`` is one of ``"param"``, ``"local"``, ``"global"`` (a project
    module-level variable — ``ref`` is its qualified name), ``"function"``,
    ``"class"``, ``"module"`` (project entities), or ``"external"``
    (``ref`` is the resolved dotted name outside the project).
    """

    kind: str
    ref: str | None = None


@dataclass
class CallSite:
    """One call expression inside a function body.

    ``callee`` is the qualified name of a *project* function when resolution
    succeeded, else None.  ``external`` carries the import-resolved dotted
    target for non-project calls (``time.time``); ``method`` the bare
    attribute name for unresolved method calls (``append``).  ``recv`` /
    ``args`` / ``keywords`` record receiver and argument bindings for the
    effect pass's parameter-mutation propagation.  ``lock_depth`` counts the
    lexically enclosing ``with <lock>:`` blocks at the site.
    """

    lineno: int
    raw: str
    callee: str | None = None
    external: str | None = None
    method: str | None = None
    recv: Resolution | None = None
    args: tuple[Resolution, ...] = ()
    keywords: tuple[tuple[str, Resolution], ...] = ()
    lock_depth: int = 0
    node: ast.Call | None = None


@dataclass
class GlobalVar:
    """One module-level variable, with a conservative mutability class.

    ``kind`` is ``"mutable"`` (dicts, lists, sets, class instances, unknown
    constructor results), ``"immutable"`` (constants, tuples, frozensets,
    compiled regexes …), ``"thread-local"`` (``threading.local`` instances —
    per-thread by construction, exempt from race checks), or ``"lock"``
    (synchronisation primitives).
    """

    qualname: str
    module: str
    name: str
    lineno: int
    kind: str = "mutable"
    type_qualname: str | None = None


@dataclass
class FunctionNode:
    """One project function or method (nested defs fold into their parent)."""

    qualname: str
    module: str
    name: str
    node: ast.AST
    display: str
    lineno: int
    cls: str | None = None  # owning class qualname for methods
    params: tuple[str, ...] = ()
    calls: list[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    """A locally-defined class: its methods and project-resolved bases."""

    qualname: str
    module: str
    name: str
    lineno: int
    bases: tuple[str, ...] = ()  # qualified names (project or external)
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qualname


@dataclass
class ModuleInfo:
    """Everything the flow pass knows about one source module."""

    name: str
    path: Path
    display: str
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)  # name -> qualname
    classes: dict[str, str] = field(default_factory=dict)  # name -> qualname
    globals: dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass
class CallGraph:
    """The linked whole-program index."""

    package: str
    root: Path
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionNode] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    skipped: list[str] = field(default_factory=list)  # unparseable modules

    # ---------------------------------------------------------------- lookup

    def is_project(self, dotted: str) -> bool:
        return dotted == self.package or dotted.startswith(self.package + ".")

    def lookup(self, dotted: str) -> Resolution | None:
        """Resolve a fully-qualified dotted name to a project entity."""
        if not self.is_project(dotted):
            return None
        if dotted in self.functions:
            return Resolution("function", dotted)
        if dotted in self.classes:
            return Resolution("class", dotted)
        if dotted in self.globals:
            return Resolution("global", dotted)
        if dotted in self.modules:
            return Resolution("module", dotted)
        # attribute of a module we know?  e.g. pkg.mod.CLASS.method
        head, _, attr = dotted.rpartition(".")
        if head and head in self.classes and attr:
            meth = self.method_of(head, attr)
            if meth is not None:
                return Resolution("function", meth)
        return None

    def method_of(self, cls_qualname: str, method: str) -> str | None:
        """Resolve *method* in the class or its project-resolved bases."""
        seen = set()
        queue = [cls_qualname]
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            info = self.classes.get(cur)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.bases)
        return None

    def constructor_of(self, cls_qualname: str) -> str | None:
        return self.method_of(cls_qualname, "__init__")

    def is_subclass_of(self, cls_qualname: str, external_base: str) -> bool:
        """Whether the class transitively names *external_base* as a base."""
        seen = set()
        queue = [cls_qualname]
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            if cur == external_base:
                return True
            info = self.classes.get(cur)
            if info is not None:
                queue.extend(info.bases)
        return False


# ------------------------------------------------------------- module indexing


def _module_name(path: Path, base: Path) -> str:
    rel = path.relative_to(base).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _iter_top_level(body):
    """Module-level statements, descending one level into try/if blocks
    (guarded imports and conditional constants are common)."""
    for stmt in body:
        if isinstance(stmt, (ast.If, ast.Try)):
            for inner in ast.iter_child_nodes(stmt):
                if isinstance(inner, ast.stmt):
                    yield inner
        else:
            yield stmt


def _index_module(graph: CallGraph, info: ModuleInfo) -> None:
    for stmt in _iter_top_level(info.tree.body):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{info.name}.{stmt.name}"
            info.functions[stmt.name] = qual
            graph.functions[qual] = FunctionNode(
                qualname=qual,
                module=info.name,
                name=stmt.name,
                node=stmt,
                display=info.display,
                lineno=stmt.lineno,
                params=_param_names(stmt),
            )
        elif isinstance(stmt, ast.ClassDef):
            cqual = f"{info.name}.{stmt.name}"
            info.classes[stmt.name] = cqual
            cinfo = ClassInfo(
                qualname=cqual,
                module=info.name,
                name=stmt.name,
                lineno=stmt.lineno,
            )
            graph.classes[cqual] = cinfo
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    mqual = f"{cqual}.{sub.name}"
                    cinfo.methods[sub.name] = mqual
                    graph.functions[mqual] = FunctionNode(
                        qualname=mqual,
                        module=info.name,
                        name=sub.name,
                        node=sub,
                        display=info.display,
                        lineno=sub.lineno,
                        cls=cqual,
                        params=_param_names(sub),
                    )
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    name = target.id
                    qual = f"{info.name}.{name}"
                    info.globals[name] = qual
                    graph.globals[qual] = GlobalVar(
                        qualname=qual,
                        module=info.name,
                        name=name,
                        lineno=stmt.lineno,
                    )
                    # classification happens in a second phase, once every
                    # module's classes and imports are indexed
                    graph.globals[qual].type_qualname = None
                    _PENDING_VALUES[qual] = (info, stmt.value)


#: global qualname -> (module, value expr), consumed by the classify phase.
_PENDING_VALUES: dict[str, tuple[ModuleInfo, ast.AST | None]] = {}


def _param_names(fn) -> tuple[str, ...]:
    a = fn.args
    names = [p.arg for p in a.posonlyargs] + [p.arg for p in a.args]
    if a.vararg:
        names.append(a.vararg.arg)
    names.extend(p.arg for p in a.kwonlyargs)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return tuple(names)


def _resolve_dotted(graph: CallGraph, info: ModuleInfo, dotted: str) -> str:
    """Expand the leading alias of *dotted* through the module's imports."""
    root, _, rest = dotted.partition(".")
    origin = info.imports.get(root)
    if origin is None:
        # a bare project-module sibling reference (rare) or a builtin
        return dotted
    return f"{origin}.{rest}" if rest else origin


def _classify_global(graph: CallGraph, gvar: GlobalVar) -> None:
    info, value = _PENDING_VALUES.get(gvar.qualname, (None, None))
    if value is None:
        gvar.kind = "immutable"  # bare annotation, no value
        return
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        gvar.kind = "mutable"
        return
    if isinstance(value, ast.Call):
        target = dotted_name(value.func)
        if target is None:
            gvar.kind = "mutable"
            return
        resolved = _resolve_dotted(graph, info, target)
        if resolved in _IMMUTABLE_CALLS:
            gvar.kind = "immutable"
        elif resolved in _LOCK_CALLS:
            gvar.kind = "lock"
        elif resolved == "threading.local" or (
            graph.is_project(resolved)
            and resolved in graph.classes
            and graph.is_subclass_of(resolved, "threading.local")
        ):
            gvar.kind = "thread-local"
        elif resolved in ("set", "dict", "list", "collections.deque",
                          "collections.defaultdict", "collections.OrderedDict",
                          "collections.Counter"):
            gvar.kind = "mutable"
        elif graph.is_project(resolved) and resolved in graph.classes:
            gvar.kind = "mutable"
            gvar.type_qualname = resolved
        else:
            gvar.kind = "mutable"  # unknown constructor: assume the worst
        return
    # constants, tuples of constants, names, attributes, f-strings, lambdas,
    # arithmetic over constants: rebinding would need a `global` statement,
    # which is detected separately, so treat the value itself as immutable
    gvar.kind = "immutable"


# ------------------------------------------------------------- function linking


class _FunctionLinker(ast.NodeVisitor):
    """Walks one top-level function body, resolving names and recording
    every call site (nested defs and lambdas fold into this function)."""

    def __init__(self, graph: CallGraph, info: ModuleInfo, fn: FunctionNode):
        self.graph = graph
        self.info = info
        self.fn = fn
        self.global_decls: set[str] = set()
        self.locals: set[str] = set()
        self.var_types: dict[str, str] = {}  # local/param name -> class qualname
        self.scope_stack: list[set[str]] = []  # nested fn/lambda params
        self.lock_depth = 0
        if fn.cls is not None and fn.params:
            # `self` / `cls` carry the enclosing class
            self.var_types[fn.params[0]] = fn.cls

    # -- scope bookkeeping ----------------------------------------------------

    @staticmethod
    def _binding_names(target: ast.AST):
        """Names a store target *binds* (``x = ...``, ``x, y = ...``).
        ``obj.attr = ...`` and ``d[k] = ...`` mutate an existing object and
        bind nothing — treating their roots as locals would shadow the
        very global writes this analysis exists to see."""
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from _FunctionLinker._binding_names(elt)
        elif isinstance(target, ast.Starred):
            yield from _FunctionLinker._binding_names(target.value)

    def _collect_locals(self, node) -> None:
        """Pre-scan for assigned names (they shadow globals everywhere in
        the function, per Python scoping)."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                self.global_decls.update(sub.names)
            elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for t in targets:
                    self.locals.update(self._binding_names(t))
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                self.locals.update(self._binding_names(sub.target))
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if item.optional_vars is not None:
                        self.locals.update(
                            self._binding_names(item.optional_vars)
                        )
            elif isinstance(sub, ast.comprehension):
                self.locals.update(self._binding_names(sub.target))
            elif isinstance(sub, ast.ExceptHandler) and sub.name:
                self.locals.add(sub.name)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.locals.add(sub.name)
        self.locals -= self.global_decls

    def resolve_name(self, name: str) -> Resolution:
        """Scope-ordered resolution of a bare name at a use site."""
        for scope in reversed(self.scope_stack):
            if name in scope:
                return Resolution("local")
        if name in self.fn.params:
            return Resolution("param", name)
        if name in self.locals and name not in self.global_decls:
            return Resolution("local")
        if name in self.info.functions:
            return Resolution("function", self.info.functions[name])
        if name in self.info.classes:
            return Resolution("class", self.info.classes[name])
        if name in self.info.globals:
            return Resolution("global", self.info.globals[name])
        origin = self.info.imports.get(name)
        if origin is not None:
            hit = self.graph.lookup(origin)
            if hit is not None:
                return hit
            return Resolution("external", origin)
        return Resolution("external", name)  # builtin or truly unknown

    def resolve_expr(self, node: ast.AST) -> Resolution:
        """Resolution of an arbitrary expression used as receiver/argument."""
        if isinstance(node, ast.Name):
            res = self.resolve_name(node.id)
            if res.kind == "param":
                return res
            if res.kind == "local":
                cls = self.var_types.get(node.id)
                return Resolution("local", cls)
            return res
        dotted = dotted_name(node)
        if dotted is not None:
            resolved = _resolve_dotted(self.graph, self.info, dotted)
            hit = self.graph.lookup(resolved)
            if hit is not None:
                return hit
            root = dotted.partition(".")[0]
            root_res = self.resolve_name(root)
            if root_res.kind in ("param", "local"):
                return root_res
            return Resolution("external", resolved)
        if isinstance(node, ast.Call):
            ctor = self.class_of_call(node)
            if ctor is not None:
                return Resolution("local", ctor)
        return Resolution("local")

    def class_of_call(self, node: ast.Call) -> str | None:
        """The project class a call constructs, if any."""
        target = dotted_name(node.func)
        if target is None:
            return None
        res = self.resolve_name(target.partition(".")[0])
        if res.kind == "class" and "." not in target:
            return res.ref
        resolved = _resolve_dotted(self.graph, self.info, target)
        if self.graph.is_project(resolved) and resolved in self.graph.classes:
            return resolved
        return None

    # -- traversal ------------------------------------------------------------

    def run(self) -> None:
        self._collect_locals(self.fn.node)
        for stmt in self.fn.node.body:
            self.visit(stmt)

    def visit_FunctionDef(self, node) -> None:
        self.scope_stack.append(set(_param_names(node)) | {node.name})
        self.generic_visit(node)
        self.scope_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node) -> None:
        self.scope_stack.append(set(_param_names(node)))
        self.generic_visit(node)
        self.scope_stack.pop()

    def _is_lock_item(self, expr: ast.AST) -> bool:
        res = self.resolve_expr(expr)
        if res.kind == "global" and res.ref in self.graph.globals:
            if self.graph.globals[res.ref].kind == "lock":
                return True
        dotted = dotted_name(expr)
        return dotted is not None and "lock" in dotted.rsplit(".", 1)[-1].lower()

    def visit_With(self, node) -> None:
        locked = sum(1 for item in node.items if self._is_lock_item(item.context_expr))
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self._note_with_type(item)
        self.lock_depth += locked
        for stmt in node.body:
            self.visit(stmt)
        self.lock_depth -= locked

    visit_AsyncWith = visit_With

    def _note_with_type(self, item: ast.withitem) -> None:
        if isinstance(item.optional_vars, ast.Name) and isinstance(
            item.context_expr, ast.Call
        ):
            cls = self.class_of_call(item.context_expr)
            if cls is not None:
                self.var_types[item.optional_vars.id] = cls

    def visit_Assign(self, node) -> None:
        if isinstance(node.value, ast.Call):
            cls = self.class_of_call(node.value)
            if cls is not None:
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        self.var_types[t.id] = cls
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.fn.calls.append(self._resolve_call(node))
        self.generic_visit(node)

    def _resolve_call(self, node: ast.Call) -> CallSite:
        raw = dotted_name(node.func) or "<expr>"
        args = tuple(self.resolve_expr(a) for a in node.args)
        keywords = tuple(
            (kw.arg, self.resolve_expr(kw.value))
            for kw in node.keywords
            if kw.arg is not None
        )
        site = CallSite(
            lineno=node.lineno,
            raw=raw,
            args=args,
            keywords=keywords,
            lock_depth=self.lock_depth,
            node=node,
        )
        func = node.func
        if isinstance(func, ast.Name):
            res = self.resolve_name(func.id)
            if res.kind == "function":
                site.callee = res.ref
            elif res.kind == "class":
                ctor = self.graph.constructor_of(res.ref)
                site.callee = ctor
                site.external = None if ctor else res.ref
            elif res.kind == "external":
                site.external = res.ref
            return site
        if isinstance(func, ast.Attribute):
            method = func.attr
            site.method = method
            dotted = dotted_name(func)
            if dotted is not None:
                resolved = _resolve_dotted(self.graph, self.info, dotted)
                hit = self.graph.lookup(resolved)
                if hit is not None and hit.kind == "function":
                    site.callee = hit.ref
                    return site
                if hit is not None and hit.kind == "class":
                    ctor = self.graph.constructor_of(hit.ref)
                    site.callee = ctor
                    return site
            recv = self.resolve_expr(func.value)
            site.recv = recv
            cls = None
            if recv.kind == "global" and recv.ref in self.graph.globals:
                cls = self.graph.globals[recv.ref].type_qualname
            elif recv.kind in ("param", "local"):
                if recv.kind == "param":
                    cls = self.var_types.get(recv.ref)
                else:
                    cls = recv.ref  # resolve_expr stores the class here
            elif recv.kind == "class":
                cls = recv.ref
            if cls is not None:
                target = self.graph.method_of(cls, method)
                if target is not None:
                    site.callee = target
                    return site
            if recv.kind == "external":
                site.external = f"{recv.ref}.{method}"
            return site
        # call of an arbitrary expression: unknown callee
        return site


# ------------------------------------------------------------------ the builder


def default_root() -> Path:
    from repro.analysis.lint import default_root as lint_root

    return lint_root()


def build_callgraph(root: Path | None = None) -> CallGraph:
    """Parse and link every module under *root* (default: the ``repro``
    package).  Unparseable modules are recorded in ``graph.skipped`` — the
    lint pass owns the parse-error finding."""
    root = root or default_root()
    base = root.parent
    graph = CallGraph(package=root.name, root=root)
    _PENDING_VALUES.clear()
    paths = [root] if root.is_file() else sorted(root.rglob("*.py"))
    for path in paths:
        display = str(path.relative_to(base))
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError):
            graph.skipped.append(display)
            continue
        name = _module_name(path, base)
        info = ModuleInfo(
            name=name,
            path=path,
            display=display,
            source=source,
            tree=tree,
            imports=collect_imports(tree),
        )
        graph.modules[name] = info
    for name in sorted(graph.modules):
        _index_module(graph, graph.modules[name])
    # resolve class bases now that every module is indexed
    for cqual in sorted(graph.classes):
        cinfo = graph.classes[cqual]
        info = graph.modules[cinfo.module]
        stmt = _find_classdef(info, cinfo.name)
        if stmt is not None:
            bases = []
            for b in stmt.bases:
                dotted = dotted_name(b)
                if dotted is None:
                    continue
                resolved = _resolve_dotted(graph, info, dotted)
                if not graph.is_project(resolved) and dotted in info.classes:
                    resolved = info.classes[dotted]
                bases.append(resolved)
            cinfo.bases = tuple(bases)
    for qual in sorted(graph.globals):
        _classify_global(graph, graph.globals[qual])
    _PENDING_VALUES.clear()
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        _FunctionLinker(graph, graph.modules[fn.module], fn).run()
    return graph


def _find_classdef(info: ModuleInfo, name: str) -> ast.ClassDef | None:
    for stmt in _iter_top_level(info.tree.body):
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None
