"""Reporters and the CI exit-code contract.

Both passes end here: findings go out either as human-readable text (one
block per finding, fix hint indented under it) or as a JSON document stable
enough to diff in CI.  Exit codes are the contract the workflow relies on:

* ``0`` — clean (warnings allowed unless ``--strict``);
* ``1`` — findings that gate the build (any ERROR; WARNINGs too under
  ``--strict``);
* ``2`` — the analysis itself could not run (bad store root, bad path).
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.findings import Finding, Severity

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_FATAL",
    "exit_code",
    "render_text",
    "render_json",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_FATAL = 2


def exit_code(findings: Sequence[Finding], *, strict: bool = False) -> int:
    """Map findings onto the CI contract."""
    if any(f.severity is Severity.ERROR for f in findings):
        return EXIT_FINDINGS
    if strict and findings:
        return EXIT_FINDINGS
    return EXIT_CLEAN


def _counts(findings: Sequence[Finding]) -> dict[str, int]:
    out = {"error": 0, "warning": 0}
    for f in findings:
        out[f.severity.value] += 1
    return out


def render_text(
    findings: Sequence[Finding], *, title: str, extra: Sequence[str] = ()
) -> str:
    """Human report: canonical finding order, summary line last."""
    lines = [f.render() for f in sorted(findings)]
    lines.extend(extra)
    c = _counts(findings)
    lines.append(
        f"{title}: {c['error']} error(s), {c['warning']} warning(s)"
        if findings
        else f"{title}: clean"
    )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], *, title: str, payload: dict | None = None
) -> str:
    """JSON report: sorted keys, canonical finding order, diff-stable."""
    doc = {
        "title": title,
        "counts": _counts(findings),
        "findings": [f.as_record() for f in sorted(findings)],
    }
    if payload:
        doc.update(payload)
    return json.dumps(doc, indent=2, sort_keys=True)
