"""The shared rule registry: one catalogue for both analysis passes.

Every diagnostic either pass can emit is declared here as a :class:`Rule`
with a stable id, a severity, and a fix hint.  The determinism lint
(:mod:`repro.analysis.lint`) attaches an AST checker to its rules; the
artifact auditor (:mod:`repro.analysis.audit`) emits its invariant
violations through the same registry, so suppression validation, reports,
and the CI exit-code contract share one vocabulary.

Rule id families:

* ``DET-*`` — source-level determinism hazards (lint pass);
* ``SUP-*`` — suppression hygiene (lint pass);
* ``ART-*`` — artifact encoding/addressing invariants (audit pass);
* ``MAP-*`` — mapping legality invariants, §VI-B included (audit pass);
* ``FOLD-*`` — PageMaster foldability invariants (audit pass);
* ``STORE-*`` — store hygiene (audit pass);
* ``RACE-*`` — interprocedural data-race hazards (flow pass);
* ``FLOW-*`` — determinism-contract violations (flow pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.findings import Severity

__all__ = [
    "Rule",
    "register",
    "get_rule",
    "all_rules",
    "lint_rules",
    "audit_rules",
    "flow_rules",
    "flow_rule_ids",
]


@dataclass(frozen=True)
class Rule:
    """One registered diagnostic.

    ``checker`` is set for lint rules only: a callable taking a
    :class:`repro.analysis.lint.ModuleContext` and yielding findings.
    Audit invariants have no checker here — the auditor drives them in a
    fixed order — but registering them reserves the id, severity and hint.
    """

    id: str
    kind: str  # "lint" | "audit" | "flow"
    severity: Severity
    summary: str
    fix_hint: str
    checker: Callable | None = field(default=None, compare=False)


_REGISTRY: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    if rule.kind not in ("lint", "audit", "flow"):
        raise ValueError(f"rule {rule.id}: unknown kind {rule.kind!r}")
    _REGISTRY[rule.id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule id {rule_id!r} (known: {', '.join(sorted(_REGISTRY))})"
        ) from None


def known_rule_ids() -> frozenset[str]:
    _ensure_loaded()
    return frozenset(_REGISTRY)


def all_rules() -> list[Rule]:
    """Every registered rule, in id order (deterministic catalogue)."""
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def lint_rules() -> list[Rule]:
    return [r for r in all_rules() if r.kind == "lint"]


def audit_rules() -> list[Rule]:
    return [r for r in all_rules() if r.kind == "audit"]


def flow_rules() -> list[Rule]:
    return [r for r in all_rules() if r.kind == "flow"]


def flow_rule_ids() -> frozenset[str]:
    return frozenset(r.id for r in flow_rules())


def _ensure_loaded() -> None:
    """Import the modules that register rules (idempotent)."""
    from repro.analysis import audit, lint, rules  # noqa: F401
    from repro.analysis.flow import concurrency, contracts  # noqa: F401
