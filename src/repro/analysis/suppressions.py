"""Suppression comments for the determinism lint.

Syntax::

    hazardous_call()  # repro: allow[RULE-ID] why this is safe here
    # repro: allow[RULE-A, RULE-B] a standalone comment covers the next line

A suppression names the rule ids it silences and *must* carry a reason —
the reason is the review artifact; a bare ``allow`` is itself a finding
(``SUP-REASON``).  A suppression that silences nothing is reported too
(``SUP-UNUSED``), so stale annotations cannot accumulate as the code under
them is fixed.  Unknown rule ids are reported as ``SUP-UNKNOWN`` rather
than silently ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "parse_suppressions"]

_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass
class Suppression:
    """One ``# repro: allow[...]`` comment, bound to the line it covers."""

    comment_line: int  # where the comment physically lives
    target_line: int  # the line whose findings it silences
    rule_ids: tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract every suppression in *source*, in line order.

    A comment on a code line covers that line; a comment-only line covers
    the next line (so multi-clause statements can be annotated above).
    Only real COMMENT tokens count — ``allow[...]`` examples inside string
    literals and docstrings are never suppressions.
    """
    lines = source.splitlines()
    out: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _PATTERN.search(tok.string)
        if m is None:
            continue
        lineno = tok.start[0]
        ids = tuple(
            part.strip() for part in m.group("ids").split(",") if part.strip()
        )
        line_text = lines[lineno - 1] if lineno <= len(lines) else ""
        standalone = line_text.strip().startswith("#")
        out.append(
            Suppression(
                comment_line=lineno,
                target_line=lineno + 1 if standalone else lineno,
                rule_ids=ids,
                reason=m.group("reason").strip(),
            )
        )
    return out
