"""Classic Python determinism pitfalls: mutable defaults, float equality.

A mutable default argument is shared across calls, so results depend on
call history; float ``==`` on computed values (schedule times, energies)
depends on evaluation order and platform rounding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter"}
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


def _check_mutable_default(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for d in defaults:
            if _is_mutable_default(d):
                yield ctx.finding(
                    MUT_DEFAULT,
                    d,
                    "mutable default argument is shared across calls",
                )


def _check_float_eq(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(
            isinstance(o, ast.Constant) and isinstance(o.value, float)
            for o in operands
        ):
            yield ctx.finding(
                FLOAT_EQ,
                node,
                "exact float equality depends on evaluation order and "
                "platform rounding",
            )


MUT_DEFAULT = register(
    Rule(
        id="DET-MUT-DEFAULT",
        kind="lint",
        severity=Severity.ERROR,
        summary="mutable default argument",
        fix_hint="default to None and construct the container inside the "
        "function (or use dataclasses.field(default_factory=...))",
        checker=_check_mutable_default,
    )
)

FLOAT_EQ = register(
    Rule(
        id="DET-FLOAT-EQ",
        kind="lint",
        severity=Severity.ERROR,
        summary="float == / != comparison",
        fix_hint="compare against a tolerance, use exact types "
        "(int/Fraction) for schedule arithmetic, or suppress with a reason "
        "when the float is integer-valued by construction",
        checker=_check_float_eq,
    )
)
