"""The determinism lint's rule modules and shared AST helpers.

Each submodule registers its rules with :mod:`repro.analysis.registry` at
import time; importing this package loads the whole catalogue.  The helpers
here are the pieces every rule needs: import-alias resolution (so
``np.random.rand`` and ``numpy.random.rand`` match the same trigger) and
dotted-name rendering of attribute chains.
"""

from __future__ import annotations

import ast

__all__ = ["collect_imports", "dotted_name", "resolve_call_target"]


def collect_imports(tree: ast.Module) -> dict[str, str]:
    """Map every imported alias in *tree* to its fully dotted origin.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from datetime import datetime as dt`` -> ``{"dt": "datetime.datetime"}``.
    Walks the whole module so function-local imports resolve too.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call_target(func: ast.AST, imports: dict[str, str]) -> str | None:
    """Fully qualified dotted target of a call through the file's import
    aliases: with ``import numpy as np``, ``np.random.rand`` resolves to
    ``numpy.random.rand``; an unaliased root passes through unchanged."""
    dotted = dotted_name(func)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    origin = imports.get(root)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


# Load every rule module so the registry is complete after one import.
from repro.analysis.rules import environment, ordering, pitfalls, randomness  # noqa: E402,F401
