"""Process-environment hazards: wall clocks, pids, entropy.

Wall-clock timestamps, process ids and OS entropy change on every run; if
any of them reaches artifact bytes, the content-address guarantee breaks in
the worst possible way — byte-parity failures that only reproduce
sometimes.  Measurement clocks (``perf_counter``, ``monotonic``,
``process_time``) are deliberately *not* flagged: timing how long a compile
took is fine, stamping results with *when* it ran is not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules import resolve_call_target

#: Fully qualified call targets whose value depends on the environment.
_TRIGGERS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.asctime",
        "time.strftime",
        "os.getpid",
        "os.getppid",
        "os.urandom",
        "os.times",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_SECRETS_PREFIX = "secrets."


def _check_wall_clock(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = resolve_call_target(node.func, ctx.imports)
        if target is None:
            continue
        if target in _TRIGGERS or target.startswith(_SECRETS_PREFIX):
            yield ctx.finding(
                WALL_CLOCK,
                node,
                f"{target}() is environment-dependent (wall clock / pid / "
                "entropy)",
            )


WALL_CLOCK = register(
    Rule(
        id="DET-WALL-CLOCK",
        kind="lint",
        severity=Severity.ERROR,
        summary="wall-clock / pid / entropy value on a reproducible path",
        fix_hint="thread the value in as an explicit parameter, or keep it "
        "strictly out of artifact bytes and suppress with a reason",
        checker=_check_wall_clock,
    )
)
