"""Iteration-order hazards: unordered sets and directory scans.

These are the rules behind the repo's byte-identical-artifact guarantee:
anything that iterates a hash-ordered container (or a filesystem directory,
whose order is filesystem-dependent) on a path that can influence
placement, routing, fingerprints, or reports must impose a canonical order
first.  Dicts are *not* flagged — CPython dicts are insertion-ordered, and
the mapper's determinism story already rests on deterministic insertion.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules import resolve_call_target

#: Builtins whose result does not depend on the order their (sole) iterable
#: argument is consumed in, so iterating a set directly inside them is safe.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sum", "len", "min", "max", "any", "all", "set", "frozenset", "sorted"}
)

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_TRANSPARENT_WRAPPERS = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Directory-scan callables whose result order is filesystem-dependent.
_SCAN_FUNCTIONS = frozenset({"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"})
_SCAN_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _annotation_is_set(node: ast.AST | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):  # typing.Set[...]
        return node.attr in ("Set", "FrozenSet", "AbstractSet")
    return False


class _SetTypes:
    """Light local inference: which names/attributes hold sets.

    Tracks, per enclosing function (or the module body), names assigned or
    annotated as sets, and per class, ``self.<attr>`` fields annotated as
    sets in the class body (dataclass fields included).  Deliberately
    flow-insensitive: once a name has held a set anywhere in the scope it
    stays suspect — reordering hazards do not care which branch assigned it.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.scope_sets: dict[ast.AST, set[str]] = {}
        self.class_set_attrs: dict[ast.AST, set[str]] = {}
        self.scope_of: dict[ast.AST, ast.AST] = {}
        self.class_of: dict[ast.AST, ast.AST | None] = {}
        self._index(tree)

    def _index(self, tree: ast.Module) -> None:
        scopes = [tree]
        classes: list[ast.AST | None] = [None]

        def visit(node: ast.AST) -> None:
            self.scope_of[node] = scopes[-1]
            self.class_of[node] = classes[-1]
            is_scope = isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            is_class = isinstance(node, ast.ClassDef)
            if isinstance(node, ast.AnnAssign) and _annotation_is_set(node.annotation):
                if isinstance(node.target, ast.Name):
                    if isinstance(scopes[-1], ast.ClassDef):
                        # a class-body AnnAssign declares a set-typed
                        # attribute (dataclass fields included)
                        self.class_set_attrs.setdefault(scopes[-1], set()).add(
                            node.target.id
                        )
                    else:
                        self.scope_sets.setdefault(scopes[-1], set()).add(
                            node.target.id
                        )
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = node.value
                if value is not None and self._expr_is_set(value, scopes[-1], classes[-1]):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for t in targets:
                        if isinstance(t, ast.Name):
                            self.scope_sets.setdefault(scopes[-1], set()).add(t.id)
            if is_scope:
                scopes.append(node)
            if is_class:
                scopes.append(node)
                classes.append(node)
            for child in ast.iter_child_nodes(node):
                visit(child)
            if is_scope:
                scopes.pop()
            if is_class:
                scopes.pop()
                classes.pop()

        visit(tree)

    def _expr_is_set(
        self, node: ast.AST, scope: ast.AST, cls: ast.AST | None
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Name) and f.id in _SET_CONSTRUCTORS:
                return True
            if isinstance(f, ast.Attribute) and f.attr in _SET_METHODS:
                return self._expr_is_set(f.value, scope, cls)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._expr_is_set(node.left, scope, cls) or self._expr_is_set(
                node.right, scope, cls
            )
        if isinstance(node, ast.Name):
            return node.id in self.scope_sets.get(scope, ())
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and cls is not None
        ):
            return node.attr in self.class_set_attrs.get(cls, ())
        return False

    def is_set(self, node: ast.AST) -> bool:
        scope = self.scope_of.get(node)
        cls = self.class_of.get(node)
        # wrappers that preserve the underlying (unordered) order
        if isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Name)
                and f.id in _TRANSPARENT_WRAPPERS
                and node.args
            ):
                return self.is_set(node.args[0])
        return self._expr_is_set(node, scope, cls)


def _order_insensitive_context(node: ast.AST, parents: dict) -> bool:
    """Is this iteration's result consumed order-insensitively?

    True for set/dict-free aggregations (``sum(... for x in s)``) and for
    comprehensions that rebuild a set.  A generator or list comprehension
    passed as the sole iterable of :data:`_ORDER_INSENSITIVE_CONSUMERS` is
    safe; so is a ``SetComp`` (set in, set out).
    """
    comp = node
    while comp is not None and not isinstance(
        comp, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp, ast.For)
    ):
        comp = parents.get(comp)
    if comp is None or isinstance(comp, ast.For):
        return False
    if isinstance(comp, ast.SetComp):
        return True
    if isinstance(comp, ast.DictComp):
        return False  # dict insertion order leaks the set order downstream
    call = parents.get(comp)
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id in _ORDER_INSENSITIVE_CONSUMERS
        and len(call.args) == 1
        and call.args[0] is comp
    )


def _check_set_iteration(ctx) -> Iterator[Finding]:
    types = _SetTypes(ctx.tree)
    for node in ast.walk(ctx.tree):
        iters: list[ast.AST] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if not types.is_set(it):
                continue
            if _order_insensitive_context(it, ctx.parents):
                continue
            yield ctx.finding(
                SET_ITER,
                it,
                "iteration over a set has hash-dependent order",
            )


def _check_dir_scan(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = resolve_call_target(node.func, ctx.imports)
        is_scan = target in _SCAN_FUNCTIONS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SCAN_METHODS
        )
        if not is_scan:
            continue
        parent = ctx.parents.get(node)
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
            and parent.args
            and parent.args[0] is node
        ):
            continue
        yield ctx.finding(
            DIR_SCAN,
            node,
            f"directory scan {target or node.func.attr!r} yields "
            "filesystem-dependent order",
        )


SET_ITER = register(
    Rule(
        id="DET-SET-ITER",
        kind="lint",
        severity=Severity.ERROR,
        summary="iteration over a set (hash order) on an order-sensitive path",
        fix_hint="wrap the iterable in sorted(..., key=...) with a canonical "
        "key, or suppress with a reason if the consumer is order-insensitive",
        checker=_check_set_iteration,
    )
)

DIR_SCAN = register(
    Rule(
        id="DET-DIR-SCAN",
        kind="lint",
        severity=Severity.ERROR,
        summary="unsorted directory scan (os.listdir/glob/iterdir)",
        fix_hint="wrap the scan in sorted(...) — directory order is "
        "filesystem- and platform-dependent",
        checker=_check_dir_scan,
    )
)
