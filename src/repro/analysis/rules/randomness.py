"""Randomness and identity-order hazards.

All stochastic pieces of the library are required to build their generators
through :mod:`repro.util.rng` with an explicit seed; any use of the global
stdlib RNG, numpy's legacy global RNG, or an entropy-seeded generator is a
reproducibility bug by construction.  ``id()`` and ``hash()`` are flagged
because both leak process-lifetime state (allocation addresses, the
per-process string-hash salt) into anything that sorts or keys by them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules import resolve_call_target

#: numpy.random attributes that are part of the seeded Generator API and
#: therefore fine to reference.
_NUMPY_SEEDED_API = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Constructors from the seeded API that fall back to OS entropy when no
#: seed is passed — fine to *reference*, but a call must carry one.
_NUMPY_SEED_REQUIRED = frozenset(
    {"PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "SeedSequence"}
)

#: Files allowed to construct generators: the one seeding choke point.
EXEMPT_PATH_SUFFIXES = ("repro/util/rng.py",)


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _has_explicit_seed(node: ast.Call) -> bool:
    """True when the call passes a non-None seed, positionally or as the
    ``seed=``/``entropy=`` keyword (``SeedSequence`` spells it entropy)."""
    if node.args and not _is_none(node.args[0]):
        return True
    for kw in node.keywords:
        if kw.arg in ("seed", "entropy") and not _is_none(kw.value):
            return True
    return False


def _check_unseeded_rng(ctx) -> Iterator[Finding]:
    if str(ctx.path).replace("\\", "/").endswith(EXEMPT_PATH_SUFFIXES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = resolve_call_target(node.func, ctx.imports)
        if target is None:
            continue
        root, _, rest = target.partition(".")
        if root == "random":
            # stdlib: random.Random(seed) is explicit; everything else on
            # the module (including bare Random()) rides hidden state.
            if rest == "Random" and node.args:
                continue
            yield ctx.finding(
                RNG_SEED,
                node,
                f"call to stdlib RNG {target!r} uses global/hidden state",
            )
        elif target.startswith("numpy.random."):
            attr = target.rsplit(".", 1)[1]
            if attr == "default_rng" or attr in _NUMPY_SEED_REQUIRED:
                if not _has_explicit_seed(node):
                    yield ctx.finding(
                        RNG_SEED,
                        node,
                        f"numpy.random.{attr}() without a seed draws OS "
                        "entropy",
                    )
            elif attr not in _NUMPY_SEEDED_API:
                yield ctx.finding(
                    RNG_SEED,
                    node,
                    f"legacy numpy global RNG call {target!r}",
                )


def _check_identity_order(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            yield ctx.finding(
                ID_ORDER,
                node,
                "id() exposes allocation addresses; any ordering or keying "
                "derived from it varies run to run",
            )


def _check_hash_order(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and len(node.args) == 1
        ):
            yield ctx.finding(
                HASH_ORDER,
                node,
                "hash() of str/bytes is salted per process "
                "(PYTHONHASHSEED); values must not shape artifacts",
            )


RNG_SEED = register(
    Rule(
        id="DET-RNG-SEED",
        kind="lint",
        severity=Severity.ERROR,
        summary="unseeded or global-state RNG outside util/rng.py",
        fix_hint="take an explicit seed and build the generator with "
        "repro.util.rng.make_rng / derive_seed",
        checker=_check_unseeded_rng,
    )
)

ID_ORDER = register(
    Rule(
        id="DET-ID-ORDER",
        kind="lint",
        severity=Severity.ERROR,
        summary="id()-derived value (identity order is allocation order)",
        fix_hint="key by a stable field (op id, coordinate, fingerprint) "
        "instead of object identity",
        checker=_check_identity_order,
    )
)

HASH_ORDER = register(
    Rule(
        id="DET-HASH-ORDER",
        kind="lint",
        severity=Severity.ERROR,
        summary="builtin hash() (process-salted for str/bytes)",
        fix_hint="use repro.util.fingerprint.canonical_fingerprint or a "
        "stable explicit key",
        checker=_check_hash_order,
    )
)
