"""Per-fingerprint singleflight: coalesce identical in-flight compiles.

Every request resolves to a content address (the ArtifactKey digest)
before any work is scheduled, so "identical request" is exact, not
heuristic: same DFG, same architecture, same mapper tuning.  The first
request for a digest becomes the **leader** and schedules the compile;
every concurrent duplicate becomes a **waiter** on the same flight and
receives the identical bytes.  N identical concurrent requests therefore
trigger exactly one mapper invocation — the serving-layer analogue of the
store's content-addressed dedup, extended to work still in flight.

Cancellation is refcounted: detaching a waiter never disturbs the others;
only when the *last* attached request cancels does the flight's token
fire and the underlying ladder stop (see
:class:`~repro.serve.scheduler.CancelToken`).

Single-threaded by construction: every method runs on the event loop, so
the counters need no lock (the compile itself runs on worker threads, but
flight bookkeeping never does).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.serve.scheduler import CancelToken

__all__ = ["Flight", "Singleflight"]


@dataclass
class Flight:
    """One in-flight compile: the shared future plus waiter accounting."""

    digest: str
    future: asyncio.Future
    token: CancelToken = field(default_factory=CancelToken)
    waiters: int = 0

    def attach(self) -> None:
        self.waiters += 1

    def detach(self) -> bool:
        """Drop one waiter; True when the flight has none left and should
        be cancelled."""
        self.waiters -= 1
        return self.waiters <= 0


class Singleflight:
    """Digest-keyed flight table with coalescing counters."""

    def __init__(self) -> None:
        self._flights: dict[str, Flight] = {}
        self.flights_started = 0
        self.coalesced = 0
        self.cancelled_flights = 0

    def __len__(self) -> int:
        return len(self._flights)

    def join(self, digest: str) -> tuple[Flight, bool]:
        """The flight for *digest*, creating one when none is in flight.

        Returns ``(flight, leader)``; the caller is attached either way
        and must eventually :meth:`leave`.  ``leader`` is True for the
        request that must schedule the actual compile.
        """
        flight = self._flights.get(digest)
        if flight is not None:
            flight.attach()
            self.coalesced += 1
            return flight, False
        loop = asyncio.get_running_loop()
        flight = Flight(digest=digest, future=loop.create_future())
        flight.attach()
        self._flights[digest] = flight
        self.flights_started += 1
        return flight, True

    def leave(self, flight: Flight) -> None:
        """Detach one waiter (request finished or cancelled).  When the
        last waiter leaves an unresolved flight, fire its cancel token so
        the scheduled compile stops cooperatively."""
        if flight.detach() and not flight.future.done():
            flight.token.cancel()
            self.cancelled_flights += 1

    def resolve(self, flight: Flight, result) -> None:
        """Leader-side completion: publish *result* to every waiter and
        retire the flight."""
        if not flight.future.done():
            flight.future.set_result(result)
        self._flights.pop(flight.digest, None)

    def stats(self) -> dict:
        return {
            "flights_started": self.flights_started,
            "coalesced": self.coalesced,
            "cancelled_flights": self.cancelled_flights,
            "in_flight": len(self._flights),
        }
