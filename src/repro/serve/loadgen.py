"""Seeded load generator and minimal async HTTP client for the service.

The generator speaks the real wire protocol over real sockets (no
in-process shortcuts), so the measured latencies include framing, loop
scheduling and thread handoff — the numbers ``python -m repro.bench
serve`` reports are what a tenant would see.

Determinism: the request schedule is a pure function of the seed — which
job each request asks for, its tenant and its priority all come from
:func:`repro.util.rng.make_rng` draws.  Job popularity is skewed
(weight ∝ 1/(rank+1), a Zipf-flavoured mix) so duplicate concurrent
requests actually occur and the coalesce rate measures something real.
Wall-clock latencies are measured with ``time.perf_counter`` and are of
course not deterministic; everything else in the report is.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field

from repro.serve.protocol import ProtocolError
from repro.util.rng import make_rng

__all__ = ["ServeClient", "LoadReport", "build_schedule", "run_load", "percentile"]


class ServeClient:
    """One keep-alive HTTP/1.1 connection to the serve front door."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """Issue one request; returns (status, headers, body)."""
        body = (
            json.dumps(payload, sort_keys=True).encode("utf-8")
            if payload is not None
            else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode("ascii")
        self._writer.write(head + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ProtocolError("server closed the connection")
        parts = status_line.decode("ascii").split(None, 2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        resp_body = await self._reader.readexactly(length) if length else b""
        return status, headers, resp_body

    async def compile(self, payload: dict) -> tuple[int, dict[str, str], bytes]:
        return await self.request("POST", "/compile", payload)


# ----------------------------------------------------------------- the schedule


def build_schedule(
    jobs: list[dict],
    *,
    n_requests: int,
    tenants: list[str],
    seed: int = 0,
    priority_levels: int = 3,
) -> list[dict]:
    """The deterministic request schedule: one compile payload per
    request, with Zipf-skewed job popularity and round-robin-seeded
    tenant/priority assignment."""
    if not jobs:
        raise ValueError("schedule needs at least one job")
    rng = make_rng(seed)
    weights = [1.0 / (rank + 1) for rank in range(len(jobs))]
    total = sum(weights)
    probs = [w / total for w in weights]
    picks = rng.choice(len(jobs), size=n_requests, p=probs)
    prios = rng.integers(0, priority_levels, size=n_requests)
    schedule = []
    for i in range(n_requests):
        payload = dict(jobs[int(picks[i])])
        payload["tenant"] = tenants[i % len(tenants)]
        payload["priority"] = int(prios[i])
        schedule.append(payload)
    return schedule


# ------------------------------------------------------------------ the report


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    idx = min(len(sorted_values) - 1, rank - 1)
    return sorted_values[idx]


@dataclass
class LoadReport:
    """What one load run measured, client-side."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    by_source: dict[str, int] = field(default_factory=dict)
    bodies: dict[str, bytes] = field(default_factory=dict)  # digest -> payload

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def latency_ms(self, q: float) -> float:
        return percentile(sorted(self.latencies_ms), q)

    def as_record(self) -> dict:
        lat = sorted(self.latencies_ms)
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency_ms": {
                "p50": round(percentile(lat, 0.50), 2),
                "p99": round(percentile(lat, 0.99), 2),
                "mean": round(sum(lat) / len(lat), 2) if lat else 0.0,
                "max": round(lat[-1], 2) if lat else 0.0,
            },
            "by_source": dict(self.by_source),
        }


async def run_load(
    host: str,
    port: int,
    schedule: list[dict],
    *,
    clients: int = 4,
) -> LoadReport:
    """Fire *schedule* at the server from *clients* concurrent keep-alive
    connections (request i goes to client ``i % clients``, each client
    issues its slice in order) and collect the latency/source report."""
    report = LoadReport()
    slices: list[list[dict]] = [schedule[i::clients] for i in range(clients)]

    async def run_client(slice_: list[dict]) -> None:
        async with ServeClient(host, port) as client:
            for payload in slice_:
                started = time.perf_counter()
                status, headers, body = await client.compile(payload)
                elapsed_ms = (time.perf_counter() - started) * 1e3
                report.requests += 1
                report.latencies_ms.append(elapsed_ms)
                if status == 200:
                    report.ok += 1
                    source = headers.get("x-repro-source", "?")
                    report.by_source[source] = report.by_source.get(source, 0) + 1
                    digest = headers.get("x-repro-digest", "")
                    if digest:
                        previous = report.bodies.get(digest)
                        if previous is not None and previous != body:
                            raise AssertionError(
                                f"served bytes diverged for digest {digest}"
                            )
                        report.bodies[digest] = body
                else:
                    report.errors += 1

    started = time.perf_counter()
    await asyncio.gather(*(run_client(s) for s in slices if s))
    report.elapsed_seconds = time.perf_counter() - started
    return report
