"""Fair multi-tenant dispatch: weighted round-robin, priorities, cancel.

The service's cache misses are real mapper work — seconds, not
microseconds — so which miss runs next is a policy decision, exactly like
the PageMaster deciding which thread's pages to grow.  The scheduler
models it the same way the paper models fabric sharing:

* **tenants** are the fairness buckets.  Dispatch cycles tenants in
  weighted round-robin: a tenant with weight *w* gets up to *w* dispatches
  per cycle, so one tenant flooding the queue cannot starve the others —
  it only lengthens its own line.
* **priorities** order requests *within* a tenant (higher first, FIFO
  among equals).  A tenant's priorities never affect its neighbours; the
  cross-tenant knob is the weight.
* **cancellation** is cooperative and two-stage: a queued request is
  dropped at pick time (never dispatched); a running one has its
  :class:`CancelToken` polled by the ladder
  (:class:`~repro.compiler.search.SearchContext.cancel_check`) and stops
  at the next probe boundary.

Everything here runs on the event loop — single-threaded bookkeeping, no
locks — except the token, which worker threads poll and is backed by a
``threading.Event``.
"""

from __future__ import annotations

import asyncio
import heapq
import threading
from collections import deque
from dataclasses import dataclass, field

__all__ = ["CancelToken", "RequestCancelled", "ScheduledRequest", "FairScheduler"]


class RequestCancelled(Exception):
    """The request was cancelled before or during its compile."""


class CancelToken:
    """A cancellation flag shared between the event loop (which sets it)
    and the compile worker thread (which polls it mid-ladder)."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


@dataclass
class ScheduledRequest:
    """One queued unit of work plus its dispatch bookkeeping."""

    seq: int
    tenant: str
    priority: int
    work: object  # async callable: work(token) -> result
    token: CancelToken
    future: asyncio.Future
    started: bool = False

    def sort_key(self) -> tuple[int, int]:
        # higher priority first; FIFO (arrival seq) among equals
        return (-self.priority, self.seq)


@dataclass
class _TenantQueue:
    heap: list = field(default_factory=list)

    def push(self, req: ScheduledRequest) -> None:
        heapq.heappush(self.heap, (req.sort_key(), req))

    def pop(self) -> tuple[ScheduledRequest | None, int]:
        """Pop the next live request; cancelled queued requests resolve
        (never dispatch) and are counted in the second slot."""
        dropped = 0
        while self.heap:
            _key, req = heapq.heappop(self.heap)
            if not req.token.cancelled:
                return req, dropped
            # cancelled while queued: resolve without ever dispatching
            dropped += 1
            if not req.future.done():
                req.future.set_exception(RequestCancelled(f"request {req.seq}"))
        return None, dropped

    def __len__(self) -> int:
        return len(self.heap)


class FairScheduler:
    """Weighted round-robin dispatcher over a bounded set of compile slots.

    ``slots`` bounds concurrent work (the service pairs it with a compile
    thread pool of the same size); ``weights`` maps tenant name to its
    per-cycle dispatch share (missing tenants get ``default_weight``).
    """

    def __init__(
        self,
        slots: int,
        *,
        weights: dict[str, int] | None = None,
        default_weight: int = 1,
    ) -> None:
        if slots < 1:
            raise ValueError(f"scheduler needs >= 1 slot, got {slots}")
        if default_weight < 1:
            raise ValueError(f"default weight must be >= 1, got {default_weight}")
        for tenant, weight in (weights or {}).items():
            if weight < 1:
                raise ValueError(f"tenant {tenant!r} weight must be >= 1, got {weight}")
        self.slots = slots
        self._weights = dict(weights or {})
        self._default_weight = default_weight
        self._queues: dict[str, _TenantQueue] = {}
        self._ring: deque[str] = deque()
        self._credits: dict[str, int] = {}
        self._seq = 0
        self._sem = asyncio.Semaphore(slots)
        self._wake = asyncio.Event()
        self._stopped = False
        self._dispatcher: asyncio.Task | None = None
        self._running: dict[int, asyncio.Task] = {}
        self.dispatched = 0
        self.cancelled_queued = 0

    # -- public API -----------------------------------------------------------------

    def weight_of(self, tenant: str) -> int:
        return self._weights.get(tenant, self._default_weight)

    def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def stop(self) -> None:
        self._stopped = True
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        for task in list(self._running.values()):
            await task

    def submit(
        self,
        work,
        *,
        tenant: str = "default",
        priority: int = 0,
        token: CancelToken | None = None,
    ) -> ScheduledRequest:
        """Queue *work* (an async callable taking the cancel token) and
        return its :class:`ScheduledRequest`; await ``.future`` for the
        result."""
        if self._stopped:
            raise RuntimeError("scheduler is stopped")
        self._seq += 1
        req = ScheduledRequest(
            seq=self._seq,
            tenant=tenant,
            priority=priority,
            work=work,
            token=token or CancelToken(),
            future=asyncio.get_running_loop().create_future(),
        )
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = _TenantQueue()
        if tenant not in self._credits:
            # tenant becomes active: joins the ring with a full credit line
            self._ring.append(tenant)
            self._credits[tenant] = self.weight_of(tenant)
        queue.push(req)
        self._wake.set()
        return req

    def queued(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def stats(self) -> dict:
        return {
            "slots": self.slots,
            "queued": self.queued(),
            "running": len(self._running),
            "dispatched": self.dispatched,
            "cancelled_queued": self.cancelled_queued,
        }

    # -- dispatch -------------------------------------------------------------------

    def _next_request(self) -> ScheduledRequest | None:
        """Weighted round-robin pick: walk the ring, spending one credit
        per dispatch; a tenant leaves the ring when its queue drains and
        rejoins (fresh credits) on its next submit."""
        while self._ring:
            tenant = self._ring[0]
            queue = self._queues.get(tenant)
            req, dropped = queue.pop() if queue is not None else (None, 0)
            self.cancelled_queued += dropped
            if req is None:
                self._ring.popleft()
                self._credits.pop(tenant, None)
                continue
            self._credits[tenant] -= 1
            if self._credits[tenant] <= 0:
                # credit line spent: move to the back of the ring
                self._ring.rotate(-1)
                self._credits[tenant] = self.weight_of(tenant)
            return req
        return None

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            if self._stopped:
                break
            await self._sem.acquire()
            if self._stopped:
                self._sem.release()
                break
            req = self._next_request()
            if req is None:
                self._sem.release()
                self._wake.clear()
                continue
            req.started = True
            self.dispatched += 1
            task = asyncio.get_running_loop().create_task(self._run(req))
            self._running[req.seq] = task

    async def _run(self, req: ScheduledRequest) -> None:
        try:
            if req.token.cancelled:
                raise RequestCancelled(f"request {req.seq}")
            result = await req.work(req.token)
            if not req.future.done():
                req.future.set_result(result)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the waiter
            if not req.future.done():
                req.future.set_exception(exc)
            else:  # pragma: no cover - waiter already gone
                pass
        finally:
            self._running.pop(req.seq, None)
            self._sem.release()
            self._wake.set()
