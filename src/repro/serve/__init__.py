"""Compile-as-a-service: an async multi-tenant front door for the pipeline.

The paper's premise is many applications dynamically sharing one CGRA
under a PageMaster; this package is the system analogue — many tenants
dynamically sharing one *compiler*.  A long-running asyncio service
accepts (kernel, arch preset, mapper config) requests over HTTP/JSON-RPC,
resolves each to its content address
(:func:`repro.pipeline.compile.job_key`), and serves the artifact bytes:

* **Singleflight** (:mod:`repro.serve.singleflight`) — concurrent
  identical requests coalesce onto one in-flight compile, keyed by the
  :class:`~repro.pipeline.artifact.ArtifactKey` digest, so N duplicate
  requests cost exactly one mapper invocation.
* **Fair scheduling** (:mod:`repro.serve.scheduler`) — cache misses
  dispatch through a weighted round-robin across tenants with per-request
  priorities and cooperative cancellation, onto a bounded set of compile
  slots.
* **Warm worker pool** (:mod:`repro.serve.service`) — one long-lived
  :class:`~repro.compiler.search.SearchContext` (pre-forked probe
  processes plus the shared WorkerBudget) serves every request's ladders,
  instead of a pool per batch.
* **Byte parity** — responses are read back from the
  :class:`~repro.pipeline.store.ArtifactStore` files, so a served payload
  is byte-identical to the offline :func:`~repro.pipeline.compile
  .compile_many` output at any concurrency.

``python -m repro.serve`` runs the server; ``python -m repro.bench serve``
load-generates against an in-process instance and records throughput,
latency percentiles, coalesce rate and cache hit rate into
``BENCH_serve.json``.
"""

from repro.serve.protocol import (
    CompileRequest,
    ProtocolError,
    ServeResult,
)
from repro.serve.scheduler import CancelToken, FairScheduler, RequestCancelled
from repro.serve.service import CompileService, ServiceConfig
from repro.serve.singleflight import Singleflight

__all__ = [
    "CompileRequest",
    "ServeResult",
    "ProtocolError",
    "CancelToken",
    "FairScheduler",
    "RequestCancelled",
    "CompileService",
    "ServiceConfig",
    "Singleflight",
]
