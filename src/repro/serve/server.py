"""The asyncio HTTP/JSON-RPC front end over :class:`CompileService`.

Routes (all bodies JSON):

* ``POST /compile`` — a :class:`~repro.serve.protocol.CompileRequest`
  body.  Success returns **the raw artifact JSON exactly as stored**
  (byte-identical to the offline ``compile_many`` store file) with the
  serving metadata in ``X-Repro-*`` headers; failures return a structured
  JSON error with a per-request status (400 malformed, 404 unknown
  kernel, 409 cancelled, 422 unmappable, 500 anything else).
* ``POST /cancel`` — ``{"request_id": ...}``; cancels one waiter, the
  underlying compile stops only when its last waiter is gone.
* ``GET /stats`` — the service's counters (singleflight, scheduler,
  store) as JSON.
* ``GET /healthz`` — liveness.
* ``POST /rpc`` — JSON-RPC 2.0 envelope over the same handlers (methods
  ``compile``, ``cancel``, ``stats``, ``ping``); compile results embed
  the artifact as a parsed object plus the serving metadata.

Connections are keep-alive; one request is served at a time per
connection (pipelining is not supported), but any number of connections
are served concurrently on the event loop.
"""

from __future__ import annotations

import asyncio
import json
import logging

from repro.serve.protocol import (
    CompileRequest,
    ProtocolError,
    ServeResult,
    json_response,
    http_response,
    read_http_request,
    rpc_error,
    rpc_result,
)
from repro.serve.service import CompileService, ServiceConfig
from repro.util.errors import WorkloadError

__all__ = ["ServeServer", "serve_forever"]

logger = logging.getLogger(__name__)

#: error name -> HTTP status for per-request failures
_ERROR_STATUS = {
    "ProtocolError": 400,
    "DuplicateRequest": 400,
    "WorkloadError": 404,  # unknown kernel
    "RequestCancelled": 409,
    "MappingError": 422,
    "ArchitectureError": 422,
}


class ServeServer:
    """One listening socket bound to one :class:`CompileService`."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        service: CompileService | None = None,
    ) -> None:
        self.service = service if service is not None else CompileService(config)
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None

    async def start(self) -> "ServeServer":
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    async def __aenter__(self) -> "ServeServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling --------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_http_request(reader)
                except (ProtocolError, ValueError, asyncio.IncompleteReadError) as exc:
                    writer.write(
                        json_response(400, {"error": "ProtocolError", "message": str(exc)})
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, BrokenPipeError):  # pragma: no cover - client gone
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request) -> bytes:
        route = (request.method, request.path)
        try:
            if route == ("POST", "/compile"):
                return await self._handle_compile(request.json())
            if route == ("POST", "/cancel"):
                return await self._handle_cancel(request.json())
            if route == ("GET", "/stats"):
                return json_response(200, self.service.stats())
            if route == ("GET", "/healthz"):
                return json_response(200, {"ok": True})
            if route == ("POST", "/rpc"):
                return await self._handle_rpc(request.json())
        except ProtocolError as exc:
            return json_response(400, {"error": "ProtocolError", "message": str(exc)})
        except Exception as exc:  # noqa: BLE001 - last-resort per-request 500
            logger.exception("unhandled error serving %s %s", *route)
            return json_response(
                500, {"error": type(exc).__name__, "message": str(exc)}
            )
        if request.path in ("/compile", "/cancel", "/stats", "/healthz", "/rpc"):
            return json_response(
                405, {"error": "MethodNotAllowed", "message": request.method}
            )
        return json_response(404, {"error": "NotFound", "message": request.path})

    # -- handlers -------------------------------------------------------------------

    async def _submit(self, payload: dict) -> ServeResult:
        request = CompileRequest.from_dict(payload)
        try:
            return await self.service.submit(request)
        except WorkloadError as exc:
            return ServeResult(
                request_id=request.request_id or "?",
                error="WorkloadError",
                message=str(exc),
            )

    async def _handle_compile(self, payload: dict) -> bytes:
        result = await self._submit(payload)
        if result.ok:
            return http_response(
                200,
                result.body,
                headers={
                    "X-Repro-Request-Id": result.request_id,
                    "X-Repro-Digest": result.digest or "",
                    "X-Repro-Source": result.source or "",
                    "X-Repro-Seconds": f"{result.seconds:.4f}",
                },
            )
        status = _ERROR_STATUS.get(result.error, 500)
        return json_response(status, result.meta())

    async def _handle_cancel(self, payload: dict) -> bytes:
        rid = payload.get("request_id")
        if not isinstance(rid, str) or not rid:
            raise ProtocolError("'request_id' is required")
        cancelled = await self.service.cancel(rid)
        return json_response(200, {"request_id": rid, "cancelled": cancelled})

    async def _handle_rpc(self, payload: dict) -> bytes:
        rpc_id = payload.get("id")
        method = payload.get("method")
        params = payload.get("params") or {}
        try:
            if method == "ping":
                return json_response(200, rpc_result(rpc_id, "pong"))
            if method == "stats":
                return json_response(200, rpc_result(rpc_id, self.service.stats()))
            if method == "cancel":
                rid = params.get("request_id", "")
                cancelled = await self.service.cancel(rid)
                return json_response(
                    200, rpc_result(rpc_id, {"request_id": rid, "cancelled": cancelled})
                )
            if method == "compile":
                result = await self._submit(params)
                if result.ok:
                    return json_response(
                        200,
                        rpc_result(
                            rpc_id,
                            {
                                **result.meta(),
                                "artifact": json.loads(result.body),
                            },
                        ),
                    )
                return json_response(
                    200,
                    rpc_error(
                        rpc_id,
                        -32000 - _ERROR_STATUS.get(result.error, 500),
                        f"{result.error}: {result.message}",
                    ),
                )
        except ProtocolError as exc:
            return json_response(200, rpc_error(rpc_id, -32602, str(exc)))
        return json_response(200, rpc_error(rpc_id, -32601, f"unknown method {method!r}"))


async def serve_forever(
    config: ServiceConfig | None = None, *, host: str = "127.0.0.1", port: int = 8741
) -> None:
    """Run the server until cancelled (the ``python -m repro.serve`` body)."""
    async with ServeServer(config, host=host, port=port) as server:
        print(f"repro.serve listening on {server.address}")
        print(
            f"  workers={server.service.config.workers} "
            f"slots={server.service.config.slots} "
            f"store={server.service.store.root}"
        )
        await asyncio.Event().wait()
