"""The compile service: singleflight + fair scheduler + warm worker pool.

:class:`CompileService` is the transport-independent core the HTTP server
(:mod:`repro.serve.server`) and the bench harness drive directly.  One
instance owns:

* the :class:`~repro.pipeline.store.ArtifactStore` (thread-safe counters,
  atomic unique-temp writes — the PR's store fixes are what make sharing
  one store across handler threads sound);
* one **warm, long-lived** :class:`~repro.compiler.search.SearchContext`
  (``workers >= 2``): probe processes fork once at startup and serve every
  request's ladders, instead of a pool per batch;
* a worker thread pool of ``slots + 2`` threads: one per scheduler
  dispatch slot, plus headroom so request-key resolution stays responsive
  while every compile slot is busy;
* the :class:`~repro.serve.singleflight.Singleflight` table and the
  :class:`~repro.serve.scheduler.FairScheduler`.

Request lifecycle: resolve the job to its ArtifactKey digest (off-loop —
it builds the DFG), join the digest's flight; the flight leader schedules
the store-check-then-compile onto the fair scheduler; waiters coalesce.
Served bytes are always read back from the store file, so they are
byte-identical to offline ``compile_many`` output.  Cancellation detaches
one waiter; the last detach fires the flight's token, which drops a
queued compile at pick time or stops a running ladder at its next probe
boundary (:class:`~repro.compiler.search.CancelledSearch`).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.compiler.search import CancelledSearch, SearchContext
from repro.pipeline.artifact import ArtifactKey
from repro.pipeline.compile import CompileJob, compile_job, job_key
from repro.pipeline.store import ArtifactStore
from repro.serve.protocol import CompileRequest, ServeResult
from repro.serve.scheduler import CancelToken, FairScheduler, RequestCancelled
from repro.serve.singleflight import Flight, Singleflight
from repro.util.errors import ReproError

__all__ = ["ServiceConfig", "CompileService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning for one service instance.

    ``workers >= 2`` pre-forks that many probe processes into the warm
    :class:`~repro.compiler.search.SearchContext`; ``workers = 1`` compiles
    serially on the handler thread (no speculative pool — mid-ladder
    cancellation then degrades to queue-time cancellation).  ``slots``
    bounds concurrent compiles; ``tenant_weights`` feeds the weighted
    round-robin (missing tenants get ``default_weight``).
    """

    store_root: str | None = None
    workers: int = 1
    slots: int = 2
    tenant_weights: dict[str, int] | None = None
    default_weight: int = 1


@dataclass
class _FlightOutcome:
    """What a resolved flight publishes to its waiters."""

    digest: str
    source: str | None = None  # "hit" | "compiled"
    body: bytes | None = None
    seconds: float = 0.0
    error: str | None = None
    message: str | None = None


@dataclass
class _ActiveRequest:
    flight: Flight
    waiter: asyncio.Future
    cancelled: bool = field(default=False)


class CompileService:
    """The multi-tenant compile front door (transport-independent)."""

    def __init__(
        self, config: ServiceConfig | None = None, *, store: ArtifactStore | None = None
    ) -> None:
        self.config = config or ServiceConfig()
        self.store = store if store is not None else ArtifactStore(self.config.store_root)
        self.flights = Singleflight()
        self.scheduler = FairScheduler(
            self.config.slots,
            weights=self.config.tenant_weights,
            default_weight=self.config.default_weight,
        )
        self._search: SearchContext | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._active: dict[str, _ActiveRequest] = {}
        self._leader_tasks: dict[str, asyncio.Task] = {}
        self._seq = 0
        self._started = False
        # request-level counters: only ever touched on the event loop
        self.requests = 0
        self.hits = 0
        self.compiles = 0
        self.errors = 0
        self.cancelled = 0

    # -- lifecycle ------------------------------------------------------------------

    async def start(self) -> "CompileService":
        if self._started:
            return self
        loop = asyncio.get_running_loop()
        # slots compile threads plus headroom: key resolution (joining a
        # flight, hence cancellability) must never starve behind ladders
        # occupying every compile slot
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.slots + 2, thread_name_prefix="repro-serve"
        )
        if self.config.workers >= 2:
            # warm pool: fork every probe worker now, before any handler
            # thread exists, and keep it for the server's whole lifetime
            self._search = await loop.run_in_executor(
                self._pool, SearchContext.create, self.config.workers
            )
        self.scheduler.start()
        self._started = True
        return self

    async def close(self) -> None:
        if not self._started:
            return
        await self.scheduler.stop()
        for task in list(self._leader_tasks.values()):
            await task
        if self._search is not None:
            self._search.close()
            self._search = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._started = False

    async def __aenter__(self) -> "CompileService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- the request path -----------------------------------------------------------

    def _next_request_id(self, request: CompileRequest) -> str:
        self._seq += 1
        return f"{request.tenant}-{self._seq}"

    async def submit(self, request: CompileRequest) -> ServeResult:
        """Serve one compile request end to end; never raises for
        per-request failures (they come back as structured errors)."""
        if not self._started:
            raise RuntimeError("service is not started")
        loop = asyncio.get_running_loop()
        rid = request.request_id or self._next_request_id(request)
        if rid in self._active:
            return ServeResult(
                request_id=rid,
                error="DuplicateRequest",
                message=f"request id {rid!r} is already active",
            )
        self.requests += 1
        job = request.to_job()
        try:
            key: ArtifactKey = await loop.run_in_executor(self._pool, job_key, job)
        except ReproError as exc:
            self.errors += 1
            return ServeResult(
                request_id=rid, error=type(exc).__name__, message=str(exc)
            )
        flight, leader = self.flights.join(key.digest)
        if leader:
            self._lead_flight(flight, job, key, request)
        waiter: asyncio.Future = loop.create_future()

        def _on_flight_done(fut: asyncio.Future) -> None:
            if not waiter.done():
                waiter.set_result(fut.result())

        flight.future.add_done_callback(_on_flight_done)
        self._active[rid] = _ActiveRequest(flight=flight, waiter=waiter)
        try:
            outcome: _FlightOutcome | None = await waiter
        finally:
            active = self._active.pop(rid)
            # single detach per request: cancel() only resolves the waiter,
            # the flight refcount is always settled here
            self.flights.leave(flight)
        if active.cancelled or outcome is None:
            self.cancelled += 1
            return ServeResult(
                request_id=rid,
                digest=key.digest,
                error="RequestCancelled",
                message="request was cancelled",
            )
        if outcome.body is None:
            self.errors += 1
            return ServeResult(
                request_id=rid,
                digest=key.digest,
                source=outcome.source,
                seconds=outcome.seconds,
                error=outcome.error,
                message=outcome.message,
            )
        source = outcome.source if leader else "coalesced"
        if outcome.source == "hit" and leader:
            self.hits += 1
        return ServeResult(
            request_id=rid,
            digest=key.digest,
            source=source,
            body=outcome.body,
            seconds=outcome.seconds,
        )

    async def cancel(self, request_id: str) -> bool:
        """Cancel one active request; True when it was still in flight.
        Other waiters coalesced onto the same compile are untouched — the
        underlying ladder stops only when its last waiter cancels."""
        active = self._active.get(request_id)
        if active is None or active.waiter.done():
            return False
        active.cancelled = True
        active.waiter.set_result(None)
        return True

    # -- the flight leader ----------------------------------------------------------

    def _lead_flight(
        self, flight: Flight, job: CompileJob, key: ArtifactKey, request: CompileRequest
    ) -> None:
        """Schedule the flight's store-check-then-compile and publish its
        outcome to every waiter."""
        sched = self.scheduler.submit(
            self._make_work(job, key),
            tenant=request.tenant,
            priority=request.priority,
            token=flight.token,
        )

        async def _lead() -> None:
            try:
                outcome = await sched.future
            except (RequestCancelled, CancelledSearch) as exc:
                outcome = _FlightOutcome(
                    digest=key.digest, error="RequestCancelled", message=str(exc)
                )
            except ReproError as exc:
                outcome = _FlightOutcome(
                    digest=key.digest, error=type(exc).__name__, message=str(exc)
                )
            except Exception as exc:  # noqa: BLE001 - structured per-request error
                outcome = _FlightOutcome(
                    digest=key.digest, error=type(exc).__name__, message=str(exc)
                )
            if outcome.source == "compiled":
                self.compiles += 1
            self.flights.resolve(flight, outcome)

        task = asyncio.get_running_loop().create_task(_lead())
        self._leader_tasks[flight.digest] = task
        task.add_done_callback(
            lambda _t, digest=flight.digest: self._leader_tasks.pop(digest, None)
        )

    def _make_work(self, job: CompileJob, key: ArtifactKey):
        loop = asyncio.get_running_loop()

        async def work(token: CancelToken) -> _FlightOutcome:
            return await loop.run_in_executor(
                self._pool, self._compile_blocking, job, key, token
            )

        return work

    def _compile_blocking(
        self, job: CompileJob, key: ArtifactKey, token: CancelToken
    ) -> _FlightOutcome:
        """The worker-thread body: store probe, then (on a miss) one
        mapper invocation with the warm search pool; served bytes are read
        back from the store file for byte parity with offline compiles."""
        hit = self.store.get(key)
        if hit is not None:
            return _FlightOutcome(
                digest=key.digest,
                source="hit",
                body=self.store.path_for(key).read_bytes(),
            )
        if token.cancelled:
            raise CancelledSearch("cancelled before ladder start")
        search = (
            self._search.for_request(token.is_set)
            if self._search is not None
            else None
        )
        started = time.perf_counter()
        artifact, seconds = compile_job(job, search=search)
        self.store.note_compile_time(seconds)
        path = self.store.put(artifact)
        body = (
            path.read_bytes()
            if path is not None
            else artifact.to_json().encode("utf-8")
        )
        return _FlightOutcome(
            digest=key.digest,
            source="compiled",
            body=body,
            seconds=time.perf_counter() - started,
        )

    # -- introspection --------------------------------------------------------------

    def stats(self) -> dict:
        served = self.requests - self.errors - self.cancelled
        return {
            "requests": self.requests,
            "served": served,
            "hits": self.hits,
            "compiles": self.compiles,
            "coalesced": self.flights.coalesced,
            "errors": self.errors,
            "cancelled": self.cancelled,
            "coalesce_rate": round(self.flights.coalesced / self.requests, 4)
            if self.requests
            else 0.0,
            "cache_hit_rate": round(self.hits / self.requests, 4)
            if self.requests
            else 0.0,
            "singleflight": self.flights.stats(),
            "scheduler": self.scheduler.stats(),
            "store": self.store.stats(),
        }
