"""``python -m repro.serve`` — run the compile service.

Example::

    python -m repro.serve --port 8741 --workers 4 --slots 4
    curl -s localhost:8741/healthz
    curl -s -XPOST localhost:8741/compile -d '{"kernel": "sor", "size": 4, "page_size": 4}'
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.serve.server import serve_forever
from repro.serve.service import ServiceConfig


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Async multi-tenant compile-as-a-service front door.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8741)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="probe worker processes in the warm search pool "
        "(>= 2 enables speculative ladders and mid-ladder cancellation)",
    )
    p.add_argument(
        "--slots",
        type=int,
        default=2,
        help="concurrent compile slots (fair-scheduler dispatch width)",
    )
    p.add_argument(
        "--store",
        default=None,
        help="artifact store root (default: $REPRO_CACHE_DIR/.repro_artifacts)",
    )
    args = p.parse_args(argv)
    config = ServiceConfig(
        store_root=args.store, workers=args.workers, slots=args.slots
    )
    try:
        asyncio.run(serve_forever(config, host=args.host, port=args.port))
    except KeyboardInterrupt:
        print("repro.serve: interrupted, shutting down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
