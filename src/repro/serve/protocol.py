"""Wire protocol of the compile service: requests, results, HTTP framing.

The service speaks plain HTTP/1.1 with JSON bodies (no third-party
dependencies — the framing below is a minimal, strict subset) plus a
JSON-RPC 2.0 endpoint (``POST /rpc``) that maps onto the same handlers.

The one deliberate wire-format choice: a successful ``POST /compile``
response body is the **raw artifact JSON exactly as stored** — byte
identical to the :class:`~repro.pipeline.store.ArtifactStore` file and
therefore to offline :func:`~repro.pipeline.compile.compile_many` output —
with the serving metadata (cache source, request id, compile seconds) in
``X-Repro-*`` headers, never mixed into the payload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.pipeline.compile import CompileJob

__all__ = [
    "ProtocolError",
    "CompileRequest",
    "ServeResult",
    "HttpRequest",
    "read_http_request",
    "http_response",
    "json_response",
    "rpc_result",
    "rpc_error",
]

#: Request body size cap (1 MiB): compile requests are a handful of small
#: fields; anything larger is a malformed or hostile client.
MAX_BODY_BYTES = 1 << 20

_VALID_PREFER = ("square", "column", "row")
_VALID_BACKENDS = ("flat", "hier", "exact")


class ProtocolError(ValueError):
    """A malformed request (HTTP framing or request-field validation)."""


@dataclass(frozen=True)
class CompileRequest:
    """One tenant's compile request, validated off the wire.

    Mirrors :class:`~repro.pipeline.compile.CompileJob` plus the serving
    fields: ``tenant`` (fair-scheduling bucket), ``priority`` (higher
    dispatches first within a tenant) and ``request_id`` (cancellation
    handle; server-assigned when absent).
    """

    kernel: str
    size: int = 4
    page_size: int = 4
    prefer: str = "square"
    seed: int = 0
    arch: str | None = None
    backend: str = "flat"
    tenant: str = "default"
    priority: int = 0
    request_id: str | None = None

    @classmethod
    def from_dict(cls, raw: dict) -> "CompileRequest":
        if not isinstance(raw, dict):
            raise ProtocolError(f"request body must be a JSON object, got {type(raw).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ProtocolError(f"unknown request field(s): {', '.join(unknown)}")
        kernel = raw.get("kernel")
        if not isinstance(kernel, str) or not kernel:
            raise ProtocolError("'kernel' is required and must be a non-empty string")
        out = {"kernel": kernel}
        for name, typ in (
            ("size", int),
            ("page_size", int),
            ("seed", int),
            ("priority", int),
        ):
            if name in raw:
                value = raw[name]
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ProtocolError(f"'{name}' must be an integer")
                out[name] = value
        for name in ("prefer", "backend", "tenant", "arch", "request_id"):
            if name in raw and raw[name] is not None:
                value = raw[name]
                if not isinstance(value, str):
                    raise ProtocolError(f"'{name}' must be a string")
                out[name] = value
        req = cls(**out)
        if req.size < 1 or req.page_size < 1:
            raise ProtocolError("'size' and 'page_size' must be >= 1")
        if req.prefer not in _VALID_PREFER:
            raise ProtocolError(
                f"'prefer' must be one of {_VALID_PREFER}, got {req.prefer!r}"
            )
        if req.backend not in _VALID_BACKENDS:
            raise ProtocolError(
                f"'backend' must be one of {_VALID_BACKENDS}, got {req.backend!r}"
            )
        if not req.tenant:
            raise ProtocolError("'tenant' must be non-empty")
        return req

    def to_job(self) -> CompileJob:
        return CompileJob(
            kernel=self.kernel,
            size=self.size,
            page_size=self.page_size,
            prefer=self.prefer,
            seed=self.seed,
            arch=self.arch,
            backend=self.backend,
        )


@dataclass(frozen=True)
class ServeResult:
    """The service's answer to one compile request.

    ``source`` says how the bytes were obtained: ``"hit"`` (already in the
    store), ``"compiled"`` (this request led the compile), ``"coalesced"``
    (rode a sibling's in-flight compile).  On failure ``body`` is None and
    ``error``/``message`` carry the structured per-request error.
    """

    request_id: str
    digest: str | None = None
    source: str | None = None
    body: bytes | None = None
    seconds: float = 0.0
    error: str | None = None
    message: str | None = None

    @property
    def ok(self) -> bool:
        return self.body is not None

    def meta(self) -> dict:
        out = {
            "request_id": self.request_id,
            "digest": self.digest,
            "source": self.source,
            "seconds": round(self.seconds, 4),
        }
        if not self.ok:
            out["error"] = self.error
            out["message"] = self.message
        return out


# ------------------------------------------------------------- HTTP framing


@dataclass(frozen=True)
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        try:
            return json.loads(self.body) if self.body else {}
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc


async def read_http_request(reader) -> HttpRequest | None:
    """Parse one HTTP/1.1 request off *reader*; None on a clean EOF."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, _version = line.decode("ascii").split()
    except ValueError as exc:
        raise ProtocolError(f"malformed request line: {line!r}") from exc
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"content-length {length} out of bounds")
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


def http_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one HTTP/1.1 keep-alive response."""
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: keep-alive",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def json_response(
    status: int, payload: dict, headers: dict[str, str] | None = None
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return http_response(status, body, headers=headers)


# --------------------------------------------------------------- JSON-RPC 2.0


def rpc_result(rpc_id, result) -> dict:
    return {"jsonrpc": "2.0", "id": rpc_id, "result": result}


def rpc_error(rpc_id, code: int, message: str) -> dict:
    return {"jsonrpc": "2.0", "id": rpc_id, "error": {"code": code, "message": message}}
