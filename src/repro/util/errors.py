"""Exception hierarchy for the repro library.

Every subsystem raises a subclass of :class:`ReproError` so callers can
distinguish library failures from programming errors.  The hierarchy mirrors
the package layout: architecture modelling, DFG construction, compilation
(mapping), the compile-time paging constraints, the PageMaster runtime
transformation, and simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ArchitectureError(ReproError):
    """Invalid CGRA architecture description (grid, pages, interconnect)."""


class GraphError(ReproError):
    """Invalid dataflow-graph construction or query."""


class MappingError(ReproError):
    """The compiler could not produce (or was handed) a valid mapping."""


class ConstraintViolation(ReproError):
    """A compile-time paging constraint (ring topology / register usage)
    or a transformation output constraint was violated."""


class CapabilityViolation(ConstraintViolation):
    """A mapping executes an op (or parks a route step) on a PE whose
    capability mask does not support that op class
    (:mod:`repro.arch.capability`)."""


class TransformError(ReproError):
    """The PageMaster transformation failed or was asked an illegal shrink."""


class SimulationError(ReproError):
    """The functional or system simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """Invalid workload specification for the system simulator."""


class ArtifactError(ReproError):
    """A compilation artifact could not be (de)serialized or does not match
    the key it was stored under (:mod:`repro.pipeline`)."""


class OracleViolation(SimulationError):
    """The event-driven system simulator disagreed with the cycle-quantum
    reference oracle, or a simulation invariant does not hold
    (:mod:`repro.sim.oracle`)."""
