"""Plain-text table rendering for the experiment harness.

The benchmark drivers print the same rows/series the paper's figures show;
this module owns the formatting so every experiment reports uniformly.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_percent", "format_grid"]


def format_percent(value: float, digits: int = 1) -> str:
    """Format a ratio (1.0 == 100%) as a percentage string."""
    return f"{value * 100.0:.{digits}f}%"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    ``headers`` names the columns; each row must have the same arity.
    Numeric cells are right-aligned, text cells left-aligned.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row arity {len(r)} does not match header arity {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))

    def is_numeric(col: int) -> bool:
        return all(
            _looks_numeric(r[col]) for r in str_rows
        ) and str_rows  # empty table: left-align

    aligns = [">" if str_rows and is_numeric(i) else "<" for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(f"{h:<{w}}" for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append(
            "  ".join(f"{c:{a}{w}}" for c, a, w in zip(r, aligns, widths))
        )
    return "\n".join(lines)


def _looks_numeric(s: str) -> bool:
    t = s.rstrip("%")
    try:
        float(t)
        return True
    except ValueError:
        return False


def format_grid(grid: dict[tuple[Any, Any], Any], row_label: str = "") -> str:
    """Render a dict keyed by (row, col) as a matrix table.

    Useful for figure-style data: rows are e.g. thread counts, columns are
    e.g. CGRA-need levels.
    """
    rows = sorted({k[0] for k in grid})
    cols = sorted({k[1] for k in grid})
    headers = [row_label] + [str(c) for c in cols]
    body = [[r] + [grid.get((r, c), "-") for c in cols] for r in rows]
    return format_table(headers, body)
