"""Deterministic random-number helpers.

All stochastic pieces of the library (workload generation, the simulated
annealing mapper, fuzz helpers in tests) take an explicit seed and build a
:class:`numpy.random.Generator` through :func:`make_rng`, so every experiment
in the paper reproduction is bit-for-bit repeatable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "derive_seed"]


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts an integer seed (the common case), ``None`` (non-deterministic,
    only sensible for exploratory use), or an existing generator which is
    passed through unchanged so call sites can accept either form.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(seed: int, *streams: int | str) -> int:
    """Derive a child seed from *seed* and a tuple of stream labels.

    Uses :class:`numpy.random.SeedSequence` entropy mixing, so children of
    distinct labels are statistically independent while remaining
    reproducible.  String labels are hashed stably (not with ``hash()``,
    which is salted per process).
    """
    keys: list[int] = []
    for s in streams:
        if isinstance(s, str):
            acc = 2166136261
            for ch in s.encode("utf-8"):  # FNV-1a, stable across processes
                acc = ((acc ^ ch) * 16777619) & 0xFFFFFFFF
            keys.append(acc)
        else:
            keys.append(int(s) & 0xFFFFFFFF)
    ss = np.random.SeedSequence(entropy=seed, spawn_key=tuple(keys))
    return int(ss.generate_state(1, dtype=np.uint64)[0])


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Spawn *n* independent generators from one master seed."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def choice_weighted(
    rng: np.random.Generator, items: Sequence, weights: Iterable[float]
):
    """Pick one element of *items* with the given (unnormalised) weights."""
    w = np.asarray(list(weights), dtype=float)
    if len(w) != len(items):
        raise ValueError("weights length must match items length")
    if np.any(w < 0) or w.sum() <= 0:
        raise ValueError("weights must be non-negative and sum to > 0")
    idx = rng.choice(len(items), p=w / w.sum())
    return items[int(idx)]
