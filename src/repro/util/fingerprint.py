"""Canonical structural fingerprints.

The compilation pipeline (:mod:`repro.pipeline`) content-addresses compiled
artifacts by the fingerprints of the DFG, the architecture, and the mapper
configuration.  A fingerprint must therefore be *canonical*: the same
logical object always hashes to the same string, independent of object
identity, dict insertion order, or the Python process.  We get this by
hashing a JSON rendering with sorted keys and fixed separators.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_json", "canonical_fingerprint", "FINGERPRINT_LENGTH"]

#: Hex digits kept from the sha256 digest.  64 bits — collisions across the
#: handful of thousands of artifacts a repository ever holds are negligible,
#: and the short form keeps keys readable in logs and filenames.
FINGERPRINT_LENGTH = 16


def canonical_json(payload) -> str:
    """Deterministic JSON rendering of *payload* (sorted keys, no spaces)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def canonical_fingerprint(payload, *, length: int = FINGERPRINT_LENGTH) -> str:
    """Stable hex digest of a JSON-able *payload*."""
    blob = canonical_json(payload).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:length]
