"""Shared utilities: error types, seeded RNG helpers, table formatting."""

from repro.util.errors import (
    ReproError,
    ArchitectureError,
    GraphError,
    MappingError,
    ConstraintViolation,
    TransformError,
    SimulationError,
)
from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import format_table, format_percent

__all__ = [
    "ReproError",
    "ArchitectureError",
    "GraphError",
    "MappingError",
    "ConstraintViolation",
    "TransformError",
    "SimulationError",
    "make_rng",
    "spawn_rngs",
    "format_table",
    "format_percent",
]
