"""Plain-text visualisation of mappings, page schedules and placements.

Everything renders to strings (no plotting dependencies), in the style of
the paper's figures: per-cycle grids of the PE array with op labels
(Fig. 2b), the page-level schedule table (Fig. 6a), and PageMaster
placement grids (Fig. 7).  Used by the examples and handy in a REPL::

    print(viz.render_mapping(mapping))
    print(viz.render_page_schedule(paged.page_schedule))
    print(viz.render_placement(placement))
"""

from __future__ import annotations

from repro.compiler.mapping import Mapping
from repro.core.page_schedule import PageSchedule
from repro.core.pagemaster import PagePlacement
from repro.core.paging import PageLayout

__all__ = [
    "render_mapping",
    "render_page_schedule",
    "render_placement",
    "render_layout",
]


def _cell_labels(mapping: Mapping) -> dict[tuple, str]:
    labels: dict[tuple, str] = {}
    for p in mapping.placements.values():
        op = mapping.dfg.ops[p.op_id]
        short = op.label[:6]
        labels[(p.pe, p.time % mapping.ii)] = short
    for r in mapping.routes.values():
        for s in r.steps:
            labels[(s.pe, s.time % mapping.ii)] = f"~e{r.edge_id}"
    return labels


def render_mapping(mapping: Mapping, *, max_slots: int | None = None) -> str:
    """One PE-array grid per modulo slot, ops named, routes as ``~eN``."""
    cgra = mapping.cgra
    labels = _cell_labels(mapping)
    width = max((len(v) for v in labels.values()), default=3) + 1
    lines = [
        f"mapping {mapping.dfg.name!r}: II={mapping.ii}, "
        f"len={mapping.schedule_length}, util={mapping.pe_utilization():.2f}"
    ]
    slots = range(mapping.ii if max_slots is None else min(mapping.ii, max_slots))
    for t in slots:
        lines.append(f"-- modulo slot {t} --")
        for r in range(cgra.rows):
            row = []
            for c in range(cgra.cols):
                from repro.arch.interconnect import Coord

                row.append(labels.get((Coord(r, c), t), ".").ljust(width))
            lines.append(" ".join(row).rstrip())
    return "\n".join(lines)


def render_layout(layout: PageLayout) -> str:
    """The page index of every PE — Fig. 4's picture."""
    lines = [repr(layout)]
    for r in range(layout.cgra.rows):
        row = []
        for c in range(layout.cgra.cols):
            from repro.arch.interconnect import Coord

            n = layout.page_of.get(Coord(r, c))
            row.append(".." if n is None else f"{n:2d}")
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_page_schedule(schedule: PageSchedule) -> str:
    """Fig. 6a-style table: items per page instance, pages as columns."""
    lines = [schedule.summary()]
    header = "time | " + " | ".join(
        f"page {n}".center(10) for n in range(schedule.num_pages)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for t in range(schedule.ii):
        cells = []
        for n in range(schedule.num_pages):
            inst = schedule.instance(n, t)
            ops = sum(1 for i in inst.items if i.kind == "op")
            routes = len(inst.items) - ops
            if not inst.items:
                cells.append("-".center(10))
            else:
                cells.append(f"{ops}op {routes}rt".center(10))
        lines.append(f"{t:4d} | " + " | ".join(cells))
    return "\n".join(lines)


def render_placement(placement: PagePlacement, *, max_rows: int = 20) -> str:
    """Fig. 7-style grid: which page instance occupies each (column, time)."""
    lines = [placement.summary()]
    rows = min(placement.makespan, max_rows)
    grid = [["." for _ in range(placement.m)] for _ in range(placement.makespan)]
    for (page, batch), (col, t) in placement.slots.items():
        grid[t][col] = f"{page}@{batch % placement.ii_p}"
    width = max(
        (len(cell) for row in grid for cell in row if cell != "."), default=3
    )
    header = "time | " + " ".join(f"c{c}".ljust(width) for c in range(placement.m))
    lines.append(header)
    lines.append("-" * len(header))
    for t in range(rows):
        lines.append(
            f"{t:4d} | " + " ".join(cell.ljust(width) for cell in grid[t]).rstrip()
        )
    if placement.makespan > rows:
        lines.append(f" ... ({placement.makespan - rows} more rows)")
    return "\n".join(lines)
