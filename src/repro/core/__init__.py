"""The paper's primary contribution: CGRA paging, the compile-time paging
constraints, the PageMaster runtime transformation, and the multithreading
runtime built on top of them.
"""

from repro.core.paging import Orientation, PageLayout, choose_page_shape
from repro.core.page_schedule import PageInstance, PageSchedule
from repro.core.pagemaster import PageMaster, PagePlacement, steady_state_ii
from repro.core.transform_check import check_placement
from repro.core.runtime import CGRAManager, ThreadHandle
from repro.core.policies import (
    AllocationPolicy,
    HalvingPolicy,
    NeedAwareHalvingPolicy,
    FairSharePolicy,
    StaticEqualPolicy,
)

__all__ = [
    "Orientation",
    "PageLayout",
    "choose_page_shape",
    "PageInstance",
    "PageSchedule",
    "PageMaster",
    "PagePlacement",
    "steady_state_ii",
    "check_placement",
    "CGRAManager",
    "ThreadHandle",
    "AllocationPolicy",
    "HalvingPolicy",
    "NeedAwareHalvingPolicy",
    "FairSharePolicy",
    "StaticEqualPolicy",
]
