"""CGRA paging (§VI-A of the paper).

The CGRA is conceptually divided into *pages*: "symmetrically equivalent
groups of PEs which allows page folding" (Fig. 4 shows a 4x4 CGRA as four
2x2 tiles or four 4x1 columns).  Pages are purely a compiler concept — no
hardware change — but they fix:

* the granularity at which a schedule can be shrunk or expanded, and
* the *ring order* of pages that the data-flow constraint (§VI-B) is
  expressed against: operations on page *n* may only consume values from
  page *n* or page *n-1* of the previous cycle.

We realise the ring order as a boustrophedon (snake) walk over the tile
grid, which guarantees consecutive pages are physically adjacent, so a
ring-constrained dependency can always ride the 1-cycle mesh interconnect.
Whether the wrap-around pair (last, first) is also adjacent depends on the
tiling and is recorded in :attr:`PageLayout.ring_wrap_adjacent`; the paged
compiler only ever uses a *subset* of the ring and never relies on the wrap
link unless it is physically there.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.util.errors import ArchitectureError

__all__ = ["Orientation", "PageLayout", "choose_page_shape"]


class Orientation(enum.Enum):
    """Symmetry transform applied to a page's internal mapping when the page
    is folded onto another position (§VI-D: "the internal page mapping must
    be mirrored across the among-page dependency direction")."""

    IDENTITY = "id"
    MIRROR_H = "mirror_h"  # flip across the horizontal axis (rows reverse)
    MIRROR_V = "mirror_v"  # flip across the vertical axis (cols reverse)
    ROT180 = "rot180"

    def apply(self, local: Coord, shape: tuple[int, int]) -> Coord:
        h, w = shape
        r, c = local.row, local.col
        if self is Orientation.IDENTITY:
            return local
        if self is Orientation.MIRROR_H:
            return Coord(h - 1 - r, c)
        if self is Orientation.MIRROR_V:
            return Coord(r, w - 1 - c)
        return Coord(h - 1 - r, w - 1 - c)

    def compose(self, other: "Orientation") -> "Orientation":
        """self applied after other."""
        table = {
            Orientation.IDENTITY: 0,
            Orientation.MIRROR_H: 1,
            Orientation.MIRROR_V: 2,
            Orientation.ROT180: 3,
        }
        inv = {v: k for k, v in table.items()}
        return inv[table[self] ^ table[other]]


def choose_page_shape(
    page_size: int, cgra_rows: int, cgra_cols: int, prefer: str = "square"
) -> tuple[int, int]:
    """Pick a page tile shape (rows, cols) for *page_size* PEs.

    ``prefer='square'`` picks the most square divisor pair that fits the
    grid (2x2 for size 4); ``prefer='column'`` picks the tallest (4x1 for
    size 4 on a 4-row grid), matching the two alternatives of Fig. 4.
    """
    if page_size <= 0:
        raise ArchitectureError(f"page size must be positive, got {page_size}")
    pairs = [
        (h, page_size // h)
        for h in range(1, page_size + 1)
        if page_size % h == 0 and h <= cgra_rows and page_size // h <= cgra_cols
    ]
    if not pairs:
        raise ArchitectureError(
            f"no {page_size}-PE tile fits a {cgra_rows}x{cgra_cols} grid"
        )
    if prefer == "square":
        return min(pairs, key=lambda p: (abs(p[0] - p[1]), -p[0]))
    if prefer == "column":
        return max(pairs, key=lambda p: p[0])
    if prefer == "row":
        return max(pairs, key=lambda p: p[1])
    raise ArchitectureError(f"unknown shape preference {prefer!r}")


@dataclass(frozen=True)
class _Tile:
    origin: Coord  # top-left PE of the tile


class PageLayout:
    """Division of a CGRA into equally shaped pages in snake ring order.

    Pages tile the grid with identical ``shape`` tiles; if the shape does
    not tile the full grid (the paper's 6x6 CGRA with 8-PE pages), the
    maximal whole-tile region is paged and the remaining PEs are reported
    in :attr:`uncovered` (and left unused by the paged compiler).
    """

    def __init__(
        self, cgra: CGRA, shape: tuple[int, int], *, allow_wrap: bool = False
    ) -> None:
        h, w = shape
        self.allow_wrap = allow_wrap
        if h <= 0 or w <= 0:
            raise ArchitectureError(f"bad page shape {shape}")
        if h > cgra.rows or w > cgra.cols:
            raise ArchitectureError(
                f"page shape {h}x{w} larger than {cgra.rows}x{cgra.cols} grid"
            )
        self.cgra = cgra
        self.shape = (h, w)
        tile_rows = cgra.rows // h
        tile_cols = cgra.cols // w
        if tile_rows == 0 or tile_cols == 0:
            raise ArchitectureError(
                f"page shape {h}x{w} does not fit {cgra.rows}x{cgra.cols}"
            )
        # Snake walk over the tile grid: row 0 left-to-right, row 1
        # right-to-left, ... so that consecutive pages share a tile edge.
        tiles: list[_Tile] = []
        for tr in range(tile_rows):
            cols = range(tile_cols) if tr % 2 == 0 else range(tile_cols - 1, -1, -1)
            for tc in cols:
                tiles.append(_Tile(Coord(tr * h, tc * w)))
        self._tiles = tiles
        self.num_pages = len(tiles)
        self.page_size = h * w

        self.page_of: dict[Coord, int] = {}
        self.local_of: dict[Coord, Coord] = {}
        for n, tile in enumerate(tiles):
            for dr in range(h):
                for dc in range(w):
                    pe = Coord(tile.origin.row + dr, tile.origin.col + dc)
                    self.page_of[pe] = n
                    self.local_of[pe] = Coord(dr, dc)
        self.uncovered: tuple[Coord, ...] = tuple(
            c for c in cgra.coords() if c not in self.page_of
        )
        self.ring_wrap_adjacent = self.num_pages > 1 and self._pages_adjacent(
            self.num_pages - 1, 0
        )

    # -- geometry ----------------------------------------------------------------

    def page_origin(self, n: int) -> Coord:
        self._check_page(n)
        return self._tiles[n].origin

    def coords_of_page(self, n: int) -> tuple[Coord, ...]:
        self._check_page(n)
        o = self._tiles[n].origin
        h, w = self.shape
        return tuple(
            Coord(o.row + dr, o.col + dc) for dr in range(h) for dc in range(w)
        )

    def class_capable_count(self, n: int, cls_) -> int:
        """How many PEs of page *n* support op class *cls_*
        (:class:`~repro.arch.capability.OpClass`).  The whole page on a
        homogeneous fabric; the hierarchical backend sizes per-page
        cluster capacities (e.g. memory-op budgets) from this."""
        self._check_page(n)
        mask = self.cgra.class_mask(cls_)
        if mask is None:
            return self.page_size
        gi = self.cgra.grid_index
        return sum(1 for pe in self.coords_of_page(n) if mask[gi.id_of[pe]])

    def place_local(
        self, n: int, local: Coord, orientation: Orientation = Orientation.IDENTITY
    ) -> Coord:
        """Physical PE for a page-local coordinate under an orientation."""
        self._check_page(n)
        h, w = self.shape
        if not (0 <= local.row < h and 0 <= local.col < w):
            raise ArchitectureError(f"local coord {local} outside page shape {h}x{w}")
        t = orientation.apply(local, self.shape)
        o = self._tiles[n].origin
        return Coord(o.row + t.row, o.col + t.col)

    # -- ring order ----------------------------------------------------------------

    def ring_succ(self, n: int) -> int:
        self._check_page(n)
        return (n + 1) % self.num_pages

    def ring_pred(self, n: int) -> int:
        self._check_page(n)
        return (n - 1) % self.num_pages

    def ring_hop_allowed(self, src_page: int, dst_page: int) -> bool:
        """May a value move from *src_page* to *dst_page* in one cycle under
        the §VI-B data-flow constraint?  Same page is always allowed; the
        forward ring hop is allowed when the pages are physically adjacent.
        The wrap hop (last page -> page 0) is additionally gated on
        ``allow_wrap``: with the default chain topology (a strict *subset*
        of the ring, as §VI-B permits), mappings never use the wrap link,
        which is what makes the optimal grouped fold of
        :class:`~repro.core.pagemaster.PageMaster` applicable whenever the
        target page count divides N."""
        if src_page == dst_page:
            return True
        if dst_page != self.ring_succ(src_page):
            return False
        if dst_page == 0 and self.num_pages > 1 and not self.allow_wrap:
            return False
        return self._pages_adjacent(src_page, dst_page)

    def _pages_adjacent(self, a: int, b: int) -> bool:
        """Physical adjacency: some PE of *a* is a mesh neighbour of some PE
        of *b*."""
        coords_b = set(self.coords_of_page(b))
        for pe in self.coords_of_page(a):
            for nb in self.cgra.neighbors(pe):
                if nb in coords_b:
                    return True
        return False

    def pages_of_rows(self) -> dict[int, set[int]]:
        """Which pages touch each grid row (used for bus accounting)."""
        out: dict[int, set[int]] = {r: set() for r in range(self.cgra.rows)}
        for pe, n in self.page_of.items():
            out[pe.row].add(n)
        return out

    def subchain(self, k: int) -> "PageLayout":
        """A layout over only the first *k* pages of the ring order.

        Used by the paged compiler to map a kernel onto the smallest page
        prefix that preserves its II (the paper's Fig. 6 mapping "only uses
        3 pages"); the remaining pages stay free for other threads.  A
        sub-chain is never a closed ring, so ``allow_wrap`` is off.
        """
        self._check_page(k - 1)
        sub = object.__new__(PageLayout)
        sub.cgra = self.cgra
        sub.shape = self.shape
        sub.allow_wrap = False
        sub._tiles = self._tiles[:k]
        sub.num_pages = k
        sub.page_size = self.page_size
        sub.page_of = {pe: n for pe, n in self.page_of.items() if n < k}
        sub.local_of = {pe: l for pe, l in self.local_of.items() if pe in sub.page_of}
        sub.uncovered = tuple(
            c for c in self.cgra.coords() if c not in sub.page_of
        )
        sub.ring_wrap_adjacent = k > 1 and sub._pages_adjacent(k - 1, 0)
        return sub

    def _check_page(self, n: int) -> None:
        if not 0 <= n < self.num_pages:
            raise ArchitectureError(
                f"page index {n} out of range [0,{self.num_pages})"
            )

    def __repr__(self) -> str:
        h, w = self.shape
        return (
            f"PageLayout({self.cgra.rows}x{self.cgra.cols} into "
            f"{self.num_pages} pages of {h}x{w}"
            f"{', ' + str(len(self.uncovered)) + ' PEs uncovered' if self.uncovered else ''})"
        )
