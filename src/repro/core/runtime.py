"""The multithreading runtime: the OS-side CGRA manager.

"The OS is in charge of keeping track of currently running threads.  When
an additional thread is launched on the CGRA, the OS will transform the
thread for the current environment and transfer the thread into CGRA
memory." (§VII-B)

:class:`CGRAManager` owns the page pool of one paged CGRA and brokers it
between threads: arrivals are admitted through the allocation policy
(shrinking residents when needed, queueing when the array is saturated),
departures trigger expansion and admit queued threads.  Every allocation
change is recorded as a :class:`Reallocation` event so callers can charge
transformation/transfer overheads and drive the PageMaster transformation
for the affected threads.

The compiled facts a thread arrives with — its page need, constrained II,
and the steady-state II table of its shrunk schedules — come from a
:class:`repro.pipeline.CompiledKernel` artifact (via
:meth:`~repro.pipeline.CompiledKernel.profile`); mapping is never redone
at runtime, which is the paper's §III premise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.policies import Allocation, AllocationPolicy, HalvingPolicy
from repro.util.errors import ReproError

__all__ = [
    "Reallocation",
    "ThreadHandle",
    "CGRAManager",
    "check_allocation_map",
]


def _declared_policy_flag(policy, flag: str, methods: tuple[str, ...]):
    """Resolve an optimization flag a policy class declares about its own
    behavior (``admit_failure_is_state_independent``, ``evicts_residents``).

    The flag is only honored when it is declared at — or more derived
    than — every class providing the methods it makes claims about: a
    subclass that overrides ``admit`` without re-declaring the flag
    silently loses the optimization instead of silently breaking the
    manager's bookkeeping.  Returns the declared value, or ``None`` when
    no trustworthy declaration exists (callers pick the safe default).
    """
    mro = type(policy).__mro__

    def first(attr: str) -> int | None:
        for i, klass in enumerate(mro):
            if attr in klass.__dict__:
                return i
        return None

    fi = first(flag)
    if fi is None:
        return None
    for m in methods:
        mi = first(m)
        if mi is not None and mi < fi:
            return None
    return mro[fi].__dict__[flag]


def check_allocation_map(
    n_pages: int, residents: dict[int, Allocation]
) -> None:
    """Validate a resident map: every allocation contiguous (by
    construction of :class:`Allocation`), in-bounds, and disjoint.

    Shared by :class:`CGRAManager` after every change and by the
    simulation oracle (:mod:`repro.sim.oracle`), which re-checks the map
    at every recorded decision independently of the manager.  Runs on
    every manager decision of every simulated thread, so it works on
    interval endpoints — O(k log k) in the resident count, never
    materialising per-page sets.
    """
    spans = []
    for t, a in residents.items():
        end = a.start + a.length
        if end > n_pages:
            raise ReproError(f"allocation of thread {t} exceeds pool")
        spans.append((a.start, end, t))
    if len(spans) < 2:
        return
    spans.sort()
    prev_end = spans[0][1]
    for start, end, t in spans[1:]:
        if start < prev_end:
            raise ReproError(f"overlapping allocations at thread {t}")
        prev_end = end


@dataclass(frozen=True, slots=True)
class Reallocation:
    """One allocation change: a thread's page segment before/after."""

    tid: int
    before: Allocation | None
    after: Allocation | None


@dataclass(slots=True)
class ThreadHandle:
    """A thread known to the manager."""

    tid: int
    allocation: Allocation | None = None  # None -> queued
    reallocations: int = 0

    @property
    def resident(self) -> bool:
        return self.allocation is not None


@dataclass
class CGRAManager:
    """Page pool manager for one CGRA."""

    n_pages: int
    policy: AllocationPolicy = field(default_factory=HalvingPolicy)
    # per-decision invariant checking; large-scale simulations may turn
    # this off and rely on sampled oracle verification instead (the
    # decisions themselves are identical either way)
    validate: bool = True

    def __post_init__(self) -> None:
        if self.n_pages < 1:
            raise ReproError(f"n_pages must be >= 1, got {self.n_pages}")
        self.threads: dict[int, ThreadHandle] = {}
        self._queue: deque[int] = deque()
        # the resident map is maintained incrementally on every allocation
        # change: at datacenter thread counts the manager tracks thousands
        # of queued threads, and rebuilding the map by scanning them all
        # on every decision made the simulator quadratic in thread count
        self._residents: dict[int, Allocation] = {}
        self.needs: dict[int, int] = {}
        # negative admission cache: when the policy's admission failures
        # depend only on the resident map (all stock policies), one failed
        # probe means every further probe fails until an allocation
        # changes.  `_rev` counts allocation changes; `_admit_fail_rev`
        # remembers the revision of the last failed probe.
        neg = _declared_policy_flag(
            self.policy, "admit_failure_is_state_independent", ("admit",)
        )
        self._neg_cache_ok = bool(neg)
        # unknown policies get the safe default: assume they may evict
        evicts = _declared_policy_flag(
            self.policy, "evicts_residents", ("admit", "release")
        )
        self._policy_evicts = True if evicts is None else bool(evicts)
        self._rev = 0
        self._admit_fail_rev = -1

    # -- queries -------------------------------------------------------------------

    @property
    def queue(self) -> list[int]:
        """Queued thread ids in admission order (a snapshot copy)."""
        return list(self._queue)

    @property
    def residents(self) -> dict[int, Allocation]:
        return dict(self._residents)

    def allocation_of(self, tid: int) -> Allocation | None:
        h = self.threads.get(tid)
        return h.allocation if h else None

    def _check_invariants(self) -> None:
        if self.validate:
            check_allocation_map(self.n_pages, self._residents)

    # -- lifecycle -----------------------------------------------------------------

    def request(self, tid: int, need: int | None = None) -> list[Reallocation]:
        """Thread *tid* wants the CGRA (optionally declaring its page
        *need*).  Returns the reallocations applied (empty if queued)."""
        if tid in self.threads:
            raise ReproError(f"thread {tid} already known to the manager")
        self.threads[tid] = ThreadHandle(tid)
        if need is not None:
            self.needs[tid] = need
        if self._neg_cache_ok and self._admit_fail_rev == self._rev:
            new_map = None
        else:
            new_map = self.policy.admit(
                self.n_pages, self._residents, tid, self.needs
            )
        if new_map is None:
            self._admit_fail_rev = self._rev
            self._queue.append(tid)
            return []
        events = self._apply(new_map)
        self._check_invariants()
        return events

    def release(self, tid: int) -> list[Reallocation]:
        """Thread *tid* is done with the CGRA.  Expands survivors and admits
        queued threads; returns all reallocations applied."""
        h = self.threads.pop(tid, None)
        if h is None:
            raise ReproError(f"thread {tid} unknown to the manager")
        if h.allocation is None:
            self._queue.remove(tid)
            return []
        # the policy sees the departing thread still resident; it must
        # return a map without it
        new_map = self.policy.release(self.n_pages, self._residents, tid, self.needs)
        del self._residents[tid]
        self.needs.pop(tid, None)
        events = self._apply(new_map, departed=tid, before=h.allocation)
        # admit as many queued threads as now fit
        while self._queue:
            nxt = self._queue[0]
            if self._neg_cache_ok and self._admit_fail_rev == self._rev:
                break
            new_map = self.policy.admit(
                self.n_pages, self._residents, nxt, self.needs
            )
            if new_map is None:
                self._admit_fail_rev = self._rev
                break
            self._queue.popleft()
            events.extend(self._apply(new_map))
        self._check_invariants()
        return events

    # -- internals ------------------------------------------------------------------

    def _apply(
        self,
        new_map: dict[int, Allocation],
        departed: int | None = None,
        before: Allocation | None = None,
    ) -> list[Reallocation]:
        self._rev += 1
        threads = self.threads
        residents = self._residents
        events: list[Reallocation] = []
        if departed is not None:
            events.append(Reallocation(departed, before, None))
        for tid, alloc in new_map.items():
            if tid == departed:
                continue
            h = threads[tid]
            # field compare, not dataclass __eq__ — this is the hottest
            # comparison of the whole simulation loop
            old = h.allocation
            if old is None or old.start != alloc.start or old.length != alloc.length:
                events.append(Reallocation(tid, old, alloc))
                h.allocation = alloc
                h.reallocations += 1
                residents[tid] = alloc
        if not self._policy_evicts:
            return events
        # scan the (bounded) resident map, never the full thread table —
        # queued threads cannot be evicted and vastly outnumber residents
        # under heavy traffic
        for tid in [t for t in self._residents if t not in new_map]:
            if tid == departed:
                continue
            # policy dropped a resident: treat as eviction back to queue
            h = self.threads[tid]
            events.append(Reallocation(tid, h.allocation, None))
            h.allocation = None
            del self._residents[tid]
            self._queue.append(tid)
        return events
