"""The multithreading runtime: the OS-side CGRA manager.

"The OS is in charge of keeping track of currently running threads.  When
an additional thread is launched on the CGRA, the OS will transform the
thread for the current environment and transfer the thread into CGRA
memory." (§VII-B)

:class:`CGRAManager` owns the page pool of one paged CGRA and brokers it
between threads: arrivals are admitted through the allocation policy
(shrinking residents when needed, queueing when the array is saturated),
departures trigger expansion and admit queued threads.  Every allocation
change is recorded as a :class:`Reallocation` event so callers can charge
transformation/transfer overheads and drive the PageMaster transformation
for the affected threads.

The compiled facts a thread arrives with — its page need, constrained II,
and the steady-state II table of its shrunk schedules — come from a
:class:`repro.pipeline.CompiledKernel` artifact (via
:meth:`~repro.pipeline.CompiledKernel.profile`); mapping is never redone
at runtime, which is the paper's §III premise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.policies import Allocation, AllocationPolicy, HalvingPolicy
from repro.util.errors import ReproError

__all__ = [
    "Reallocation",
    "ThreadHandle",
    "CGRAManager",
    "check_allocation_map",
]


def check_allocation_map(
    n_pages: int, residents: dict[int, Allocation]
) -> None:
    """Validate a resident map: every allocation contiguous (by
    construction of :class:`Allocation`), in-bounds, and disjoint.

    Shared by :class:`CGRAManager` after every change and by the
    simulation oracle (:mod:`repro.sim.oracle`), which re-checks the map
    at every recorded decision independently of the manager.
    """
    claimed: set[int] = set()
    for t, a in residents.items():
        pages = set(a.pages)
        if pages & claimed:
            raise ReproError(f"overlapping allocations at thread {t}")
        if a.start + a.length > n_pages:
            raise ReproError(f"allocation of thread {t} exceeds pool")
        claimed |= pages


@dataclass(frozen=True)
class Reallocation:
    """One allocation change: a thread's page segment before/after."""

    tid: int
    before: Allocation | None
    after: Allocation | None


@dataclass
class ThreadHandle:
    """A thread known to the manager."""

    tid: int
    allocation: Allocation | None = None  # None -> queued
    reallocations: int = 0

    @property
    def resident(self) -> bool:
        return self.allocation is not None


@dataclass
class CGRAManager:
    """Page pool manager for one CGRA."""

    n_pages: int
    policy: AllocationPolicy = field(default_factory=HalvingPolicy)

    def __post_init__(self) -> None:
        if self.n_pages < 1:
            raise ReproError(f"n_pages must be >= 1, got {self.n_pages}")
        self.threads: dict[int, ThreadHandle] = {}
        self.queue: list[int] = []
        self.needs: dict[int, int] = {}

    # -- queries -------------------------------------------------------------------

    @property
    def residents(self) -> dict[int, Allocation]:
        return {
            t: h.allocation for t, h in self.threads.items() if h.allocation
        }

    def allocation_of(self, tid: int) -> Allocation | None:
        h = self.threads.get(tid)
        return h.allocation if h else None

    def _check_invariants(self) -> None:
        check_allocation_map(self.n_pages, self.residents)

    # -- lifecycle -----------------------------------------------------------------

    def request(self, tid: int, need: int | None = None) -> list[Reallocation]:
        """Thread *tid* wants the CGRA (optionally declaring its page
        *need*).  Returns the reallocations applied (empty if queued)."""
        if tid in self.threads:
            raise ReproError(f"thread {tid} already known to the manager")
        self.threads[tid] = ThreadHandle(tid)
        if need is not None:
            self.needs[tid] = need
        new_map = self.policy.admit(self.n_pages, self.residents, tid, self.needs)
        if new_map is None:
            self.queue.append(tid)
            return []
        events = self._apply(new_map)
        self._check_invariants()
        return events

    def release(self, tid: int) -> list[Reallocation]:
        """Thread *tid* is done with the CGRA.  Expands survivors and admits
        queued threads; returns all reallocations applied."""
        h = self.threads.pop(tid, None)
        if h is None:
            raise ReproError(f"thread {tid} unknown to the manager")
        if h.allocation is None:
            self.queue.remove(tid)
            return []
        residents = self.residents
        residents[tid] = h.allocation  # policy sees the departing thread
        new_map = self.policy.release(self.n_pages, residents, tid, self.needs)
        self.needs.pop(tid, None)
        events = self._apply(new_map, departed=tid, before=h.allocation)
        # admit as many queued threads as now fit
        while self.queue:
            nxt = self.queue[0]
            new_map = self.policy.admit(
                self.n_pages, self.residents, nxt, self.needs
            )
            if new_map is None:
                break
            self.queue.pop(0)
            events.extend(self._apply(new_map))
        self._check_invariants()
        return events

    # -- internals ------------------------------------------------------------------

    def _apply(
        self,
        new_map: dict[int, Allocation],
        departed: int | None = None,
        before: Allocation | None = None,
    ) -> list[Reallocation]:
        events: list[Reallocation] = []
        if departed is not None:
            events.append(Reallocation(departed, before, None))
        for tid, alloc in new_map.items():
            if tid == departed:
                continue
            h = self.threads[tid]
            if h.allocation != alloc:
                events.append(Reallocation(tid, h.allocation, alloc))
                h.allocation = alloc
                h.reallocations += 1
        for tid, h in self.threads.items():
            if h.allocation is not None and tid not in new_map and tid != departed:
                # policy dropped a resident: treat as eviction back to queue
                events.append(Reallocation(tid, h.allocation, None))
                h.allocation = None
                self.queue.append(tid)
        return events
