"""Intra-page mirroring for page folding (§VI-D, Fig. 6).

When the PageMaster transformation stacks page instance *n* onto the same
tile (or an adjacent tile) as its ring predecessor *n-1*, the page's
internal mapping must be mirrored "across the among-page dependency
direction" so producer/consumer PEs line up: if pages *n-1* and *n* were
vertically adjacent in the original layout, page *n*'s mapping is flipped
across the horizontal axis; if horizontally adjacent, across the vertical
axis.  Composing these flips along the ring yields one static orientation
per page, ``fold_orientations``.

With these orientations, whenever two consecutive page instances land in
the *same* column, every inter-instance transfer lands on the *same
physical PE*: a boundary-crossing ring dependency maps producer and
consumer onto one PE (the consumer reads its own rotating register file),
and same-page storage dependencies keep their original self/neighbour
geometry because all instances of a page share one orientation.  Transfers
between instances in *different* columns fall back to the reserved global
storage area when the mirrored positions are not mesh-adjacent; the
simulator counts those.
"""

from __future__ import annotations

from repro.arch.interconnect import Coord
from repro.core.paging import Orientation, PageLayout
from repro.util.errors import TransformError

__all__ = ["boundary_axis", "fold_orientations"]


def boundary_axis(layout: PageLayout, a: int, b: int) -> str:
    """Direction of the shared boundary between chain-consecutive pages.

    Returns ``"vertical"`` when the tiles are stacked vertically (the
    dependency crosses a horizontal boundary) and ``"horizontal"`` when
    side by side.
    """
    oa = layout.page_origin(a)
    ob = layout.page_origin(b)
    h, w = layout.shape
    if oa.col == ob.col and abs(oa.row - ob.row) == h:
        return "vertical"
    if oa.row == ob.row and abs(oa.col - ob.col) == w:
        return "horizontal"
    raise TransformError(
        f"pages {a} and {b} are not chain-adjacent tiles "
        f"(origins {oa} and {ob})"
    )


def fold_orientations(layout: PageLayout) -> list[Orientation]:
    """One orientation per ring index: page 0 keeps identity, page *n*
    composes page *n-1*'s orientation with the mirror across its incoming
    boundary axis."""
    out = [Orientation.IDENTITY]
    for n in range(1, layout.num_pages):
        axis = boundary_axis(layout, n - 1, n)
        mirror = (
            Orientation.MIRROR_H if axis == "vertical" else Orientation.MIRROR_V
        )
        out.append(mirror.compose(out[-1]))
    return out


def folded_position(
    layout: PageLayout,
    orientations: list[Orientation],
    page: int,
    local: Coord,
    target_page: int,
) -> Coord:
    """Physical PE of *page*'s item at *local* when folded onto
    *target_page*'s tile."""
    return layout.place_local(target_page, local, orientations[page])
