"""The PageMaster transformation (§VI-D, Algorithm 1).

Reschedules an application mapped on *N* pages (initiation interval
``II_p``) onto *M <= N* page columns at runtime, preserving every ring
dependency, in time linear in the number of page instances placed.

Terminology used here:

* a **batch** is one cycle of the original schedule: batch *b* executes the
  page instances ``{p_(n, b mod II_p) : 0 <= n < N}``.  The transformation
  places batches in order; batch placements only depend on the previous
  batch, which is what makes ``PlacePage`` constant-time per page.
* a **slot** of the target is ``(column, time)``; a column is one page-sized
  tile of the shrunken allocation, columns 0..M-1 being chain-adjacent.

The algorithm follows the paper:

1. **Schedule initialization** — batch 0 is laid out as a zigzag
   "scheduling line": an arbitrary start page at column 0, its ring
   neighbours fanning outwards (``p_(n-1)`` at column 1, ``p_(n+1)`` at
   column 2, ...), so every ring-adjacent pair sits within two columns.
   When N > M the leftover pages are placed as *tails* that extend the two
   ends of the line downwards in the end columns.
2. **PlacePage** — every later instance is placed by looking up the columns
   ``d1`` (of ``p_(n-1, b-1)``) and ``d2`` (of ``p_(n, b-1)``) and applying
   the paper's three cases: two hops apart -> the middle column; one hop
   apart -> the boundary column; zero hops -> the emptier adjacent column.
   The time is the earliest free slot in the chosen column after both
   dependencies have executed.  Pages within a batch are placed in reverse
   initialization order.

Because the column pattern evolves from batch to batch, the transformed
schedule is not a plain modulo schedule with one period; it is *eventually
periodic* (the placement state provably revisits itself since it lives in a
finite space).  :class:`PageMaster` detects the period and reports the
steady-state initiation interval as an exact fraction —
``ii_q_effective = II_p * rows_per_batch`` — which equals the resource
bound ``II_p * N / M`` whenever the placement wastes no slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.util.errors import TransformError

__all__ = ["PagePlacement", "PageMaster", "steady_state_ii"]


@dataclass
class PagePlacement:
    """Result of a PageMaster run.

    ``slots[(n, b)] = (col, time)``: page *n*'s instance of batch *b*.
    ``strategy`` is ``"grouped"`` for the optimal stacked fold (legal when
    M divides N and the schedule uses no ring-wrap dependency — the
    generalization of Fig. 6) or ``"zigzag"`` for the paper's Algorithm 1,
    whose placements additionally satisfy the wrap dependency.
    """

    n_pages: int
    ii_p: int
    m: int
    start_page: int
    slots: dict[tuple[int, int], tuple[int, int]] = field(default_factory=dict)
    batches: int = 0
    init_order: tuple[int, ...] = ()
    irregular: int = 0
    period_batches: int | None = None
    period_rows: int | None = None
    strategy: str = "zigzag"

    def col(self, n: int, b: int) -> int:
        return self.slots[(n, b)][0]

    def time(self, n: int, b: int) -> int:
        return self.slots[(n, b)][1]

    @property
    def makespan(self) -> int:
        """Total rows used (last placement time + 1)."""
        if not self.slots:
            return 0
        return max(t for (_, t) in self.slots.values()) + 1

    def rows_per_batch(self) -> Fraction:
        """Steady-state rows consumed per original cycle."""
        if self.period_batches:
            return Fraction(self.period_rows, self.period_batches)
        if self.batches == 0:
            return Fraction(0)
        # no period detected within the horizon: report the empirical rate
        return Fraction(self.makespan, self.batches)

    def ii_q_effective(self) -> Fraction:
        """Steady-state initiation interval of the transformed schedule."""
        return self.rows_per_batch() * self.ii_p

    def ii_q_bound(self) -> Fraction:
        """Resource lower bound ``II_p * N / M`` (tighter than the paper's
        ``II_p * floor(N/M)``)."""
        return Fraction(self.n_pages * self.ii_p, self.m)

    def efficiency(self) -> float:
        """Bound / achieved: 1.0 means no target slot is wasted."""
        ach = self.ii_q_effective()
        return float(self.ii_q_bound() / ach) if ach else 0.0

    def summary(self) -> str:
        return (
            f"PageMaster N={self.n_pages} II_p={self.ii_p} -> M={self.m}: "
            f"II_q={float(self.ii_q_effective()):.3f} "
            f"(bound {float(self.ii_q_bound()):.3f}, "
            f"eff {self.efficiency():.2f}, "
            f"period {self.period_batches} batches / {self.period_rows} rows, "
            f"{self.irregular} irregular)"
        )


class PageMaster:
    """Places batches of an (N, II_p) page schedule onto M columns.

    ``wrap_used`` declares whether the schedule actually depends on the
    ring-wrap link (page N-1 feeding page 0).  Our paged compiler restricts
    dependencies to a chain (a subset of the ring, see
    :meth:`~repro.core.paging.PageLayout.ring_hop_allowed`), so the default
    is False, which unlocks the *grouped fold* whenever M divides N: ring
    pages are split into M contiguous groups of K = N/M, column *x* hosts
    group *x* permanently, and each batch lays group members out in K
    consecutive rows — every target slot is filled, achieving the resource
    bound ``II_q = II_p * N / M`` exactly (Fig. 6 is the M=1 case).  For
    non-dividing M (or when the wrap link is live) the paper's Algorithm 1
    zigzag placement is used.
    """

    def __init__(
        self,
        n_pages: int,
        ii_p: int,
        m: int,
        *,
        start_page: int = 0,
        wrap_used: bool = False,
        force_zigzag: bool = False,
    ) -> None:
        self.wrap_used = wrap_used
        self.force_zigzag = force_zigzag
        if n_pages < 1:
            raise TransformError(f"N must be >= 1, got {n_pages}")
        if ii_p < 1:
            raise TransformError(f"II_p must be >= 1, got {ii_p}")
        if not 1 <= m <= n_pages:
            raise TransformError(
                f"target M={m} must satisfy 1 <= M <= N={n_pages}"
            )
        if not 0 <= start_page < n_pages:
            raise TransformError(f"start page {start_page} out of range")
        self.n = n_pages
        self.ii_p = ii_p
        self.m = m
        self.start_page = start_page

    # -- public ------------------------------------------------------------------

    def place(self, batches: int | None = None) -> PagePlacement:
        """Run the transformation for *batches* original cycles (default:
        long enough to detect the steady-state period)."""
        if (
            not self.force_zigzag
            and not self.wrap_used
            and self.n % self.m == 0
        ):
            return self._place_grouped(batches)
        detect = batches is None
        horizon = batches if batches is not None else 8 * self.n * self.ii_p + 64
        result = PagePlacement(self.n, self.ii_p, self.m, self.start_page)
        used: list[set[int]] = [set() for _ in range(self.m)]
        fill: list[int] = [0] * self.m  # pages scheduled per column

        col_prev, time_prev, init_order = self._init_batch(result, used, fill)
        result.init_order = tuple(init_order)
        reverse_order = tuple(reversed(init_order))
        states: dict = {}

        b = 1
        while b < horizon:
            col_snap = dict(col_prev)
            time_snap = dict(time_prev)
            for n in reverse_order:
                d1 = col_snap[(n - 1) % self.n]
                d2 = col_snap[n]
                t1 = time_snap[(n - 1) % self.n]
                t2 = time_snap[n]
                col = self._choose_column(d1, d2, fill, result)
                t = self._next_free(used[col], max(t1, t2))
                self._put(result, used, fill, n, b, col, t)
                col_prev[n] = col
                time_prev[n] = t
            result.batches = b + 1
            if detect:
                state, base = self._state_key(col_prev, time_prev, used)
                if state in states:
                    b0, base0 = states[state]
                    result.period_batches = b - b0
                    result.period_rows = base - base0
                    break
                states[state] = (b, base)
            b += 1
        return result

    # -- phases ------------------------------------------------------------------

    def _place_grouped(self, batches: int | None) -> PagePlacement:
        """Optimal stacked fold for M | N without a live wrap dependency:
        ``col(n) = n // K``, ``time(n, b) = b*K + (n mod K)``, K = N/M."""
        k = self.n // self.m
        count = batches if batches is not None else 2  # period is 1 batch
        result = PagePlacement(
            self.n,
            self.ii_p,
            self.m,
            self.start_page,
            strategy="grouped",
            period_batches=1,
            period_rows=k,
        )
        for b in range(count):
            for n in range(self.n):
                result.slots[(n, b)] = (n // k, b * k + (n % k))
        result.batches = count
        result.init_order = tuple(range(self.n))
        return result

    def _init_batch(self, result, used, fill):
        """Batch 0: zigzag scheduling line plus tails (paper §VI-D.1)."""
        n0, N, M = self.start_page, self.n, self.m
        line: list[int] = [n0]
        d = 1
        while len(line) < min(N, M):
            line.append((n0 - d) % N)
            if len(line) < min(N, M):
                line.append((n0 + d) % N)
            d += 1
        col_prev: dict[int, int] = {}
        time_prev: dict[int, int] = {}
        for c, n in enumerate(line):
            self._put(result, used, fill, n, 0, c, 0)
            col_prev[n] = c
            time_prev[n] = 0
        init_order = list(line)
        if N > M:
            minus = (N - 1) // 2 if M >= N else self._minus_count(len(line))
            plus = len(line) - 1 - minus
            rem = [(n0 + plus + k) % N for k in range(1, N - len(line) + 1)]
            plus_nb = (n0 + plus) % N  # growth front on the + side
            minus_nb = (n0 - minus) % N
            take_plus = True
            while rem:
                if len(rem) == 1:
                    n = rem.pop()
                    d1 = col_prev[plus_nb] if take_plus else col_prev[minus_nb]
                    d2 = col_prev[minus_nb] if take_plus else col_prev[plus_nb]
                    t_after = max(time_prev[plus_nb], time_prev[minus_nb])
                    col = self._choose_column(d1, d2, fill, result)
                else:
                    if take_plus:
                        n = rem.pop(0)
                        col = col_prev[plus_nb]
                        t_after = time_prev[plus_nb]
                        plus_nb = n
                    else:
                        n = rem.pop()
                        col = col_prev[minus_nb]
                        t_after = time_prev[minus_nb]
                        minus_nb = n
                t = self._next_free(used[col], t_after)
                self._put(result, used, fill, n, 0, col, t)
                col_prev[n] = col
                time_prev[n] = t
                init_order.append(n)
                take_plus = not take_plus
        result.batches = 1
        return col_prev, time_prev, init_order

    @staticmethod
    def _minus_count(line_len: int) -> int:
        """How many minus-side pages the zigzag line of this length holds."""
        return line_len // 2

    def _choose_column(self, d1: int, d2: int, fill, result) -> int:
        """The three PlacePage cases (Algorithm 1)."""
        M = self.m
        diff = abs(d1 - d2)
        if diff > 2:
            raise TransformError(
                f"dependency columns {d1} and {d2} more than two hops apart: "
                f"placement invariant broken"
            )
        if diff == 2:
            return (d1 + d2) // 2
        if diff == 1:
            if d1 == 0 or d2 == 0:
                return 0
            if d1 == M - 1 or d2 == M - 1:
                return M - 1
            # The paper states this case only arises at the boundary; fall
            # back to the emptier of the two columns and count it.
            result.irregular += 1
            return d1 if fill[d1] <= fill[d2] else d2
        # zero hops apart
        cands = [c for c in (d1 - 1, d1 + 1) if 0 <= c < M]
        if not cands:  # M == 1
            return d1
        return min(cands, key=lambda c: (fill[c], c))

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _next_free(used: set[int], after: int) -> int:
        t = after + 1
        while t in used:
            t += 1
        return t

    def _put(self, result, used, fill, n, b, col, t) -> None:
        if not 0 <= col < self.m:
            raise TransformError(f"column {col} out of range [0,{self.m})")
        if t in used[col]:
            raise TransformError(f"slot (col {col}, time {t}) double-booked")
        used[col].add(t)
        fill[col] += 1
        result.slots[(n, b)] = (col, t)

    def _state_key(self, col_prev, time_prev, used):
        """Canonical placement state for period detection.

        Future placements depend only on the last batch's columns/times and
        the free structure of each column above the oldest live time; shift
        everything by that base so translated states compare equal.
        """
        base = min(time_prev.values())
        cols = tuple(col_prev[n] for n in range(self.n))
        times = tuple(time_prev[n] - base for n in range(self.n))
        frontier = tuple(
            tuple(sorted(t - base for t in used[c] if t >= base))
            for c in range(self.m)
        )
        return (cols, times, frontier), base


def steady_state_ii(
    n_pages: int,
    ii_p: int,
    m: int,
    *,
    start_page: int = 0,
    wrap_used: bool = False,
) -> Fraction:
    """Steady-state II of the PageMaster-transformed schedule, exact."""
    placement = PageMaster(
        n_pages, ii_p, m, start_page=start_page, wrap_used=wrap_used
    ).place()
    return placement.ii_q_effective()
