"""Independent validation of PageMaster placements.

Re-checks the §VI-C output constraints of the transformation from first
principles, treating :class:`~repro.core.pagemaster.PageMaster` as
untrusted:

* **slot exclusivity** — no two page instances share a (column, time) slot;
* **dependency feasibility** — for every instance ``(n, b)`` with ``b>=1``,
  its producers ``(n-1, b-1)`` (ring) and ``(n, b-1)`` (storage) are placed
  at strictly earlier times and within one column hop, so a value can ride
  the mesh or wait in the producer's rotating register file;
* **neighbour invariant** — ring-adjacent pages of the same batch sit
  within two columns of each other (the paper's two-hop argument, which is
  what keeps ``PlacePage`` well defined for the *next* batch);
* **column range** and **monotone per-page times** (an instance never runs
  before the same page's previous instance).
"""

from __future__ import annotations

from repro.core.pagemaster import PagePlacement
from repro.util.errors import ConstraintViolation

__all__ = ["check_placement"]


def check_placement(p: PagePlacement, *, require_wrap: bool | None = None) -> None:
    """Raise :class:`ConstraintViolation` on any violated §VI-C constraint.

    ``require_wrap`` controls whether the ring-wrap dependency (page N-1
    feeding page 0) must also satisfy the column/time constraints.  The
    default follows the placement's strategy: zigzag placements (paper
    Algorithm 1) are built to satisfy the full ring including the wrap;
    grouped folds are only legal for wrap-free (chain) schedules, so the
    wrap pair is exempt.
    """
    if require_wrap is None:
        require_wrap = p.strategy == "zigzag"
    seen: dict[tuple[int, int], tuple[int, int]] = {}
    for (n, b), (col, t) in p.slots.items():
        if not 0 <= col < p.m:
            raise ConstraintViolation(
                f"instance ({n},{b}) at column {col} outside [0,{p.m})"
            )
        if t < 0:
            raise ConstraintViolation(f"instance ({n},{b}) at negative time {t}")
        if (col, t) in seen:
            raise ConstraintViolation(
                f"slot (col {col}, t {t}) holds both {seen[(col, t)]} and ({n},{b})"
            )
        seen[(col, t)] = (n, b)

    batches = p.batches
    for b in range(batches):
        for n in range(p.n_pages):
            if (n, b) not in p.slots:
                raise ConstraintViolation(f"instance ({n},{b}) never placed")

    for b in range(1, batches):
        for n in range(p.n_pages):
            col, t = p.slots[(n, b)]
            for dep in ((n - 1) % p.n_pages, n):
                if dep == p.n_pages - 1 and n == 0 and not require_wrap:
                    continue  # wrap-free schedule: no such dependency
                dcol, dt = p.slots[(dep, b - 1)]
                if t <= dt:
                    raise ConstraintViolation(
                        f"({n},{b}) at t={t} not after its dependency "
                        f"({dep},{b - 1}) at t={dt}"
                    )
                if abs(col - dcol) > 1:
                    raise ConstraintViolation(
                        f"({n},{b}) at col {col} more than one hop from "
                        f"dependency ({dep},{b - 1}) at col {dcol}"
                    )

    if p.n_pages > 1:
        for b in range(batches):
            for n in range(p.n_pages):
                if n == p.n_pages - 1 and not require_wrap:
                    continue  # wrap pair has no common consumer
                col, _ = p.slots[(n, b)]
                ncol, _ = p.slots[((n + 1) % p.n_pages, b)]
                if abs(col - ncol) > 2:
                    raise ConstraintViolation(
                        f"ring neighbours {n} and {(n + 1) % p.n_pages} of "
                        f"batch {b} are {abs(col - ncol)} columns apart"
                    )
