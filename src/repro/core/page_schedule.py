"""Page-level view of a mapping: the schedule ``P = {p_(n,t)}`` of §VI-C.

A paged mapping groups every claimed (PE, modulo-slot) — operations *and*
route steps — into *page instances*: ``p_(n, t)`` is the set of things page
*n* does at modulo time *t*.  The PageMaster transformation moves these
instances around as rigid units, so this module records, per instance, each
item's page-local coordinate and flat start time, plus the *actual*
page-level dependencies observed in the mapping (which must be a subset of
the ring pattern the transformation assumes).

This module deliberately avoids importing :mod:`repro.compiler` (the paged
compiler imports us); it consumes any object with the
:class:`~repro.compiler.mapping.Mapping` attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.arch.interconnect import Coord
from repro.core.paging import PageLayout
from repro.util.errors import ConstraintViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.mapping import Mapping

__all__ = ["SlotItem", "PageInstance", "PageSchedule", "extract_page_schedule"]


@dataclass(frozen=True)
class SlotItem:
    """One occupant of a page instance.

    ``kind`` is ``"op"`` (ref = DFG op id) or ``"route"`` (ref = DFG edge
    id, ``hop`` = index of the step within the edge's route).  ``flat_time``
    is the item's consumer-frame start time for kernel iteration 0 — it can
    be negative for route steps of loop-carried edges; modulo ``II`` it
    lands in this instance's slot.
    """

    kind: str
    ref: int
    local: Coord
    flat_time: int
    hop: int = 0


@dataclass(frozen=True)
class PageInstance:
    """Contents of page *n* at modulo time *t*."""

    page: int
    mtime: int
    items: tuple[SlotItem, ...]

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class PageSchedule:
    """``P``: page instances plus observed page-level dependencies.

    ``deps`` holds the transfers the mapping actually performs, as tuples
    ``((n_src, t_src), (n_dst, t_dst), kind)`` with ``kind`` in
    ``{"self", "ring"}`` and ``t_dst == (t_src + 1) % II``.
    """

    layout: PageLayout
    ii: int
    instances: dict[tuple[int, int], PageInstance] = field(default_factory=dict)
    deps: set[tuple[tuple[int, int], tuple[int, int], str]] = field(
        default_factory=set
    )

    @property
    def num_pages(self) -> int:
        return self.layout.num_pages

    def instance(self, page: int, mtime: int) -> PageInstance:
        key = (page, mtime % self.ii)
        inst = self.instances.get(key)
        if inst is None:
            return PageInstance(page, mtime % self.ii, ())
        return inst

    def occupancy(self) -> float:
        """Fraction of (page, modulo-slot) pairs that do any work."""
        busy = sum(1 for inst in self.instances.values() if inst.items)
        return busy / float(self.num_pages * self.ii)

    def validate_ring(self) -> None:
        """Every observed dependency must fit the ring pattern: same page,
        or from the ring predecessor, always one cycle apart."""
        for (src, dst, kind) in sorted(self.deps):
            (n_s, t_s), (n_d, t_d) = src, dst
            if t_d != (t_s + 1) % self.ii and self.ii > 1:
                raise ConstraintViolation(
                    f"page dep {src}->{dst} is not one cycle apart"
                )
            if kind == "self":
                if n_s != n_d:
                    raise ConstraintViolation(f"self dep {src}->{dst} changes page")
            elif kind == "ring":
                if n_d != self.layout.ring_succ(n_s):
                    raise ConstraintViolation(
                        f"ring dep {src}->{dst} is not a forward ring hop"
                    )
            else:
                raise ConstraintViolation(f"unknown dep kind {kind!r}")

    def summary(self) -> str:
        ring = sum(1 for d in self.deps if d[2] == "ring")
        return (
            f"page schedule: {self.num_pages} pages x II={self.ii}, "
            f"occupancy {self.occupancy():.2f}, "
            f"{len(self.deps)} page deps ({ring} ring)"
        )


def extract_page_schedule(mapping: "Mapping", layout: PageLayout) -> PageSchedule:
    """Group a ring-constrained mapping into its page-level schedule."""
    ii = mapping.ii
    items: dict[tuple[int, int], list[SlotItem]] = {}

    def put(pe: Coord, time: int, item_kind: str, ref: int, hop: int = 0) -> None:
        page = layout.page_of.get(pe)
        if page is None:
            raise ConstraintViolation(
                f"{item_kind} {ref} placed on uncovered PE {pe}"
            )
        key = (page, time % ii)
        items.setdefault(key, []).append(
            SlotItem(item_kind, ref, layout.local_of[pe], time, hop)
        )

    for p in mapping.placements.values():
        put(p.pe, p.time, "op", p.op_id)
    for r in mapping.routes.values():
        for hop, s in enumerate(r.steps):
            put(s.pe, s.time, "route", r.edge_id, hop)

    deps: set[tuple[tuple[int, int], tuple[int, int], str]] = set()

    def transfer(src_pe: Coord, src_time: int, dst_pe: Coord, dst_time: int) -> None:
        n_s = layout.page_of[src_pe]
        n_d = layout.page_of[dst_pe]
        kind = "self" if n_s == n_d else "ring"
        deps.add(((n_s, src_time % ii), (n_d, dst_time % ii), kind))

    from repro.arch.isa import Opcode

    for e in mapping.dfg.edges.values():
        if mapping.dfg.ops[e.src].opcode is Opcode.CONST:
            continue  # constant operands are configuration immediates
        dst = mapping.placement(e.dst)
        holder_pe, holder_time = mapping.route_origin(e)
        for s in mapping.route(e.id).steps:
            transfer(holder_pe, holder_time, s.pe, s.time)
            holder_pe, holder_time = s.pe, s.time
        transfer(holder_pe, holder_time, dst.pe, dst.time)

    schedule = PageSchedule(
        layout,
        ii,
        {
            key: PageInstance(key[0], key[1], tuple(v))
            for key, v in sorted(items.items())
        },
        deps,
    )
    schedule.validate_ring()
    return schedule
