"""Page-allocation policies for the multithreading runtime.

The paper's experimental policy (§VII-B.1) is *halving*: "when another
thread requests access to the CGRA, the thread using the most pages is
decreased to use half as many pages and the new thread is resized to fit
into the freed portion"; when schedules do not use the entire CGRA the new
thread simply takes the unused pages, and "threads are expanded as other
threads complete".

Two additional policies support the ablation benches:

* :class:`FairSharePolicy` — rebalance to an equal split on every arrival
  and departure (more transformations, better balance);
* :class:`StaticEqualPolicy` — fixed equal partitions sized for a declared
  maximum thread count, in the spirit of the Polymorphic Pipeline Array
  [28] comparison: no runtime reshaping at all.

Policies work on *segments*: contiguous runs of pages on the layout's
chain (contiguity is what lets the retargeter place transformed schedules
on mesh-adjacent tiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.util.errors import ReproError

__all__ = [
    "Allocation",
    "AllocationPolicy",
    "HalvingPolicy",
    "NeedAwareHalvingPolicy",
    "FairSharePolicy",
    "StaticEqualPolicy",
    "BestFitPolicy",
    "PriorityEvictionPolicy",
]


@dataclass(frozen=True, slots=True)
class Allocation:
    """A contiguous page segment ``[start, start + length)``."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 1 or self.start < 0:
            raise ReproError(f"bad allocation {self.start}+{self.length}")

    @property
    def pages(self) -> tuple[int, ...]:
        return tuple(range(self.start, self.start + self.length))


class AllocationPolicy(Protocol):
    """Decides how page segments change on thread arrival/departure.

    Both hooks receive the current resident map and return the complete new
    map (threads absent from the result are queued / unchanged semantics
    are owned by the manager).  The map passed in is the manager's live
    bookkeeping — policies must treat it as read-only and build a fresh
    dict for their answer; the manager deliberately skips a defensive copy
    on what is the hottest call of a large simulation.  Returning ``None``
    from :meth:`admit` means the newcomer cannot be admitted now.  ``needs`` maps thread ids to
    their page *need* (the compiled kernel's ``pages_used``); policies may
    ignore it, or use it to avoid granting pages a thread cannot convert
    into speed.
    """

    def admit(
        self,
        n_pages: int,
        residents: dict[int, Allocation],
        tid: int,
        needs: dict[int, int] | None = None,
    ) -> dict[int, Allocation] | None: ...

    def release(
        self,
        n_pages: int,
        residents: dict[int, Allocation],
        tid: int,
        needs: dict[int, int] | None = None,
    ) -> dict[int, Allocation]: ...


def _free_segments(n_pages: int, residents: dict[int, Allocation]) -> list[Allocation]:
    if not residents:
        return [Allocation(0, n_pages)]
    used = sorted((a.start, a.length) for a in residents.values())
    free: list[Allocation] = []
    cursor = 0
    for start, length in used:
        if start > cursor:
            free.append(Allocation(cursor, start - cursor))
        cursor = start + length
    if cursor < n_pages:
        free.append(Allocation(cursor, n_pages - cursor))
    return free


class HalvingPolicy:
    """The paper's policy: take free pages if any, else halve the largest."""

    # Optimization contracts the manager reads (see
    # :func:`repro.core.runtime._declared_policy_flag` — a subclass that
    # overrides admit/release without re-declaring them falls back to the
    # safe defaults):
    # whether this policy can admit a newcomer depends only on the resident
    # map, never on who is asking (or their need) — the manager uses this to
    # skip re-probing a saturated array until an allocation changes.
    admit_failure_is_state_independent = True
    # halving shrinks residents but never drops one from the map, so the
    # manager can skip its per-decision eviction scan
    evicts_residents = False

    def admit(self, n_pages, residents, tid, needs=None):
        # inlined free-span scan on (start, length) tuples: this runs ~3x
        # per simulated kernel invocation (request probe, drain admit,
        # drain exit probe), so it never materialises Allocation objects
        # for segments it does not grant
        if residents:
            best_start = best_len = 0
            cursor = 0
            widest = 1
            spans = [(a.start, a.length) for a in residents.values()]
            spans.sort()
            for start, length in spans:
                if start - cursor > best_len:
                    best_start, best_len = cursor, start - cursor
                cursor = start + length
                if length > widest:
                    widest = length
            if n_pages - cursor > best_len:
                best_start, best_len = cursor, n_pages - cursor
        else:
            best_start, best_len = 0, n_pages
            widest = 1
        if best_len:
            out = dict(residents)
            out[tid] = Allocation(best_start, best_len)
            return out
        if widest <= 1:  # nothing splittable; skip building the victim list
            return None
        victims = [t for t, a in residents.items() if a.length > 1]
        if not victims:
            return None
        victim = max(victims, key=lambda t: (residents[t].length, -t))
        a = residents[victim]
        keep = a.length - a.length // 2  # victim keeps the larger half
        out = dict(residents)
        out[victim] = Allocation(a.start, keep)
        out[tid] = Allocation(a.start + keep, a.length - keep)
        return out

    def release(self, n_pages, residents, tid, needs=None):
        # expand an adjacent resident over the freed segment (smallest
        # adjacent first by (length, tid), to even allocations out over
        # time); one pass builds the survivor map and finds the winner
        freed = residents[tid]
        fs = freed.start
        fe = fs + freed.length
        out: dict[int, Allocation] = {}
        grow = None
        grow_key = None
        grow_left = False
        for t, a in residents.items():
            if t == tid:
                continue
            out[t] = a
            is_left = a.start + a.length == fs
            if is_left or a.start == fe:
                key = (a.length, t)
                if grow_key is None or key < grow_key:
                    grow, grow_key, grow_left = t, key, is_left
        if grow is None:
            return out
        a = out[grow]
        if grow_left:
            out[grow] = Allocation(a.start, a.length + freed.length)
        else:
            out[grow] = Allocation(fs, a.length + freed.length)
        return out


class FairSharePolicy:
    """Equal split across residents, rebalanced on every change."""

    admit_failure_is_state_independent = True
    evicts_residents = False

    @staticmethod
    def _split(n_pages: int, tids: list[int]) -> dict[int, Allocation]:
        k = len(tids)
        base, extra = divmod(n_pages, k)
        out: dict[int, Allocation] = {}
        start = 0
        for idx, t in enumerate(sorted(tids)):
            length = base + (1 if idx < extra else 0)
            out[t] = Allocation(start, length)
            start += length
        return out

    def admit(self, n_pages, residents, tid, needs=None):
        if len(residents) + 1 > n_pages:
            return None
        return self._split(n_pages, list(residents) + [tid])

    def release(self, n_pages, residents, tid, needs=None):
        rest = [t for t in residents if t != tid]
        if not rest:
            return {}
        return self._split(n_pages, rest)


class StaticEqualPolicy:
    """PPA-style fixed partitioning for a declared max thread count: the
    CGRA is split into ``max_threads`` equal slices at 'compile time' and
    slices are never resized."""

    admit_failure_is_state_independent = True
    evicts_residents = False

    def __init__(self, max_threads: int) -> None:
        if max_threads < 1:
            raise ReproError(f"max_threads must be >= 1, got {max_threads}")
        self.max_threads = max_threads

    def _slices(self, n_pages: int) -> list[Allocation]:
        k = min(self.max_threads, n_pages)
        base, extra = divmod(n_pages, k)
        out = []
        start = 0
        for idx in range(k):
            length = base + (1 if idx < extra else 0)
            out.append(Allocation(start, length))
            start += length
        return out

    def admit(self, n_pages, residents, tid, needs=None):
        taken = {a.start for a in residents.values()}
        for s in self._slices(n_pages):
            if s.start not in taken:
                out = dict(residents)
                out[tid] = s
                return out
        return None

    def release(self, n_pages, residents, tid, needs=None):
        return {t: a for t, a in residents.items() if t != tid}


class BestFitPolicy(HalvingPolicy):
    """Halving, but free pages are granted best-fit against the newcomer's
    declared need: the smallest free segment that covers the need wins and
    is trimmed to it, leaving the surplus for the next arrival.  Without a
    fitting segment (or without a declared need) the largest free segment
    is granted whole; with no free pages at all it falls back to halving.
    """

    # re-declared because this class overrides admit: best-fit changes
    # *which* pages a newcomer gets, but an admission fails exactly when
    # plain halving's does (no free segment and nothing splittable), and
    # residents are only ever shrunk, never dropped
    admit_failure_is_state_independent = True
    evicts_residents = False

    def admit(self, n_pages, residents, tid, needs=None):
        free = _free_segments(n_pages, residents)
        if not free:
            return super().admit(n_pages, residents, tid, needs)
        need = needs.get(tid) if needs else None
        if need:
            fitting = [s for s in free if s.length >= need]
            if fitting:
                seg = min(fitting, key=lambda s: (s.length, s.start))
                out = dict(residents)
                out[tid] = Allocation(seg.start, need)
                return out
        seg = max(free, key=lambda s: (s.length, -s.start))
        out = dict(residents)
        out[tid] = seg
        return out


class PriorityEvictionPolicy(HalvingPolicy):
    """Halving, but a full array evicts a lower-priority resident.

    Priorities come from the *priorities* map (thread id -> priority,
    higher wins — matching ``ThreadSpec.priority``); threads absent from
    the map rank 0.  Without a map, priority defaults to ``-tid`` (earlier
    threads outrank later ones), which makes evictions fire whenever an
    early thread re-requests the CGRA for a later segment while the array
    is full — the eviction path no stock policy exercises.

    Eviction is restricted to *strictly* lower priorities so the manager's
    re-admission drain terminates: priorities strictly decrease along any
    eviction chain, and an evicted thread can never in turn evict its
    evictor.
    """

    # admission success depends on the requester's priority, so the
    # manager's saturated-array negative cache must not apply; and a
    # successful admission may drop the victim from the map, so the
    # manager must keep its eviction scan
    admit_failure_is_state_independent = False
    evicts_residents = True

    def __init__(self, priorities: dict[int, int] | None = None) -> None:
        self.priorities = priorities

    def _prio(self, tid: int) -> int:
        if self.priorities is None:
            return -tid
        return self.priorities.get(tid, 0)

    def admit(self, n_pages, residents, tid, needs=None):
        p = self._prio(tid)
        victims = [t for t in residents if self._prio(t) < p]
        if victims and not _free_segments(n_pages, residents):
            # lowest priority loses its pages; ties broken by highest tid
            victim = min(victims, key=lambda t: (self._prio(t), -t))
            out = {t: a for t, a in residents.items() if t != victim}
            out[tid] = residents[victim]
            return out
        return super().admit(n_pages, residents, tid, needs)


class NeedAwareHalvingPolicy(HalvingPolicy):
    """Halving, but no thread is ever granted more pages than its kernel's
    need — the grant is trimmed and the surplus stays free for the next
    arrival (§VII-B: a schedule that does not use the entire CGRA leaves
    the unused portion available, with no transformation required).

    Falls back to plain halving when needs are unknown.
    """

    # re-declared (not inherited) because this class overrides admit and
    # release: trimming changes who gets how much, but an admission still
    # fails exactly when plain halving's does, and trimmed residents are
    # shrunk, never dropped
    admit_failure_is_state_independent = True
    evicts_residents = False

    def admit(self, n_pages, residents, tid, needs=None):
        out = super().admit(n_pages, residents, tid, needs)
        if out is None or not needs:
            return out
        trimmed: dict[int, Allocation] = {}
        for t, a in out.items():
            need = needs.get(t)
            if need is not None and a.length > need:
                trimmed[t] = Allocation(a.start, need)
            else:
                trimmed[t] = a
        return trimmed

    def release(self, n_pages, residents, tid, needs=None):
        out = super().release(n_pages, residents, tid, needs)
        if not needs:
            return out
        return {
            t: (
                Allocation(a.start, needs[t])
                if t in needs and a.length > needs[t]
                else a
            )
            for t, a in out.items()
        }
