"""Page-allocation policies for the multithreading runtime.

The paper's experimental policy (§VII-B.1) is *halving*: "when another
thread requests access to the CGRA, the thread using the most pages is
decreased to use half as many pages and the new thread is resized to fit
into the freed portion"; when schedules do not use the entire CGRA the new
thread simply takes the unused pages, and "threads are expanded as other
threads complete".

Two additional policies support the ablation benches:

* :class:`FairSharePolicy` — rebalance to an equal split on every arrival
  and departure (more transformations, better balance);
* :class:`StaticEqualPolicy` — fixed equal partitions sized for a declared
  maximum thread count, in the spirit of the Polymorphic Pipeline Array
  [28] comparison: no runtime reshaping at all.

Policies work on *segments*: contiguous runs of pages on the layout's
chain (contiguity is what lets the retargeter place transformed schedules
on mesh-adjacent tiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.util.errors import ReproError

__all__ = [
    "Allocation",
    "AllocationPolicy",
    "HalvingPolicy",
    "NeedAwareHalvingPolicy",
    "FairSharePolicy",
    "StaticEqualPolicy",
]


@dataclass(frozen=True)
class Allocation:
    """A contiguous page segment ``[start, start + length)``."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 1 or self.start < 0:
            raise ReproError(f"bad allocation {self.start}+{self.length}")

    @property
    def pages(self) -> tuple[int, ...]:
        return tuple(range(self.start, self.start + self.length))


class AllocationPolicy(Protocol):
    """Decides how page segments change on thread arrival/departure.

    Both hooks receive the current resident map and return the complete new
    map (threads absent from the result are queued / unchanged semantics
    are owned by the manager).  Returning ``None`` from :meth:`admit` means
    the newcomer cannot be admitted now.  ``needs`` maps thread ids to
    their page *need* (the compiled kernel's ``pages_used``); policies may
    ignore it, or use it to avoid granting pages a thread cannot convert
    into speed.
    """

    def admit(
        self,
        n_pages: int,
        residents: dict[int, Allocation],
        tid: int,
        needs: dict[int, int] | None = None,
    ) -> dict[int, Allocation] | None: ...

    def release(
        self,
        n_pages: int,
        residents: dict[int, Allocation],
        tid: int,
        needs: dict[int, int] | None = None,
    ) -> dict[int, Allocation]: ...


def _free_segments(n_pages: int, residents: dict[int, Allocation]) -> list[Allocation]:
    used = sorted(residents.values(), key=lambda a: a.start)
    free: list[Allocation] = []
    cursor = 0
    for a in used:
        if a.start > cursor:
            free.append(Allocation(cursor, a.start - cursor))
        cursor = a.start + a.length
    if cursor < n_pages:
        free.append(Allocation(cursor, n_pages - cursor))
    return free


class HalvingPolicy:
    """The paper's policy: take free pages if any, else halve the largest."""

    def admit(self, n_pages, residents, tid, needs=None):
        free = _free_segments(n_pages, residents)
        if free:
            seg = max(free, key=lambda a: a.length)
            out = dict(residents)
            out[tid] = seg
            return out
        victims = [t for t, a in residents.items() if a.length > 1]
        if not victims:
            return None
        victim = max(victims, key=lambda t: (residents[t].length, -t))
        a = residents[victim]
        keep = a.length - a.length // 2  # victim keeps the larger half
        out = dict(residents)
        out[victim] = Allocation(a.start, keep)
        out[tid] = Allocation(a.start + keep, a.length - keep)
        return out

    def release(self, n_pages, residents, tid, needs=None):
        out = {t: a for t, a in residents.items() if t != tid}
        freed = residents[tid]
        if not out:
            return out
        # expand an adjacent resident over the freed segment (smallest
        # adjacent first, to even allocations out over time)
        left = [
            t for t, a in out.items() if a.start + a.length == freed.start
        ]
        right = [t for t, a in out.items() if a.start == freed.start + freed.length]
        candidates = left + right
        if not candidates:
            return out
        grow = min(candidates, key=lambda t: (out[t].length, t))
        a = out[grow]
        if grow in left:
            out[grow] = Allocation(a.start, a.length + freed.length)
        else:
            out[grow] = Allocation(freed.start, a.length + freed.length)
        return out


class FairSharePolicy:
    """Equal split across residents, rebalanced on every change."""

    @staticmethod
    def _split(n_pages: int, tids: list[int]) -> dict[int, Allocation]:
        k = len(tids)
        base, extra = divmod(n_pages, k)
        out: dict[int, Allocation] = {}
        start = 0
        for idx, t in enumerate(sorted(tids)):
            length = base + (1 if idx < extra else 0)
            out[t] = Allocation(start, length)
            start += length
        return out

    def admit(self, n_pages, residents, tid, needs=None):
        if len(residents) + 1 > n_pages:
            return None
        return self._split(n_pages, list(residents) + [tid])

    def release(self, n_pages, residents, tid, needs=None):
        rest = [t for t in residents if t != tid]
        if not rest:
            return {}
        return self._split(n_pages, rest)


class StaticEqualPolicy:
    """PPA-style fixed partitioning for a declared max thread count: the
    CGRA is split into ``max_threads`` equal slices at 'compile time' and
    slices are never resized."""

    def __init__(self, max_threads: int) -> None:
        if max_threads < 1:
            raise ReproError(f"max_threads must be >= 1, got {max_threads}")
        self.max_threads = max_threads

    def _slices(self, n_pages: int) -> list[Allocation]:
        k = min(self.max_threads, n_pages)
        base, extra = divmod(n_pages, k)
        out = []
        start = 0
        for idx in range(k):
            length = base + (1 if idx < extra else 0)
            out.append(Allocation(start, length))
            start += length
        return out

    def admit(self, n_pages, residents, tid, needs=None):
        taken = {a.start for a in residents.values()}
        for s in self._slices(n_pages):
            if s.start not in taken:
                out = dict(residents)
                out[tid] = s
                return out
        return None

    def release(self, n_pages, residents, tid, needs=None):
        return {t: a for t, a in residents.items() if t != tid}


class NeedAwareHalvingPolicy(HalvingPolicy):
    """Halving, but no thread is ever granted more pages than its kernel's
    need — the grant is trimmed and the surplus stays free for the next
    arrival (§VII-B: a schedule that does not use the entire CGRA leaves
    the unused portion available, with no transformation required).

    Falls back to plain halving when needs are unknown.
    """

    def admit(self, n_pages, residents, tid, needs=None):
        out = super().admit(n_pages, residents, tid, needs)
        if out is None or not needs:
            return out
        trimmed: dict[int, Allocation] = {}
        for t, a in out.items():
            need = needs.get(t)
            if need is not None and a.length > need:
                trimmed[t] = Allocation(a.start, need)
            else:
                trimmed[t] = a
        return trimmed

    def release(self, n_pages, residents, tid, needs=None):
        out = super().release(n_pages, residents, tid, needs)
        if not needs:
            return out
        return {
            t: (
                Allocation(a.start, needs[t])
                if t in needs and a.length > needs[t]
                else a
            )
            for t, a in out.items()
        }
