"""``gsr`` — Gauss-Seidel relaxation filter row: the update uses the
*already updated* left neighbour (loop-carried) and the stale right
neighbour, the classic Gauss-Seidel data flow.

    out[i] = (out[i-1] + 2*in[i] + in[i+1]) >> 2,   out[-1] = in[0]
"""

from __future__ import annotations

import numpy as np

from repro.dfg.builder import DFGBuilder
from repro.kernels.spec import KernelSpec

__all__ = ["SPEC"]


def build():
    b = DFGBuilder("gsr")
    prev = b.placeholder("prev_out")
    mid = b.load("in", offset=0)
    right = b.load("in", offset=1)
    two_mid = b.shl(mid, b.const(1), name="2mid")
    s = b.add(prev, two_mid, name="s0")
    s = b.add(s, right, name="s1")
    cur = b.shr(s, b.const(2), name="relax")
    b.store("out", cur)
    b.bind_carry(prev, cur, distance=1, init=(100,))
    return b.build()


def arrays(rng: np.random.Generator, trip: int):
    return {
        "in": rng.integers(0, 256, trip + 1, dtype=np.int64),
        "out": np.zeros(trip, dtype=np.int64),
    }


def golden(a, trip: int):
    prev = 100
    for i in range(trip):
        prev = (prev + 2 * int(a["in"][i]) + int(a["in"][i + 1])) >> 2
        a["out"][i] = prev
    return a


SPEC = KernelSpec(
    name="gsr",
    description="Gauss-Seidel relaxation row with updated-left-neighbour recurrence",
    build=build,
    arrays=arrays,
    golden=golden,
)
