"""``sobel`` — Sobel gradient magnitude over three image rows.

    gx = (r0[i+2]-r0[i]) + 2*(r1[i+2]-r1[i]) + (r2[i+2]-r2[i])
    gy = (r2[i]+2*r2[i+1]+r2[i+2]) - (r0[i]+2*r0[i+1]+r0[i+2])
    out[i] = min(|gx| + |gy|, 255)

The most memory-intensive kernel of the suite (8 loads + 1 store), which
stresses the data-bus resource bound.
"""

from __future__ import annotations

import numpy as np

from repro.dfg.builder import DFGBuilder
from repro.kernels.spec import KernelSpec

__all__ = ["SPEC"]


def build():
    b = DFGBuilder("sobel")
    r0_0 = b.load("r0", offset=0)
    r0_1 = b.load("r0", offset=1)
    r0_2 = b.load("r0", offset=2)
    r1_0 = b.load("r1", offset=0)
    r1_2 = b.load("r1", offset=2)
    r2_0 = b.load("r2", offset=0)
    r2_1 = b.load("r2", offset=1)
    r2_2 = b.load("r2", offset=2)

    gx = b.add(
        b.add(
            b.sub(r0_2, r0_0, name="dx0"),
            b.shl(b.sub(r1_2, r1_0, name="dx1"), b.const(1), name="2dx1"),
            name="gx01",
        ),
        b.sub(r2_2, r2_0, name="dx2"),
        name="gx",
    )
    top = b.add(b.add(r0_0, b.shl(r0_1, b.const(1), name="2r01"), name="t0"), r0_2, name="top")
    bot = b.add(b.add(r2_0, b.shl(r2_1, b.const(1), name="2r21"), name="b0"), r2_2, name="bot")
    gy = b.sub(bot, top, name="gy")
    mag = b.add(b.abs(gx, name="|gx|"), b.abs(gy, name="|gy|"), name="mag")
    out = b.min(mag, b.const(255), name="sat")
    b.store("out", out)
    return b.build()


def arrays(rng: np.random.Generator, trip: int):
    return {
        "r0": rng.integers(0, 256, trip + 2, dtype=np.int64),
        "r1": rng.integers(0, 256, trip + 2, dtype=np.int64),
        "r2": rng.integers(0, 256, trip + 2, dtype=np.int64),
        "out": np.zeros(trip, dtype=np.int64),
    }


def golden(a, trip: int):
    r0, r1, r2 = a["r0"], a["r1"], a["r2"]
    gx = (
        (r0[2 : trip + 2] - r0[:trip])
        + 2 * (r1[2 : trip + 2] - r1[:trip])
        + (r2[2 : trip + 2] - r2[:trip])
    )
    top = r0[:trip] + 2 * r0[1 : trip + 1] + r0[2 : trip + 2]
    bot = r2[:trip] + 2 * r2[1 : trip + 1] + r2[2 : trip + 2]
    gy = bot - top
    a["out"][:trip] = np.minimum(np.abs(gx) + np.abs(gy), 255)
    return a


SPEC = KernelSpec(
    name="sobel",
    description="Sobel gradient magnitude over three rows (memory heavy)",
    build=build,
    arrays=arrays,
    golden=golden,
)
