"""Benchmark kernel suite (§VII-A): executable media loop bodies."""

from repro.kernels.spec import KernelSpec, bind_memory, fresh_arrays
from repro.kernels.suite import SUITE, get_kernel, kernel_names

__all__ = [
    "KernelSpec",
    "bind_memory",
    "fresh_arrays",
    "SUITE",
    "get_kernel",
    "kernel_names",
]
