"""``mpeg`` — MPEG2 motion-compensation style kernel (the paper's Fig. 2
example family: three loads, one store, arithmetic in between).

    out[i] = clip8(((fwd[i] + bwd[i] + 1) >> 1) + resid[i])
"""

from __future__ import annotations

import numpy as np

from repro.dfg.builder import DFGBuilder
from repro.kernels.spec import KernelSpec

__all__ = ["SPEC"]


def build():
    b = DFGBuilder("mpeg")
    fwd = b.load("fwd")
    bwd = b.load("bwd")
    resid = b.load("resid")
    s = b.add(fwd, bwd, name="sum")
    s1 = b.add(s, b.const(1), name="round")
    avg = b.shr(s1, b.const(1), name="avg")
    mixed = b.add(avg, resid, name="mix")
    clipped = b.clamp(mixed, 0, 255)
    b.store("out", clipped)
    return b.build()


def arrays(rng: np.random.Generator, trip: int):
    return {
        "fwd": rng.integers(0, 256, trip, dtype=np.int64),
        "bwd": rng.integers(0, 256, trip, dtype=np.int64),
        "resid": rng.integers(-64, 64, trip, dtype=np.int64),
        "out": np.zeros(trip, dtype=np.int64),
    }


def golden(a, trip: int):
    avg = (a["fwd"][:trip] + a["bwd"][:trip] + 1) >> 1
    a["out"][:trip] = np.clip(avg + a["resid"][:trip], 0, 255)
    return a


SPEC = KernelSpec(
    name="mpeg",
    description="MPEG2 bidirectional motion compensation with rounding and clip",
    build=build,
    arrays=arrays,
    golden=golden,
)
