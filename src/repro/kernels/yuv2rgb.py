"""``yuv2rgb`` — integer YCbCr-to-RGB conversion (ITU-R BT.601 fixed point).

    c = y[i] - 16;  d = u[i] - 128;  e = v[i] - 128
    r = clip8((298*c + 409*e + 128) >> 8)
    g = clip8((298*c - 100*d - 208*e + 128) >> 8)
    b = clip8((298*c + 516*d + 128) >> 8)

The widest kernel of the suite (three loads, three stores, three long
arithmetic chains) — it exercises compute ResMII on small CGRAs.
"""

from __future__ import annotations

import numpy as np

from repro.dfg.builder import DFGBuilder
from repro.kernels.spec import KernelSpec

__all__ = ["SPEC"]


def build():
    b = DFGBuilder("yuv2rgb")
    y = b.load("y")
    u = b.load("u")
    v = b.load("v")
    c = b.sub(y, b.const(16), name="c")
    d = b.sub(u, b.const(128), name="d")
    e = b.sub(v, b.const(128), name="e")
    c298 = b.mul(c, b.const(298), name="c298")
    base = b.add(c298, b.const(128), name="base")  # 298*c + 128, shared

    r_acc = b.add(base, b.mul(e, b.const(409)), name="r_acc")
    r = b.clamp(b.shr(r_acc, b.const(8)), 0, 255)
    b.store("r", r)

    g_acc = b.sub(
        base,
        b.add(b.mul(d, b.const(100)), b.mul(e, b.const(208)), name="g_sub"),
        name="g_acc",
    )
    g = b.clamp(b.shr(g_acc, b.const(8)), 0, 255)
    b.store("g", g)

    bl_acc = b.add(base, b.mul(d, b.const(516)), name="b_acc")
    bl = b.clamp(b.shr(bl_acc, b.const(8)), 0, 255)
    b.store("b", bl)
    return b.build()


def arrays(rng: np.random.Generator, trip: int):
    return {
        "y": rng.integers(16, 236, trip, dtype=np.int64),
        "u": rng.integers(16, 241, trip, dtype=np.int64),
        "v": rng.integers(16, 241, trip, dtype=np.int64),
        "r": np.zeros(trip, dtype=np.int64),
        "g": np.zeros(trip, dtype=np.int64),
        "b": np.zeros(trip, dtype=np.int64),
    }


def golden(a, trip: int):
    c = a["y"][:trip] - 16
    d = a["u"][:trip] - 128
    e = a["v"][:trip] - 128
    base = 298 * c + 128
    a["r"][:trip] = np.clip((base + 409 * e) >> 8, 0, 255)
    a["g"][:trip] = np.clip((base - (100 * d + 208 * e)) >> 8, 0, 255)
    a["b"][:trip] = np.clip((base + 516 * d) >> 8, 0, 255)
    return a


SPEC = KernelSpec(
    name="yuv2rgb",
    description="BT.601 fixed-point YCbCr to RGB pixel conversion",
    build=build,
    arrays=arrays,
    golden=golden,
)
