"""``lowpass`` — 5-tap binomial FIR smoothing filter.

    out[i] = (in[i] + 4*in[i+1] + 6*in[i+2] + 4*in[i+3] + in[i+4]) >> 4
"""

from __future__ import annotations

import numpy as np

from repro.dfg.builder import DFGBuilder
from repro.kernels.spec import KernelSpec

__all__ = ["SPEC"]


def build():
    b = DFGBuilder("lowpass")
    x0 = b.load("in", offset=0)
    x1 = b.load("in", offset=1)
    x2 = b.load("in", offset=2)
    x3 = b.load("in", offset=3)
    x4 = b.load("in", offset=4)
    t1 = b.shl(b.add(x1, x3, name="x13"), b.const(2), name="4x13")
    t2 = b.mul(x2, b.const(6), name="6x2")
    edges = b.add(x0, x4, name="edges")
    acc = b.add(b.add(t1, t2, name="mid"), edges, name="acc")
    out = b.shr(acc, b.const(4), name="norm")
    b.store("out", out)
    return b.build()


def arrays(rng: np.random.Generator, trip: int):
    return {
        "in": rng.integers(0, 256, trip + 4, dtype=np.int64),
        "out": np.zeros(trip, dtype=np.int64),
    }


def golden(a, trip: int):
    s = a["in"]
    a["out"][:trip] = (
        s[:trip]
        + 4 * s[1 : trip + 1]
        + 6 * s[2 : trip + 2]
        + 4 * s[3 : trip + 3]
        + s[4 : trip + 4]
    ) >> 4
    return a


SPEC = KernelSpec(
    name="lowpass",
    description="5-tap binomial low-pass FIR filter",
    build=build,
    arrays=arrays,
    golden=golden,
)
