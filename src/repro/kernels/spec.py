"""Kernel specification: an executable benchmark loop.

Each benchmark of §VII-A is packaged as a :class:`KernelSpec`: the loop
body DFG, a seeded input generator, and an independent numpy *golden*
implementation.  The golden function validates that the DFG encodes the
intended math; the DFG reference interpreter then serves as the functional
oracle for every mapped/transformed execution.

Input values are kept small (pixel-ranged) so plain int64 numpy arithmetic
and the simulator's 32-bit wrapping semantics agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.arch.memory import DataMemory
from repro.dfg.graph import DFG
from repro.util.errors import WorkloadError
from repro.util.rng import make_rng

__all__ = ["KernelSpec", "bind_memory", "fresh_arrays"]

ArraysFn = Callable[[np.random.Generator, int], dict[str, np.ndarray]]
GoldenFn = Callable[[dict[str, np.ndarray], int], dict[str, np.ndarray]]


@dataclass(frozen=True)
class KernelSpec:
    """One benchmark kernel."""

    name: str
    description: str
    build: Callable[[], DFG]
    arrays: ArraysFn
    golden: GoldenFn
    default_trip: int = 64

    def fresh(self, seed: int, trip: int | None = None):
        """(dfg, arrays, expected) for a seeded run of *trip* iterations."""
        t = trip if trip is not None else self.default_trip
        if t < 1:
            raise WorkloadError(f"trip must be >= 1, got {t}")
        rng = make_rng(seed)
        arrays = self.arrays(rng, t)
        expected = self.golden({k: v.copy() for k, v in arrays.items()}, t)
        return self.build(), arrays, expected


def fresh_arrays(spec: KernelSpec, seed: int, trip: int) -> dict[str, np.ndarray]:
    return spec.arrays(make_rng(seed), trip)


def bind_memory(arrays: dict[str, np.ndarray], size: int = 1 << 16) -> DataMemory:
    """Load a kernel's arrays into a fresh data memory (sorted by name so
    layouts are deterministic)."""
    mem = DataMemory(size)
    for name in sorted(arrays):
        mem.bind_array(name, arrays[name])
    return mem
