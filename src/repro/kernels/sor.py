"""``sor`` — 1-D successive over-relaxation sweep with a true recurrence.

    out[i] = (out[i-1] + in[i] + in[i+1]) >> 2,   out[-1] = 0

The loop-carried dependence chain (4 single-cycle ops) pins RecMII at 4
regardless of CGRA size — the paper's Fig. 3 utilization argument.
"""

from __future__ import annotations

import numpy as np

from repro.dfg.builder import DFGBuilder
from repro.kernels.spec import KernelSpec

__all__ = ["SPEC"]


def build():
    b = DFGBuilder("sor")
    prev = b.placeholder("prev_out")
    x0 = b.load("in", offset=0)
    x1 = b.load("in", offset=1)
    s = b.add(prev, x0, name="s0")
    s = b.add(s, x1, name="s1")
    cur = b.shr(s, b.const(2), name="relax")
    b.store("out", cur)
    b.bind_carry(prev, cur, distance=1, init=(0,))
    return b.build()


def arrays(rng: np.random.Generator, trip: int):
    return {
        "in": rng.integers(0, 256, trip + 1, dtype=np.int64),
        "out": np.zeros(trip, dtype=np.int64),
    }


def golden(a, trip: int):
    prev = 0
    src = a["in"]
    for i in range(trip):
        prev = (prev + int(src[i]) + int(src[i + 1])) >> 2
        a["out"][i] = prev
    return a


SPEC = KernelSpec(
    name="sor",
    description="1-D SOR sweep with a loop-carried relaxation recurrence",
    build=build,
    arrays=arrays,
    golden=golden,
)
