"""``wavelet`` — one level of the Haar wavelet transform (stride-2 access).

    s[i] = (in[2i] + in[2i+1]) >> 1      (approximation band)
    d[i] = in[2i] - in[2i+1]             (detail band)
"""

from __future__ import annotations

import numpy as np

from repro.dfg.builder import DFGBuilder
from repro.kernels.spec import KernelSpec

__all__ = ["SPEC"]


def build():
    b = DFGBuilder("wavelet")
    even = b.load("in", stride=2, offset=0)
    odd = b.load("in", stride=2, offset=1)
    s = b.shr(b.add(even, odd, name="sum"), b.const(1), name="approx")
    d = b.sub(even, odd, name="detail")
    b.store("s", s)
    b.store("d", d)
    return b.build()


def arrays(rng: np.random.Generator, trip: int):
    return {
        "in": rng.integers(0, 256, 2 * trip, dtype=np.int64),
        "s": np.zeros(trip, dtype=np.int64),
        "d": np.zeros(trip, dtype=np.int64),
    }


def golden(a, trip: int):
    even = a["in"][0 : 2 * trip : 2]
    odd = a["in"][1 : 2 * trip : 2]
    a["s"][:trip] = (even + odd) >> 1
    a["d"][:trip] = even - odd
    return a


SPEC = KernelSpec(
    name="wavelet",
    description="Haar wavelet lifting step with stride-2 streaming",
    build=build,
    arrays=arrays,
    golden=golden,
)
