"""``fft`` — radix-2 decimation-in-time butterfly over complex fixed-point
streams (Q7 twiddle factors).

    t_re = (b_re*w_re - b_im*w_im) >> 7
    t_im = (b_re*w_im + b_im*w_re) >> 7
    x[i] = a + t;   y[i] = a - t          (4 outputs: re/im of each)
"""

from __future__ import annotations

import numpy as np

from repro.dfg.builder import DFGBuilder
from repro.kernels.spec import KernelSpec

__all__ = ["SPEC"]


def build():
    b = DFGBuilder("fft")
    ar = b.load("a_re")
    ai = b.load("a_im")
    br = b.load("b_re")
    bi = b.load("b_im")
    wr = b.load("w_re")
    wi = b.load("w_im")
    tr = b.shr(
        b.sub(b.mul(br, wr, name="brwr"), b.mul(bi, wi, name="biwi"), name="tr_raw"),
        b.const(7),
        name="t_re",
    )
    ti = b.shr(
        b.add(b.mul(br, wi, name="brwi"), b.mul(bi, wr, name="biwr"), name="ti_raw"),
        b.const(7),
        name="t_im",
    )
    b.store("x_re", b.add(ar, tr, name="x_re"))
    b.store("x_im", b.add(ai, ti, name="x_im"))
    b.store("y_re", b.sub(ar, tr, name="y_re"))
    b.store("y_im", b.sub(ai, ti, name="y_im"))
    return b.build()


def arrays(rng: np.random.Generator, trip: int):
    return {
        "a_re": rng.integers(-128, 128, trip, dtype=np.int64),
        "a_im": rng.integers(-128, 128, trip, dtype=np.int64),
        "b_re": rng.integers(-128, 128, trip, dtype=np.int64),
        "b_im": rng.integers(-128, 128, trip, dtype=np.int64),
        "w_re": rng.integers(-128, 128, trip, dtype=np.int64),
        "w_im": rng.integers(-128, 128, trip, dtype=np.int64),
        "x_re": np.zeros(trip, dtype=np.int64),
        "x_im": np.zeros(trip, dtype=np.int64),
        "y_re": np.zeros(trip, dtype=np.int64),
        "y_im": np.zeros(trip, dtype=np.int64),
    }


def golden(a, trip: int):
    br, bi = a["b_re"][:trip], a["b_im"][:trip]
    wr, wi = a["w_re"][:trip], a["w_im"][:trip]
    tr = (br * wr - bi * wi) >> 7
    ti = (br * wi + bi * wr) >> 7
    a["x_re"][:trip] = a["a_re"][:trip] + tr
    a["x_im"][:trip] = a["a_im"][:trip] + ti
    a["y_re"][:trip] = a["a_re"][:trip] - tr
    a["y_im"][:trip] = a["a_im"][:trip] - ti
    return a


SPEC = KernelSpec(
    name="fft",
    description="radix-2 FFT butterfly with Q7 twiddles (10 memory ops)",
    build=build,
    arrays=arrays,
    golden=golden,
)
