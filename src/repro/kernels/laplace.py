"""``laplace`` — 1-D Laplacian (second difference) edge filter.

    out[i] = in[i] + in[i+2] - 2*in[i+1]
"""

from __future__ import annotations

import numpy as np

from repro.dfg.builder import DFGBuilder
from repro.kernels.spec import KernelSpec

__all__ = ["SPEC"]


def build():
    b = DFGBuilder("laplace")
    left = b.load("in", offset=0)
    mid = b.load("in", offset=1)
    right = b.load("in", offset=2)
    wings = b.add(left, right, name="wings")
    centre = b.shl(mid, b.const(1), name="2mid")
    out = b.sub(wings, centre, name="lap")
    b.store("out", out)
    return b.build()


def arrays(rng: np.random.Generator, trip: int):
    return {
        "in": rng.integers(0, 256, trip + 2, dtype=np.int64),
        "out": np.zeros(trip, dtype=np.int64),
    }


def golden(a, trip: int):
    src = a["in"]
    a["out"][:trip] = src[:trip] + src[2 : trip + 2] - 2 * src[1 : trip + 1]
    return a


SPEC = KernelSpec(
    name="laplace",
    description="1-D Laplacian second-difference filter",
    build=build,
    arrays=arrays,
    golden=golden,
)
