"""``compress`` — DPCM predictive coder (the compression stage of a
lossless codec): emit the prediction residual and track an adaptive
predictor with a loop-carried update.

    diff[i]  = in[i] - pred
    pred'    = pred + (diff[i] >> 1)
"""

from __future__ import annotations

import numpy as np

from repro.dfg.builder import DFGBuilder
from repro.kernels.spec import KernelSpec

__all__ = ["SPEC"]


def build():
    b = DFGBuilder("compress")
    pred = b.placeholder("pred")
    x = b.load("in")
    diff = b.sub(x, pred, name="diff")
    b.store("out", diff)
    half = b.shr(diff, b.const(1), name="half")
    nxt = b.add(pred, half, name="pred_next")
    b.bind_carry(pred, nxt, distance=1, init=(128,))
    return b.build()


def arrays(rng: np.random.Generator, trip: int):
    return {
        "in": rng.integers(0, 256, trip, dtype=np.int64),
        "out": np.zeros(trip, dtype=np.int64),
    }


def golden(a, trip: int):
    pred = 128
    for i in range(trip):
        diff = int(a["in"][i]) - pred
        a["out"][i] = diff
        pred = pred + (diff >> 1)
    return a


SPEC = KernelSpec(
    name="compress",
    description="DPCM predictive coding with adaptive predictor recurrence",
    build=build,
    arrays=arrays,
    golden=golden,
)
