"""``swim`` — shallow-water equation update step (SPEC swim style): update
velocity and pressure fields from each other's spatial differences.

    unew[i] = u[i] + ((p[i] - p[i+1]) >> 2)
    pnew[i] = p[i] + ((u[i] - u[i+1]) >> 2)
"""

from __future__ import annotations

import numpy as np

from repro.dfg.builder import DFGBuilder
from repro.kernels.spec import KernelSpec

__all__ = ["SPEC"]


def build():
    b = DFGBuilder("swim")
    u0 = b.load("u", offset=0)
    u1 = b.load("u", offset=1)
    p0 = b.load("p", offset=0)
    p1 = b.load("p", offset=1)
    dp = b.shr(b.sub(p0, p1, name="dp"), b.const(2), name="dp4")
    du = b.shr(b.sub(u0, u1, name="du"), b.const(2), name="du4")
    b.store("unew", b.add(u0, dp, name="u_upd"))
    b.store("pnew", b.add(p0, du, name="p_upd"))
    return b.build()


def arrays(rng: np.random.Generator, trip: int):
    return {
        "u": rng.integers(-128, 128, trip + 1, dtype=np.int64),
        "p": rng.integers(0, 256, trip + 1, dtype=np.int64),
        "unew": np.zeros(trip, dtype=np.int64),
        "pnew": np.zeros(trip, dtype=np.int64),
    }


def golden(a, trip: int):
    u, p = a["u"], a["p"]
    a["unew"][:trip] = u[:trip] + ((p[:trip] - p[1 : trip + 1]) >> 2)
    a["pnew"][:trip] = p[:trip] + ((u[:trip] - u[1 : trip + 1]) >> 2)
    return a


SPEC = KernelSpec(
    name="swim",
    description="shallow-water velocity/pressure coupled update",
    build=build,
    arrays=arrays,
    golden=golden,
)
