"""The benchmark suite registry.

The paper (§VII-A) evaluates "a set of 11 benchmarks, including video
decoding e.g., mpeg, yuv2rgb, highly parallel applications e.g., Sor,
Compress, and filters e.g., Gsr, Laplace, Lowpass, Swim, Sobel, Wavelet".
It names ten; we add ``fft`` as the eleventh representative media kernel
(documented in DESIGN.md).
"""

from __future__ import annotations

from repro.kernels import (
    compress,
    fft,
    gsr,
    laplace,
    lowpass,
    mpeg,
    sobel,
    sor,
    swim,
    wavelet,
    yuv2rgb,
)
from repro.kernels.spec import KernelSpec
from repro.util.errors import WorkloadError

__all__ = ["SUITE", "kernel_names", "get_kernel"]

SUITE: dict[str, KernelSpec] = {
    spec.name: spec
    for spec in (
        mpeg.SPEC,
        yuv2rgb.SPEC,
        sor.SPEC,
        compress.SPEC,
        gsr.SPEC,
        laplace.SPEC,
        lowpass.SPEC,
        swim.SPEC,
        sobel.SPEC,
        wavelet.SPEC,
        fft.SPEC,
    )
}


def kernel_names() -> list[str]:
    """All benchmark names, in the paper's listing order."""
    return list(SUITE)


def get_kernel(name: str) -> KernelSpec:
    try:
        return SUITE[name]
    except KeyError:
        raise WorkloadError(
            f"unknown kernel {name!r}; available: {', '.join(SUITE)}"
        ) from None
