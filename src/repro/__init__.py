"""repro — a reproduction of *Enabling Multithreading on CGRAs* (ICPP 2011).

The package provides, from scratch:

* a CGRA architecture model and cycle-accurate simulator
  (:mod:`repro.arch`, :mod:`repro.sim`),
* a dataflow-graph substrate and the 11-kernel media benchmark suite
  (:mod:`repro.dfg`, :mod:`repro.kernels`),
* a modulo-scheduling mapping compiler with the paper's compile-time
  paging constraints (:mod:`repro.compiler`),
* the paper's contribution — CGRA paging, the PageMaster runtime
  transformation and the space-multiplexing runtime (:mod:`repro.core`),
* the multithreaded system model and the experiment harness regenerating
  every figure (:mod:`repro.sim.system`, :mod:`repro.bench`).

Quick tour::

    from repro.arch.presets import demo_cgra
    from repro.core.paging import PageLayout
    from repro.compiler import map_dfg_paged
    from repro.core.pagemaster import PageMaster
    from repro.kernels import get_kernel

    cgra = demo_cgra()  # the 4x4 paper fabric; see repro.arch.presets
    layout = PageLayout(cgra, (2, 2))
    paged = map_dfg_paged(get_kernel("mpeg").build(), cgra, layout)
    shrink = PageMaster(paged.pages_used, paged.ii, 1).place()
    print(shrink.summary())

See ``examples/`` for runnable walkthroughs and ``python -m repro.bench``
for the paper's figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
