"""Cold-compile speed bench: wall clock and search effort per kernel.

``python -m repro.bench compile-speed`` cold-compiles every suite kernel
on one grid (no artifact cache — the mapper runs for real), prints a table
of per-job wall clock split by mapper phase plus the search-effort
counters from :mod:`repro.compiler.stats` (state expansions, BFS/DFS
route searches, placement probes, memo-table hits), and records the run
as a labelled entry in ``BENCH_compile_speed.json`` at the repository
root.  Entries accumulate across PRs, so the file is a trajectory: the
first entry is the pre-optimisation baseline and the report's geomean
speedup compares the latest run against it.

The jobs here are exactly the Fig. 8 suite configurations
(:func:`repro.bench.fig8.page_sizes_for`), so the timings measure the
compiles the experiment pipeline actually performs on a cold cache.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Sequence

from repro.bench.fig8 import page_sizes_for
from repro.kernels import kernel_names
from repro.pipeline.compile import CompileJob, CompileStats, compile_job_stats

__all__ = [
    "run_compile_speed",
    "geomean_speedup",
    "render_report",
    "backend_summary",
    "search_totals",
    "update_bench_file",
    "main",
]

DEFAULT_OUT = "BENCH_compile_speed.json"

# Minimum per-job seconds used in ratio math: records round to 1 ms and
# trivial kernels compile faster than timer noise.
_FLOOR_SECONDS = 1e-3


def _job_key(
    kernel: str, page_size: int, arch: str | None = None, backend: str = "flat"
) -> str:
    """Bench-entry job key.  Arch/backend qualifiers append only when
    non-default, so historical entries (pre-preset, flat-only) keep their
    keys and stay comparable in the geomean."""
    key = f"{kernel}/ps{page_size}"
    if arch is not None:
        key += f"/{arch}"
    if backend != "flat":
        key += f"/{backend}"
    return key


def run_compile_speed(
    *,
    size: int = 4,
    kernels: Sequence[str] | None = None,
    page_sizes: Sequence[int] | None = None,
    seed: int = 0,
    workers: int = 1,
    arch: str | None = None,
    backend: str = "flat",
) -> list[CompileStats]:
    """Cold-compile the suite and return one :class:`CompileStats` per job.

    With ``workers > 1`` each job's (II, attempt) ladders race speculative
    probes over one shared process pool (jobs stay sequential, so per-job
    timings and counters remain cleanly attributed); artifacts and IIs are
    byte-identical to the serial run.  *arch* selects a fabric preset
    (``repro.arch.presets``; overrides *size*), *backend* the paged
    mapping strategy (``"flat"``, ``"hier"`` or ``"exact"``).
    """
    if arch is not None:
        from repro.arch.presets import preset

        size = preset(arch).rows
    names = list(kernels) if kernels else kernel_names()
    sizes = list(page_sizes) if page_sizes else page_sizes_for(size)
    jobs = [
        CompileJob(kernel, size, ps, seed=seed, arch=arch, backend=backend)
        for kernel in names
        for ps in sizes
    ]
    stats: list[CompileStats] = []
    if workers > 1:
        from repro.compiler.search import SearchContext

        with SearchContext.create(workers) as ctx:
            for job in jobs:
                stats.append(compile_job_stats(job, search=ctx)[1])
    else:
        for job in jobs:
            stats.append(compile_job_stats(job)[1])
    return stats


def geomean_speedup(
    baseline: dict[str, float], current: dict[str, float]
) -> float | None:
    """Geometric-mean per-job speedup of *current* over *baseline* (shared
    job keys only).  ``None`` when the runs share no jobs."""
    ratios = []
    for key, base_s in baseline.items():
        cur_s = current.get(key)
        if cur_s is None:
            continue
        ratios.append(
            math.log(max(base_s, _FLOOR_SECONDS) / max(cur_s, _FLOOR_SECONDS))
        )
    if not ratios:
        return None
    return math.exp(sum(ratios) / len(ratios))


def _seconds_by_job(entry: dict) -> dict[str, float]:
    return {key: rec["seconds"] for key, rec in entry["jobs"].items()}


def render_report(stats: Sequence[CompileStats], history: dict | None = None) -> str:
    """Table of per-job timings and search counters, plus the speedup
    against the first (baseline) entry of *history* when one exists."""
    header = (
        f"{'kernel':<10} {'ps':>2} {'seconds':>8} {'base_s':>7} {'paged_s':>8} "
        f"{'expand':>9} {'probes':>7} {'bfs':>6} {'dfs':>7} {'memo_hits':>9}"
    )
    lines = [header, "-" * len(header)]
    for st in stats:
        c = st.counters
        memo = c.get("target_cache_hits", 0) + c.get("move_cache_hits", 0)
        lines.append(
            f"{st.kernel:<10} {st.page_size:>2} {st.seconds:>8.3f} "
            f"{st.base_map_seconds:>7.3f} {st.paged_map_seconds:>8.3f} "
            f"{c.get('expansions', 0):>9} {c.get('placement_probes', 0):>7} "
            f"{c.get('bfs_calls', 0):>6} {c.get('dfs_calls', 0):>7} {memo:>9}"
        )
    total = sum(st.seconds for st in stats)
    lines.append(f"total: {total:.2f}s over {len(stats)} cold compile(s)")
    hier_att = sum(st.counters.get("hier_attempts", 0) for st in stats)
    if hier_att:
        hier_wins = sum(st.counters.get("hier_wins", 0) for st in stats)
        flat_att = sum(st.counters.get("hier_flat_attempts", 0) for st in stats)
        flat_wins = sum(st.counters.get("hier_flat_wins", 0) for st in stats)
        lines.append(
            f"hier backend: clustered {hier_wins}/{hier_att} wins, "
            f"flat-fallback {flat_wins}/{flat_att} wins"
        )
    rungs = {
        k: sum(st.counters.get(k, 0) for st in stats)
        for k in ("rungs_skipped", "rungs_pruned", "exact_probes", "exact_wins")
    }
    if any(rungs.values()):
        lines.append(
            "II rungs: {rungs_skipped} skipped (ladder memoization), "
            "{rungs_pruned} pruned (feasibility certificates), "
            "{exact_probes} SAT probes ({exact_wins} refuted)".format(**rungs)
        )
    board = backend_summary(stats)
    if len(board) > 1 or any(b != "flat" for b in board):
        lines.append("backend leaderboard (by total seconds):")
        for name, rec in sorted(board.items(), key=lambda kv: kv[1]["seconds"]):
            extra = ""
            if rec.get("win_rate") is not None:
                extra = f", win rate {rec['win_rate']:.0%}"
            lines.append(
                f"  {name:<6} {rec['seconds']:>8.2f}s over {rec['jobs']} "
                f"job(s){extra}"
            )
    search = search_totals(stats)
    if search is not None:
        lines.append(
            "speculation: {probes_launched} probes launched, "
            "{probes_cancelled} cancelled, {probes_wasted} wasted "
            "({useful_seconds:.2f}s useful / {wasted_seconds:.2f}s wasted, "
            "efficiency {speculation_efficiency:.0%})".format(**search)
        )
    entries = (history or {}).get("entries", [])
    if entries:
        base = entries[0]
        current = {
            _job_key(st.kernel, st.page_size, st.arch, st.backend): st.seconds
            for st in stats
        }
        speedup = geomean_speedup(_seconds_by_job(base), current)
        if speedup is not None:
            lines.append(
                f"geomean speedup vs '{base['label']}': {speedup:.2f}x"
            )
    return "\n".join(lines)


def backend_summary(stats: Sequence[CompileStats]) -> dict[str, dict]:
    """Per-backend aggregate: job count, wall clock, rung accounting and
    the backend's *win rate* — how often its distinguishing mechanism beat
    the plain flat ladder (clustered placements for ``hier``, UNSAT rung
    refutations for ``exact``; the flat ladder has no such mechanism, so
    its rate is ``None``)."""
    out: dict[str, dict] = {}
    for st in stats:
        rec = out.setdefault(
            st.backend,
            {
                "jobs": 0,
                "seconds": 0.0,
                "rungs_skipped": 0,
                "rungs_pruned": 0,
                "exact_probes": 0,
                "exact_wins": 0,
                "hier_attempts": 0,
                "hier_wins": 0,
            },
        )
        rec["jobs"] += 1
        rec["seconds"] += st.seconds
        for k in (
            "rungs_skipped",
            "rungs_pruned",
            "exact_probes",
            "exact_wins",
            "hier_attempts",
            "hier_wins",
        ):
            rec[k] += st.counters.get(k, 0)
    for name, rec in out.items():
        rec["seconds"] = round(rec["seconds"], 3)
        if name == "hier" and rec["hier_attempts"]:
            rec["win_rate"] = round(rec["hier_wins"] / rec["hier_attempts"], 4)
        elif name == "exact" and rec["exact_probes"]:
            rec["win_rate"] = round(rec["exact_wins"] / rec["exact_probes"], 4)
        else:
            rec["win_rate"] = None
    return out


def search_totals(stats: Sequence[CompileStats]) -> dict | None:
    """Aggregate the speculative-search stats across jobs (``None`` when
    no job ran through the portfolio engine)."""
    records = [st.search for st in stats if st.search is not None]
    if not records:
        return None
    out = {
        k: sum(r[k] for r in records)
        for k in (
            "ladders",
            "probes_launched",
            "probes_cancelled",
            "probes_wasted",
            "useful_seconds",
            "wasted_seconds",
        )
    }
    total = out["useful_seconds"] + out["wasted_seconds"]
    out["useful_seconds"] = round(out["useful_seconds"], 3)
    out["wasted_seconds"] = round(out["wasted_seconds"], 3)
    out["speculation_efficiency"] = (
        round(out["useful_seconds"] / total, 4) if total > 0 else 1.0
    )
    return out


def _entry_from_stats(
    stats: Sequence[CompileStats], label: str, seed: int, workers: int = 1
) -> dict:
    totals: dict[str, int] = {}
    jobs = {}
    for st in stats:
        jobs[_job_key(st.kernel, st.page_size, st.arch, st.backend)] = st.as_record()
        for name, value in st.counters.items():
            totals[name] = totals.get(name, 0) + value
    entry = {
        "label": label,
        # repro: allow[DET-WALL-CLOCK] run date annotates the perf log for humans; artifacts are addressed by content
        "date": time.strftime("%Y-%m-%d"),
        "seed": seed,
        "workers": workers,
        "total_seconds": round(sum(st.seconds for st in stats), 3),
        "counters_total": totals,
        "backends": backend_summary(stats),
        "jobs": jobs,
    }
    search = search_totals(stats)
    if search is not None:
        entry["search_total"] = search
    return entry


def update_bench_file(
    path: Path,
    stats: Sequence[CompileStats],
    *,
    label: str,
    seed: int,
    workers: int = 1,
) -> dict:
    """Insert/replace the *label* entry in the bench file and refresh the
    headline geomean (latest entry vs the file's first entry)."""
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {"bench": "compile_speed", "entries": []}
    entry = _entry_from_stats(stats, label, seed, workers)
    entries = [e for e in data["entries"] if e["label"] != label]
    entries.append(entry)
    data["entries"] = entries
    if len(entries) >= 2:
        speedup = geomean_speedup(
            _seconds_by_job(entries[0]), _seconds_by_job(entries[-1])
        )
        if speedup is not None:
            data["geomean_speedup_vs_baseline"] = round(speedup, 2)
            data["baseline_label"] = entries[0]["label"]
            data["current_label"] = entries[-1]["label"]
    path.write_text(json.dumps(data, indent=1, sort_keys=False) + "\n")
    return data


def main(args) -> int:
    """``python -m repro.bench compile-speed`` body (argparse namespace)."""
    kernels = args.kernels.split(",") if args.kernels else None
    page_sizes = (
        [int(p) for p in args.page_sizes.split(",")] if args.page_sizes else None
    )
    size = args.size or 4
    workers = getattr(args, "workers", 1) or 1
    arch = getattr(args, "arch", None)
    backend = getattr(args, "backend", None) or "flat"
    stats = run_compile_speed(
        size=size,
        kernels=kernels,
        page_sizes=page_sizes,
        seed=args.seed,
        workers=workers,
        arch=arch,
        backend=backend,
    )
    out = Path(args.out or DEFAULT_OUT)
    history = json.loads(out.read_text()) if out.exists() else None
    print(render_report(stats, history))
    if args.dry_run:
        print(f"[dry-run] not updating {out}")
        return 0
    partial = kernels is not None or page_sizes is not None
    if partial and args.label == "current":
        # Partial sweeps (CI smoke) must not overwrite the full-suite entry.
        print(f"[skip] partial kernel/page-size selection; not updating {out}")
        return 0
    if (arch is not None or backend != "flat") and args.label == "current":
        # Arch/backend variants get their own entries; never clobber the
        # default 4x4 flat trajectory under the 'current' label.
        print(
            f"[skip] arch/backend variant needs an explicit --label; "
            f"not updating {out}"
        )
        return 0
    data = update_bench_file(
        out, stats, label=args.label, seed=args.seed, workers=workers
    )
    speedup = data.get("geomean_speedup_vs_baseline")
    suffix = f" (geomean speedup {speedup}x)" if speedup else ""
    print(f"[write] {out}: entry '{args.label}'{suffix}")
    return 0
