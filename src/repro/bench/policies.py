"""Policy tournament + simulation-scale bench.

``python -m repro.bench policies`` races every allocation policy across a
lattice of trace-driven workload series (steady Poisson, bursty, diurnal
— :func:`repro.sim.workload.generate_trace`) and prints a leaderboard.
Ranking uses only simulated quantities (per-series makespan normalised to
the series winner, geomeaned across series), so the order is
deterministic for a seed; wall-clock goes into the JSON for trend
tracking but never into the ranking.

The same command re-measures the engine-scale configurations (a
saturated 1k-thread config and a 10k-thread trace) and appends a
labelled entry to ``BENCH_sim_scale.json`` at the repository root.  The
file's first entry is the pre-vectorization baseline, so the speedup
column is the trajectory of the event-engine optimisation work.

``--smoke`` is the CI variant: small thread counts, two policies, and
every run replayed through the cycle-quantum oracle
(:func:`repro.sim.oracle.verify_system`) instead of trusting the fast
engine — the scale measurement and the bench file are skipped.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.core.policies import (
    BestFitPolicy,
    FairSharePolicy,
    HalvingPolicy,
    NeedAwareHalvingPolicy,
    PriorityEvictionPolicy,
    StaticEqualPolicy,
)
from repro.sim.fuzz import FUZZ_PROFILES, _NOMINAL_II
from repro.sim.oracle import verify_system
from repro.sim.system import SystemConfig, simulate_system
from repro.sim.workload import ThreadSpec, generate_trace, generate_workload
from repro.util.rng import derive_seed

__all__ = [
    "SERIES",
    "tournament_policies",
    "run_tournament",
    "leaderboard",
    "run_scale",
    "render_report",
    "update_bench_file",
    "main",
]

DEFAULT_OUT = "BENCH_sim_scale.json"

#: Workload series of the tournament: one per arrival model the trace
#: generator supports (beyond all-at-once, which the paper's own
#: experiments already cover).  Values are ``generate_trace`` kwargs.
SERIES: dict[str, dict] = {
    "steady-poisson": {"arrival_model": "poisson", "mean_arrival_gap": 8.0},
    "bursty": {
        "arrival_model": "bursty",
        "mean_arrival_gap": 8.0,
        "burst_size": 16,
    },
    "diurnal": {
        "arrival_model": "diurnal",
        "mean_arrival_gap": 6.0,
        "diurnal_period": 40_000,
        "diurnal_amplitude": 0.8,
    },
}

_KERNELS = sorted(FUZZ_PROFILES)


def tournament_policies(workload: list[ThreadSpec]) -> dict[str, object]:
    """The contenders, constructed fresh per workload (the priority
    policy needs the trace's thread -> priority map)."""
    return {
        "halving": HalvingPolicy(),
        "need-aware": NeedAwareHalvingPolicy(),
        "fair-share": FairSharePolicy(),
        "static-equal": StaticEqualPolicy(max_threads=8),
        "best-fit": BestFitPolicy(),
        "priority-evict": PriorityEvictionPolicy(
            {t.tid: t.priority for t in workload}
        ),
    }


def _series_workload(name: str, *, n_threads: int, seed: int):
    kwargs = SERIES[name]
    return generate_trace(
        n_threads,
        0.75,
        _KERNELS,
        _NOMINAL_II,
        seed=derive_seed(seed, "tournament", name),
        mean_total_work=1_500,
        **kwargs,
    )


def _metrics(result, wall: float) -> dict:
    return {
        "makespan": result.makespan,
        "avg_turnaround": round(result.avg_turnaround, 3),
        "turnaround_p50": round(result.turnaround_p50, 3),
        "turnaround_p99": round(result.turnaround_p99, 3),
        "cgra_utilization": round(result.cgra_utilization, 4),
        "wait_cycles": result.wait_cycles,
        "reallocations": result.reallocations,
        "evictions": result.evictions,
        "eviction_churn": round(result.eviction_churn, 4),
        "wall_seconds": round(wall, 3),
    }


def run_tournament(
    *,
    n_threads: int = 2_000,
    n_pages: int = 16,
    seed: int = 0,
    policies: list[str] | None = None,
    series: list[str] | None = None,
    verify: bool = False,
) -> dict[str, dict[str, dict]]:
    """Race the policies over the workload series.

    Returns ``{series: {policy: metrics}}``.  With ``verify=True`` every
    run goes through :func:`verify_system` (oracle replay + invariants)
    instead of the bare fast engine — the smoke/CI path.
    """
    out: dict[str, dict[str, dict]] = {}
    for sname in series or list(SERIES):
        workload = _series_workload(sname, n_threads=n_threads, seed=seed)
        contenders = tournament_policies(workload)
        rows: dict[str, dict] = {}
        for pname, policy in contenders.items():
            if policies is not None and pname not in policies:
                continue
            config = SystemConfig(
                n_pages=n_pages,
                profiles=FUZZ_PROFILES,
                policy=policy,
                validate_decisions=verify,
            )
            t0 = time.perf_counter()
            if verify:
                result, _ = verify_system(workload, config, "multithreaded")
            else:
                result = simulate_system(workload, config, "multithreaded")
            rows[pname] = _metrics(result, time.perf_counter() - t0)
        out[sname] = rows
    return out


def leaderboard(results: dict[str, dict[str, dict]]) -> list[dict]:
    """Rank policies by geomean of per-series makespan relative to the
    series winner (1.0 = won every series).  Purely simulated quantities,
    so the order is deterministic for a given seed."""
    policies = sorted({p for rows in results.values() for p in rows})
    board = []
    for p in policies:
        rel = []
        for rows in results.values():
            if p not in rows:
                continue
            best = min(r["makespan"] for r in rows.values())
            rel.append(rows[p]["makespan"] / best if best else 1.0)
        score = math.exp(sum(math.log(x) for x in rel) / len(rel))
        board.append(
            {
                "policy": p,
                "score": round(score, 4),
                "p99_turnaround_worst": max(
                    rows[p]["turnaround_p99"]
                    for rows in results.values()
                    if p in rows
                ),
            }
        )
    board.sort(key=lambda r: (r["score"], r["policy"]))
    for i, row in enumerate(board):
        row["rank"] = i + 1
    return board


# -- engine-scale measurement ------------------------------------------------------


def _scale_workloads(seed: int) -> dict[str, tuple[list[ThreadSpec], SystemConfig]]:
    """The two fixed scale configurations tracked in the bench file.

    ``1k-saturated`` is tuned to the *old* engine's worst case (every
    thread queued at t=0, many short kernel phases): its per-decision
    resident rebuild and admission re-probes scale with the waiting-thread
    count, which is what the vectorized engine removed.  ``10k-trace`` is
    the headline datacenter config: 10,000 trace-driven threads with
    bursty arrivals and priority classes.
    """
    saturated = generate_workload(
        1_000,
        0.75,
        ["fast"],
        _NOMINAL_II,
        seed=derive_seed(seed, "scale", "1k"),
        mean_total_work=400,
        phases_per_thread=40,
        mean_arrival_gap=0,
    )
    trace = generate_trace(
        10_000,
        0.75,
        _KERNELS,
        _NOMINAL_II,
        seed=derive_seed(seed, "scale", "10k"),
        arrival_model="bursty",
        mean_arrival_gap=20.0,
        burst_size=16,
        mean_total_work=2_000,
    )
    return {
        "1k-saturated": (
            saturated,
            SystemConfig(
                n_pages=2,
                profiles=FUZZ_PROFILES,
                policy=HalvingPolicy(),
                validate_decisions=False,
            ),
        ),
        "10k-trace": (
            trace,
            SystemConfig(
                n_pages=16,
                profiles=FUZZ_PROFILES,
                policy=HalvingPolicy(),
                validate_decisions=False,
            ),
        ),
    }


def run_scale(*, seed: int = 0, repeats: int = 3) -> dict[str, dict]:
    """Time the fixed scale configurations (min of *repeats*) and return
    per-config records with the simulated outcome for parity tracking."""
    out: dict[str, dict] = {}
    for name, (workload, config) in _scale_workloads(seed).items():
        best = None
        result = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = simulate_system(workload, config, "multithreaded")
            dt = time.perf_counter() - t0
            best = dt if best is None or dt < best else best
        out[name] = {
            "seconds": round(best, 3),
            "n_threads": len(workload),
            "makespan": result.makespan,
            "reallocations": result.reallocations,
        }
    return out


# -- bench file + reporting --------------------------------------------------------


def update_bench_file(
    scale: dict[str, dict],
    tournament: dict[str, dict[str, dict]],
    board: list[dict],
    *,
    label: str,
    seed: int,
    path: str | Path = DEFAULT_OUT,
) -> dict:
    """Append a labelled entry to the sim-scale bench file (created on
    first use) and refresh the tournament section with the latest run."""
    path = Path(path)
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {
            "bench": "sim_scale",
            "description": (
                "Event-engine scale trajectory (fixed 1k saturated and "
                "10k trace configs, min-of-N wall clock; entries "
                "accumulate across PRs, first entry is the "
                "pre-vectorization baseline) plus the latest seeded "
                "policy tournament."
            ),
            "entries": [],
        }
    data["entries"].append(
        {
            "label": label,
            # repro: allow[DET-WALL-CLOCK] run date annotates the perf log for humans; artifacts are addressed by content
            "date": time.strftime("%Y-%m-%d"),
            "seed": seed,
            "configs": scale,
        }
    )
    data["tournament"] = {
        "seed": seed,
        "ranked_by": "geomean makespan vs series winner",
        "leaderboard": board,
        "series": tournament,
    }
    path.write_text(json.dumps(data, indent=1) + "\n")
    return data


def _speedups(data: dict) -> dict[str, float]:
    entries = data.get("entries", [])
    if len(entries) < 2:
        return {}
    first, last = entries[0]["configs"], entries[-1]["configs"]
    return {
        name: first[name]["seconds"] / max(last[name]["seconds"], 1e-9)
        for name in last
        if name in first
    }


def render_report(
    scale: dict[str, dict] | None,
    tournament: dict[str, dict[str, dict]],
    board: list[dict],
    data: dict | None = None,
) -> str:
    lines = []
    if scale:
        lines.append("engine scale (min wall clock):")
        for name, rec in scale.items():
            lines.append(
                f"  {name:<14} {rec['seconds']:>8.3f}s   "
                f"{rec['n_threads']} threads, makespan {rec['makespan']:.0f}, "
                f"{rec['reallocations']} reallocations"
            )
        if data is not None:
            for name, s in _speedups(data).items():
                lines.append(f"  {name:<14} {s:>7.1f}x vs first recorded entry")
    lines.append("policy tournament (score = geomean makespan vs winner):")
    lines.append(
        f"  {'rank':<5}{'policy':<15}{'score':>8}{'worst p99 turnaround':>24}"
    )
    for row in board:
        lines.append(
            f"  {row['rank']:<5}{row['policy']:<15}{row['score']:>8.4f}"
            f"{row['p99_turnaround_worst']:>24.1f}"
        )
    for sname, rows in tournament.items():
        win = min(rows, key=lambda p: rows[p]["makespan"])
        lines.append(
            f"  series {sname}: winner {win} "
            f"(makespan {rows[win]['makespan']:.0f}, "
            f"util {rows[win]['cgra_utilization']:.2f}, "
            f"churn {rows[win]['eviction_churn']:.3f})"
        )
    return "\n".join(lines)


def main(args) -> int:
    """CLI entry, dispatched from :mod:`repro.bench.experiments`."""
    seed = args.seed
    if args.smoke:
        # CI path: tiny threads, two contenders, every run oracle-checked
        tournament = run_tournament(
            n_threads=24,
            n_pages=8,
            seed=seed,
            policies=["halving", "best-fit"],
            verify=True,
        )
        board = leaderboard(tournament)
        print(render_report(None, tournament, board))
        print("smoke: all runs oracle-verified")
        return 0
    tournament = run_tournament(seed=seed)
    board = leaderboard(tournament)
    scale = run_scale(seed=seed)
    data = None
    if not args.dry_run:
        data = update_bench_file(
            scale,
            tournament,
            board,
            label=args.label,
            seed=seed,
            path=args.out or DEFAULT_OUT,
        )
    print(render_report(scale, tournament, board, data))
    return 0
