"""``python -m repro.bench`` — regenerate the paper's figures."""

import sys

from repro.bench.experiments import main

sys.exit(main())
