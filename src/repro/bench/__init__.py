"""Experiment harness.

One driver per paper artifact (see DESIGN.md's per-experiment index):

* :mod:`repro.bench.profiles` — compiles every kernel for a CGRA/page
  configuration (baseline and paged) with an on-disk cache, producing the
  :class:`~repro.sim.system.KernelProfile` inputs the system model needs;
* :mod:`repro.bench.fig8` — Fig. 8: II loss caused by the compile-time
  paging constraints, per kernel / CGRA size / page size;
* :mod:`repro.bench.fig9` — Fig. 9: system throughput improvement from
  multithreading, per CGRA size / page size / CGRA-need / thread count;
* :mod:`repro.bench.experiments` — registry + ``python -m repro.bench``.
"""

from repro.bench.profiles import ProfileStore, build_profiles
from repro.bench.fig8 import Fig8Row, run_fig8
from repro.bench.fig9 import Fig9Cell, run_fig9
from repro.bench.reporting import (
    fig8_to_records,
    fig9_to_records,
    write_csv,
    write_json,
)

__all__ = [
    "ProfileStore",
    "build_profiles",
    "Fig8Row",
    "run_fig8",
    "Fig9Cell",
    "run_fig9",
    "fig8_to_records",
    "fig9_to_records",
    "write_csv",
    "write_json",
]
