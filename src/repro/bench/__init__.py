"""Experiment harness.

One driver per paper artifact (see DESIGN.md's per-experiment index):

* :mod:`repro.bench.fig8` — Fig. 8: II loss caused by the compile-time
  paging constraints, per kernel / CGRA size / page size;
* :mod:`repro.bench.fig9` — Fig. 9: system throughput improvement from
  multithreading, per CGRA size / page size / CGRA-need / thread count;
* :mod:`repro.bench.experiments` — registry + ``python -m repro.bench``.

All kernel compilation is obtained through :mod:`repro.pipeline` — the
content-addressed artifact store plus parallel compile fan-out — of which
:func:`~repro.pipeline.build_profiles` and
:class:`~repro.pipeline.ArtifactStore` are re-exported here for
convenience.
"""

from repro.bench.fig8 import Fig8Row, run_fig8
from repro.bench.fig9 import Fig9Cell, run_fig9
from repro.bench.reporting import (
    fig8_to_records,
    fig9_to_records,
    write_csv,
    write_json,
)
from repro.pipeline import ArtifactStore, build_profiles

__all__ = [
    "ArtifactStore",
    "build_profiles",
    "Fig8Row",
    "run_fig8",
    "Fig9Cell",
    "run_fig9",
    "fig8_to_records",
    "fig9_to_records",
    "write_csv",
    "write_json",
]
