"""Fig. 8 — performance difference caused by the paging constraints.

For each benchmark and page size on one CGRA, report
``performance % = II_baseline / II_paged * 100``: 100% means the paging
constraints cost nothing, below 100% a degradation, above 100% the
constrained mapper found a better schedule (the paper's bars also exceed
100% occasionally).  Unmappable configurations are reported as ``None``,
mirroring the paper's omission of configurations its compiler did not
generate (e.g. 4x4 with 8-PE pages).

Compilation goes through :mod:`repro.pipeline`: the whole (kernel x page
size) sweep is submitted as one batch, so a cold cache uses every worker
and a warm cache performs zero mapper invocations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels import kernel_names
from repro.pipeline import ArtifactStore, CompileJob, compile_many
from repro.util.tables import format_table

__all__ = ["Fig8Row", "run_fig8", "render_fig8", "page_sizes_for"]


def page_sizes_for(size: int) -> list[int]:
    """The paper's page sizes per CGRA: {2,4} on 4x4 (8 gives only two
    pages, "not enough multithreading potential"), {2,4,8} on 6x6/8x8."""
    return [2, 4] if size <= 4 else [2, 4, 8]


@dataclass(frozen=True)
class Fig8Row:
    """One bar group of Fig. 8: a kernel's performance per page size."""

    kernel: str
    ii_base: int
    per_page_size: dict[int, float | None]  # page size -> performance ratio


def run_fig8(
    size: int,
    *,
    page_sizes: list[int] | None = None,
    seed: int = 0,
    store: ArtifactStore | None = None,
    kernels: list[str] | None = None,
    workers: int = 1,
    arch: str | None = None,
    backend: str = "flat",
) -> list[Fig8Row]:
    """Reproduce Fig. 8(a/b/c) for one CGRA size.

    *arch* compiles against a fabric preset instead of the homogeneous
    ``size x size`` grid (``repro.arch.presets``; must agree with *size*);
    *backend* selects the paged mapping strategy (``"flat"``/``"hier"``).
    """
    sizes = page_sizes if page_sizes is not None else page_sizes_for(size)
    names = kernels if kernels is not None else kernel_names()
    jobs = [
        CompileJob(name, size, ps, seed=seed, arch=arch, backend=backend)
        for name in names
        for ps in sizes
    ]
    artifacts = dict(
        zip(
            [(j.kernel, j.page_size) for j in jobs],
            compile_many(jobs, store=store, workers=workers),
        )
    )
    rows: list[Fig8Row] = []
    for name in names:
        ratios: dict[int, float | None] = {}
        ii_base = 0
        for ps in sizes:
            artifact = artifacts[(name, ps)]
            if artifact.unmappable:
                ratios[ps] = None
                continue
            ii_base = artifact.ii_base
            ratios[ps] = artifact.ii_base / artifact.ii_paged
        rows.append(Fig8Row(name, ii_base, ratios))
    return rows


def render_fig8(size: int, rows: list[Fig8Row]) -> str:
    """Paper-style table: one row per kernel, one column per page size."""
    sizes = sorted({ps for r in rows for ps in r.per_page_size})
    headers = ["kernel", "II_base"] + [f"page={ps}" for ps in sizes]
    body = []
    for r in rows:
        cells = [r.kernel, r.ii_base]
        for ps in sizes:
            v = r.per_page_size.get(ps)
            cells.append("n/a" if v is None else f"{v * 100:.1f}%")
        body.append(cells)
    avg = ["average", ""]
    for ps in sizes:
        vals = [r.per_page_size[ps] for r in rows if r.per_page_size.get(ps)]
        avg.append(f"{sum(vals) / len(vals) * 100:.1f}%" if vals else "n/a")
    body.append(avg)
    return format_table(
        headers,
        body,
        title=f"Fig. 8 — paging-constraint performance, {size}x{size} CGRA",
    )
