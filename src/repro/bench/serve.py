"""Serve bench: load-generate against the compile service, measure SLOs.

``python -m repro.bench serve`` starts an in-process
:class:`~repro.serve.server.ServeServer` on an ephemeral localhost port
with a fresh temporary artifact store (every run is cold — the coalesce
and hit rates measure the serving layer, not a pre-warmed disk), fires a
seeded Zipf-skewed request schedule at it from concurrent keep-alive
connections, and reports:

* throughput (requests/s) and request latency p50/p99/mean/max;
* the **coalesce rate** (duplicate concurrent requests that rode a
  sibling's in-flight compile) and **cache hit rate**;
* the server-side singleflight/scheduler/store counters.

Every run also proves two properties the service is built around: the
number of mapper invocations equals the number of *distinct* jobs (N
identical concurrent requests → one compile), and every served payload is
byte-identical to the offline :func:`~repro.pipeline.compile.compile_many`
output for the same job.  ``--smoke`` is the CI variant: tiny schedule,
hard assertions, no bench-file update.

Results append to the ``BENCH_serve.json`` trajectory at the repo root,
one labelled entry per run, mirroring ``BENCH_compile_speed.json``.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path

from repro.pipeline.compile import CompileJob, compile_many, job_key
from repro.pipeline.store import ArtifactStore
from repro.serve.loadgen import LoadReport, build_schedule, run_load
from repro.serve.server import ServeServer
from repro.serve.service import ServiceConfig

__all__ = [
    "DEFAULT_OUT",
    "default_jobs",
    "run_serve_bench",
    "verify_parity",
    "render_report",
    "update_bench_file",
    "main",
]

DEFAULT_OUT = "BENCH_serve.json"

#: Default tenant mix: three tenants, one with double weight, so the
#: weighted round-robin actually has something to arbitrate.
DEFAULT_TENANTS = ("alpha", "beta", "gamma")
DEFAULT_WEIGHTS = {"alpha": 2}


def default_jobs(
    kernels: tuple[str, ...] = ("mpeg", "sor", "compress", "gsr"),
    page_sizes: tuple[int, ...] = (2, 4),
    *,
    size: int = 4,
    seed: int = 0,
) -> list[dict]:
    """The bench's distinct-job universe: fast suite kernels on the 4x4
    grid (the duplication-heavy schedule is drawn from these)."""
    return [
        {"kernel": kernel, "size": size, "page_size": ps, "seed": seed}
        for kernel in kernels
        for ps in page_sizes
    ]


def _job_of(payload: dict) -> CompileJob:
    return CompileJob(
        kernel=payload["kernel"],
        size=payload.get("size", 4),
        page_size=payload.get("page_size", 4),
        prefer=payload.get("prefer", "square"),
        seed=payload.get("seed", 0),
        arch=payload.get("arch"),
        backend=payload.get("backend", "flat"),
    )


def verify_parity(report: LoadReport, jobs: list[dict]) -> int:
    """Recompile every distinct job offline (serial ``compile_many`` into
    a fresh store) and assert each served payload matches byte-for-byte.
    Returns the number of artifacts compared."""
    compile_jobs = [_job_of(p) for p in jobs]
    compared = 0
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(Path(tmp))
        compile_many(compile_jobs, store=store)
        for cj in compile_jobs:
            key = job_key(cj)
            served = report.bodies.get(key.digest)
            if served is None:
                continue  # schedule never drew this job
            offline = store.path_for(key).read_bytes()
            if served != offline:
                raise AssertionError(
                    f"served bytes diverge from offline compile_many for "
                    f"{cj.kernel}/ps{cj.page_size} ({key.digest[:12]})"
                )
            compared += 1
    return compared


async def _bench_async(
    *,
    jobs: list[dict],
    n_requests: int,
    clients: int,
    workers: int,
    slots: int,
    seed: int,
) -> tuple[LoadReport, dict]:
    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            store_root=tmp,
            workers=workers,
            slots=slots,
            tenant_weights=dict(DEFAULT_WEIGHTS),
        )
        async with ServeServer(config) as server:
            schedule = build_schedule(
                jobs,
                n_requests=n_requests,
                tenants=list(DEFAULT_TENANTS),
                seed=seed,
            )
            report = await run_load(
                server.host, server.port, schedule, clients=clients
            )
            stats = server.service.stats()
    return report, stats


def run_serve_bench(
    *,
    jobs: list[dict] | None = None,
    n_requests: int = 80,
    clients: int = 8,
    workers: int = 2,
    slots: int = 2,
    seed: int = 0,
) -> tuple[LoadReport, dict]:
    """One cold serve-bench run; returns (client report, server stats)."""
    jobs = jobs if jobs is not None else default_jobs()
    return asyncio.run(
        _bench_async(
            jobs=jobs,
            n_requests=n_requests,
            clients=clients,
            workers=workers,
            slots=slots,
            seed=seed,
        )
    )


def render_report(report: LoadReport, stats: dict, parity: int) -> str:
    rec = report.as_record()
    lat = rec["latency_ms"]
    lines = [
        f"serve bench: {rec['requests']} requests, {rec['ok']} ok, "
        f"{rec['errors']} error(s) in {rec['elapsed_seconds']:.2f}s "
        f"({rec['throughput_rps']:.1f} req/s)",
        f"latency ms: p50 {lat['p50']:.1f}  p99 {lat['p99']:.1f}  "
        f"mean {lat['mean']:.1f}  max {lat['max']:.1f}",
        f"sources: {rec['by_source']}",
        f"coalesce rate {stats['coalesce_rate']:.0%} "
        f"({stats['coalesced']} coalesced), cache hit rate "
        f"{stats['cache_hit_rate']:.0%} ({stats['hits']} hits), "
        f"{stats['compiles']} compile(s)",
        f"store: {stats['store']}",
        f"byte parity vs offline compile_many: {parity} artifact(s) identical",
    ]
    return "\n".join(lines)


def _entry(
    report: LoadReport, stats: dict, parity: int, *, label: str, seed: int, args
) -> dict:
    rec = report.as_record()
    return {
        "label": label,
        # repro: allow[DET-WALL-CLOCK] run date annotates the perf log for humans; artifacts are addressed by content
        "date": time.strftime("%Y-%m-%d"),
        "seed": seed,
        "workers": args.workers,
        "slots": args.slots,
        "clients": args.clients,
        "requests": rec["requests"],
        "throughput_rps": rec["throughput_rps"],
        "latency_ms": rec["latency_ms"],
        "coalesce_rate": stats["coalesce_rate"],
        "cache_hit_rate": stats["cache_hit_rate"],
        "compiles": stats["compiles"],
        "coalesced": stats["coalesced"],
        "hits": stats["hits"],
        "errors": rec["errors"],
        "parity_artifacts": parity,
    }


def update_bench_file(path: Path, entry: dict) -> dict:
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {"bench": "serve", "entries": []}
    data["entries"] = [e for e in data["entries"] if e["label"] != entry["label"]]
    data["entries"].append(entry)
    path.write_text(json.dumps(data, indent=1, sort_keys=False) + "\n")
    return data


def main(args) -> int:
    """``python -m repro.bench serve`` body (argparse namespace)."""
    workers = getattr(args, "workers", 1) or 1
    if args.smoke:
        # CI variant: two distinct jobs, duplication-heavy schedule, hard
        # assertions on coalescing, single-compile dedup and byte parity.
        jobs = default_jobs(kernels=("mpeg", "sor"), page_sizes=(2,))
        report, stats = run_serve_bench(
            jobs=jobs,
            n_requests=16,
            clients=6,
            workers=max(2, workers),
            slots=args.slots,
            seed=args.seed,
        )
        parity = verify_parity(report, jobs)
        print(render_report(report, stats, parity))
        assert report.errors == 0, f"{report.errors} request(s) failed"
        assert stats["compiles"] == len(jobs), (
            f"expected exactly {len(jobs)} mapper invocations "
            f"(one per distinct job), got {stats['compiles']}"
        )
        assert stats["coalesced"] > 0, "no concurrent duplicates coalesced"
        assert parity == len(jobs), "not every distinct job verified byte parity"
        print(
            f"[smoke] ok: {stats['compiles']} compiles served "
            f"{report.requests} requests, {stats['coalesced']} coalesced, "
            f"{parity} byte-identical"
        )
        return 0
    report, stats = run_serve_bench(
        n_requests=args.requests,
        clients=args.clients,
        workers=workers,
        slots=args.slots,
        seed=args.seed,
    )
    parity = verify_parity(report, default_jobs())
    print(render_report(report, stats, parity))
    if report.errors:
        print(f"[fail] {report.errors} request(s) errored")
        return 1
    out = Path(args.out or DEFAULT_OUT)
    if args.dry_run:
        print(f"[dry-run] not updating {out}")
        return 0
    entry = _entry(
        report, stats, parity, label=args.label, seed=args.seed, args=args
    )
    update_bench_file(out, entry)
    print(f"[write] {out}: entry '{args.label}'")
    return 0
