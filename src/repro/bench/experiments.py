"""Experiment registry and command-line entry point.

Every paper artifact has a named experiment that regenerates it::

    python -m repro.bench list
    python -m repro.bench fig8_4x4
    python -m repro.bench fig9_8x8 --page-size 4
    python -m repro.bench headline
    python -m repro.bench all --workers 8
    python -m repro.bench compile-speed --kernels mpeg,wavelet --dry-run
    python -m repro.bench sim-oracle --configs 60
    python -m repro.bench serve --requests 80 --clients 8

All compilation goes through :mod:`repro.pipeline`; ``--workers N`` fans a
cold cache out over N processes, and after each experiment the CLI reports
the artifact cache's hit/miss counters — a warm run shows zero misses,
i.e. zero mapper invocations.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.bench.fig8 import page_sizes_for, render_fig8, run_fig8
from repro.bench.fig9 import best_improvement, render_fig9, run_fig9
from repro.pipeline import ArtifactStore

__all__ = ["EXPERIMENTS", "run_experiment", "main"]


def _fig8(size: int):
    def run(store: ArtifactStore, args) -> str:
        rows = run_fig8(size, store=store, seed=args.seed, workers=args.workers)
        if getattr(args, "json", None):
            from repro.bench.reporting import fig8_to_records, write_json

            write_json(fig8_to_records(size, rows), args.json)
        return render_fig8(size, rows)

    return run


def _fig9(size: int):
    def run(store: ArtifactStore, args) -> str:
        ps = args.page_size or 4
        cells = run_fig9(
            size,
            ps,
            store=store,
            seed=args.seed,
            repeats=args.repeats,
            workers=args.workers,
        )
        if getattr(args, "json", None):
            from repro.bench.reporting import fig9_to_records, write_json

            write_json(fig9_to_records(size, ps, cells), args.json)
        out = render_fig9(size, ps, cells)
        return out + f"\nbest improvement: {best_improvement(cells) * 100:+.1f}%"

    return run


def _headline(store: ArtifactStore, args) -> str:
    lines = ["headline (abstract): best improvement per CGRA size"]
    claims = {4: 30, 6: 75, 8: 150}
    for size in (4, 6, 8):
        best = max(
            best_improvement(
                run_fig9(
                    size,
                    ps,
                    store=store,
                    seed=args.seed,
                    repeats=args.repeats,
                    workers=args.workers,
                )
            )
            for ps in page_sizes_for(size)
        )
        lines.append(
            f"  {size}x{size}: {best * 100:+7.1f}%   (paper claims > {claims[size]}%)"
        )
    return "\n".join(lines)


EXPERIMENTS: dict[str, Callable] = {
    "fig8_4x4": _fig8(4),
    "fig8_6x6": _fig8(6),
    "fig8_8x8": _fig8(8),
    "fig9_4x4": _fig9(4),
    "fig9_6x6": _fig9(6),
    "fig9_8x8": _fig9(8),
    "headline": _headline,
}


def run_experiment(name: str, store: ArtifactStore | None = None, argv=()) -> str:
    """Run one named experiment and return its report text."""
    args = _parser().parse_args([name, *argv])
    return EXPERIMENTS[name](store or ArtifactStore(), args)


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    p.add_argument(
        "experiment",
        choices=[
            *EXPERIMENTS,
            "compile-speed",
            "analysis",
            "sim-oracle",
            "policies",
            "serve",
            "all",
            "list",
        ],
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="policies/serve: tiny oracle-verified CI variant (no "
        "bench-file update)",
    )
    p.add_argument("--page-size", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--repeats", type=int, default=2)
    # compile-speed options (ignored by the figure experiments)
    p.add_argument("--size", type=int, default=None, help="grid size (compile-speed)")
    p.add_argument(
        "--kernels",
        default=None,
        help="comma-separated kernel subset (compile-speed; default: full suite)",
    )
    p.add_argument(
        "--page-sizes",
        default=None,
        help="comma-separated page sizes (compile-speed; default: suite set)",
    )
    p.add_argument(
        "--arch",
        default=None,
        help="fabric preset name from repro.arch.presets (compile-speed; "
        "overrides --size)",
    )
    p.add_argument(
        "--backend",
        choices=["flat", "hier", "exact"],
        default=None,
        help="paged mapping backend (compile-speed; default flat)",
    )
    p.add_argument(
        "--label",
        default="current",
        help="entry label recorded in the bench file (compile-speed)",
    )
    p.add_argument(
        "--out", default=None, help="bench JSON path (compile-speed)"
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="print the report without updating the bench file (compile-speed)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes compiling cache misses in parallel (results are "
        "identical to --workers 1; only wall-clock changes)",
    )
    p.add_argument(
        "--json", default=None, help="also write the series as JSON records"
    )
    p.add_argument(
        "--configs",
        type=int,
        default=60,
        help="workload configurations to verify (sim-oracle)",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=80,
        help="load-generator request count (serve)",
    )
    p.add_argument(
        "--clients",
        type=int,
        default=8,
        help="concurrent keep-alive client connections (serve)",
    )
    p.add_argument(
        "--slots",
        type=int,
        default=2,
        help="concurrent compile slots in the service (serve)",
    )
    return p


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.experiment == "list":
        print(
            "\n".join(
                [
                    *EXPERIMENTS,
                    "compile-speed",
                    "analysis",
                    "sim-oracle",
                    "policies",
                    "serve",
                ]
            )
        )
        return 0
    if args.experiment == "analysis":
        # Lint + audit over the default tree/store; same exit-code
        # contract as `python -m repro.analysis all --strict`.
        from repro.analysis.cli import main as analysis_main

        return analysis_main(["all", "--strict"])
    if args.experiment == "policies":
        # Policy tournament + engine-scale bench: pure simulation.
        from repro.bench.policies import main as policies_main

        return policies_main(args)
    if args.experiment == "serve":
        # Compile-as-a-service load bench: own ephemeral server + store.
        from repro.bench.serve import main as serve_main

        return serve_main(args)
    if args.experiment == "sim-oracle":
        # Pure-simulation differential check: no compilation, no cache.
        from repro.sim.fuzz import run_fuzz

        report = run_fuzz(n_cases=args.configs, seed=args.seed)
        print(report.render())
        return 0 if report.ok else 1
    if args.experiment == "compile-speed":
        # Deliberately cache-free (it measures the mapper, not the store),
        # so it bypasses the ArtifactStore loop below.
        from repro.bench.compile_speed import main as compile_speed_main

        return compile_speed_main(args)
    store = ArtifactStore()
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"==== {name} " + "=" * max(0, 60 - len(name)))
        before = store.stats()
        print(EXPERIMENTS[name](store, args))
        after = store.stats()
        print(
            f"[cache] {after['hits'] - before['hits']} hit(s), "
            f"{after['misses'] - before['misses']} miss(es) "
            f"(= mapper invocations), "
            f"{after['compile_seconds'] - before['compile_seconds']:.1f}s compiling"
        )
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
