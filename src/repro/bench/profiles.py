"""Kernel compilation profiles with an on-disk cache.

The figure drivers need, for every (kernel, CGRA size, page shape), the
baseline II, the paging-constrained II, and whether the constrained mapping
uses the ring-wrap link.  Mapping is deterministic for a given seed, so
results are memoised in a JSON cache (default ``.bench_cache.json`` at the
repository root) keyed by a schema version — bump ``CACHE_VERSION`` when
mapper behaviour changes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.arch.cgra import CGRA
from repro.compiler.ems import MapperConfig, map_dfg
from repro.compiler.paged import map_dfg_paged
from repro.core.paging import PageLayout, choose_page_shape
from repro.kernels import get_kernel, kernel_names
from repro.sim.system import KernelProfile
from repro.util.errors import MappingError

__all__ = ["ProfileStore", "build_profiles", "make_layout", "CACHE_VERSION"]

CACHE_VERSION = 5


def make_layout(cgra: CGRA, page_size: int, prefer: str = "square") -> PageLayout:
    """Standard page layout for the experiments: the most square tile of
    *page_size* PEs that fits (Fig. 4 uses 2x2 for size 4)."""
    return PageLayout(cgra, choose_page_shape(page_size, cgra.rows, cgra.cols, prefer))


@dataclass
class ProfileStore:
    """JSON-backed memo of compilation results."""

    path: Path | None = None

    def __post_init__(self) -> None:
        if self.path is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".")
            self.path = Path(root) / ".bench_cache.json"
        self._data: dict = {}
        if self.path.exists():
            try:
                raw = json.loads(self.path.read_text())
                if raw.get("version") == CACHE_VERSION:
                    self._data = raw.get("entries", {})
            except (json.JSONDecodeError, OSError):
                self._data = {}

    def _key(self, kernel: str, size: int, page_size: int, prefer: str, seed: int) -> str:
        return f"{kernel}/{size}x{size}/p{page_size}-{prefer}/s{seed}"

    def get(self, *key_parts):
        return self._data.get(self._key(*key_parts))

    def put(self, value, *key_parts) -> None:
        self._data[self._key(*key_parts)] = value
        try:
            self.path.write_text(
                json.dumps({"version": CACHE_VERSION, "entries": self._data}, indent=0)
            )
        except OSError:
            pass  # cache is best-effort


def _mapper_config(seed: int) -> MapperConfig:
    return MapperConfig(seed=seed, attempts_per_ii=4)


def compile_kernel(
    kernel: str,
    size: int,
    page_size: int,
    *,
    prefer: str = "square",
    seed: int = 0,
    store: ProfileStore | None = None,
) -> KernelProfile | None:
    """Compile one kernel for one configuration (None if unmappable under
    the paging constraints — the paper likewise omits configurations its
    compiler cannot generate)."""
    if store is not None:
        hit = store.get(kernel, size, page_size, prefer, seed)
        if hit is not None:
            if hit == "UNMAPPABLE":
                return None
            return KernelProfile(
                kernel,
                hit["ii_base"],
                hit["ii_paged"],
                hit["pages_used"],
                hit["wrap"],
            )
    cgra = CGRA(size, size, rf_depth=4 * size)
    dfg = get_kernel(kernel).build()
    base = map_dfg(dfg, cgra, config=_mapper_config(seed))
    layout = make_layout(cgra, page_size, prefer)
    try:
        paged = map_dfg_paged(dfg, cgra, layout, config=_mapper_config(seed))
    except MappingError:
        if store is not None:
            store.put("UNMAPPABLE", kernel, size, page_size, prefer, seed)
        return None
    profile = KernelProfile(
        kernel, base.ii, paged.ii, paged.pages_used, paged.wrap_used
    )
    if store is not None:
        store.put(
            {
                "ii_base": base.ii,
                "ii_paged": paged.ii,
                "pages_used": paged.pages_used,
                "wrap": paged.wrap_used,
            },
            kernel,
            size,
            page_size,
            prefer,
            seed,
        )
    return profile


def build_profiles(
    size: int,
    page_size: int,
    *,
    prefer: str = "square",
    seed: int = 0,
    store: ProfileStore | None = None,
    kernels: list[str] | None = None,
) -> dict[str, KernelProfile]:
    """Profiles for every mappable kernel of the suite on one config."""
    out: dict[str, KernelProfile] = {}
    for name in kernels if kernels is not None else kernel_names():
        prof = compile_kernel(
            name, size, page_size, prefer=prefer, seed=seed, store=store
        )
        if prof is not None:
            out[name] = prof
    return out
