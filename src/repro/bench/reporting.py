"""Machine-readable experiment exports.

The figure drivers return plain dataclasses; this module serialises them to
JSON (full fidelity) and CSV (one row per data point) so results can be
plotted or diffed outside this repository::

    rows = run_fig8(4, store=store)
    write_json(fig8_to_records(4, rows), "fig8_4x4.json")
    write_csv(fig8_to_records(4, rows), "fig8_4x4.csv")
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.bench.fig8 import Fig8Row
from repro.bench.fig9 import Fig9Cell
from repro.util.errors import ReproError

__all__ = ["fig8_to_records", "fig9_to_records", "write_json", "write_csv"]


def fig8_to_records(size: int, rows: list[Fig8Row]) -> list[dict]:
    """Flatten Fig. 8 rows: one record per (kernel, page size)."""
    out = []
    for r in rows:
        for ps, ratio in sorted(r.per_page_size.items()):
            out.append(
                {
                    "experiment": "fig8",
                    "cgra": f"{size}x{size}",
                    "kernel": r.kernel,
                    "page_size": ps,
                    "ii_base": r.ii_base,
                    "performance": None if ratio is None else round(ratio, 6),
                    "mappable": ratio is not None,
                }
            )
    return out


def fig9_to_records(size: int, page_size: int, cells: list[Fig9Cell]) -> list[dict]:
    """Flatten Fig. 9 cells: one record per (need, thread count)."""
    return [
        {
            "experiment": "fig9",
            "cgra": f"{size}x{size}",
            "page_size": page_size,
            "need": c.need,
            "threads": c.n_threads,
            "improvement": round(c.improvement, 6),
            "mt_makespan": c.mt_makespan,
            "base_makespan": c.base_makespan,
            "mt_utilization": round(c.mt_utilization, 6),
        }
        for c in cells
    ]


def write_json(records: list[dict], path: str | Path) -> Path:
    """Write records as a JSON array; returns the path."""
    p = Path(path)
    p.write_text(json.dumps(records, indent=2) + "\n")
    return p


def write_csv(records: Iterable[dict], path: str | Path) -> Path:
    """Write records as CSV with a union header; returns the path."""
    records = list(records)
    if not records:
        raise ReproError("no records to write")
    fields: list[str] = []
    for r in records:
        for k in r:
            if k not in fields:
                fields.append(k)
    p = Path(path)
    with p.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(records)
    return p
