"""Fig. 9 — system performance improvement from multithreading the CGRA.

For one CGRA size and page size: generate random thread mixes at each CGRA
need level (50% / 75% / 87.5%) and thread count (1, 2, 4, 8, 16), simulate
the single-threaded non-preemptive baseline and the paged multithreaded
system, and report the makespan improvement percentage — the quantity the
paper's Fig. 9 bars show.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.core.paging import choose_page_shape
from repro.arch.cgra import CGRA
from repro.core.paging import PageLayout
from repro.pipeline import ArtifactStore, build_profiles
from repro.sim.system import SystemConfig, improvement, simulate_system
from repro.sim.workload import generate_workload
from repro.util.rng import derive_seed
from repro.util.tables import format_table

__all__ = ["Fig9Cell", "run_fig9", "render_fig9", "NEEDS", "THREAD_COUNTS"]

NEEDS = (0.5, 0.75, 0.875)  # the paper's low / medium / high CGRA need
THREAD_COUNTS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class Fig9Cell:
    """One bar of Fig. 9."""

    need: float
    n_threads: int
    improvement: float  # fractional: 0.30 == +30%
    mt_makespan: float
    base_makespan: float
    mt_utilization: float


def _num_pages(size: int, page_size: int) -> int:
    cgra = CGRA(size, size)
    shape = choose_page_shape(page_size, size, size)
    return PageLayout(cgra, shape).num_pages


def run_fig9(
    size: int,
    page_size: int,
    *,
    needs=NEEDS,
    thread_counts=THREAD_COUNTS,
    seed: int = 0,
    repeats: int = 3,
    store: ArtifactStore | None = None,
    kernels: list[str] | None = None,
    reconfig_overhead: int = 0,
    workers: int = 1,
) -> list[Fig9Cell]:
    """Reproduce one panel of Fig. 9.

    ``repeats`` independent workloads per (need, threads) point are
    averaged, since the paper's threads are randomly generated.
    """
    profiles = build_profiles(
        size, page_size, seed=seed, store=store, kernels=kernels, workers=workers
    )
    if not profiles:
        return []
    n_pages = _num_pages(size, page_size)
    config = SystemConfig(
        n_pages=n_pages,
        profiles=profiles,
        reconfig_overhead=reconfig_overhead,
    )
    nominal = {k: p.ii_paged for k, p in profiles.items()}
    cells: list[Fig9Cell] = []
    for need in needs:
        for n_threads in thread_counts:
            imps, mts, bases, utils = [], [], [], []
            for r in range(repeats):
                wl_seed = derive_seed(seed, "fig9", size, page_size, int(need * 1000), n_threads, r)
                workload = generate_workload(
                    n_threads, need, sorted(profiles), nominal, seed=wl_seed
                )
                base = simulate_system(workload, config, "single")
                mt = simulate_system(workload, config, "multithreaded")
                imps.append(improvement(base, mt))
                mts.append(mt.makespan)
                bases.append(base.makespan)
                utils.append(mt.cgra_utilization)
            cells.append(
                Fig9Cell(
                    need,
                    n_threads,
                    mean(imps),
                    mean(mts),
                    mean(bases),
                    mean(utils),
                )
            )
    return cells


def render_fig9(size: int, page_size: int, cells: list[Fig9Cell]) -> str:
    """Paper-style table: rows = thread counts, columns = CGRA needs."""
    needs = sorted({c.need for c in cells})
    counts = sorted({c.n_threads for c in cells})
    headers = ["threads"] + [f"need={int(n * 100)}%" for n in needs]
    grid = {(c.n_threads, c.need): c for c in cells}
    body = []
    for t in counts:
        row = [t]
        for n in needs:
            c = grid.get((t, n))
            row.append("-" if c is None else f"{c.improvement * 100:+.1f}%")
        body.append(row)
    return format_table(
        headers,
        body,
        title=(
            f"Fig. 9 — multithreading improvement, {size}x{size} CGRA, "
            f"page size {page_size}"
        ),
    )


def best_improvement(cells: list[Fig9Cell]) -> float:
    """Best-case improvement over the panel (the paper's headline metric)."""
    return max((c.improvement for c in cells), default=0.0)
