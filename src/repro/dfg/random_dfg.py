"""Random loop-kernel generation.

Produces structurally valid, executable DFGs for differential testing: the
fuzz suite maps random kernels with both compilers, simulates them
cycle-accurately (before and after PageMaster shrinking), and requires
bit-exact agreement with the reference interpreter.  Also handy for
stress-testing mappers beyond the 11-kernel suite.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.dfg.builder import DFGBuilder, Value
from repro.dfg.graph import DFG
from repro.util.errors import GraphError
from repro.util.rng import make_rng

__all__ = ["random_dfg", "random_arrays"]

_BINARY = [
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.MIN,
    Opcode.MAX,
]
_UNARY = [Opcode.NEG, Opcode.ABS, Opcode.NOT]
_SHIFT = [Opcode.SHL, Opcode.SHR]


def random_dfg(
    seed: int,
    *,
    n_ops: int = 10,
    n_inputs: int = 2,
    n_outputs: int = 1,
    recurrence_prob: float = 0.4,
    max_offset: int = 2,
) -> DFG:
    """Build a random kernel with ~*n_ops* compute ops.

    Inputs are streamed from arrays ``in0..``, outputs stored to
    ``out0..`` (one array per store so random kernels never double-store).
    With probability *recurrence_prob* one loop-carried cycle is threaded
    through the graph.
    """
    if n_ops < 1 or n_inputs < 1 or n_outputs < 1:
        raise GraphError("random_dfg needs at least one op, input and output")
    rng = make_rng(seed)
    b = DFGBuilder(f"fuzz{seed}")
    values: list[Value] = []

    carry = None
    if rng.random() < recurrence_prob:
        carry = b.placeholder("carry")
        values.append(carry)

    for i in range(n_inputs):
        values.append(
            b.load(f"in{i}", offset=int(rng.integers(0, max_offset + 1)))
        )

    def pick() -> Value:
        return values[int(rng.integers(len(values)))]

    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.15:
            v = b.op(_UNARY[int(rng.integers(len(_UNARY)))], pick())
        elif roll < 0.35:
            # shifts keep magnitudes bounded, which keeps recurrences from
            # wrapping ranges the goldens cannot reproduce cheaply
            amount = b.const(int(rng.integers(1, 4)))
            v = b.op(_SHIFT[int(rng.integers(len(_SHIFT)))], pick(), amount)
        elif roll < 0.45:
            v = b.add(pick(), b.const(int(rng.integers(-64, 64))))
        else:
            op = _BINARY[int(rng.integers(len(_BINARY)))]
            v = b.op(op, pick(), pick())
        values.append(v)

    if carry is not None:
        # close the recurrence on a value that (transitively) uses it, so
        # the cycle is real; shift keeps it numerically tame
        feed = b.shr(values[-1], b.const(1), name="carry_feed")
        dist = int(rng.integers(1, 3))
        init = tuple(int(rng.integers(-8, 8)) for _ in range(dist))
        b.bind_carry(carry, feed, distance=dist, init=init)

    # stores read late values so most of the graph is live
    for i in range(n_outputs):
        b.store(f"out{i}", values[-(1 + i % min(3, len(values)))])
    return b.build()


def random_arrays(
    dfg: DFG, seed: int, trip: int
) -> dict[str, np.ndarray]:
    """Input/output arrays sized for *trip* iterations of a random kernel."""
    rng = make_rng(seed ^ 0xA5A5)
    arrays: dict[str, np.ndarray] = {}
    for op in dfg.ops.values():
        if op.memref is None:
            continue
        name = op.memref.array
        length = trip * abs(op.memref.stride or 1) + abs(op.memref.offset) + 2
        if op.opcode is Opcode.LOAD:
            if name not in arrays or len(arrays[name]) < length:
                arrays[name] = rng.integers(-64, 64, length, dtype=np.int64)
        else:
            arrays[name] = np.zeros(length, dtype=np.int64)
    return arrays
