"""Dataflow-graph substrate.

Loop kernels are represented as DFGs (Fig. 2 of the paper): vertices are
micro-operations, edges are data dependencies, optionally loop-carried with
an iteration distance.  This package provides the graph model, a builder
API, scheduling analyses (ASAP/ALAP, ResMII/RecMII/MII), and structural
transforms (unrolling, dead-code elimination).
"""

from repro.dfg.graph import DFG, Edge, MemRef, Op
from repro.dfg.builder import DFGBuilder
from repro.dfg.analysis import (
    asap_times,
    alap_times,
    critical_path_length,
    rec_mii,
    res_mii,
    mii,
)
from repro.dfg.transforms import unroll, eliminate_dead_ops
from repro.dfg.spill import bind_spill_arrays, spill_candidates, spill_long_edges
from repro.dfg.random_dfg import random_arrays, random_dfg
from repro.dfg.validate import validate_dfg

__all__ = [
    "DFG",
    "Edge",
    "MemRef",
    "Op",
    "DFGBuilder",
    "asap_times",
    "alap_times",
    "critical_path_length",
    "rec_mii",
    "res_mii",
    "mii",
    "unroll",
    "eliminate_dead_ops",
    "spill_long_edges",
    "spill_candidates",
    "bind_spill_arrays",
    "random_dfg",
    "random_arrays",
    "validate_dfg",
]
