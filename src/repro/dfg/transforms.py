"""Structural DFG transforms.

``unroll`` reproduces the paper's Fig. 3 experiment: unrolling a loop with a
recurrence does not beat the recurrence bound — the unrolled graph's RecMII
grows with the factor, keeping the *effective* II per original iteration
constant.  ``eliminate_dead_ops`` removes value-producing ops whose results
reach no store and no recurrence.
"""

from __future__ import annotations

from dataclasses import replace

from repro.dfg.graph import DFG, MemRef
from repro.util.errors import GraphError

__all__ = ["unroll", "eliminate_dead_ops"]


def unroll(dfg: DFG, factor: int) -> DFG:
    """Unroll the loop body *factor* times.

    Iteration ``i`` of the unrolled loop executes original iterations
    ``i*factor + k`` for ``k in 0..factor-1``.  Memory strides are scaled,
    offsets shifted per copy, and loop-carried distances redistributed:
    copy *k*'s consumer of a distance-*d* edge reads copy ``(k-d) mod
    factor`` at new distance ``-floor((k-d)/factor)``.
    """
    if factor < 1:
        raise GraphError(f"unroll factor must be >= 1, got {factor}")
    if factor == 1:
        return dfg.copy()
    out = DFG(name=f"{dfg.name}_x{factor}")
    new_id: dict[tuple[int, int], int] = {}  # (orig op, copy) -> new op id
    for k in range(factor):
        for op in sorted(dfg.ops.values(), key=lambda o: o.id):
            memref = op.memref
            if memref is not None:
                if memref.ring is not None:
                    raise GraphError("unrolling modular memrefs is not supported")
                memref = MemRef(
                    memref.array,
                    stride=memref.stride * factor,
                    offset=memref.offset + memref.stride * k,
                )
            node = out.add_op(
                op.opcode,
                name=f"{op.label}#{k}",
                immediate=op.immediate,
                memref=memref,
            )
            new_id[(op.id, k)] = node.id
    for k in range(factor):
        for e in sorted(dfg.edges.values(), key=lambda e: e.id):
            src_copy = (k - e.distance) % factor
            new_dist = -((k - e.distance) // factor)
            init: tuple[int, ...] = ()
            if new_dist > 0:
                # unrolled iteration j, copy k corresponds to original
                # iteration j*factor + k; its initial values are the original
                # edge's init entries for those original iterations.
                init = tuple(
                    e.init[j * factor + k] if j * factor + k < len(e.init) else 0
                    for j in range(new_dist)
                )
            out.add_edge(
                new_id[(e.src, src_copy)],
                new_id[(e.dst, k)],
                e.operand_index,
                distance=new_dist,
                init=init,
            )
    return out


def eliminate_dead_ops(dfg: DFG) -> DFG:
    """Remove ops whose value can never reach a store.

    Keeps every memory op, then walks def-use edges backwards (through
    loop-carried edges too — recurrence values are live).  Returns a new,
    densely renumbered DFG.
    """
    live: set[int] = {op.id for op in dfg.ops.values() if op.is_memory}
    frontier = list(live)
    while frontier:
        v = frontier.pop()
        for e in dfg.in_edges(v):
            if e.src not in live:
                live.add(e.src)
                frontier.append(e.src)
    kept = sorted(live)
    mapping = {old: new for new, old in enumerate(kept)}
    out = DFG(name=dfg.name)
    for old in kept:
        op = dfg.ops[old]
        out.ops[mapping[old]] = replace(op, id=mapping[old])
    out._next_op = len(kept)
    for e in sorted(dfg.edges.values(), key=lambda e: e.id):
        if e.src in live and e.dst in live:
            out.add_edge(
                mapping[e.src],
                mapping[e.dst],
                e.operand_index,
                distance=e.distance,
                init=e.init,
            )
    return out
