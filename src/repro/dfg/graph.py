"""Dataflow graph model.

A :class:`DFG` is the compiler's view of one innermost loop body (Fig. 2):
operations (:class:`Op`) connected by data-dependency edges (:class:`Edge`).
Edges carry an *iteration distance*: distance 0 is an intra-iteration
dependency, distance ``d > 0`` means the consumer reads the value the
producer computed ``d`` iterations earlier (a loop-carried dependency, the
recurrence cycles of Fig. 3).  Loop-carried edges also carry the initial
values consumed by the first ``d`` iterations.

Memory operations reference arrays symbolically through :class:`MemRef`;
binding to concrete base addresses happens when a kernel is loaded into a
:class:`~repro.arch.memory.DataMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import networkx as nx

from repro.arch.isa import OPCODE_INFO, Opcode
from repro.util.errors import GraphError
from repro.util.fingerprint import canonical_fingerprint

__all__ = ["MemRef", "Op", "Edge", "DFG"]


@dataclass(frozen=True)
class MemRef:
    """Symbolic affine memory reference: element ``offset + stride * i`` of
    ``array`` at kernel iteration ``i`` (optionally modulo ``ring``)."""

    array: str
    stride: int = 1
    offset: int = 0
    ring: int | None = None


@dataclass(frozen=True)
class Op:
    """One micro-operation of the loop body."""

    id: int
    opcode: Opcode
    name: str = ""
    immediate: int | None = None
    memref: MemRef | None = None

    def __post_init__(self) -> None:
        info = OPCODE_INFO[self.opcode]
        if info.is_memory and self.memref is None:
            raise GraphError(f"op {self.id} ({self.opcode.value}) needs a memref")
        if not info.is_memory and self.memref is not None:
            raise GraphError(f"op {self.id} ({self.opcode.value}) cannot take a memref")
        if self.opcode is Opcode.CONST and self.immediate is None:
            raise GraphError(f"op {self.id}: CONST needs an immediate")

    @property
    def is_memory(self) -> bool:
        return OPCODE_INFO[self.opcode].is_memory

    @property
    def produces_value(self) -> bool:
        return OPCODE_INFO[self.opcode].produces_value

    @property
    def label(self) -> str:
        return self.name or f"op{self.id}"


@dataclass(frozen=True)
class Edge:
    """Data dependency: operand ``operand_index`` of ``dst`` is the value of
    ``src``, ``distance`` iterations back.  ``init`` supplies the values for
    the first ``distance`` iterations (``init[k]`` feeds iteration ``k``)."""

    id: int
    src: int
    dst: int
    operand_index: int
    distance: int = 0
    init: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise GraphError(f"edge {self.id}: negative distance {self.distance}")
        if len(self.init) != self.distance:
            raise GraphError(
                f"edge {self.id}: distance {self.distance} requires "
                f"{self.distance} initial values, got {len(self.init)}"
            )


@dataclass
class DFG:
    """A loop-body dataflow graph."""

    name: str = "kernel"
    ops: dict[int, Op] = field(default_factory=dict)
    edges: dict[int, Edge] = field(default_factory=dict)
    _next_op: int = 0
    _next_edge: int = 0
    # lazily-built per-op (in_edges, out_edges) tables; dropped on mutation
    _adj: tuple[dict, dict] | None = field(
        default=None, repr=False, compare=False
    )

    # -- construction -------------------------------------------------------------

    def add_op(
        self,
        opcode: Opcode,
        *,
        name: str = "",
        immediate: int | None = None,
        memref: MemRef | None = None,
    ) -> Op:
        op = Op(self._next_op, opcode, name=name, immediate=immediate, memref=memref)
        self.ops[op.id] = op
        self._next_op += 1
        self._adj = None
        return op

    def add_edge(
        self,
        src: Op | int,
        dst: Op | int,
        operand_index: int,
        *,
        distance: int = 0,
        init: tuple[int, ...] = (),
    ) -> Edge:
        s = src.id if isinstance(src, Op) else src
        d = dst.id if isinstance(dst, Op) else dst
        if s not in self.ops:
            raise GraphError(f"edge source op {s} not in graph")
        if d not in self.ops:
            raise GraphError(f"edge destination op {d} not in graph")
        if not self.ops[s].produces_value:
            raise GraphError(f"op {s} ({self.ops[s].opcode.value}) produces no value")
        arity = OPCODE_INFO[self.ops[d].opcode].arity
        if not 0 <= operand_index < arity:
            raise GraphError(
                f"operand index {operand_index} out of range for "
                f"{self.ops[d].opcode.value} (arity {arity})"
            )
        for e in self.edges.values():
            if e.dst == d and e.operand_index == operand_index:
                raise GraphError(
                    f"operand {operand_index} of op {d} already driven by edge {e.id}"
                )
        edge = Edge(self._next_edge, s, d, operand_index, distance, tuple(init))
        self.edges[edge.id] = edge
        self._next_edge += 1
        self._adj = None
        return edge

    # -- queries --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_memory_ops(self) -> int:
        return sum(1 for op in self.ops.values() if op.is_memory)

    def _adjacency(self) -> tuple[dict, dict]:
        """Per-op edge tables.  ``in`` lists are ordered exactly like the
        historical scan (stable sort by operand index, edge id breaking
        ties); ``out`` lists are in ascending edge id.  The mapper hits
        these accessors millions of times per ladder, so the O(E) scan per
        call is replaced by one O(E) build per graph mutation epoch."""
        adj = self._adj
        if adj is None:
            ins: dict[int, list[Edge]] = {v: [] for v in self.ops}
            outs: dict[int, list[Edge]] = {v: [] for v in self.ops}
            for e in self.edges.values():
                ins[e.dst].append(e)
                outs[e.src].append(e)
            adj = (
                {
                    v: tuple(sorted(lst, key=lambda e: e.operand_index))
                    for v, lst in ins.items()
                },
                {v: tuple(lst) for v, lst in outs.items()},
            )
            self._adj = adj
        return adj

    def in_edges(self, op: Op | int) -> tuple[Edge, ...]:
        """Incoming edges of *op*, sorted by operand index."""
        d = op.id if isinstance(op, Op) else op
        return self._adjacency()[0][d]

    def out_edges(self, op: Op | int) -> tuple[Edge, ...]:
        s = op.id if isinstance(op, Op) else op
        return self._adjacency()[1][s]

    def operands_bound(self, op: Op | int) -> bool:
        """All operand slots of *op* driven by an edge?"""
        o = self.ops[op.id if isinstance(op, Op) else op]
        return len(self.in_edges(o)) == OPCODE_INFO[o.opcode].arity

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export as a networkx multigraph (edge attrs: distance, operand)."""
        g = nx.MultiDiGraph(name=self.name)
        for op in self.ops.values():
            g.add_node(op.id, opcode=op.opcode.value, label=op.label)
        for e in self.edges.values():
            g.add_edge(
                e.src, e.dst, key=e.id, distance=e.distance, operand=e.operand_index
            )
        return g

    def copy(self, name: str | None = None) -> "DFG":
        return DFG(
            name=name or self.name,
            ops=dict(self.ops),
            edges=dict(self.edges),
            _next_op=self._next_op,
            _next_edge=self._next_edge,
        )

    def relabel(self, mapping: dict[int, int]) -> "DFG":
        """Renumber ops according to *mapping* (must be a bijection over op
        ids); edge ids are renumbered densely."""
        if sorted(mapping) != sorted(self.ops) or sorted(set(mapping.values())) != sorted(
            mapping.values()
        ):
            raise GraphError("relabel mapping must be a bijection over op ids")
        out = DFG(name=self.name)
        for old_id in sorted(self.ops, key=lambda i: mapping[i]):
            op = self.ops[old_id]
            out.ops[mapping[old_id]] = replace(op, id=mapping[old_id])
        out._next_op = max(out.ops) + 1 if out.ops else 0
        for e in sorted(self.edges.values(), key=lambda e: e.id):
            out.add_edge(
                mapping[e.src],
                mapping[e.dst],
                e.operand_index,
                distance=e.distance,
                init=e.init,
            )
        return out

    def fingerprint(self) -> str:
        """Canonical structural hash of the graph.

        Stable across processes and independent of object identity, dict
        insertion order, edge-id numbering, and cosmetic op/graph names —
        two DFGs fingerprint equal iff the compiler would treat them the
        same.  Any semantic mutation (op added, opcode/immediate/memref
        changed, edge rewired, distance or init values changed) changes the
        fingerprint, which is what makes it safe as a cache key in
        :mod:`repro.pipeline`.
        """
        ops = [
            [
                op.id,
                op.opcode.value,
                op.immediate,
                [op.memref.array, op.memref.stride, op.memref.offset, op.memref.ring]
                if op.memref is not None
                else None,
            ]
            for op in sorted(self.ops.values(), key=lambda o: o.id)
        ]
        edges = [
            [e.src, e.dst, e.operand_index, e.distance, list(e.init)]
            for e in sorted(
                self.edges.values(),
                key=lambda e: (e.dst, e.operand_index, e.src, e.distance),
            )
        ]
        return canonical_fingerprint({"ops": ops, "edges": edges})

    def summary(self) -> str:
        return (
            f"DFG {self.name!r}: {self.num_ops} ops "
            f"({self.num_memory_ops} memory), {self.num_edges} edges, "
            f"{sum(1 for e in self.edges.values() if e.distance > 0)} loop-carried"
        )
