"""Structural validation of dataflow graphs.

A DFG is well-formed when every operand slot of every op is driven by
exactly one edge, the distance-0 subgraph is acyclic (every dependence cycle
must cross at least one loop-carried edge — otherwise the loop could never
execute), and loop-carried edges carry their initial values.
"""

from __future__ import annotations

import networkx as nx

from repro.arch.isa import OPCODE_INFO
from repro.dfg.graph import DFG
from repro.util.errors import GraphError

__all__ = ["validate_dfg"]


def validate_dfg(dfg: DFG) -> None:
    """Raise :class:`GraphError` if *dfg* is not well-formed."""
    for op in dfg.ops.values():
        arity = OPCODE_INFO[op.opcode].arity
        seen = sorted(e.operand_index for e in dfg.in_edges(op))
        if seen != list(range(arity)):
            raise GraphError(
                f"op {op.id} ({op.label}): operand slots driven {seen}, "
                f"need exactly 0..{arity - 1}"
            )
    for e in dfg.edges.values():
        if e.src not in dfg.ops or e.dst not in dfg.ops:
            raise GraphError(f"edge {e.id} references missing op")
        if e.distance == 0 and len(e.init) != 0:
            raise GraphError(f"edge {e.id}: init values on a distance-0 edge")

    g = nx.DiGraph()
    g.add_nodes_from(dfg.ops)
    for e in dfg.edges.values():
        if e.distance == 0:
            g.add_edge(e.src, e.dst)
    if not nx.is_directed_acyclic_graph(g):
        cycle = nx.find_cycle(g)
        raise GraphError(
            f"distance-0 dependency cycle {cycle}: every recurrence must "
            f"cross a loop-carried edge"
        )
