"""Scheduling analyses on dataflow graphs.

Implements the standard modulo-scheduling bounds the paper's compiler
(EMS-based) relies on:

* ``res_mii`` — resource-constrained lower bound on the initiation
  interval: enough PE slots for all ops, and enough row-bus slots for all
  memory ops.
* ``rec_mii`` — recurrence-constrained lower bound (Rau): the smallest II
  such that no dependence cycle requires more latency than ``II x`` its
  total iteration distance (Fig. 3's recurrence is the canonical example).
* ``mii`` — max of the two.
* ``asap_times`` / ``alap_times`` — schedule windows on the distance-0 DAG,
  used for op prioritisation by the mappers.

All latencies are 1 cycle (see :mod:`repro.arch.isa`).
"""

from __future__ import annotations

import math

import networkx as nx

from repro.dfg.graph import DFG
from repro.util.errors import GraphError

__all__ = [
    "asap_times",
    "alap_times",
    "critical_path_length",
    "res_mii",
    "rec_mii",
    "mii",
    "has_positive_cycle",
]

LATENCY = 1  # single-cycle PEs


def _dag(dfg: DFG) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(dfg.ops)
    for e in dfg.edges.values():
        if e.distance == 0:
            g.add_edge(e.src, e.dst)
    return g


def asap_times(dfg: DFG) -> dict[int, int]:
    """Earliest start time of each op on the distance-0 DAG (sources at 0)."""
    g = _dag(dfg)
    times: dict[int, int] = {}
    for v in nx.topological_sort(g):
        preds = list(g.predecessors(v))
        times[v] = 0 if not preds else max(times[u] + LATENCY for u in preds)
    return times


def alap_times(dfg: DFG, horizon: int | None = None) -> dict[int, int]:
    """Latest start time of each op given a schedule *horizon* (defaults to
    the critical-path length, making ALAP-ASAP the slack)."""
    g = _dag(dfg)
    asap = asap_times(dfg)
    if horizon is None:
        horizon = max(asap.values(), default=0)
    times: dict[int, int] = {}
    for v in reversed(list(nx.topological_sort(g))):
        succs = list(g.successors(v))
        times[v] = horizon if not succs else min(times[w] - LATENCY for w in succs)
    return times


def critical_path_length(dfg: DFG) -> int:
    """Length (in ops) of the longest distance-0 dependency chain."""
    asap = asap_times(dfg)
    return max(asap.values(), default=0) + 1 if asap else 0


def res_mii(dfg: DFG, num_pes: int, mem_slots_per_cycle: int) -> int:
    """Resource-constrained minimum II.

    ``num_pes`` is the number of PEs available to this kernel (a page
    subset for the paged compiler); ``mem_slots_per_cycle`` is the total
    row-bus capacity available per cycle.
    """
    if num_pes <= 0:
        raise GraphError(f"num_pes must be positive, got {num_pes}")
    if mem_slots_per_cycle <= 0:
        raise GraphError(
            f"mem_slots_per_cycle must be positive, got {mem_slots_per_cycle}"
        )
    compute_bound = math.ceil(dfg.num_ops / num_pes)
    mem_bound = math.ceil(dfg.num_memory_ops / mem_slots_per_cycle)
    return max(1, compute_bound, mem_bound)


def has_positive_cycle(dfg: DFG, ii: int) -> bool:
    """True if some dependence cycle is infeasible at initiation interval
    *ii*: total latency around the cycle exceeds ``ii x`` total distance.

    Checked with Bellman-Ford on negated weights: edge u->v gets weight
    ``distance*ii - latency``; a cycle of negative total weight in that
    graph is a positive-slack violation in the original.
    """
    g = nx.DiGraph()
    g.add_nodes_from(dfg.ops)
    for e in dfg.edges.values():
        w = e.distance * ii - LATENCY
        if g.has_edge(e.src, e.dst):
            w = min(w, g[e.src][e.dst]["weight"])
        g.add_edge(e.src, e.dst, weight=w)
    return bool(nx.negative_edge_cycle(g, weight="weight"))


def rec_mii(dfg: DFG) -> int:
    """Recurrence-constrained minimum II: smallest II with no infeasible
    dependence cycle.  1 for acyclic graphs."""
    if not any(e.distance > 0 for e in dfg.edges.values()):
        return 1
    # The worst possible RecMII is the total latency of all ops over a
    # distance-1 cycle, so a linear scan up to num_ops always terminates.
    upper = max(1, dfg.num_ops * LATENCY)
    for ii in range(1, upper + 1):
        if not has_positive_cycle(dfg, ii):
            return ii
    return upper


def mii(dfg: DFG, num_pes: int, mem_slots_per_cycle: int) -> int:
    """Minimum initiation interval: ``max(ResMII, RecMII)``."""
    return max(res_mii(dfg, num_pes, mem_slots_per_cycle), rec_mii(dfg))
