"""Fluent builder for loop-body dataflow graphs.

Kernels are written as straight-line code over value handles::

    b = DFGBuilder("laplace")
    left = b.load("in", offset=-1)
    mid = b.load("in")
    right = b.load("in", offset=1)
    two = b.const(2)
    out = b.sub(b.add(left, right), b.mul(mid, two))
    b.store("out", out)
    dfg = b.build()

Loop-carried values (recurrences) use :meth:`placeholder` /
:meth:`bind_carry`::

    prev = b.placeholder("prev_out")          # out[i-1]
    cur = b.shr(b.add(prev, b.load("in")), b.const(1))
    b.store("out", cur)
    b.bind_carry(prev, cur, distance=1, init=(0,))
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.isa import OPCODE_INFO, Opcode
from repro.dfg.graph import DFG, MemRef, Op
from repro.util.errors import GraphError

__all__ = ["DFGBuilder", "Value"]


@dataclass(frozen=True)
class Value:
    """Handle to the result of an op (or to a placeholder awaiting a carry)."""

    op_id: int
    placeholder: bool = False


class DFGBuilder:
    """Incrementally builds a :class:`~repro.dfg.graph.DFG`."""

    def __init__(self, name: str = "kernel") -> None:
        self._dfg = DFG(name=name)
        self._pending: dict[int, list[tuple[int, int]]] = {}  # ph op -> uses
        self._bound: set[int] = set()

    # -- leaves --------------------------------------------------------------------

    def const(self, value: int, name: str = "") -> Value:
        op = self._dfg.add_op(Opcode.CONST, immediate=value, name=name or f"c{value}")
        return Value(op.id)

    def load(
        self,
        array: str,
        *,
        stride: int = 1,
        offset: int = 0,
        ring: int | None = None,
        name: str = "",
    ) -> Value:
        ref = MemRef(array, stride=stride, offset=offset, ring=ring)
        op = self._dfg.add_op(
            Opcode.LOAD, memref=ref, name=name or f"ld_{array}@{offset:+d}"
        )
        return Value(op.id)

    def placeholder(self, name: str = "carry") -> Value:
        """A value defined later by :meth:`bind_carry` (a recurrence input).

        Implemented as a ROUTE op whose input edge is added at bind time, so
        placeholders are real schedulable ops (they model the register/route
        step a recurrence needs anyway)."""
        op = self._dfg.add_op(Opcode.ROUTE, name=name)
        self._pending[op.id] = []
        return Value(op.id, placeholder=True)

    # -- operations ------------------------------------------------------------------

    def op(self, opcode: Opcode, *args: Value, name: str = "", immediate: int | None = None) -> Value:
        info = OPCODE_INFO[opcode]
        if len(args) != info.arity:
            raise GraphError(
                f"{opcode.value} takes {info.arity} operands, got {len(args)}"
            )
        node = self._dfg.add_op(opcode, name=name or opcode.value, immediate=immediate)
        for idx, v in enumerate(args):
            self._connect(v, node, idx)
        return Value(node.id)

    def _connect(self, v: Value, dst: Op, operand_index: int) -> None:
        self._dfg.add_edge(v.op_id, dst.id, operand_index)

    # arithmetic sugar ---------------------------------------------------------------

    def add(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.ADD, a, b, name=name)

    def sub(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.SUB, a, b, name=name)

    def mul(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.MUL, a, b, name=name)

    def div(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.DIV, a, b, name=name)

    def shl(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.SHL, a, b, name=name)

    def shr(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.SHR, a, b, name=name)

    def and_(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.AND, a, b, name=name)

    def or_(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.OR, a, b, name=name)

    def xor(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.XOR, a, b, name=name)

    def min(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.MIN, a, b, name=name)

    def max(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.MAX, a, b, name=name)

    def lt(self, a: Value, b: Value, name: str = "") -> Value:
        return self.op(Opcode.LT, a, b, name=name)

    def abs(self, a: Value, name: str = "") -> Value:
        return self.op(Opcode.ABS, a, name=name)

    def neg(self, a: Value, name: str = "") -> Value:
        return self.op(Opcode.NEG, a, name=name)

    def route(self, a: Value, name: str = "") -> Value:
        return self.op(Opcode.ROUTE, a, name=name)

    def select(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> Value:
        return self.op(Opcode.SELECT, cond, if_true, if_false, name=name)

    def clamp(self, v: Value, lo: int, hi: int) -> Value:
        """min(max(v, lo), hi) — the saturating clip common in media kernels."""
        return self.min(self.max(v, self.const(lo)), self.const(hi))

    # memory / recurrences ---------------------------------------------------------------

    def store(
        self,
        array: str,
        value: Value,
        *,
        stride: int = 1,
        offset: int = 0,
        ring: int | None = None,
        name: str = "",
    ) -> Value:
        ref = MemRef(array, stride=stride, offset=offset, ring=ring)
        node = self._dfg.add_op(
            Opcode.STORE, memref=ref, name=name or f"st_{array}@{offset:+d}"
        )
        self._connect(value, node, 0)
        return Value(node.id)

    def bind_carry(
        self, ph: Value, producer: Value, *, distance: int = 1, init: tuple[int, ...] = ()
    ) -> None:
        """Close a recurrence: the placeholder's value at iteration *i* is
        *producer*'s value at iteration ``i - distance``; ``init`` seeds the
        first ``distance`` iterations (defaults to zeros)."""
        if not ph.placeholder:
            raise GraphError("bind_carry target must be a placeholder value")
        if ph.op_id in self._bound:
            raise GraphError(f"placeholder op {ph.op_id} already bound")
        if distance < 1:
            raise GraphError(f"carry distance must be >= 1, got {distance}")
        if not init:
            init = (0,) * distance
        self._dfg.add_edge(producer.op_id, ph.op_id, 0, distance=distance, init=init)
        self._bound.add(ph.op_id)
        del self._pending[ph.op_id]

    # -- finalisation -----------------------------------------------------------------

    def build(self) -> DFG:
        if self._pending:
            raise GraphError(
                f"unbound placeholders: {sorted(self._pending)} — call bind_carry"
            )
        from repro.dfg.validate import validate_dfg

        validate_dfg(self._dfg)
        return self._dfg
