"""Memory spilling for long-lived temporaries (§VI-B register-usage
constraint, explicit form).

The paper's first compile-time constraint: "the compiler must use memory to
store temporary variables that a PE may need", keeping the local register
files free for the runtime transformation.  In this codebase short-lived
values travel as per-cycle route slots; a value whose consumer is *far*
below its producer would otherwise burn a slot per cycle of its lifetime.
:func:`spill_long_edges` rewrites such edges to a store/load pair through a
compiler-reserved circular buffer (Fig. 1's "global storage area reserved
by the compiler in the Data Memory"):

    producer ──> STORE tmp[(i) mod ring] ...... LOAD tmp[(i) mod ring] ──> consumer

The transform is a plain DFG rewrite, so the reference interpreter, every
mapper and every simulator handle it with no special cases, and functional
equivalence is testable directly.  The ring length bounds how many
in-flight iterations share the buffer; it must cover the edge's lifetime in
iterations (``stages + distance + 1`` is always safe and is the default
sizing).
"""

from __future__ import annotations

from repro.dfg.analysis import asap_times
from repro.dfg.graph import DFG, MemRef
from repro.arch.isa import Opcode
from repro.util.errors import GraphError

__all__ = ["spill_long_edges", "spill_candidates", "TMP_ARRAY_PREFIX"]

TMP_ARRAY_PREFIX = "__tmp"


def spill_candidates(dfg: DFG, threshold: int) -> list[int]:
    """Edges whose producer-to-consumer ASAP span exceeds *threshold*
    levels (a structural proxy for route length before scheduling).

    Loop-carried and constant edges are never spilled: constants live in
    the configuration and recurrences must stay on the fabric to keep
    their II (a memory round trip would lengthen the cycle).
    """
    if threshold < 1:
        raise GraphError(f"spill threshold must be >= 1, got {threshold}")
    asap = asap_times(dfg)
    out = []
    for e in dfg.edges.values():
        if e.distance != 0:
            continue
        if dfg.ops[e.src].opcode is Opcode.CONST:
            continue
        if asap[e.dst] - asap[e.src] > threshold:
            out.append(e.id)
    return sorted(out)


def spill_long_edges(
    dfg: DFG, *, threshold: int = 4, ring: int = 8
) -> tuple[DFG, int]:
    """Return a copy of *dfg* with every long edge spilled through memory,
    plus the number of edges rewritten.

    Each spilled edge gets its own circular temporary array
    ``__tmp<edge_id>`` of *ring* words (bind a zeroed array of that name
    before executing; :func:`bind_spill_arrays` does it for you).
    """
    targets = set(spill_candidates(dfg, threshold))
    if not targets:
        return dfg.copy(), 0
    out = DFG(name=dfg.name)
    # copy ops with identical ids
    for op_id in sorted(dfg.ops):
        op = dfg.ops[op_id]
        node = out.add_op(
            op.opcode, name=op.name, immediate=op.immediate, memref=op.memref
        )
        assert node.id == op_id
    for e in sorted(dfg.edges.values(), key=lambda e: e.id):
        if e.id not in targets:
            out.add_edge(e.src, e.dst, e.operand_index, distance=e.distance, init=e.init)
            continue
        array = f"{TMP_ARRAY_PREFIX}{e.id}"
        ref = MemRef(array, stride=1, offset=0, ring=ring)
        store = out.add_op(Opcode.STORE, name=f"spill{e.id}", memref=ref)
        out.add_edge(e.src, store, 0)
        # LOADT's token operand orders the read after this iteration's
        # store (and, being a dataflow edge, keeps >= 1 cycle between them,
        # satisfying the memory's write-then-read timing)
        load = out.add_op(Opcode.LOADT, name=f"fill{e.id}", memref=ref)
        out.add_edge(store, load, 0)
        out.add_edge(load, e.dst, e.operand_index)
    return out, len(targets)


def bind_spill_arrays(dfg: DFG, memory, ring: int = 8) -> None:
    """Allocate the temporary buffers a spilled DFG references."""
    import numpy as np

    for op in dfg.ops.values():
        if (
            op.memref is not None
            and op.memref.array.startswith(TMP_ARRAY_PREFIX)
            and op.opcode is Opcode.STORE
        ):
            memory.bind_array(op.memref.array, np.zeros(op.memref.ring or ring))
