"""The paged compiler: baseline engine + the paper's compile-time constraints.

``map_dfg_paged`` runs the EMS-style mapper restricted to the page-covered
PEs, with the ring-topology hop filter and the fold-safe banked bus model,
and wraps the result with its :class:`~repro.core.page_schedule.PageSchedule`
— the page-level view ``P = {p_(n,t)}`` that the PageMaster transformation
(§VI-D) consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.arch.cgra import CGRA
from repro.compiler.check import validate_mapping
from repro.compiler.constraints import paged_bus_key, ring_hop_filter
from repro.compiler.ems import EMSMapper, MapperConfig
from repro.compiler.mapping import Mapping, materialized_ops
from repro.core.page_schedule import PageSchedule, extract_page_schedule
from repro.core.paging import PageLayout
from repro.dfg.analysis import rec_mii
from repro.util.errors import MappingError

__all__ = ["PagedMapping", "map_dfg_paged", "paged_mapper"]


@dataclass
class PagedMapping:
    """A ring-constrained mapping together with its page-level schedule.

    ``layout`` covers exactly the pages the mapping uses (a prefix
    sub-chain after page-need minimisation); ``full_layout`` is the whole
    array's paging, which the runtime uses to place the schedule on *any*
    contiguous page segment.
    """

    mapping: Mapping
    layout: PageLayout
    page_schedule: PageSchedule
    full_layout: PageLayout | None = None

    def __post_init__(self) -> None:
        if self.full_layout is None:
            self.full_layout = self.layout

    @property
    def ii(self) -> int:
        return self.mapping.ii

    @property
    def num_pages(self) -> int:
        return self.layout.num_pages

    @property
    def wrap_used(self) -> bool:
        """Does the schedule depend on the ring-wrap link (last page feeding
        page 0)?  Wrap-free schedules unlock the optimal grouped fold."""
        last = self.layout.num_pages - 1
        return any(
            src[0] == last and dst[0] == 0 and kind == "ring"
            for (src, dst, kind) in self.page_schedule.deps
        )

    @property
    def pages_used(self) -> int:
        """Pages the mapping occupies.  The compiler minimises this subject
        to preserving the II (§VII-B: "in the cases where schedules do not
        use the entire CGRA ... the thread is simply scheduled to the
        unused portion"), so it doubles as the kernel's page *need*."""
        return self.layout.num_pages

    def activity(self) -> tuple[tuple[bool, ...], ...]:
        """Bitmap [page][modulo time] of non-empty page instances — the
        input to activity-aware PageMaster placement."""
        return tuple(
            tuple(
                bool(self.page_schedule.instance(n, t).items)
                for t in range(self.ii)
            )
            for n in range(self.layout.num_pages)
        )

    def page_deps(self) -> frozenset:
        """The observed page-level transfers ``((n_s, t_s), (n_d, t_d))``."""
        return frozenset((src, dst) for (src, dst, _k) in self.page_schedule.deps)

    def summary(self) -> str:
        return (
            f"{self.mapping.summary()} | {self.layout.num_pages} pages of "
            f"{self.layout.shape[0]}x{self.layout.shape[1]}"
        )


def map_dfg_paged(
    dfg,
    cgra: CGRA,
    layout: PageLayout,
    *,
    config: MapperConfig | None = None,
    min_ii: int | None = None,
    validate: bool = True,
    wrap_fallback: bool = True,
    minimize_pages: bool = True,
    workers: int = 1,
    search=None,
    search_log=None,
) -> PagedMapping:
    """Map *dfg* onto the paged CGRA under the §VI-B constraints.

    By default the mapper first tries the *chain* topology (ring minus the
    wrap link — a legal subset per §VI-B — which makes the optimal grouped
    fold available for every divisor page count).  If that fails and the
    layout's wrap pair is physically adjacent, it retries with the full
    ring (``wrap_fallback``); the resulting mapping may then only be shrunk
    with the zigzag transformation.

    With ``minimize_pages`` (the default) the compiler then re-maps the
    kernel onto the smallest page *prefix* that preserves the achieved II —
    the paper's Fig. 6 mapping "only uses 3 pages", and §VII-B schedules
    other threads onto the unused portion without any transformation.  The
    returned mapping's layout covers exactly :attr:`PagedMapping.pages_used`
    pages.

    With ``workers > 1`` (or a live :class:`repro.compiler.search.
    SearchContext` as *search*) every inner (II, attempt) ladder — chain
    pass, ring fallback, page-minimisation passes — races speculative
    probes over a process pool with canonical reduction; artifacts are
    byte-identical to the serial path at any worker count.
    """
    if layout.cgra is not cgra:
        raise MappingError("layout was built for a different CGRA instance")
    if search is None and workers > 1:
        from repro.compiler.search import SearchContext

        with SearchContext.create(workers) as ctx:
            return map_dfg_paged(
                dfg,
                cgra,
                layout,
                config=config,
                min_ii=min_ii,
                validate=validate,
                wrap_fallback=wrap_fallback,
                minimize_pages=minimize_pages,
                search=ctx,
                search_log=search_log,
            )
    if (config or MapperConfig()).backend == "hier":
        # third backend: cluster-then-place (chain topology only); shares
        # the flat ladder as its in-lattice fallback, so it can only match
        # or beat the chain pass — see repro.compiler.hier.
        from repro.compiler.hier import map_dfg_hier

        return map_dfg_hier(
            dfg,
            cgra,
            layout,
            config=config,
            min_ii=min_ii,
            validate=validate,
            minimize_pages=minimize_pages,
            search=search,
            search_log=search_log,
        )
    best = _map_topologies(
        dfg, cgra, layout, config, min_ii, validate, wrap_fallback,
        search, search_log,
    )
    if not minimize_pages or best.layout.num_pages <= 1:
        return best
    base_cfg = config or MapperConfig()
    n_mat = len(materialized_ops(dfg))
    slots_per_page = layout.page_size * best.ii
    mem_per_page = layout.shape[0] * cgra.mem_ports_per_row * best.ii
    k_min = max(
        1,
        math.ceil(n_mat / slots_per_page),
        math.ceil(dfg.num_memory_ops / max(1, mem_per_page)),
    )
    tight = replace(base_cfg, max_ii=best.ii)
    for k in range(k_min, best.layout.num_pages):
        try:
            sub = layout.subchain(k)
            candidate = _map_once(
                dfg, cgra, sub, tight, min_ii, validate, full_layout=layout,
                search=search, search_log=search_log,
            )
        except MappingError:
            continue
        if candidate.ii <= best.ii:
            return candidate
    return best


def _map_topologies(
    dfg,
    cgra: CGRA,
    layout: PageLayout,
    config,
    min_ii,
    validate,
    wrap_fallback,
    search=None,
    search_log=None,
) -> PagedMapping:
    can_fall_back = (
        wrap_fallback and not layout.allow_wrap and layout.ring_wrap_adjacent
    )
    first_config = config
    if can_fall_back:
        # bound the chain pass so a hard kernel falls back to the full ring
        # quickly instead of escalating the II all the way to max_ii
        base = config or MapperConfig()
        covered = sum(1 for pe in cgra.coords() if pe in layout.page_of)
        floor_ii = max(
            math.ceil(len(materialized_ops(dfg)) / covered),
            rec_mii(dfg),
            1,
        )
        first_config = replace(base, max_ii=min(base.max_ii, 3 * floor_ii + 6))
    try:
        return _map_once(
            dfg, cgra, layout, first_config, min_ii, validate,
            search=search, search_log=search_log,
        )
    except MappingError as chain_exc:
        if not can_fall_back:
            raise
        # When the bounded chain pass exhausted its ladder (rather than
        # failing before it), it proved every rung up to its II cap fails
        # in exactly the context the unbounded retry below re-enters —
        # same layout, mapper geometry and config apart from max_ii.  The
        # retry resumes above the cap; rng anchoring keeps it byte-equal.
        probed = getattr(chain_exc, "ladder_probed", None)
        ring_layout = PageLayout(cgra, layout.shape, allow_wrap=True)
        try:
            return _map_once(
                dfg, cgra, ring_layout, config, min_ii, validate,
                search=search, search_log=search_log,
            )
        except MappingError:
            # last resort: the chain again, unbounded II
            return _map_once(
                dfg, cgra, layout, config, min_ii, validate,
                search=search, search_log=search_log,
                resume_ii=probed[1] + 1 if probed is not None else None,
            )


def paged_mapper(
    cgra: CGRA, layout: PageLayout, config: MapperConfig | None
) -> EMSMapper:
    """The flat ring-constrained mapper of *layout*: the §VI-B wiring
    (covered PEs, ring hop filter, banked bus key, page-rank bias) shared
    by the serial path, the portfolio's :class:`~repro.compiler.search.
    MapperSpec` and the hierarchical backend."""
    cls = EMSMapper
    if config is not None and config.backend == "exact":
        from repro.compiler.exact import ExactMapper

        cls = ExactMapper
    allowed = [pe for pe in cgra.coords() if pe in layout.page_of]
    mem_slots = layout.num_pages * layout.shape[0] * cgra.mem_ports_per_row
    return cls(
        cgra,
        allowed_pes=allowed,
        hop_allowed=ring_hop_filter(layout),
        mem_slots_per_cycle=mem_slots,
        bus_key=paged_bus_key(layout),
        pe_rank=lambda pe: layout.page_of[pe],
        config=config,
    )


def _map_once(
    dfg,
    cgra: CGRA,
    layout: PageLayout,
    config,
    min_ii,
    validate,
    full_layout: PageLayout | None = None,
    search=None,
    search_log=None,
    resume_ii=None,
) -> PagedMapping:
    hop = ring_hop_filter(layout)
    allowed = [pe for pe in cgra.coords() if pe in layout.page_of]
    if search is not None:
        from repro.compiler.search import MapperSpec, portfolio_map

        spec = MapperSpec.for_paged(cgra, layout, config or MapperConfig())
        mapping = portfolio_map(
            spec, dfg, cgra=cgra, min_ii=min_ii, resume_ii=resume_ii,
            ctx=search, log=search_log,
        )
    else:
        mapping = paged_mapper(cgra, layout, config).map(
            dfg, min_ii=min_ii, resume_ii=resume_ii
        )
    if validate:
        validate_mapping(
            mapping,
            allowed_pes=allowed,
            hop_allowed=hop,
            bus_key=paged_bus_key(layout),
        )
    schedule = extract_page_schedule(mapping, layout)
    return PagedMapping(mapping, layout, schedule, full_layout)
