"""CGRA mapping compiler.

Maps a software-pipelined loop DFG onto the CGRA: operations to PEs, data
dependency edges to interconnect paths, all inside a modulo schedule with
initiation interval II (§II of the paper).  Two mappers are provided:

* :func:`repro.compiler.ems.map_dfg` — a modulo-scheduling place-and-route
  mapper in the style of edge-centric modulo scheduling (EMS, Park et al.),
  the baseline compiler the paper builds on;
* :func:`repro.compiler.annealing.anneal_map` — a DRESC-style simulated
  annealing mapper, kept as a second baseline / ablation.

The *paged* compiler (:func:`repro.compiler.paged.map_dfg_paged`) runs the
same engine with the paper's §VI-B compile-time constraints switched on and
additionally returns the page-level schedule the PageMaster transformation
consumes.
"""

from repro.compiler.mapping import Mapping, Placement, Route, RouteStep
from repro.compiler.mrt import ReservationTable
from repro.compiler.check import validate_mapping
from repro.compiler.ems import EMSMapper, MapperConfig, map_dfg
from repro.compiler.paged import PagedMapping, map_dfg_paged
from repro.compiler.annealing import anneal_map
from repro.compiler.search import (
    LadderReport,
    MapperSpec,
    SearchContext,
    WorkerBudget,
    portfolio_map,
)

__all__ = [
    "Mapping",
    "Placement",
    "Route",
    "RouteStep",
    "ReservationTable",
    "validate_mapping",
    "EMSMapper",
    "MapperConfig",
    "map_dfg",
    "PagedMapping",
    "map_dfg_paged",
    "anneal_map",
    "LadderReport",
    "MapperSpec",
    "SearchContext",
    "WorkerBudget",
    "portfolio_map",
]
