"""Modulo reservation table.

Tracks which (PE, modulo-slot) pairs are claimed by operations or route
steps and how much data-bus capacity each modulo slot has consumed.  This
is the resource model of classic modulo scheduling (Rau) adapted to a CGRA:
the PE array is the function-unit pool and the memory buses are the shared
resource (§III: "a shared data bus for each row of the CGRA").

Bus segmentation: by default a memory op claims capacity on its *grid
row*'s bus.  The paged compiler instead keys buses by ``(page, local
row)`` — a banked-memory model where each page's rows have their own bus
segment.  This is what makes schedules *foldable*: when the PageMaster
transformation stacks page instances onto fewer tiles, each tile carries at
most one page instance per cycle, so per-page bus budgets remain valid on
the physical tile.  (With a monolithic per-grid-row bus, folding two pages
that each legally used the row's bus would oversubscribe it.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.util.errors import MappingError

__all__ = ["ReservationTable"]

BusKey = Callable[[Coord], Hashable]


@dataclass
class ReservationTable:
    """Slot and bus bookkeeping for one mapping attempt."""

    cgra: CGRA
    ii: int
    bus_key: BusKey | None = None
    slots: dict[tuple[Coord, int], str] = field(default_factory=dict)
    bus: dict[tuple[Hashable, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise MappingError(f"II must be >= 1, got {self.ii}")
        if self.bus_key is None:
            self.bus_key = lambda pe: pe.row

    # -- queries ------------------------------------------------------------------

    def slot_free(self, pe: Coord, time: int) -> bool:
        return (pe, time % self.ii) not in self.slots

    def occupant(self, pe: Coord, time: int) -> str | None:
        return self.slots.get((pe, time % self.ii))

    def bus_free(self, pe: Coord, time: int) -> bool:
        """Can a memory op on *pe* use its bus segment at this modulo slot?"""
        used = self.bus.get((self.bus_key(pe), time % self.ii), 0)
        return used < self.cgra.mem_ports_per_row

    def free_slots_at(self, time: int) -> int:
        m = time % self.ii
        return self.cgra.num_pes - sum(1 for (_, t) in self.slots if t == m)

    # -- mutation ------------------------------------------------------------------

    def claim(self, pe: Coord, time: int, label: str, *, memory: bool = False) -> None:
        key = (pe, time % self.ii)
        if key in self.slots:
            raise MappingError(
                f"slot ({pe}, mod {time % self.ii}) already claimed by "
                f"{self.slots[key]}, cannot add {label}"
            )
        if memory and not self.bus_free(pe, time):
            raise MappingError(
                f"bus segment {self.bus_key(pe)} full at modulo slot "
                f"{time % self.ii}"
            )
        self.slots[key] = label
        if memory:
            bkey = (self.bus_key(pe), time % self.ii)
            self.bus[bkey] = self.bus.get(bkey, 0) + 1

    def release(self, pe: Coord, time: int, *, memory: bool = False) -> None:
        key = (pe, time % self.ii)
        if key not in self.slots:
            raise MappingError(f"slot ({pe}, mod {time % self.ii}) not claimed")
        del self.slots[key]
        if memory:
            bkey = (self.bus_key(pe), time % self.ii)
            if self.bus.get(bkey, 0) <= 0:
                raise MappingError(f"bus release underflow at {bkey}")
            self.bus[bkey] -= 1

    def copy(self) -> "ReservationTable":
        return ReservationTable(
            self.cgra, self.ii, self.bus_key, dict(self.slots), dict(self.bus)
        )

    @property
    def occupancy(self) -> int:
        return len(self.slots)
