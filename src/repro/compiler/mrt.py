"""Modulo reservation table.

Tracks which (PE, modulo-slot) pairs are claimed by operations or route
steps and how much data-bus capacity each modulo slot has consumed.  This
is the resource model of classic modulo scheduling (Rau) adapted to a CGRA:
the PE array is the function-unit pool and the memory buses are the shared
resource (§III: "a shared data bus for each row of the CGRA").

Bus segmentation: by default a memory op claims capacity on its *grid
row*'s bus.  The paged compiler instead keys buses by ``(page, local
row)`` — a banked-memory model where each page's rows have their own bus
segment.  This is what makes schedules *foldable*: when the PageMaster
transformation stacks page instances onto fewer tiles, each tile carries at
most one page instance per cycle, so per-page bus budgets remain valid on
the physical tile.  (With a monolithic per-grid-row bus, folding two pages
that each legally used the row's bus would oversubscribe it.)

Storage model: one flat ``ii x num_pes`` occupancy array indexed by
``modulo_slot * num_pes + pe_id`` (PE ids from the fabric's
:class:`~repro.arch.interconnect.GridIndex`), a free-slot counter per
modulo slot, and a flat per-(bus segment, modulo slot) use-count array.
Every query the mapper's inner loops issue — ``slot_free``,
``free_slots_at``, ``bus_free`` — is O(1) array arithmetic, and ``copy``
is three ``list.copy`` calls.  The Coord-taking methods remain the public
API; the ``*_id`` variants are the hot-path entry points for callers that
already hold integer PE ids.

Bus segments are interned lazily: ``bus_key`` is only ever invoked for PEs
that actually issue memory operations, so a key function that rejects some
PEs (e.g. :func:`~repro.compiler.constraints.paged_bus_key` raising on
uncovered PEs) behaves exactly as it did with the dict-backed table.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.arch.capability import OpClass
from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.util.errors import CapabilityViolation, MappingError

__all__ = ["ReservationTable"]

BusKey = Callable[[Coord], Hashable]

_UNKNOWN_BUS = -1


class ReservationTable:
    """Slot and bus bookkeeping for one mapping attempt."""

    __slots__ = (
        "cgra",
        "ii",
        "bus_key",
        "num_pes",
        "_occ",
        "_occ_mask",
        "_free",
        "_bus_of_pe",
        "_bus_segments",
        "_bus_use",
        "_bus_cap",
        "_mem_mask",
    )

    def __init__(
        self,
        cgra: CGRA,
        ii: int,
        bus_key: BusKey | None = None,
    ) -> None:
        if ii < 1:
            raise MappingError(f"II must be >= 1, got {ii}")
        self.cgra = cgra
        self.ii = ii
        if bus_key is None:
            bus_key = lambda pe: pe.row  # noqa: E731 - default segment: grid row
        self.bus_key = bus_key
        self.num_pes = cgra.num_pes
        # occupancy label per (modulo slot, PE), flat; None == free
        self._occ: list[str | None] = [None] * (ii * self.num_pes)
        # the same occupancy as a bytearray bitmap (1 == taken), kept in
        # lockstep so the routers' inner loops test one byte per slot and
        # seed their visited sets with a C-speed copy
        self._occ_mask = bytearray(ii * self.num_pes)
        # free-PE count per modulo slot (makes free_slots_at O(1))
        self._free: list[int] = [self.num_pes] * ii
        # lazily interned bus segments: pe_id -> segment index
        self._bus_of_pe: list[int] = [_UNKNOWN_BUS] * self.num_pes
        self._bus_segments: dict[Hashable, int] = {}
        # use count per (segment, modulo slot), flat [seg * ii + slot]
        self._bus_use: list[int] = []
        self._bus_cap = cgra.mem_ports_per_row
        # None on homogeneous fabrics (no per-claim capability check at all)
        self._mem_mask = cgra.class_mask(OpClass.MEM)

    # -- id plumbing ---------------------------------------------------------------

    def _bus_id(self, pe_id: int) -> int:
        """Interned bus-segment index of *pe_id* (calls ``bus_key`` once
        per PE, ever — including its error behaviour for rejected PEs)."""
        b = self._bus_of_pe[pe_id]
        if b == _UNKNOWN_BUS:
            key = self.bus_key(self.cgra.grid_index.coords[pe_id])
            b = self._bus_segments.get(key, -1)
            if b < 0:
                b = len(self._bus_segments)
                self._bus_segments[key] = b
                self._bus_use.extend([0] * self.ii)
            self._bus_of_pe[pe_id] = b
        return b

    # -- queries (Coord API) -------------------------------------------------------

    def slot_free(self, pe: Coord, time: int) -> bool:
        return self._occ[(time % self.ii) * self.num_pes + self.cgra.grid_index.id_of[pe]] is None

    def occupant(self, pe: Coord, time: int) -> str | None:
        return self._occ[(time % self.ii) * self.num_pes + self.cgra.grid_index.id_of[pe]]

    def bus_free(self, pe: Coord, time: int) -> bool:
        """Can a memory op on *pe* use its bus segment at this modulo slot?"""
        return self.bus_free_id(self.cgra.grid_index.id_of[pe], time)

    def free_slots_at(self, time: int) -> int:
        return self._free[time % self.ii]

    # -- queries (integer fast path) -----------------------------------------------

    def slot_free_id(self, pe_id: int, time: int) -> bool:
        return self._occ[(time % self.ii) * self.num_pes + pe_id] is None

    def bus_free_id(self, pe_id: int, time: int) -> bool:
        used = self._bus_use[self._bus_id(pe_id) * self.ii + time % self.ii]
        return used < self._bus_cap

    # -- mutation ------------------------------------------------------------------

    def claim(self, pe: Coord, time: int, label: str, *, memory: bool = False) -> None:
        self.claim_id(self.cgra.grid_index.id_of[pe], time, label, memory=memory)

    def claim_id(
        self, pe_id: int, time: int, label: str, *, memory: bool = False
    ) -> None:
        m = time % self.ii
        idx = m * self.num_pes + pe_id
        old = self._occ[idx]
        if old is not None:
            pe = self.cgra.grid_index.coords[pe_id]
            raise MappingError(
                f"slot ({pe}, mod {m}) already claimed by {old}, "
                f"cannot add {label}"
            )
        if memory:
            if self._mem_mask is not None and not self._mem_mask[pe_id]:
                pe = self.cgra.grid_index.coords[pe_id]
                raise CapabilityViolation(
                    f"memory op on {pe}, which has no memory capability"
                )
            b = self._bus_id(pe_id)
            if self._bus_use[b * self.ii + m] >= self._bus_cap:
                pe = self.cgra.grid_index.coords[pe_id]
                raise MappingError(
                    f"bus segment {self.bus_key(pe)} full at modulo slot {m}"
                )
            self._bus_use[b * self.ii + m] += 1
        self._occ[idx] = label
        self._occ_mask[idx] = 1
        self._free[m] -= 1

    def release(self, pe: Coord, time: int, *, memory: bool = False) -> None:
        self.release_id(self.cgra.grid_index.id_of[pe], time, memory=memory)

    def release_id(self, pe_id: int, time: int, *, memory: bool = False) -> None:
        m = time % self.ii
        idx = m * self.num_pes + pe_id
        if self._occ[idx] is None:
            pe = self.cgra.grid_index.coords[pe_id]
            raise MappingError(f"slot ({pe}, mod {m}) not claimed")
        self._occ[idx] = None
        self._occ_mask[idx] = 0
        self._free[m] += 1
        if memory:
            b = self._bus_id(pe_id)
            if self._bus_use[b * self.ii + m] <= 0:
                pe = self.cgra.grid_index.coords[pe_id]
                raise MappingError(
                    f"bus release underflow at {(self.bus_key(pe), m)}"
                )
            self._bus_use[b * self.ii + m] -= 1

    def copy(self) -> "ReservationTable":
        dup = ReservationTable.__new__(ReservationTable)
        dup.cgra = self.cgra
        dup.ii = self.ii
        dup.bus_key = self.bus_key
        dup.num_pes = self.num_pes
        dup._occ = self._occ.copy()
        dup._occ_mask = self._occ_mask.copy()
        dup._free = self._free.copy()
        dup._bus_of_pe = self._bus_of_pe.copy()
        dup._bus_segments = dict(self._bus_segments)
        dup._bus_use = self._bus_use.copy()
        dup._bus_cap = self._bus_cap
        dup._mem_mask = self._mem_mask
        return dup

    @property
    def occupancy(self) -> int:
        return self.ii * self.num_pes - sum(self._free)

    @property
    def slots(self) -> dict[tuple[Coord, int], str]:
        """Dict view of the claimed slots (diagnostics/tests; not a hot
        path — the storage itself is the flat array)."""
        coords = self.cgra.grid_index.coords
        out: dict[tuple[Coord, int], str] = {}
        for idx, label in enumerate(self._occ):
            if label is not None:
                out[(coords[idx % self.num_pes], idx // self.num_pes)] = label
        return out
