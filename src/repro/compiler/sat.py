"""Compact CDCL SAT solver for the exact modulo-scheduling backend.

A deliberately small, dependency-free conflict-driven clause-learning
solver in the MiniSat lineage: two-watched-literal propagation, 1UIP
conflict analysis with clause learning, VSIDS-style activity decisions,
phase saving, and Luby restarts.  Everything is deterministic — decisions
break activity ties on the lowest variable index and restarts follow the
fixed Luby sequence — so a solve is a pure function of the clause set and
the assumption list, which is what lets the exact backend participate in
the portfolio engine's byte-identical canonical reduction.

The API is DIMACS-flavoured: variables are positive integers from
:meth:`Solver.new_var`, literals are ``±var``.  :meth:`Solver.solve`
takes optional *assumptions* and an optional *conflict budget*; it
returns ``True`` (SAT — read the model via :meth:`Solver.value`),
``False`` (UNSAT — :meth:`Solver.unsat_core` holds the failed assumption
subset), or ``None`` when the budget ran out before an answer.

Cardinality helpers (:func:`add_at_most_one`, :func:`add_at_most_k`,
:func:`add_exactly_one`) emit the sequential-counter (Sinz) encoding the
CNF builder in :mod:`repro.compiler.exact` relies on.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

__all__ = [
    "Solver",
    "add_at_most_one",
    "add_at_most_k",
    "add_exactly_one",
]

_RESTART_BASE = 128  # conflicts per Luby unit


def luby(i: int) -> int:
    """The i-th term (0-based) of the Luby restart sequence
    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) >> 1
        seq -= 1
        i %= size
    return 1 << seq


class Solver:
    """CDCL solver over integer literals (``+v`` / ``-v``, ``v >= 1``)."""

    def __init__(self) -> None:
        self.num_vars = 0
        # per internal literal (2v / 2v+1): 1 true, -1 false, 0 unassigned
        self._val: list[int] = [0, 0]
        # per internal literal: clauses watching it
        self._watches: list[list[list[int]]] = [[], []]
        # per variable (1-based): decision level, reason clause, activity,
        # saved phase, seen flag (conflict analysis scratch)
        self._level: list[int] = [0]
        self._reason: list[list[int] | None] = [None]
        self._act: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._seen: list[int] = [0]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._order: list[tuple[float, int]] = []  # lazy max-heap entries
        self._root_units: list[int] = []
        self._clauses: list[list[int]] = []
        self._learnts: list[tuple[list[int], int]] = []  # (clause, LBD)
        self._max_learnts = 2000
        self._ok = True
        self._core: frozenset[int] = frozenset()
        self.conflicts = 0
        self.propagations = 0
        self.restarts = 0

    # -- problem construction --------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        self._val.extend((0, 0))
        self._watches.extend(([], []))
        self._level.append(0)
        self._reason.append(None)
        self._act.append(0.0)
        self._phase.append(False)
        self._seen.append(0)
        return self.num_vars

    def new_vars(self, n: int) -> list[int]:
        return [self.new_var() for _ in range(n)]

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause of external literals.  Duplicate literals are
        dropped and tautologies skipped; the empty clause marks the
        instance unsatisfiable."""
        seen: set[int] = set()
        clause: list[int] = []
        for ext in lits:
            var = abs(ext)
            if not 0 < var <= self.num_vars:
                raise ValueError(f"unknown literal {ext}")
            lit = (var << 1) | (ext < 0)
            if lit ^ 1 in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            self._ok = False
            return
        if len(clause) == 1:
            self._root_units.append(clause[0])
            return
        self._clauses.append(clause)
        self._attach(clause)

    def _attach(self, clause: list[int]) -> None:
        self._watches[clause[0] ^ 1].append(clause)
        self._watches[clause[1] ^ 1].append(clause)

    # -- assignment / propagation ----------------------------------------------

    def _enqueue(self, lit: int, reason: list[int] | None) -> bool:
        val = self._val
        if val[lit]:
            return val[lit] > 0
        val[lit] = 1
        val[lit ^ 1] = -1
        var = lit >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> list[int] | None:
        """Exhaust unit propagation; return a conflicting clause or None."""
        val = self._val
        watches = self._watches
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            neg = lit ^ 1
            ws = watches[lit]
            i = j = 0
            n = len(ws)
            while i < n:
                c = ws[i]
                i += 1
                if c[0] == neg:
                    c[0], c[1] = c[1], c[0]
                first = c[0]
                if val[first] > 0:
                    ws[j] = c
                    j += 1
                    continue
                found = False
                for k in range(2, len(c)):
                    lk = c[k]
                    if val[lk] >= 0:
                        c[1] = lk
                        c[k] = neg
                        watches[lk ^ 1].append(c)
                        found = True
                        break
                if found:
                    continue
                ws[j] = c
                j += 1
                if val[first] < 0:
                    while i < n:  # conflict: keep remaining watchers
                        ws[j] = ws[i]
                        j += 1
                        i += 1
                    del ws[j:]
                    self._qhead = len(self._trail)
                    return c
                self._enqueue(first, c)
            del ws[j:]
        return None

    # -- conflict analysis -----------------------------------------------------

    def _bump(self, var: int) -> None:
        act = self._act
        act[var] += self._var_inc
        if act[var] > 1e100:
            inv = 1e-100
            for v in range(1, self.num_vars + 1):
                act[v] *= inv
            self._var_inc *= inv
            self._order = [
                (act[v], v) for v in range(1, self.num_vars + 1)
                if not self._val[v << 1]
            ]

            heapq.heapify(self._order)
            return

        heapq.heappush(self._order, (-act[var], var))

    def _analyze(self, confl: list[int]) -> tuple[list[int], int]:
        """1UIP learning.  Returns (learnt clause, backtrack level); the
        asserting literal is learnt[0]."""
        seen = self._seen
        level = self._level
        cur = len(self._trail_lim)
        learnt: list[int] = []
        path = 0
        p = -1
        index = len(self._trail)
        cleanup: list[int] = []
        while True:
            start = 0 if p < 0 else 1
            for q in confl[start:]:
                v = q >> 1
                if not seen[v] and level[v] > 0:
                    seen[v] = 1
                    cleanup.append(v)
                    self._bump(v)
                    if level[v] >= cur:
                        path += 1
                    else:
                        learnt.append(q)
            while True:
                index -= 1
                p = self._trail[index]
                if seen[p >> 1]:
                    break
            path -= 1
            seen[p >> 1] = 0
            if path == 0:
                break
            confl = self._reason[p >> 1]  # type: ignore[assignment]
        learnt.insert(0, p ^ 1)
        for v in cleanup:
            seen[v] = 0
        if len(learnt) == 1:
            return learnt, 0
        # move a max-level literal to the second slot (watch invariant)
        mi = max(range(1, len(learnt)), key=lambda i: level[learnt[i] >> 1])
        learnt[1], learnt[mi] = learnt[mi], learnt[1]
        return learnt, level[learnt[1] >> 1]

    def _analyze_final(self, lit: int) -> frozenset[int]:
        """Assumptions implying ``~lit`` (an UNSAT core over assumptions)."""
        out = {self._to_ext(lit ^ 1)}
        if not self._trail_lim:
            return frozenset(out)
        seen = self._seen
        seen[lit >> 1] = 1
        for tl in reversed(self._trail[self._trail_lim[0]:]):
            v = tl >> 1
            if not seen[v]:
                continue
            reason = self._reason[v]
            if reason is None:
                out.add(self._to_ext(tl))
            else:
                for q in reason[1:]:
                    if self._level[q >> 1] > 0:
                        seen[q >> 1] = 1
            seen[v] = 0
        seen[lit >> 1] = 0
        return frozenset(out)

    @staticmethod
    def _to_ext(lit: int) -> int:
        return -(lit >> 1) if lit & 1 else lit >> 1

    # -- search ----------------------------------------------------------------

    def _cancel_until(self, lvl: int) -> None:
        if len(self._trail_lim) <= lvl:
            return
        val = self._val
        bound = self._trail_lim[lvl]

        for lit in reversed(self._trail[bound:]):
            var = lit >> 1
            val[lit] = 0
            val[lit ^ 1] = 0
            self._phase[var] = not lit & 1
            self._reason[var] = None
            heapq.heappush(self._order, (-self._act[var], var))
        del self._trail[bound:]
        del self._trail_lim[lvl:]
        self._qhead = len(self._trail)

    def _decide(self) -> int | None:

        order = self._order
        val = self._val
        act = self._act
        while order:
            negact, var = heapq.heappop(order)
            if val[var << 1] == 0 and -negact == act[var]:
                return (var << 1) | (not self._phase[var])
        for var in range(1, self.num_vars + 1):
            if val[var << 1] == 0:
                return (var << 1) | (not self._phase[var])
        return None

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_budget: int | None = None,
    ) -> bool | None:
        """Solve under *assumptions*; ``None`` when *conflict_budget*
        conflicts pass without an answer (state remains reusable)."""
        self._core = frozenset()
        self._cancel_until(0)
        if not self._ok:
            return False
        for lit in self._root_units:
            if not self._enqueue(lit, None):
                self._ok = False
                return False
        self._root_units.clear()
        if self._propagate() is not None:
            self._ok = False
            return False

        self._order = [
            (-self._act[v], v)
            for v in range(1, self.num_vars + 1)
            if self._val[v << 1] == 0
        ]
        heapq.heapify(self._order)
        assume = [
            (abs(a) << 1) | (a < 0) for a in assumptions
        ]
        for a in assumptions:
            if not 0 < abs(a) <= self.num_vars:
                raise ValueError(f"unknown assumption {a}")
        spent = 0
        restart_num = -1
        while True:
            restart_num += 1
            limit = luby(restart_num) * _RESTART_BASE
            res = self._search(assume, limit, conflict_budget, spent)
            if res is not None:
                return res
            spent = self.conflicts
            if conflict_budget is not None and spent >= conflict_budget:
                self._cancel_until(0)
                return None
            self.restarts += 1
            self._cancel_until(0)
            if len(self._learnts) > self._max_learnts:
                self._reduce_db()
                if not self._ok:
                    return False

    def _search(
        self,
        assume: list[int],
        limit: int,
        budget: int | None,
        spent_at_entry: int,
    ) -> bool | None:
        local_conflicts = 0
        while True:
            confl = self._propagate()
            if confl is not None:
                self.conflicts += 1
                local_conflicts += 1
                if not self._trail_lim:
                    self._ok = False
                    return False
                learnt, back = self._analyze(confl)
                # never backtrack into the assumption prefix and lose an
                # assumption: re-establishing happens in the decision loop
                self._cancel_until(back)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._ok = False
                        return False
                else:
                    levels = {self._level[q >> 1] for q in learnt}
                    self._learnts.append((learnt, len(levels)))
                    self._attach(learnt)
                    self._enqueue(learnt[0], learnt)
                self._var_inc /= 0.95
                if local_conflicts >= limit or (
                    budget is not None and self.conflicts >= budget
                ):
                    return None  # restart / budget check in solve()
                continue
            lvl = len(self._trail_lim)
            if lvl < len(assume):
                a = assume[lvl]
                if self._val[a] > 0:
                    self._trail_lim.append(len(self._trail))
                    continue
                if self._val[a] < 0:
                    self._core = self._analyze_final(a ^ 1)
                    return False
                self._trail_lim.append(len(self._trail))
                self._enqueue(a, None)
                continue
            lit = self._decide()
            if lit is None:
                return True
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

    # -- clause-database management --------------------------------------------

    def _reduce_db(self) -> None:
        """Drop the less useful half of the learnt clauses (highest LBD,
        then longest) and rebuild the watch lists.  Called at decision
        level 0, where dropped clauses can never be a live reason."""
        learnts = sorted(self._learnts, key=lambda cl: (cl[1], len(cl[0])))
        keep = len(learnts) // 2
        self._learnts = [
            cl for i, cl in enumerate(learnts) if i < keep or cl[1] <= 2
        ]
        self._max_learnts = int(self._max_learnts * 1.3)
        self._rebuild_watches()

    def _rebuild_watches(self) -> None:
        """Re-attach every clause, simplified against the root-level
        assignment (satisfied clauses dropped, false literals stripped)."""
        val = self._val
        for lit in range(len(self._watches)):
            self._watches[lit] = []
        for var in range(1, self.num_vars + 1):
            self._reason[var] = None

        def scrub(clause: list[int]) -> list[int] | None:
            if any(val[lit] > 0 for lit in clause):
                return None  # satisfied forever
            return [lit for lit in clause if val[lit] == 0]

        kept_problem: list[list[int]] = []
        for c in self._clauses:
            lits = scrub(c)
            if lits is None:
                continue
            if not lits:
                self._ok = False
                return
            if len(lits) == 1:
                self._enqueue(lits[0], None)
                continue
            kept_problem.append(lits)
            self._attach(lits)
        self._clauses = kept_problem
        kept_learnt: list[tuple[list[int], int]] = []
        for c, lbd in self._learnts:
            lits = scrub(c)
            if lits is None:
                continue
            if not lits:
                self._ok = False
                return
            if len(lits) == 1:
                self._enqueue(lits[0], None)
                continue
            kept_learnt.append((lits, lbd))
            self._attach(lits)
        self._learnts = kept_learnt

    # -- results ---------------------------------------------------------------

    def value(self, var: int) -> bool:
        """Truth value of *var* in the last SAT model."""
        return self._val[var << 1] > 0

    def unsat_core(self) -> frozenset[int]:
        """Failed assumptions of the last UNSAT answer (empty when the
        clause set itself is unsatisfiable)."""
        return self._core


# -- cardinality encodings (sequential counter, Sinz 2005) ---------------------


def add_at_most_one(solver: Solver, lits: Sequence[int]) -> None:
    """AMO over *lits* via the sequential counter: n-1 aux vars, ~3n
    binary clauses — linear, and unit propagation is arc-consistent."""
    n = len(lits)
    if n <= 1:
        return
    if n <= 4:  # pairwise is smaller below ~5 literals
        for i in range(n):
            for j in range(i + 1, n):
                solver.add_clause((-lits[i], -lits[j]))
        return
    regs = solver.new_vars(n - 1)
    solver.add_clause((-lits[0], regs[0]))
    for i in range(1, n - 1):
        solver.add_clause((-lits[i], regs[i]))
        solver.add_clause((-regs[i - 1], regs[i]))
        solver.add_clause((-lits[i], -regs[i - 1]))
    solver.add_clause((-lits[n - 1], -regs[n - 2]))


def add_at_most_k(solver: Solver, lits: Sequence[int], k: int) -> None:
    """Cardinality ``sum(lits) <= k`` via the sequential counter."""
    n = len(lits)
    if k >= n:
        return
    if k <= 0:
        for lit in lits:
            solver.add_clause((-lit,))
        return
    if k == 1:
        add_at_most_one(solver, lits)
        return
    # regs[j] after literal i: "at least j+1 of lits[0..i] are true"
    prev = solver.new_vars(k)
    solver.add_clause((-lits[0], prev[0]))
    for j in range(1, k):
        solver.add_clause((-prev[j],))
    for i in range(1, n - 1):
        regs = solver.new_vars(k)
        solver.add_clause((-lits[i], regs[0]))
        solver.add_clause((-prev[0], regs[0]))
        for j in range(1, k):
            solver.add_clause((-lits[i], -prev[j - 1], regs[j]))
            solver.add_clause((-prev[j], regs[j]))
        solver.add_clause((-lits[i], -prev[k - 1]))
        prev = regs
    solver.add_clause((-lits[n - 1], -prev[k - 1]))


def add_exactly_one(solver: Solver, lits: Sequence[int]) -> None:
    solver.add_clause(lits)
    add_at_most_one(solver, lits)
