"""Mapping validation.

Independently re-checks everything the mapper is supposed to guarantee, so
tests can treat the mapper as untrusted:

* every op placed exactly once, on an allowed PE;
* modulo-slot exclusivity across ops and route steps;
* row data-bus capacity respected by memory ops;
* every edge's value physically reaches its consumer: timing gap >= 1,
  route steps contiguous in time, each hop 1-cycle reachable, and the final
  holder adjacent-or-same to the consumer;
* (optionally, for paged mappings) every hop obeys the §VI-B ring-topology
  constraint.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.arch.interconnect import Coord
from repro.compiler.mapping import Mapping, materialized_edges, materialized_ops
from repro.util.errors import ConstraintViolation, MappingError

__all__ = ["validate_mapping"]


def validate_mapping(
    mapping: Mapping,
    *,
    allowed_pes: Sequence[Coord] | None = None,
    hop_allowed: Callable[[Coord, Coord], bool] | None = None,
    bus_key: Callable[[Coord], object] | None = None,
) -> None:
    """Raise :class:`MappingError` / :class:`ConstraintViolation` on any
    inconsistency in *mapping*.

    ``bus_key`` selects the data-bus segmentation to check memory ops
    against (per grid row by default; the paged compiler passes its banked
    per-page segmentation).
    """
    cgra, dfg, ii = mapping.cgra, mapping.dfg, mapping.ii
    allowed = set(allowed_pes) if allowed_pes is not None else None
    if bus_key is None:
        bus_key = lambda pe: pe.row  # noqa: E731

    # placement completeness and slot exclusivity (CONST ops are folded
    # into consumer operands and never occupy fabric slots)
    expected = set(materialized_ops(dfg))
    if set(mapping.placements) != expected:
        missing = expected - set(mapping.placements)
        extra = set(mapping.placements) - expected
        raise MappingError(f"placement mismatch: missing={missing} extra={extra}")
    occ: dict[tuple[Coord, int], str] = {}

    def claim(pe: Coord, time: int, label: str) -> None:
        if not cgra.interconnect.contains(pe):
            raise MappingError(f"{label} on PE {pe} outside the grid")
        if allowed is not None and pe not in allowed:
            raise ConstraintViolation(f"{label} on disallowed PE {pe}")
        key = (pe, time % ii)
        if key in occ:
            raise MappingError(
                f"slot conflict at {pe} mod {time % ii}: {occ[key]} vs {label}"
            )
        occ[key] = label

    bus: dict[tuple, int] = {}
    for p in mapping.placements.values():
        claim(p.pe, p.time, f"op{p.op_id}")
        if dfg.ops[p.op_id].is_memory:
            key = (bus_key(p.pe), p.time % ii)
            bus[key] = bus.get(key, 0) + 1
            if bus[key] > cgra.mem_ports_per_row:
                raise MappingError(
                    f"bus segment {bus_key(p.pe)} over capacity at modulo "
                    f"slot {p.time % ii}"
                )
    for r in mapping.routes.values():
        for s in r.steps:
            claim(s.pe, s.time, f"route{r.edge_id}@{s.time}")

    # dataflow reachability per edge (constant operands need no routing).
    # Fanout-shared routes may *tap* a sibling route step (same producer,
    # same loop distance) instead of starting at the producer.
    for e in materialized_edges(dfg):
        src = mapping.placement(e.src)
        dst = mapping.placement(e.dst)
        t_src_eff = src.time - e.distance * ii
        gap = dst.time - t_src_eff
        if gap < 1:
            raise MappingError(
                f"edge {e.id} ({e.src}->{e.dst}, d={e.distance}): "
                f"non-causal gap {gap}"
            )
        route = mapping.route(e.id)
        if route.tap is not None:
            siblings = {
                (s.pe, s.time)
                for e2 in dfg.out_edges(e.src)
                if e2.id != e.id and e2.distance == e.distance
                for s in mapping.route(e2.id).steps
            }
            if (route.tap.pe, route.tap.time) not in siblings:
                raise MappingError(
                    f"edge {e.id}: tap {route.tap} is not a sibling route step"
                )
        holder, holder_time = mapping.route_origin(e)
        if len(route.steps) != dst.time - holder_time - 1:
            raise MappingError(
                f"edge {e.id}: origin at t={holder_time} needs "
                f"{dst.time - holder_time - 1} route steps, has "
                f"{len(route.steps)}"
            )
        for s in route.steps:
            if s.time != holder_time + 1:
                raise MappingError(
                    f"edge {e.id}: route step at time {s.time}, expected "
                    f"{holder_time + 1}"
                )
            _check_hop(mapping, holder, s.pe, f"edge {e.id} route", hop_allowed)
            holder, holder_time = s.pe, s.time
        _check_hop(mapping, holder, dst.pe, f"edge {e.id} final read", hop_allowed)


def _check_hop(
    mapping: Mapping,
    src: Coord,
    dst: Coord,
    what: str,
    hop_allowed: Callable[[Coord, Coord], bool] | None,
) -> None:
    if not mapping.cgra.adjacent_or_same(dst, src):
        raise MappingError(f"{what}: {src} -> {dst} is not a 1-hop link")
    if hop_allowed is not None and not hop_allowed(src, dst):
        raise ConstraintViolation(
            f"{what}: hop {src} -> {dst} violates the ring-topology constraint"
        )
