"""Mapping validation.

Independently re-checks everything the mapper is supposed to guarantee, so
tests can treat the mapper as untrusted:

* every op placed exactly once, on an allowed PE;
* modulo-slot exclusivity across ops and route steps;
* row data-bus capacity respected by memory ops;
* every edge's value physically reaches its consumer: timing gap >= 1,
  route steps contiguous in time, each hop 1-cycle reachable, and the final
  holder adjacent-or-same to the consumer;
* (optionally, for paged mappings) every hop obeys the §VI-B ring-topology
  constraint;
* on heterogeneous fabrics, capability legality: each op sits on a PE
  supporting its op class and every route step sits on a ROUTE-capable PE
  (:class:`~repro.util.errors.CapabilityViolation`).

The inner loops run in the :class:`~repro.arch.interconnect.GridIndex`
integer id domain: occupancy is keyed by ``pid * ii + slot``, adjacency is
one probe of the precomputed hop-distance matrix, bus segments and the
ring-hop predicate are resolved per PE id once and memoized.  Coordinates
only reappear in error messages.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.arch.capability import OpClass, op_class
from repro.arch.interconnect import Coord
from repro.compiler.mapping import Mapping, materialized_edges, materialized_ops
from repro.util.errors import CapabilityViolation, ConstraintViolation, MappingError

__all__ = ["validate_mapping"]


def validate_mapping(
    mapping: Mapping,
    *,
    allowed_pes: Sequence[Coord] | None = None,
    hop_allowed: Callable[[Coord, Coord], bool] | None = None,
    bus_key: Callable[[Coord], object] | None = None,
) -> None:
    """Raise :class:`MappingError` / :class:`ConstraintViolation` on any
    inconsistency in *mapping*.

    ``bus_key`` selects the data-bus segmentation to check memory ops
    against (per grid row by default; the paged compiler passes its banked
    per-page segmentation).
    """
    cgra, dfg, ii = mapping.cgra, mapping.dfg, mapping.ii
    gi = cgra.interconnect.grid_index
    id_of, coords, hop_dist = gi.id_of, gi.coords, gi.hop_dist
    n_pes = len(coords)

    # per-id tables resolved lazily and memoized, so the hot loops never
    # call back into Coord-domain predicates twice for the same PE (a
    # paged bus_key may reject PEs no memory op ever lands on)
    if bus_key is None:
        bus_key = lambda pe: pe.row  # noqa: E731
    bus_cache: dict[int, object] = {}

    def bus_of(pid: int) -> object:
        seg = bus_cache.get(pid)
        if seg is None:
            seg = bus_key(coords[pid])
            bus_cache[pid] = seg
        return seg
    allowed_mask: bytearray | None = None
    if allowed_pes is not None:
        allowed_mask = bytearray(n_pes)
        for pe in allowed_pes:
            pid = id_of.get(pe)
            if pid is not None:
                allowed_mask[pid] = 1
    hop_cache: dict[int, bool] = {}

    def check_hop(src_id: int, dst_id: int, what: str) -> None:
        if hop_dist[src_id][dst_id] > 1:
            raise MappingError(
                f"{what}: {coords[src_id]} -> {coords[dst_id]} is not a "
                "1-hop link"
            )
        if hop_allowed is None:
            return
        key = src_id * n_pes + dst_id
        ok = hop_cache.get(key)
        if ok is None:
            ok = hop_allowed(coords[src_id], coords[dst_id])
            hop_cache[key] = ok
        if not ok:
            raise ConstraintViolation(
                f"{what}: hop {coords[src_id]} -> {coords[dst_id]} violates "
                "the ring-topology constraint"
            )

    # placement completeness and slot exclusivity (CONST ops are folded
    # into consumer operands and never occupy fabric slots)
    expected = set(materialized_ops(dfg))
    if set(mapping.placements) != expected:
        missing = expected - set(mapping.placements)
        extra = set(mapping.placements) - expected
        raise MappingError(f"placement mismatch: missing={missing} extra={extra}")
    occ: dict[int, str] = {}

    def claim(pe: Coord, time: int, label: str) -> int:
        pid = id_of.get(pe)
        if pid is None:
            raise MappingError(f"{label} on PE {pe} outside the grid")
        if allowed_mask is not None and not allowed_mask[pid]:
            raise ConstraintViolation(f"{label} on disallowed PE {pe}")
        key = pid * ii + time % ii
        if key in occ:
            raise MappingError(
                f"slot conflict at {pe} mod {time % ii}: {occ[key]} vs {label}"
            )
        occ[key] = label
        return pid

    # capability legality (heterogeneous fabrics only; cap/route_mask stay
    # None on the homogeneous default and the checks vanish)
    cap = cgra.capability
    route_mask = cgra.class_mask(OpClass.ROUTE) if cap is not None else None

    bus: dict[tuple, int] = {}
    pid_of_op: dict[str, int] = {}
    for p in mapping.placements.values():
        pid = claim(p.pe, p.time, f"op{p.op_id}")
        pid_of_op[p.op_id] = pid
        if cap is not None:
            cls = op_class(dfg.ops[p.op_id].opcode)
            if not cap.supports_id(cls, pid):
                raise CapabilityViolation(
                    f"op{p.op_id} ({cls.value}) placed on {p.pe}, which "
                    f"does not support op class {cls.value!r}"
                )
        if dfg.ops[p.op_id].is_memory:
            key = (bus_of(pid), p.time % ii)
            bus[key] = bus.get(key, 0) + 1
            if bus[key] > cgra.mem_ports_per_row:
                raise MappingError(
                    f"bus segment {bus_of(pid)} over capacity at modulo "
                    f"slot {p.time % ii}"
                )
    for r in mapping.routes.values():
        for s in r.steps:
            pid = claim(s.pe, s.time, f"route{r.edge_id}@{s.time}")
            if route_mask is not None and not route_mask[pid]:
                raise CapabilityViolation(
                    f"route step of edge {r.edge_id} on {s.pe}, which does "
                    "not support op class 'route'"
                )

    # dataflow reachability per edge (constant operands need no routing).
    # Fanout-shared routes may *tap* a sibling route step (same producer,
    # same loop distance) instead of starting at the producer.
    for e in materialized_edges(dfg):
        src = mapping.placement(e.src)
        dst = mapping.placement(e.dst)
        t_src_eff = src.time - e.distance * ii
        gap = dst.time - t_src_eff
        if gap < 1:
            raise MappingError(
                f"edge {e.id} ({e.src}->{e.dst}, d={e.distance}): "
                f"non-causal gap {gap}"
            )
        route = mapping.route(e.id)
        if route.tap is not None:
            siblings = {
                (s.pe, s.time)
                for e2 in dfg.out_edges(e.src)
                if e2.id != e.id and e2.distance == e.distance
                for s in mapping.route(e2.id).steps
            }
            if (route.tap.pe, route.tap.time) not in siblings:
                raise MappingError(
                    f"edge {e.id}: tap {route.tap} is not a sibling route step"
                )
        holder, holder_time = mapping.route_origin(e)
        holder_id = id_of[holder]
        if len(route.steps) != dst.time - holder_time - 1:
            raise MappingError(
                f"edge {e.id}: origin at t={holder_time} needs "
                f"{dst.time - holder_time - 1} route steps, has "
                f"{len(route.steps)}"
            )
        for s in route.steps:
            if s.time != holder_time + 1:
                raise MappingError(
                    f"edge {e.id}: route step at time {s.time}, expected "
                    f"{holder_time + 1}"
                )
            step_id = id_of.get(s.pe)
            if step_id is None:
                raise MappingError(
                    f"edge {e.id} route: step on PE {s.pe} outside the grid"
                )
            check_hop(holder_id, step_id, f"edge {e.id} route")
            holder_id, holder_time = step_id, s.time
        check_hop(holder_id, pid_of_op[e.dst], f"edge {e.id} final read")
