"""Modulo-scheduling place-and-route mapper (EMS-style baseline).

This is the reproduction of the paper's baseline compiler: a modulo
scheduler in the family of edge-centric modulo scheduling (EMS, Park et
al. [25]), which the paper's experiments build on.  The algorithm:

1. compute ``MII = max(ResMII, RecMII)``;
2. for each candidate II (MII, MII+1, ...), try to place operations one at
   a time in slack order (ALAP-first); each op is placed at the first
   (time, PE) candidate from which *every* edge to an already-placed
   producer or consumer can be routed on the time-extended mesh
   (:mod:`repro.compiler.routing`), claiming routing PEs as it goes;
3. a few restarts with perturbed op order absorb unlucky greedy choices
   before giving up and bumping the II.

The paged compiler (:mod:`repro.compiler.paged`) reuses this engine with a
hop filter and a restricted PE set, which is how the paper describes its
approach: "add some additional constraints to the compiler when it is
generating the original schedule" (§I).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Callable, Sequence

from repro.arch.capability import OpClass
from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.arch.isa import Opcode
from repro.compiler.feas import ii_lower_bound
from repro.compiler.mapping import (
    Mapping,
    Placement,
    Route,
    RouteStep,
    materialized_ops,
)
from repro.compiler.mrt import ReservationTable
from repro.compiler.routing import (
    RoutingContext,
    commit_route,
    find_route_shared_ids,
    release_route,
)
from repro.compiler.stats import counters, search_stats
from repro.dfg.analysis import alap_times, asap_times, rec_mii
from repro.dfg.graph import DFG
from repro.util.errors import MappingError
from repro.util.fingerprint import canonical_fingerprint
from repro.util.rng import make_rng

__all__ = ["MapperConfig", "EMSMapper", "map_dfg"]

HopFilter = Callable[[Coord, Coord], bool]


@dataclass(frozen=True)
class MapperConfig:
    """Tuning knobs of the mapper."""

    max_ii: int = 64
    attempts_per_ii: int = 6
    horizon_factor: int = 4  # schedule horizon = critical path + factor * II
    seed: int = 0
    route_budget: int = 3000  # DFS expansion cap for long routes
    candidate_cap: int = 10  # feasible candidates scored per op
    eval_budget: int = 200  # total (time, PE) candidates probed per op
    root_margin: int = 2  # extra slack before anchor-less non-source ops
    #: Paged-mapping backend: "flat" is the original single-level ladder;
    #: "hier" prepends a cluster-then-place hierarchical attempt at every II
    #: rung (:mod:`repro.compiler.hier`); "exact" is the flat ladder with
    #: SAT-certificate rung pruning (:mod:`repro.compiler.exact`).
    backend: str = "flat"

    def __post_init__(self) -> None:
        if self.backend not in ("flat", "hier", "exact"):
            raise MappingError(f"unknown mapper backend {self.backend!r}")

    def fingerprint(self) -> str:
        """Canonical hash over every knob — any tuning change invalidates
        cached artifacts keyed on it (:mod:`repro.pipeline`).  The default
        ``backend`` is dropped from the payload so configs predating the
        knob keep their fingerprint (and committed artifact addresses)."""
        payload = asdict(self)
        if payload["backend"] == "flat":
            del payload["backend"]
        return canonical_fingerprint(payload)


@dataclass
class _Attempt:
    """Mutable state of one placement attempt.

    ``placements`` maps op id to ``(pe_id, time)`` in the integer PE-id
    domain of the fabric's grid index; :class:`Placement` objects (with
    ``Coord``) are only materialized for the final :class:`Mapping`.
    """

    mrt: ReservationTable
    placements: dict[int, tuple[int, int]] = field(default_factory=dict)
    routes: dict[int, Route] = field(default_factory=dict)


class EMSMapper:
    """Place-and-route modulo scheduler for one CGRA (optionally paged)."""

    def __init__(
        self,
        cgra: CGRA,
        *,
        allowed_pes: Sequence[Coord] | None = None,
        hop_allowed: HopFilter | None = None,
        mem_slots_per_cycle: int | None = None,
        bus_key=None,
        pe_rank: Callable[[Coord], int] | None = None,
        config: MapperConfig | None = None,
    ) -> None:
        self.cgra = cgra
        self.config = config or MapperConfig()
        self.allowed_pes: tuple[Coord, ...] = tuple(
            allowed_pes if allowed_pes is not None else cgra.coords()
        )
        if not self.allowed_pes:
            raise MappingError("no PEs available to the mapper")
        self.hop_allowed = hop_allowed
        self.bus_key = bus_key
        # Rank of each PE along the dataflow direction of the fabric (the
        # page ring index for paged layouts).  Anchor-less sources prefer
        # low ranks and anchor-less sinks high ranks, so chains flow
        # forward and never start in the last page of the chain, which the
        # ring constraint makes a dataflow sink.
        self.pe_rank = pe_rank
        self._rank_targets: dict[int, int] = {}
        self.mem_slots = (
            mem_slots_per_cycle
            if mem_slots_per_cycle is not None
            else cgra.rows * cgra.mem_ports_per_row
        )
        # Integer-domain hot-path tables (see GridIndex/RoutingContext):
        # everything the placer and router touch per candidate is an
        # indexed load over these, never a Coord hash.
        gi = cgra.grid_index
        self._gi = gi
        self._allowed_ids: tuple[int, ...] = tuple(
            gi.id_of[pe] for pe in self.allowed_pes
        )
        # Capability masks (None on homogeneous fabrics: every filter below
        # degenerates to the original code path, bit for bit).
        self._mem_ok = cgra.class_mask(OpClass.MEM)
        self._alu_ok = cgra.class_mask(OpClass.ALU)
        self._route_ok = cgra.class_mask(OpClass.ROUTE)
        self._mem_capable_count = (
            len(self._allowed_ids)
            if self._mem_ok is None
            else sum(1 for pid in self._allowed_ids if self._mem_ok[pid])
        )
        # Per-op placement domains (hier backend: ops pinned to one page's
        # PEs); empty outside a hierarchical attempt.
        self._op_domains: dict[int, tuple[int, ...]] = {}
        # one-slot memo of the per-op trap tables, keyed on the DFG's
        # adjacency epoch (see DFG._adjacency)
        self._trap_cache: tuple | None = None
        self._route_ctx = RoutingContext(cgra, hop_allowed)
        # escape direction (pe -> nb) shares the router's allowed-move table
        self._esc_ids = self._route_ctx.allowed_moves
        if hop_allowed is None:
            self._arr_ids = gi.reach1_ids
        else:
            coords = gi.coords
            self._arr_ids = tuple(
                tuple(
                    q
                    for q in gi.reach1_ids[p]
                    if hop_allowed(coords[q], coords[p])
                )
                for p in range(gi.num_pes)
            )
        # fabric rank per PE id (None where pe_rank is unset/undefined)
        if pe_rank is None:
            self._rank_ids = None
        else:
            self._rank_ids = [0] * gi.num_pes
            for pe in self.allowed_pes:
                self._rank_ids[gi.id_of[pe]] = pe_rank(pe)

    # -- public API ---------------------------------------------------------------

    def map(
        self,
        dfg: DFG,
        *,
        min_ii: int | None = None,
        resume_ii: int | None = None,
    ) -> Mapping:
        """Map *dfg*, returning the best (lowest-II) mapping found.

        Raises :class:`MappingError` when no mapping exists up to
        ``config.max_ii``.

        *resume_ii* is the ladder-memoization contract: the caller asserts
        that every rung below it was already probed — with this exact
        mapper geometry, config (up to ``max_ii``) and *min_ii* — and
        failed, so those rungs are skipped.  The rng stream is still
        advanced exactly as if the skipped perturbation attempts had run,
        so the op orders tried at the remaining rungs (and therefore the
        resulting mapping) are bit-for-bit what a full re-climb would
        produce.
        """
        start_ii = self.ladder_start_ii(dfg, min_ii=min_ii)
        search_stats().serial_ladders += 1
        rng = make_rng(self.config.seed)
        orders = self.attempt_orders(dfg)
        for ii in range(start_ii, self.config.max_ii + 1):
            skip = resume_ii is not None and ii < resume_ii
            if skip:
                counters().rungs_skipped += 1
            elif self.rung_infeasible(dfg, ii):
                skip = True  # hook holds a proof; it does its own counting
            if skip:
                # burn the skipped rung's perturbation draws to keep the
                # stream position identical to a full climb
                for attempt in range(self.config.attempts_per_ii):
                    if attempt >= len(orders):
                        self._perturb(list(orders[0]), rng)
                continue
            for attempt in range(self.config.attempts_per_ii):
                if attempt < len(orders):
                    order = list(orders[attempt])
                else:
                    order = list(orders[0])
                    self._perturb(order, rng)
                result = self._try_map(dfg, ii, order)
                if result is not None:
                    return result
        err = MappingError(self.ladder_fail_message(dfg))
        err.ladder_probed = (start_ii, self.config.max_ii)
        raise err

    # -- the (II, attempt) ladder as data ------------------------------------------
    #
    # The serial `map()` above walks the lattice {(ii, attempt)} in
    # lexicographic order and returns the first success.  The speculative
    # portfolio engine (:mod:`repro.compiler.search`) races the same
    # probes out of order; the helpers below expose the ladder's pieces —
    # start rung, base orders, and the exact per-(ii, attempt) op order —
    # so an out-of-order probe is bit-identical to its serial twin.

    def ladder_start_ii(self, dfg: DFG, *, min_ii: int | None = None) -> int:
        """First II rung of the ladder (MII, floored by *min_ii*).

        Raises :class:`MappingError` for DFGs that can never fit, exactly
        as :meth:`map` would before entering the ladder.
        """
        bound = ii_lower_bound(
            dfg,
            num_pes=len(self.allowed_pes),
            mem_slots=self.mem_slots,
            mem_capable_pes=self._mem_capable_count,
            max_ii=self.config.max_ii,
        )
        start_ii = bound.mii
        if min_ii is not None:
            start_ii = max(start_ii, min_ii)
        return start_ii

    def rung_infeasible(self, dfg: DFG, ii: int) -> bool:
        """Certificate hook: may a backend *prove* rung *ii* dead?

        The flat ladder never prunes.  Overrides (the exact backend's SAT
        refutation, :class:`repro.compiler.exact.ExactMapper`) must hold a
        soundness proof covering every attempt the rung would have run —
        a pruned rung burns its rng draws but is otherwise skipped, so an
        unsound prune would change the ladder's outcome, not just its
        cost.  Only consulted by the serial climb; speculative portfolio
        probes replay single lattice points and never prune.
        """
        return False

    def ladder_fail_message(self, dfg: DFG) -> str:
        """The error text of a ladder exhausted up to ``config.max_ii``."""
        return (
            f"could not map {dfg.name!r} ({dfg.num_ops} ops) on "
            f"{len(self.allowed_pes)} PEs within II <= {self.config.max_ii}"
        )

    def attempt_orders(self, dfg: DFG) -> list[list[int]]:
        """The three base op orders tried at every II rung.

        Reverse dataflow order places consumers before producers, so when
        an op is placed every outgoing edge routes immediately — a value
        can never get trapped by later placements stealing its escape
        slots.  Forward dataflow and slack orders behave better on
        recurrence-heavy graphs, so all three are tried before bumping the
        II; attempts beyond the three are perturbations of the first.
        """
        return [
            self._reverse_dataflow_order(dfg),
            self._dataflow_order(dfg),
            self._priority_order(dfg),
        ]

    def attempt_order(
        self,
        orders: Sequence[Sequence[int]],
        start_ii: int,
        ii: int,
        attempt: int,
    ) -> list[int]:
        """The exact op order the serial ladder uses at (*ii*, *attempt*).

        The serial loop draws perturbations from one rng stream in
        lexicographic (ii, attempt) order, so the order at a given lattice
        point depends on how many perturbed attempts precede it.  Each
        perturbation consumes a fixed amount of rng state (the order length
        never changes), so an independent probe can replay the stream:
        burn the preceding perturbations on scratch copies, then apply the
        real one.  This is what makes out-of-order parallel probes
        byte-identical to the serial ladder.
        """
        if attempt < len(orders):
            return list(orders[attempt])
        per_ii = self.config.attempts_per_ii - len(orders)
        preceding = (ii - start_ii) * per_ii + (attempt - len(orders))
        rng = make_rng(self.config.seed)
        for _ in range(preceding):
            self._perturb(list(orders[0]), rng)
        order = list(orders[0])
        self._perturb(order, rng)
        return order

    def lattice_attempts_per_ii(self) -> int:
        """Width of one II rung of the (II, attempt) lattice.  Backends
        with extra per-rung probes (:class:`~repro.compiler.hier.
        HierMapper`) override this; the portfolio engine sizes its rank
        lattice from it instead of assuming ``config.attempts_per_ii``."""
        return self.config.attempts_per_ii

    def run_lattice_attempt(
        self,
        dfg: DFG,
        start_ii: int,
        ii: int,
        attempt: int,
        orders: Sequence[Sequence[int]],
    ) -> Mapping | None:
        """Run the single lattice probe (*ii*, *attempt*), bit-identical to
        the serial ladder's visit of that point (see :meth:`attempt_order`).
        This is the probe entry point the portfolio engine races."""
        order = self.attempt_order(orders, start_ii, ii, attempt)
        return self._try_map(dfg, ii, order)

    # -- op ordering ---------------------------------------------------------------

    def _priority_order(self, dfg: DFG) -> list[int]:
        """Slack order: ops on the critical path (zero slack) first; among
        equals, deeper (later-ASAP) ops later so producers tend to precede
        consumers."""
        asap = asap_times(dfg)
        alap = alap_times(dfg)
        return sorted(
            materialized_ops(dfg),
            key=lambda v: (alap[v] - asap[v], asap[v], v),
        )

    def _dataflow_order(self, dfg: DFG) -> list[int]:
        """Topological (ASAP) order with low-slack ops first within a
        level: each op is placed while its producers' neighbourhoods still
        have routing headroom."""
        asap = asap_times(dfg)
        alap = alap_times(dfg)
        return sorted(
            materialized_ops(dfg),
            key=lambda v: (asap[v], alap[v] - asap[v], v),
        )

    def _reverse_dataflow_order(self, dfg: DFG) -> list[int]:
        """Deepest ops (stores) first; producers placed after all their
        consumers, so every edge is routed the moment its producer lands."""
        alap = alap_times(dfg)
        asap = asap_times(dfg)
        return sorted(
            materialized_ops(dfg),
            key=lambda v: (-alap[v], alap[v] - asap[v], v),
        )

    @staticmethod
    def _perturb(order: list[int], rng) -> None:
        """Swap a few random pairs — cheap order diversification between
        restart attempts."""
        n = len(order)
        for _ in range(max(1, n // 4)):
            i, j = int(rng.integers(n)), int(rng.integers(n))
            order[i], order[j] = order[j], order[i]

    # -- one attempt -----------------------------------------------------------------

    def _try_map(
        self,
        dfg: DFG,
        ii: int,
        order: list[int],
        domains: dict[int, tuple[int, ...]] | None = None,
    ) -> Mapping | None:
        asap = asap_times(dfg)
        horizon = max(asap.values(), default=0) + self.config.horizon_factor * ii
        st = _Attempt(ReservationTable(self.cgra, ii, self.bus_key))
        self._rank_targets = self._spread_targets(dfg, order)
        self._op_domains = domains or {}
        for op_id in order:
            if not self._place_op(dfg, ii, st, op_id, asap, horizon):
                return None
        coords = self._gi.coords
        placements = {
            op_id: Placement(op_id, coords[pe_id], t)
            for op_id, (pe_id, t) in st.placements.items()
        }
        return Mapping(self.cgra, dfg, ii, placements, st.routes)

    def _spread_targets(self, dfg: DFG, order: list[int]) -> dict[int, int]:
        """Target fabric rank per op when a ``pe_rank`` is set.

        On a ring/chain-constrained fabric dataflow can only move forward
        through the page chain, so an op with *h* levels of computation
        still below it should sit roughly *h* ranks before the end of the
        chain: ``target = top - height``.  Ops that feed the same consumer
        share a height and thus a target, keeping affine groups together;
        deep sources start at page 0 and never land on the terminal page
        (which the ring makes a dataflow sink).
        """
        if self.pe_rank is None:
            return {}
        import networkx as nx

        ranks = sorted({self.pe_rank(pe) for pe in self.allowed_pes})
        top = len(ranks) - 1
        # Height on the SCC condensation of the *full* dependence graph
        # (loop-carried edges included): a recurrence cycle is one node, so
        # all its ops share a target page — on a chain topology a cycle can
        # never span pages, data cannot flow backwards.
        g = nx.DiGraph()
        g.add_nodes_from(dfg.ops)
        for e in dfg.edges.values():
            if dfg.ops[e.src].opcode is not Opcode.CONST and e.src != e.dst:
                g.add_edge(e.src, e.dst)
        cond = nx.condensation(g)
        height: dict[int, int] = {}
        for scc in reversed(list(nx.topological_sort(cond))):
            succs = list(cond.successors(scc))
            height[scc] = 0 if not succs else 1 + max(height[s] for s in succs)
        # When the graph is deeper than the chain, compress heights
        # proportionally so every page carries a share of the levels
        # instead of everything deep squashing onto page 0.
        max_h = max(height.values(), default=0)
        scale = min(1.0, top / max_h) if max_h else 0.0
        targets: dict[int, int] = {}
        for v in order:
            h = height[cond.graph["mapping"][v]]
            targets[v] = ranks[max(0, top - round(h * scale))]
        return targets

    def _place_op(
        self,
        dfg: DFG,
        ii: int,
        st: _Attempt,
        op_id: int,
        asap: dict[int, int],
        horizon: int,
    ) -> bool:
        op = dfg.ops[op_id]
        self_edges = [e for e in dfg.in_edges(op_id) if e.src == op_id]
        pred_edges = [
            e
            for e in dfg.in_edges(op_id)
            if e.src in st.placements
            and e.src != op_id
            and dfg.ops[e.src].opcode is not Opcode.CONST
        ]
        succ_edges = [
            e
            for e in dfg.out_edges(op_id)
            if e.dst in st.placements and e.dst != op_id
        ]
        t_lo = max(
            [asap[op_id]]
            + [
                st.placements[e.src][1] - e.distance * ii + 1
                for e in pred_edges
            ]
        )
        t_lo = max(t_lo, 0)
        t_hi = horizon
        for e in succ_edges:
            t_hi = min(t_hi, st.placements[e.dst][1] + e.distance * ii - 1)
        if t_lo > t_hi:
            return False
        if not pred_edges and not succ_edges and dfg.in_edges(op_id):
            # anchor-less non-source op: the roots of a reverse-order pass.
            # Placing them at bare ASAP leaves zero slack for the upstream
            # chain to route through the mesh; start them a margin later.
            t_lo = min(t_lo + self.config.root_margin + ii // 2, t_hi)

        anchor_ids = [st.placements[e.src][0] for e in pred_edges] + [
            st.placements[e.dst][0] for e in succ_edges
        ]
        if op.is_memory:
            cap_mask = self._mem_ok
        elif op.opcode is Opcode.ROUTE:
            cap_mask = self._route_ok
        else:
            cap_mask = self._alu_ok
        candidates = self._candidate_pes(anchor_ids, op_id, cap_mask)
        if not candidates:
            return False

        # Cost-based selection: tentatively commit feasible candidates,
        # score them, keep the best.  Each extra cycle of gap costs a route
        # slot, so time and route length are the same currency; the escape
        # term keeps producers' neighbourhoods breathable so later
        # consumers can still be reached (greedy dead-end avoidance).
        best: tuple[float, int, int] | None = None
        feasible_seen = 0
        evals = 0
        mrt = st.mrt
        is_mem = op.is_memory
        for t in range(t_lo, t_hi + 1):
            for pe in candidates:
                counters().placement_probes += 1
                if not mrt.slot_free_id(pe, t):
                    continue
                if is_mem and not mrt.bus_free_id(pe, t):
                    continue
                evals += 1
                cost = self._trial_cost(
                    dfg, ii, st, op_id, pe, t, pred_edges, succ_edges, self_edges
                )
                if cost is not None:
                    cost += 0.25 * (t - t_lo)
                    if best is None or cost < best[0]:
                        best = (cost, pe, t)
                    feasible_seen += 1
                if feasible_seen >= self.config.candidate_cap:
                    break
                if evals >= self.config.eval_budget:
                    break
            if feasible_seen >= self.config.candidate_cap:
                break
            if evals >= self.config.eval_budget:
                break
        if best is None:
            return False
        _, pe, t = best
        return self._commit_candidate(
            dfg, ii, st, op_id, pe, t, pred_edges, succ_edges, self_edges
        )

    def _trial_cost(
        self, dfg, ii, st, op_id, pe_id, t, pred_edges, succ_edges, self_edges
    ) -> float | None:
        """Score a candidate slot by committing it and rolling back.

        Returns None when some edge cannot be routed from this slot.
        Cost = route slots consumed + congestion of this PE's 1-hop
        neighbourhood at the next cycle (the value's escape room).
        """
        counters().trial_commits += 1
        if not self._commit_candidate(
            dfg, ii, st, op_id, pe_id, t, pred_edges, succ_edges, self_edges
        ):
            return None
        route_slots = sum(
            len(st.routes[e.id].steps)
            for e in (*pred_edges, *succ_edges, *self_edges)
        )
        # congestion terms, only in the directions with unrouted edges:
        # escape room at t+1 when some consumer is still unplaced, arrival
        # room at t-1 when some producer is still unplaced
        has_open_succ = any(
            e.dst not in st.placements for e in dfg.out_edges(op_id)
        )
        has_open_pred = any(
            e.src not in st.placements for e in dfg.in_edges(op_id)
        )
        mrt = st.mrt
        blocked = 0
        if has_open_succ:
            for nb in self._esc_ids[pe_id]:
                if not mrt.slot_free_id(nb, t + 1):
                    blocked += 1
        if has_open_pred and t >= 1:
            for nb in self._arr_ids[pe_id]:
                if not mrt.slot_free_id(nb, t - 1):
                    blocked += 1
        self._rollback(dfg, st, op_id, pred_edges, succ_edges, self_edges)
        return route_slots + 0.6 * blocked

    def _rollback(self, dfg, st, op_id, pred_edges, succ_edges, self_edges) -> None:
        pe_id, t = st.placements.pop(op_id)
        for e in (*pred_edges, *succ_edges, *self_edges):
            release_route(st.mrt, st.routes.pop(e.id).steps)
        st.mrt.release_id(pe_id, t, memory=dfg.ops[op_id].is_memory)

    def _candidate_pes(
        self,
        anchor_ids: list[int],
        op_id: int | None = None,
        cap_mask: tuple[bool, ...] | None = None,
    ) -> list[int]:
        """Candidate PE ids, closest-to-anchors first.  The final tie-break
        is the PE id itself, which equals the old Coord (row, col) ordering
        — row-major ids are order-isomorphic to Coord's lexicographic
        order, so candidate order is unchanged from the Coord-domain
        placer.

        The pool is pre-filtered by the op's capability mask (heterogeneous
        fabrics only) and by an explicit per-op domain when the
        hierarchical backend pinned the op to a page — illegality is ruled
        out before enumeration instead of discovered per probe."""
        pool: Sequence[int] = self._allowed_ids
        if op_id is not None and self._op_domains:
            pool = self._op_domains.get(op_id, pool)
        if cap_mask is not None:
            pool = [pid for pid in pool if cap_mask[pid]]
        target = self._rank_targets.get(op_id) if op_id is not None else None
        ranks = self._rank_ids
        man = self._gi.manhattan
        if ranks is not None and target is not None:
            rank_bias = lambda pid: abs(ranks[pid] - target)  # noqa: E731
        else:
            rank_bias = lambda pid: 0  # noqa: E731
        if anchor_ids:
            return sorted(
                pool,
                key=lambda pid: (
                    sum(man[pid][a] for a in anchor_ids),
                    rank_bias(pid),
                    pid,
                ),
            )
        if ranks is not None and target is not None:
            return sorted(pool, key=lambda pid: (rank_bias(pid), pid))
        return list(pool)

    def _commit_candidate(
        self,
        dfg: DFG,
        ii: int,
        st: _Attempt,
        op_id: int,
        pe_id: int,
        t: int,
        pred_edges,
        succ_edges,
        self_edges=(),
    ) -> bool:
        """Claim the op slot and route all its placed-neighbour edges
        (including self-recurrences); roll back entirely on any failure,
        including when the commit would *trap* another placed op by taking
        the last free arrival/escape slot one of its unrouted edges needs."""
        op = dfg.ops[op_id]
        st.mrt.claim_id(pe_id, t, f"op{op_id}", memory=op.is_memory)
        routed: list[tuple[int, tuple[RouteStep, ...], RouteStep | None]] = []
        local_routes: dict[int, tuple[RouteStep, ...]] = {}
        id_of = self._gi.id_of

        def sources_for(src_op_id: int, src_id, src_time_eff, distance):
            """Tappable holders of the value: the producer plus every step
            of sibling routes carrying it (fanout sharing)."""
            out = [(src_id, src_time_eff, None)]
            for e2 in dfg.out_edges(src_op_id):
                if e2.distance != distance:
                    continue
                steps2 = local_routes.get(e2.id)
                if steps2 is None and e2.id in st.routes:
                    steps2 = st.routes[e2.id].steps
                for s2 in steps2 or ():
                    out.append((id_of[s2.pe], s2.time, s2))
            return out

        def route_edge(e, src_id, src_time_eff, dst_id, dst_time) -> bool:
            found = find_route_shared_ids(
                self._route_ctx,
                st.mrt,
                sources_for(e.src, src_id, src_time_eff, e.distance),
                dst_id,
                dst_time,
                max_expansions=self.config.route_budget,
            )
            if found is None:
                return False
            steps, tap = found
            commit_route(st.mrt, e.id, steps)
            routed.append((e.id, steps, tap))
            local_routes[e.id] = steps
            return True

        ok = True
        for e in self_edges:
            if not route_edge(e, pe_id, t - e.distance * ii, pe_id, t):
                ok = False
                break
        for e in pred_edges if ok else ():
            src_id, src_t = st.placements[e.src]
            if not route_edge(e, src_id, src_t - e.distance * ii, pe_id, t):
                ok = False
                break
        if ok:
            for e in succ_edges:
                dst_id, dst_t = st.placements[e.dst]
                if not route_edge(e, pe_id, t - e.distance * ii, dst_id, dst_t):
                    ok = False
                    break
        if ok:
            st.placements[op_id] = (pe_id, t)
            if self._traps_pending_edge(dfg, ii, st):
                del st.placements[op_id]
                ok = False
        if not ok:
            for _, steps, _tap in routed:
                release_route(st.mrt, steps)
            st.mrt.release_id(pe_id, t, memory=op.is_memory)
            return False
        for edge_id, steps, tap in routed:
            st.routes[edge_id] = Route(edge_id, steps, tap)
        # edges between unplaced endpoints are routed when the second
        # endpoint is placed; edges with zero steps still get a Route record
        # so downstream consumers can distinguish "routed, direct" from
        # "not yet routed".
        return True

    def _traps_pending_edge(self, dfg: DFG, ii: int, st: _Attempt) -> bool:
        """Would the current reservations starve a placed op whose edges
        are not all routed yet?

        A placed op with an unplaced producer needs at least as many free
        arrival slots (its 1-hop in-neighbourhood at ``t-1``) as it has
        unrouted operands; one with an unplaced consumer needs at least one
        free escape slot at ``t+1`` for its value to leave.  Rejecting
        candidates that exhaust these slots is what keeps the greedy from
        painting itself into a corner on load/const-heavy graphs.
        """
        mrt = st.mrt
        arr_ids = self._arr_ids
        esc_ids = self._esc_ids
        occ = mrt._occ_mask
        num_pes = mrt.num_pes
        placements = st.placements
        trap_in, trap_out = self._trap_tables(dfg)
        for u_id, (u_pe, u_t) in placements.items():
            srcs = trap_in[u_id]
            if srcs:
                pending_in = 0
                for s in srcs:
                    if s not in placements:
                        pending_in += 1
                if pending_in:
                    need = 2 if pending_in > 1 else 1
                    base = ((u_t - 1) % ii) * num_pes
                    free = 0
                    for nb in arr_ids[u_pe]:
                        if not occ[base + nb]:
                            free += 1
                            if free >= need:
                                break
                    if free < need:
                        return True
            for d in trap_out[u_id]:
                if d not in placements:
                    base = ((u_t + 1) % ii) * num_pes
                    for nb in esc_ids[u_pe]:
                        if not occ[base + nb]:
                            break
                    else:
                        return True
                    break
        return False

    def _trap_tables(self, dfg: DFG) -> tuple[dict, dict]:
        """Per-op operand-source / consumer tables for the trap check,
        memoized per DFG adjacency epoch.  ``trap_in[u]`` lists the
        non-constant producer of every in-edge (duplicates preserved, one
        per edge, matching the historical per-edge count); ``trap_out[u]``
        lists consumer op ids."""
        adj = dfg._adjacency()
        cache = self._trap_cache
        if cache is not None and cache[0] is adj:
            return cache[1], cache[2]
        ins, outs = adj
        ops = dfg.ops
        trap_in = {
            u: tuple(
                e.src
                for e in edges
                if ops[e.src].opcode is not Opcode.CONST
            )
            for u, edges in ins.items()
        }
        trap_out = {u: tuple(e.dst for e in edges) for u, edges in outs.items()}
        self._trap_cache = (adj, trap_in, trap_out)
        return trap_in, trap_out


def map_dfg(
    dfg: DFG,
    cgra: CGRA,
    *,
    config: MapperConfig | None = None,
    min_ii: int | None = None,
    workers: int = 1,
    search=None,
    search_log=None,
) -> Mapping:
    """Map *dfg* onto the whole *cgra* with the baseline (unconstrained)
    compiler.  This produces the paper's ``II_b`` reference points.

    With ``workers > 1`` (or a live :class:`repro.compiler.search.
    SearchContext` passed as *search*) the (II, attempt) ladder is raced
    speculatively over a process pool; the result is byte-identical to the
    serial path — ``workers=1`` takes the exact in-process ladder.
    ``search_log`` collects per-ladder :class:`~repro.compiler.search.
    LadderReport` records.
    """
    if search is not None or workers > 1:
        from repro.compiler.search import MapperSpec, SearchContext, portfolio_map

        spec = MapperSpec.for_base(cgra, config or MapperConfig())
        ctx = search if search is not None else SearchContext.create(workers)
        try:
            return portfolio_map(
                spec, dfg, cgra=cgra, min_ii=min_ii, ctx=ctx, log=search_log
            )
        finally:
            if search is None:
                ctx.close()
    return EMSMapper(cgra, config=config).map(dfg, min_ii=min_ii)
