"""Exact modulo-scheduling backend: a SAT-refutation-assisted flat ladder.

``MapperConfig(backend="exact")`` selects :class:`ExactMapper`, a drop-in
:class:`~repro.compiler.ems.EMSMapper` whose ladder consults an in-house
CDCL solver (:mod:`repro.compiler.sat`) before greedily attacking each II
rung.  The solver decides a *modulo-domain relaxation* of the mapper's
constraint model — placement exactly-one, per-(PE, cycle-slot) capacity,
operand arrival from the in-neighborhood, banked-bus budgets — so an
**UNSAT** verdict is a machine-checked certificate that no mapping exists
at that II and the greedy attempts can be skipped outright
(``MapperCounters.rungs_pruned``).  A SAT verdict proves nothing about the full
model (the relaxation drops route-shape and horizon constraints), so the
ladder then runs its normal attempts.

Byte-compatibility is the design center, not an accident:

* A pruned rung still burns the same perturbation rng draws the flat
  ladder would have spent there, so the op orders tried at every later
  rung — and hence the winning mapping — are bit-for-bit the flat
  backend's.  (Soundness makes the skipped attempts unobservable: they
  would all have failed.)
* Under the portfolio engine the probes replay the shared
  lattice-attempt protocol unchanged — speculative (II, attempt) probes
  never consult the solver — so ``workers ∈ {1, 2, 4}`` produce the same
  bytes as the serial exact ladder, which produces the same mapping the
  flat ladder would.

The engagement policy is deliberately conservative: pure-Python CDCL is
only cheap on small instances, so the probe engages when the estimated
variable count stays under :attr:`ExactMapper.probe_var_cap` and gives up
at :attr:`ExactMapper.probe_conflict_budget` conflicts (an inconclusive
probe prunes nothing).  Artifacts compiled with this backend get their own
addresses: ``MapperConfig.fingerprint`` keeps non-default ``backend``
values in the hashed payload.
"""

from __future__ import annotations

from repro.arch.isa import Opcode
from repro.compiler.ems import EMSMapper
from repro.compiler.mapping import materialized_ops
from repro.compiler.sat import (
    Solver,
    add_at_most_k,
    add_at_most_one,
    add_exactly_one,
)
from repro.compiler.stats import counters
from repro.dfg.graph import DFG

__all__ = ["ExactMapper", "encode_modulo_relaxation", "probe_rung"]


def encode_modulo_relaxation(mapper: EMSMapper, dfg: DFG, ii: int):
    """CNF over-approximation of "some mapping of *dfg* exists at *ii*".

    Variables: ``X[v][(p, s)]`` — materialized op *v* fires on PE *p* at
    modulo slot *s*; ``R[w][(p, s)]`` — a routing step of value
    ``w = (producer, loop distance)`` occupies ``(p, s)``.

    Clauses (each satisfied by the assignment any legal mapping induces —
    see ``tests/test_feasibility.py::test_relaxation_admits_real_mappings``):

    * exactly one ``(p, s)`` per op, with *p* drawn from the op's
      capability domain (mem / alu / route masks);
    * at most one occupant per ``(p, s)`` slot — ops and route steps
      charge the same reservation table;
    * a route step at ``(p, s)`` reads the value from some
      ``q ∈ arr(p)`` at slot ``s-1`` (a step or the producer itself);
    * a consumer at ``(p, s)`` reads each distinct non-CONST operand
      value from some ``q ∈ arr(p)`` at slot ``s-1``;
    * per (bus segment, slot), at most ``mem_ports_per_row`` memory ops.

    Route variables span **all** PEs available to the mapper (not just
    route-capable ones) so the encoding stays a relaxation even where the
    real router is choosier — UNSAT must imply real infeasibility.

    Returns ``(solver, X)``.
    """
    s = Solver()
    allowed = list(mapper._allowed_ids)
    arr = mapper._arr_ids
    mem_ok = mapper._mem_ok
    alu_ok = mapper._alu_ok
    route_ok = mapper._route_ok
    ops = materialized_ops(dfg)

    dom = {}
    for v in ops:
        op = dfg.ops[v]
        if op.is_memory:
            mask = mem_ok
        elif op.opcode is Opcode.ROUTE:
            mask = route_ok
        else:
            mask = alu_ok
        dom[v] = [p for p in allowed if mask is None or mask[p]]

    values = sorted(
        {
            (e.src, e.distance)
            for e in dfg.edges.values()
            if dfg.ops[e.src].opcode is not Opcode.CONST
        }
    )

    X = {v: {} for v in ops}
    for v in ops:
        for p in dom[v]:
            for t in range(ii):
                X[v][(p, t)] = s.new_var()
    R = {w: {} for w in values}
    for w in values:
        for p in allowed:
            for t in range(ii):
                R[w][(p, t)] = s.new_var()

    for v in ops:
        add_exactly_one(s, list(X[v].values()))
    for p in allowed:
        for t in range(ii):
            lits = [X[v][(p, t)] for v in ops if (p, t) in X[v]]
            lits += [R[w][(p, t)] for w in values]
            add_at_most_one(s, lits)
    for w in values:
        u = w[0]
        for p in allowed:
            for t in range(ii):
                t1 = (t - 1) % ii
                cl = [-R[w][(p, t)]]
                for q in arr[p]:
                    rv = R[w].get((q, t1))
                    if rv:
                        cl.append(rv)
                    xv = X[u].get((q, t1))
                    if xv:
                        cl.append(xv)
                s.add_clause(cl)
    reads: dict[int, set] = {}
    for e in dfg.edges.values():
        if dfg.ops[e.src].opcode is Opcode.CONST:
            continue
        reads.setdefault(e.dst, set()).add((e.src, e.distance))
    for v, ws in reads.items():
        if v not in X:
            continue
        for w in sorted(ws):
            u = w[0]
            for (p, t), xv in X[v].items():
                t1 = (t - 1) % ii
                cl = [-xv]
                for q in arr[p]:
                    rv = R[w].get((q, t1))
                    if rv:
                        cl.append(rv)
                    xu = X[u].get((q, t1))
                    if xu:
                        cl.append(xu)
                s.add_clause(cl)
    if mapper.bus_key is not None:
        coords = mapper._gi.coords
        segs: dict = {}
        for p in allowed:
            segs.setdefault(mapper.bus_key(coords[p]), []).append(p)
        cap = mapper.cgra.mem_ports_per_row
        mem_ops = [v for v in ops if dfg.ops[v].is_memory]
        for seg in segs.values():
            for t in range(ii):
                lits = [
                    X[v][(p, t)] for v in mem_ops for p in seg if (p, t) in X[v]
                ]
                if len(lits) > cap:
                    add_at_most_k(s, lits, cap)
    return s, X


def probe_rung(
    mapper: EMSMapper, dfg: DFG, ii: int, *, conflict_budget: int
) -> bool | None:
    """Decide the relaxation at *ii*.  ``False`` = proven infeasible
    (sound to prune), ``True`` = relaxation satisfiable (proves nothing),
    ``None`` = budget exhausted (prune nothing)."""
    solver, _x = encode_modulo_relaxation(mapper, dfg, ii)
    return solver.solve(conflict_budget=conflict_budget)


class ExactMapper(EMSMapper):
    """The flat ladder with SAT-certificate rung pruning.

    Identical to :class:`EMSMapper` — same placement heuristics, same rng
    protocol, same lattice-attempt interface for the portfolio engine —
    except that :meth:`rung_infeasible` may prove a rung dead before the
    greedy attempts run.
    """

    #: skip the probe when (ops + values) x PEs x II exceeds this — pure-
    #: Python CDCL is only profitable on tiny instances.  Calibrated on
    #: the 4x4 suite: every refutation that actually fires does so on a
    #: short page-subchain context (est <= 130, <= 150 conflicts, <0.1s),
    #: while probes above ~200 — through fft's est >= 960 rungs — only
    #: ever exhaust their budget, at up to ~0.5s apiece
    probe_var_cap = 200
    #: give up (and prune nothing) after this many conflicts
    probe_conflict_budget = 600

    def rung_infeasible(self, dfg: DFG, ii: int) -> bool:
        n_ops = len(materialized_ops(dfg))
        n_values = len(
            {
                (e.src, e.distance)
                for e in dfg.edges.values()
                if dfg.ops[e.src].opcode is not Opcode.CONST
            }
        )
        est = (n_ops + n_values) * len(self._allowed_ids) * ii
        if est > self.probe_var_cap:
            return False
        counters().exact_probes += 1
        verdict = probe_rung(
            self, dfg, ii, conflict_budget=self.probe_conflict_budget
        )
        if verdict is False:
            counters().exact_wins += 1
            counters().rungs_pruned += 1
            return True
        return False
