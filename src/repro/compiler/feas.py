"""II feasibility: exact lower bounds and cheap infeasibility certificates.

Every backend climbs an (II, attempt) ladder whose first rung is the
minimum initiation interval MII = max(ResMII, RecMII).  This module owns
that computation — :func:`ii_lower_bound` is the single source of truth the
flat ladder (:meth:`repro.compiler.ems.EMSMapper.ladder_start_ii`), the
hierarchical backend and the exact SAT backend all delegate to — plus a
family of *certificates*: cheap, sound proofs that a DFG cannot map at a
given II (or at any II) on a given fabric, in the style of the degree and
neighborhood filters subgraph-monomorphism solvers run before search.

Soundness contract: a certificate may only fire when **no** mapping exists
under the mapper's own constraint model.  Certificates therefore reason
about the same resources the placer and router charge — one op or routed
value per (PE, cycle-slot), operand arrival from the in-neighborhood
``arr(p) = {p} ∪ in-neighbors(p)``, memory issue slots per cycle — and
never about heuristics.  The property tests in
``tests/test_feasibility.py`` replay every committed artifact against the
certificates: an II that actually mapped must never be pruned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.mapping import materialized_ops
from repro.compiler.stats import counters
from repro.dfg.analysis import rec_mii
from repro.dfg.graph import DFG, Opcode
from repro.util.errors import MappingError

__all__ = [
    "IIBound",
    "ii_lower_bound",
    "max_distinct_fanin",
    "fanin_certificate",
    "page_order_certificate",
    "prune_to",
]


@dataclass(frozen=True)
class IIBound:
    """The exact per-resource lower bounds on the initiation interval.

    ``mii`` is the ladder's first rung; the individual terms are kept
    separate so audits and benchmarks can report *which* resource binds.
    """

    res_mii: int  #: ceil(materialized ops / PEs available to the mapper)
    mem_slot_mii: int  #: ceil(memory ops / memory issue slots per cycle)
    mem_cap_mii: int  #: ceil(memory ops / mem-capable PEs) — capability floor
    rec_mii: int  #: longest-cycle bound over the DFG's recurrences

    @property
    def mii(self) -> int:
        return max(self.res_mii, self.mem_slot_mii, self.mem_cap_mii, self.rec_mii)

    def binding(self) -> str:
        """Name of (one of) the binding resources, for reports."""
        m = self.mii
        for name in ("res_mii", "mem_slot_mii", "mem_cap_mii", "rec_mii"):
            if getattr(self, name) == m:
                return name
        return "res_mii"


def ii_lower_bound(
    dfg: DFG,
    *,
    num_pes: int,
    mem_slots: int,
    mem_capable_pes: int,
    max_ii: int,
) -> IIBound:
    """Exact MII terms for *dfg* on a fabric exposing *num_pes* PEs,
    *mem_slots* memory issue slots per cycle and *mem_capable_pes*
    mem-capable PEs.

    Raises :class:`MappingError` — with the ladder's historical messages —
    for DFGs that can never map at any II up to *max_ii*: nothing to
    place, more ops than (PE, slot) pairs, or memory ops with no
    mem-capable PE.
    """
    n_mat = len(materialized_ops(dfg))
    if n_mat == 0:
        raise MappingError("cannot map a DFG with no materialized ops")
    if n_mat > num_pes * max_ii:
        raise MappingError(
            f"{n_mat} ops can never fit {num_pes} PEs "
            f"within max II {max_ii}"
        )
    n_mem = dfg.num_memory_ops
    if n_mem and mem_capable_pes == 0:
        raise MappingError(
            f"{dfg.name!r} has {n_mem} memory ops but no "
            f"mem-capable PE is available to the mapper"
        )
    return IIBound(
        res_mii=math.ceil(n_mat / num_pes),
        mem_slot_mii=math.ceil(n_mem / mem_slots) if n_mem else 1,
        # each mem-capable PE issues at most one memory op per II cycle
        # (equals the ResMII term when the fabric is homogeneous, so the
        # homogeneous ladder is unchanged)
        mem_cap_mii=math.ceil(n_mem / mem_capable_pes) if n_mem else 1,
        rec_mii=rec_mii(dfg),
    )


# -- certificates ---------------------------------------------------------------
#
# Degree/neighborhood filters: II-independent structural proofs that no
# placement can satisfy the routing model, checked in O(V + E).  They are
# the moral equivalent of a subgraph-monomorphism solver rejecting a
# pattern vertex whose degree exceeds every target vertex's degree.


def max_distinct_fanin(dfg: DFG) -> int:
    """Largest number of distinct routed input values any op consumes.

    CONST operands are baked into the consuming PE's instruction word and
    never routed, so they don't count; neither do duplicate uses of the
    same producer (one arriving value feeds both operand ports).
    """
    ops = dfg.ops
    worst = 0
    for v in ops.values():
        srcs = {
            e.src
            for e in dfg.in_edges(v)
            if ops[e.src].opcode is not Opcode.CONST
        }
        if len(srcs) > worst:
            worst = len(srcs)
    return worst


def fanin_certificate(dfg: DFG, arr_sizes) -> str | None:
    """Fan-in/neighborhood filter: proof *dfg* maps at **no** II.

    At the cycle an op fires on PE ``p``, each of its distinct routed
    input values occupies a distinct ``(q, t-1)`` slot with
    ``q ∈ arr(p)`` — one PE holds one value per cycle-slot, so an op
    needing more distinct inputs than the largest arrival neighborhood on
    the fabric can never have all operands adjacent, at any II.

    *arr_sizes* is an iterable of ``len(arr(p))`` over the PEs available
    to the mapper (``arr`` includes ``p`` itself: a value may wait on the
    firing PE).  Returns the refutation text, or ``None`` when the filter
    passes.  This fires on pathological fabrics (e.g. 1-wide chains) and
    adversarial random DFGs — never on the paper's kernel suite.
    """
    cap = max(arr_sizes, default=0)
    need = max_distinct_fanin(dfg)
    if need > cap:
        return (
            f"op fan-in {need} exceeds the largest arrival neighborhood "
            f"({cap} PEs incl. self): unmappable at any II"
        )
    return None


def page_order_certificate(
    edges,
    page_domains: dict[int, frozenset[int]],
    *,
    allow_wrap: bool,
) -> str | None:
    """Page-direction filter for *pinned* placements (hier/exact/tests).

    Under the ring constraint, inter-page traffic only flows to the next
    page in chain order (plus the wrap link when the layout allows it).
    If every candidate page of a producer sits strictly *after* every
    candidate page of its consumer on a wrap-free chain, no route exists
    at any II.  *edges* is an iterable of ``(src_op, dst_op)`` pairs;
    *page_domains* maps op ids to their candidate page sets (ops absent
    from the dict are unconstrained).  Returns refutation text or
    ``None``.  Purely advisory for the flat ladder — it never pins ops —
    so it cannot change flat artifacts.
    """
    if allow_wrap:
        return None
    for src, dst in edges:
        ds = page_domains.get(src)
        dd = page_domains.get(dst)
        if not ds or not dd:
            continue
        if min(ds) > max(dd):
            return (
                f"edge {src}->{dst} forced backwards across the wrap-free "
                f"chain (pages {sorted(ds)} -> {sorted(dd)}): unmappable "
                f"at any II"
            )
    return None


def prune_to(start_ii: int, certified_ii: int) -> int:
    """Raise a ladder's first rung to *certified_ii*, counting the rungs a
    certificate proved infeasible into ``MapperCounters.rungs_pruned``.

    Callers must hold a soundness proof for every skipped rung; the flat
    ladder's byte-stability is preserved because its bounds already equal
    the certified floor (this helper is for the exact backend's probes).
    """
    if certified_ii > start_ii:
        counters().rungs_pruned += certified_ii - start_ii
        return certified_ii
    return start_ii
