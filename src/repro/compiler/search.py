"""Speculative parallel II search: a deterministic (II, attempt) portfolio.

The serial mapper (:meth:`repro.compiler.ems.EMSMapper.map`) walks the
modulo-scheduling ladder — for each candidate II, a handful of placement
attempts — strictly in lexicographic (ii, attempt) order and returns the
first success.  On the hard kernels nearly all of that wall clock is spent
*proving failures* at low IIs, one attempt at a time.  Exact mappers attack
the same search-space explosion with SAT portfolios (Tirelli et al.); this
module is the heuristic analogue:

* every lattice point (ii, attempt) becomes an independent, picklable
  **probe** — a :class:`ProbeTask` that rebuilds the mapper in a worker
  process from a :class:`MapperSpec` and runs exactly the serial ladder's
  attempt (same op order, including replayed rng perturbations);
* probes fan out over a ``ProcessPoolExecutor``, speculating ahead on
  higher rungs while lower ones are still running;
* a landed success **cancels** every probe strictly above it in the
  canonical order; probes already running are left to finish and their
  verdicts discarded (counted as speculation waste);
* the reduction is by **canonical order, not completion order**: the
  winner is always the success with the smallest (ii, attempt), so the
  artifact is byte-identical to the serial ladder for any worker count
  and any completion timing.

Worker-budget sharing: all concurrent ladders (e.g. the per-kernel misses
of :func:`repro.pipeline.compile.compile_many`) draw probe slots from one
:class:`WorkerBudget`.  A ladder blocks for its *first* slot (so every
miss makes progress — misses fan out across jobs first) but only takes
speculative extra slots opportunistically (so once most jobs are done,
the idle slots drain into attempt probes of the stragglers).

``workers=1`` never enters this module's engine: callers take the exact
serial in-process path.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Sequence

from repro.arch.cgra import CGRA
from repro.compiler.ems import EMSMapper, MapperConfig
from repro.compiler.mapping import Mapping
from repro.compiler.stats import (
    counters,
    job_counters,
    merge_counter_delta,
    merge_search_delta,
    search_stats,
)
from repro.util.errors import MappingError

__all__ = [
    "MapperSpec",
    "ProbeTask",
    "ProbeResult",
    "WorkerBudget",
    "SearchContext",
    "CancelledSearch",
    "LadderReport",
    "portfolio_map",
    "run_probe",
]


class CancelledSearch(Exception):
    """A ladder was cooperatively cancelled mid-search.

    Deliberately *not* a :class:`~repro.util.errors.MappingError`: the
    pipeline converts exhausted ladders into unmappable artifacts, and a
    cancelled request must never masquerade as an unmappable kernel (that
    artifact would be stored and served to every future tenant).
    """


# --------------------------------------------------------------------------- specs


@dataclass(frozen=True)
class MapperSpec:
    """Picklable recipe for rebuilding an :class:`EMSMapper` in a worker.

    The mapper itself cannot cross a process boundary (its hop filter,
    bus key and rank function are closures over a live
    :class:`~repro.core.paging.PageLayout`), but everything those closures
    are derived from is a handful of integers: the CGRA parameters, the
    page tile shape, the wrap flag and the subchain prefix length.  A spec
    plus a DFG therefore reconstructs a mapper that behaves identically to
    the caller's, which is what makes probes picklable tasks.
    """

    rows: int
    cols: int
    rf_depth: int
    mem_ports_per_row: int
    diagonal: bool
    torus: bool
    config: MapperConfig
    # None -> unconstrained baseline mapper on the whole array; otherwise
    # the paged mapper on PageLayout(cgra, page_shape, allow_wrap),
    # restricted to the first num_pages pages when that is a strict prefix.
    page_shape: tuple[int, int] | None = None
    allow_wrap: bool = False
    num_pages: int | None = None
    # canonical restricted-classes encoding of the fabric's CapabilityMap
    # (None on the homogeneous default) — hashable, so it can sit in the
    # worker-side context cache key like every other spec field
    capability: tuple[tuple[str, tuple[int, ...]], ...] | None = None

    @staticmethod
    def _capability_of(cgra: CGRA):
        return cgra.capability.classes if cgra.capability is not None else None

    @classmethod
    def for_base(cls, cgra: CGRA, config: MapperConfig) -> "MapperSpec":
        return cls(
            rows=cgra.rows,
            cols=cgra.cols,
            rf_depth=cgra.rf_depth,
            mem_ports_per_row=cgra.mem_ports_per_row,
            diagonal=cgra.diagonal,
            torus=cgra.torus,
            config=config,
            capability=cls._capability_of(cgra),
        )

    @classmethod
    def for_paged(cls, cgra: CGRA, layout, config: MapperConfig) -> "MapperSpec":
        """Spec for the paged mapper of *layout* (full chain, full ring, or
        a prefix subchain — subchains are always prefixes of the ring
        order, so the page count alone reconstructs them)."""
        return cls(
            rows=cgra.rows,
            cols=cgra.cols,
            rf_depth=cgra.rf_depth,
            mem_ports_per_row=cgra.mem_ports_per_row,
            diagonal=cgra.diagonal,
            torus=cgra.torus,
            config=config,
            page_shape=tuple(layout.shape),
            allow_wrap=layout.allow_wrap,
            num_pages=layout.num_pages,
            capability=cls._capability_of(cgra),
        )

    def build_cgra(self) -> CGRA:
        from repro.arch.capability import CapabilityMap

        return CGRA(
            self.rows,
            self.cols,
            rf_depth=self.rf_depth,
            mem_ports_per_row=self.mem_ports_per_row,
            diagonal=self.diagonal,
            torus=self.torus,
            capability=(
                CapabilityMap(self.rows, self.cols, self.capability)
                if self.capability is not None
                else None
            ),
        )

    def build(self):
        """Reconstruct the mapper (mirrors ``paged._map_once``'s wiring).

        Returns an :class:`EMSMapper`, or a :class:`~repro.compiler.hier.
        HierMapper` when the spec is paged and the config selects the
        hierarchical backend — both speak the lattice-attempt protocol
        (``lattice_attempts_per_ii`` / ``run_lattice_attempt``) the probe
        runner drives.
        """
        cgra = self.build_cgra()
        cls = EMSMapper
        if self.config.backend == "exact":
            # exact backend: flat ladder + SAT rung pruning.  Probe workers
            # replay single lattice points, which ExactMapper inherits
            # unchanged, so speculative probes never consult the solver.
            from repro.compiler.exact import ExactMapper

            cls = ExactMapper
        if self.page_shape is None:
            return cls(cgra, config=self.config)
        from repro.compiler.constraints import paged_bus_key, ring_hop_filter
        from repro.core.paging import PageLayout

        layout = PageLayout(cgra, self.page_shape, allow_wrap=self.allow_wrap)
        if self.num_pages is not None and self.num_pages < layout.num_pages:
            layout = layout.subchain(self.num_pages)
        if self.config.backend == "hier":
            from repro.compiler.hier import HierMapper

            return HierMapper(cgra, layout, self.config)
        allowed = [pe for pe in cgra.coords() if pe in layout.page_of]
        mem_slots = (
            layout.num_pages * layout.shape[0] * cgra.mem_ports_per_row
        )
        return cls(
            cgra,
            allowed_pes=allowed,
            hop_allowed=ring_hop_filter(layout),
            mem_slots_per_cycle=mem_slots,
            bus_key=paged_bus_key(layout),
            pe_rank=lambda pe: layout.page_of[pe],
            config=self.config,
        )


@dataclass(frozen=True)
class ProbeTask:
    """One (ii, attempt) lattice point, as a picklable worker task."""

    spec: MapperSpec
    dfg: object  # repro.dfg.graph.DFG (picklable)
    dfg_fp: str  # precomputed fingerprint, the worker-side cache key
    start_ii: int
    ii: int
    attempt: int


@dataclass(frozen=True)
class ProbeResult:
    """A probe's verdict: the mapping on success, else None, plus the
    worker-side wall clock and search-counter delta for instrumentation."""

    ii: int
    attempt: int
    mapping: Mapping | None
    seconds: float
    counters: dict[str, int]


# Worker-side ladder context cache: rebuilding the mapper (grid index,
# routing context) and the base op orders once per ladder instead of once
# per probe.  Keyed by (spec, dfg fingerprint); bounded, since a worker
# serves many ladders over its lifetime.
_CTX_CACHE: dict[tuple, tuple[object, list[list[int]]]] = {}
_CTX_CACHE_MAX = 8


def _probe_context(task: ProbeTask) -> tuple[object, list[list[int]]]:
    key = (task.spec, task.dfg_fp)
    hit = _CTX_CACHE.get(key)
    if hit is None:
        mapper = task.spec.build()
        hit = (mapper, mapper.attempt_orders(task.dfg))
        if len(_CTX_CACHE) >= _CTX_CACHE_MAX:
            _CTX_CACHE.pop(next(iter(_CTX_CACHE)))  # repro: allow[RACE-SHARED-MUT] per-process probe cache: the probe pool is a ProcessPoolExecutor, each worker owns a private copy; the serial fallback runs single-threaded
        _CTX_CACHE[key] = hit  # repro: allow[RACE-SHARED-MUT] per-process probe cache: same ownership argument as the eviction above
    return hit


# repro: allow[RACE-FORK-STATE] pool is pre-warmed: every worker forks at SearchContext.create before any ladder thread exists, and the worker-side COUNTERS/SEARCH totals are per-process scratch that only returns as explicit counter deltas in ProbeResult
def run_probe(task: ProbeTask) -> ProbeResult:
    """Run one serial-identical placement attempt (the worker entry point).

    Top-level and argument-picklable so a ``ProcessPoolExecutor`` can run
    it; also callable in-process (the tests' synchronous executors do).
    """
    started = time.perf_counter()
    with job_counters() as (probe_counters, _search):
        mapper, orders = _probe_context(task)
        mapping = mapper.run_lattice_attempt(
            task.dfg, task.start_ii, task.ii, task.attempt, orders
        )
    return ProbeResult(
        ii=task.ii,
        attempt=task.attempt,
        mapping=mapping,
        seconds=time.perf_counter() - started,
        counters=probe_counters.as_dict(),
    )


# --------------------------------------------------------------------- the budget


class WorkerBudget:
    """A shared pool of probe slots, one per worker process.

    Kernel-level and attempt-level parallelism draw from the *same* budget
    so they can never oversubscribe the pool: each ladder blocks until it
    holds one slot (every compile miss makes progress), and takes
    additional speculative slots only when they are idle.
    """

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ValueError(f"budget needs >= 1 slot, got {slots}")
        self.slots = slots
        self._sem = threading.Semaphore(slots)

    def acquire(self, *, blocking: bool = True) -> bool:
        return self._sem.acquire(blocking=blocking)

    def release(self) -> None:
        self._sem.release()


# --------------------------------------------------------------------- the engine


@dataclass
class SearchContext:
    """A live speculative-search backend: executor + shared budget.

    One context is shared by every ladder of a compile batch
    (:func:`repro.pipeline.compile.compile_many` creates one per call);
    single mappings create an ephemeral one via :meth:`create`.  The
    ``executor`` only needs ``submit``; tests inject thread pools or
    deliberately reordered executors to exercise the reduction.
    """

    workers: int
    executor: object  # duck-typed: needs .submit(fn, arg) -> Future
    budget: WorkerBudget
    owns_executor: bool = False
    #: Cooperative-cancellation probe: checked by :func:`portfolio_map`
    #: between probe completions; returning True raises
    #: :class:`CancelledSearch` out of the ladder.  ``None`` (the default)
    #: means the ladder is not cancellable.
    cancel_check: object | None = None

    def for_request(self, cancel_check) -> "SearchContext":
        """A per-request view of this context: same executor and budget
        (one warm pool serves every tenant), but with *cancel_check* wired
        in so one request's ladders can be cancelled without touching the
        shared pool.  The view never owns the executor — closing it is a
        no-op."""
        return SearchContext(
            workers=self.workers,
            executor=self.executor,
            budget=self.budget,
            owns_executor=False,
            cancel_check=cancel_check,
        )

    @classmethod
    def create(cls, workers: int) -> "SearchContext":
        """Build a process-pool context with *workers* probe slots.

        The pool is pre-warmed (all workers forked immediately) so that
        later submissions from multiple ladder threads never fork a
        multi-threaded parent.
        """
        if workers < 2:
            raise ValueError("a speculative context needs workers >= 2")
        pool = ProcessPoolExecutor(max_workers=workers)
        wait([pool.submit(_warm) for _ in range(workers)])
        return cls(
            workers=workers,
            executor=pool,
            budget=WorkerBudget(workers),
            owns_executor=True,
        )

    def close(self) -> None:
        if self.owns_executor and hasattr(self.executor, "shutdown"):
            self.executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SearchContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _warm(x: int = 0) -> int:  # pragma: no cover - trivial
    return x


@dataclass
class LadderReport:
    """Per-ladder outcome record: the (II, attempt) timeline of one search.

    ``timeline`` holds one ``[ii, attempt, outcome, seconds]`` row per
    probe in canonical order; outcomes are ``success``/``fail`` (completed
    verdicts), ``cancelled`` (never started), ``wasted`` (completed above
    the winner) and ``abandoned`` (still running when the ladder
    concluded).  ``per_ii`` compresses that into one row per II rung.
    """

    start_ii: int
    attempts_per_ii: int
    winner: tuple[int, int] | None = None
    probes_launched: int = 0
    probes_cancelled: int = 0
    probes_wasted: int = 0
    useful_seconds: float = 0.0
    wasted_seconds: float = 0.0
    timeline: list[list] = field(default_factory=list)

    def per_ii(self) -> list[list]:
        """``[ii, launched, failed, cancelled, won_attempt|-1]`` per rung."""
        rows: dict[int, list] = {}
        for ii, attempt, outcome, _seconds in self.timeline:
            row = rows.setdefault(ii, [ii, 0, 0, 0, -1])
            row[1] += 1
            if outcome == "fail":
                row[2] += 1
            elif outcome == "cancelled":
                row[3] += 1
            elif outcome == "success" and (
                self.winner is not None and (ii, attempt) == self.winner
            ):
                row[4] = attempt
        return [rows[ii] for ii in sorted(rows)]

    def as_record(self) -> dict:
        return {
            "start_ii": self.start_ii,
            "winner": list(self.winner) if self.winner else None,
            "probes_launched": self.probes_launched,
            "probes_cancelled": self.probes_cancelled,
            "probes_wasted": self.probes_wasted,
            "useful_seconds": round(self.useful_seconds, 4),
            "wasted_seconds": round(self.wasted_seconds, 4),
            "per_ii": self.per_ii(),
        }


def portfolio_map(
    spec: MapperSpec,
    dfg,
    *,
    cgra: CGRA | None = None,
    min_ii: int | None = None,
    resume_ii: int | None = None,
    ctx: SearchContext,
    log: list[LadderReport] | None = None,
) -> Mapping:
    """Race the (II, attempt) lattice and reduce canonically.

    Returns exactly what the serial ladder would: the mapping of the
    lowest-(ii, attempt) success, or :class:`MappingError` when every
    rung up to ``config.max_ii`` fails.  ``cgra`` rebinds the winning
    mapping (produced against a worker-side CGRA copy) to the caller's
    instance.  ``log`` collects this ladder's :class:`LadderReport`.

    *resume_ii* carries the same ladder-memoization contract as
    :meth:`~repro.compiler.ems.EMSMapper.map`: rungs below it were
    already probed and failed in an identical context, so their lattice
    ranks are marked resolved up front and never submitted.  Probe op
    orders stay anchored at *start_ii* (indexed rng replay), so the
    reduction is byte-identical to a full climb.
    """
    mapper = spec.build()
    start_ii = mapper.ladder_start_ii(dfg, min_ii=min_ii)
    cfg = spec.config
    per_ii = mapper.lattice_attempts_per_ii()
    n_ranks = (cfg.max_ii - start_ii + 1) * per_ii
    skip_ranks = 0
    if resume_ii is not None and resume_ii > start_ii:
        skip_ranks = min(n_ranks, (resume_ii - start_ii) * per_ii)
    dfg_fp = dfg.fingerprint()
    report = LadderReport(start_ii=start_ii, attempts_per_ii=per_ii)
    # this thread's active stats scope: the enclosing job's context when the
    # ladder runs under compile_many, else the process-wide totals
    stats = search_stats()
    stats.ladders += 1

    def task_for(rank: int) -> ProbeTask:
        return ProbeTask(
            spec=spec,
            dfg=dfg,
            dfg_fp=dfg_fp,
            start_ii=start_ii,
            ii=start_ii + rank // per_ii,
            attempt=rank % per_ii,
        )

    def point(rank: int) -> tuple[int, int]:
        return (start_ii + rank // per_ii, rank % per_ii)

    inflight: dict[Future, int] = {}
    outcome: dict[int, str] = {}  # rank -> success|fail|cancelled|skipped
    seconds: dict[int, float] = {}
    mappings: dict[int, Mapping] = {}
    best: int | None = None
    for rank in range(skip_ranks):
        outcome[rank] = "skipped"
        seconds[rank] = 0.0
    if skip_ranks:
        counters().rungs_skipped += skip_ranks // per_ii

    def bound() -> int:
        # never submit at or above a landed success: canonical pruning
        return n_ranks if best is None else best

    def record(rank: int, verdict: str, secs: float = 0.0) -> None:
        outcome[rank] = verdict
        seconds[rank] = secs
        ii, attempt = point(rank)
        report.timeline.append([ii, attempt, verdict, round(secs, 4)])

    next_rank = skip_ranks
    cancel_check = ctx.cancel_check
    try:
        while True:
            if cancel_check is not None and cancel_check():
                # Cooperative cancellation: stop submitting and bail out;
                # the finally block cancels queued probes and abandons the
                # running ones (their wall clock bills to waste on arrival).
                raise CancelledSearch(
                    f"ladder cancelled at rank {next_rank}/{n_ranks}"
                )
            if best is not None and all(r in outcome for r in range(best)):
                break  # every lower rung resolved: canonical winner stands
            if next_rank >= bound() and not inflight:
                err = MappingError(mapper.ladder_fail_message(dfg))
                err.ladder_probed = (start_ii, cfg.max_ii)
                raise err
            while next_rank < bound() and len(inflight) < ctx.workers:
                # first slot blocks (every ladder keeps moving); extras are
                # speculative and only taken when the budget has idle slots
                if not ctx.budget.acquire(blocking=not inflight):
                    break
                fut = ctx.executor.submit(run_probe, task_for(next_rank))
                fut.add_done_callback(lambda _f: ctx.budget.release())
                inflight[fut] = next_rank
                next_rank += 1
                report.probes_launched += 1
                stats.probes_launched += 1
            done, _pending = wait(
                list(inflight),
                return_when=FIRST_COMPLETED,
                # cancellable ladders poll so a cancel lands within ~50 ms
                # even while a long probe is still running
                timeout=None if cancel_check is None else 0.05,
            )
            # process simultaneous completions in canonical rank order so
            # the report's timeline/waste labels are deterministic too
            for fut in sorted(done, key=inflight.__getitem__):
                rank = inflight.pop(fut)
                if fut.cancelled():
                    record(rank, "cancelled")
                    report.probes_cancelled += 1
                    stats.probes_cancelled += 1
                    continue
                res: ProbeResult = fut.result()
                counters().add(res.counters)
                stats.probes_completed += 1
                if best is not None and rank > best:
                    # completed above an already-landed success: waste
                    record(rank, "wasted", res.seconds)
                    report.probes_wasted += 1
                    report.wasted_seconds += res.seconds
                    stats.probes_wasted += 1
                    stats.wasted_seconds += res.seconds
                    continue
                record(
                    rank,
                    "success" if res.mapping is not None else "fail",
                    res.seconds,
                )
                report.useful_seconds += res.seconds
                stats.useful_seconds += res.seconds
                if res.mapping is not None:
                    mappings[rank] = res.mapping
                    if best is None or rank < best:
                        best = rank
                    # cancel everything strictly above the success
                    for f2, r2 in list(inflight.items()):
                        if r2 > best and f2.cancel():
                            inflight.pop(f2)
                            record(r2, "cancelled")
                            report.probes_cancelled += 1
                            stats.probes_cancelled += 1
    finally:
        # Probes still running above the winner (or after an error) cannot
        # be interrupted; cancel what never started and let the rest drain
        # into the pool — their wall clock is charged to waste on arrival.
        for fut, rank in list(inflight.items()):
            if fut.cancel():
                record(rank, "cancelled")
                report.probes_cancelled += 1
                stats.probes_cancelled += 1
            else:
                record(rank, "abandoned")
                report.probes_wasted += 1
                stats.probes_wasted += 1
                fut.add_done_callback(_charge_waste)
        report.winner = point(best) if best is not None else None
        if log is not None:
            log.append(report)

    winner = mappings[best]
    # The mapping was built against the worker's CGRA/DFG copies; rebind to
    # the caller's objects so identity-sensitive callers see their own.
    winner.dfg = dfg
    if cgra is not None:
        winner.cgra = cgra
    return winner


def _charge_waste(fut: Future) -> None:
    """Done-callback for abandoned probes: bill their wall clock to the
    process-wide speculation-waste account once they finally finish."""
    if fut.cancelled():
        return
    exc = fut.exception()
    if exc is not None:
        return
    res = fut.result()
    merge_search_delta({"wasted_seconds": res.seconds})
    merge_counter_delta(res.counters)


def lattice(
    start_ii: int, max_ii: int, attempts_per_ii: int
) -> Sequence[tuple[int, int]]:
    """The canonical (ii, attempt) enumeration the serial ladder walks."""
    return [
        (ii, attempt)
        for ii in range(start_ii, max_ii + 1)
        for attempt in range(attempts_per_ii)
    ]
