"""The paper's compile-time paging constraints (§VI-B), as mapper plug-ins.

1. **Data-flow (ring-topology) constraint** — inter-page dependencies must
   form a subset of a ring: a value on page *a* may be read one cycle later
   only within page *a* or on the ring-successor page.
   :func:`ring_hop_filter` turns a :class:`~repro.core.paging.PageLayout`
   into the hop predicate the router and validator consume; hops into
   uncovered PEs are rejected too.

2. **Register-usage constraint** — "the compiler must use memory [and the
   interconnect] to store temporary variables ... the local register file
   in the PEs will be used for the transformation."  In this codebase the
   constraint is structural: compiled mappings express *every* producer-to-
   consumer transfer as explicit per-cycle slots (route steps), i.e. all
   operand reads have register-file depth 1, so the entire rotating file
   remains free for the PageMaster transformation to stretch lifetimes.
   :func:`register_usage_report` quantifies how much transfer state a
   mapping keeps in flight, and :func:`assert_register_constraint` verifies
   the depth-1 property on a built configuration.

3. **Fold-safe bus constraint** — memory ops budget their page's banked bus
   segment (see :mod:`repro.compiler.mrt`); :func:`paged_bus_key` builds
   the segment key.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.arch.config import ConfigTable, ReadNeighbor
from repro.arch.interconnect import Coord
from repro.core.paging import PageLayout
from repro.util.errors import ConstraintViolation

__all__ = [
    "ring_hop_filter",
    "paged_bus_key",
    "register_usage_report",
    "assert_register_constraint",
]


def ring_hop_filter(layout: PageLayout) -> Callable[[Coord, Coord], bool]:
    """Hop predicate enforcing the §VI-B ring-topology constraint."""

    page_of = layout.page_of

    def allowed(src: Coord, dst: Coord) -> bool:
        a = page_of.get(src)
        b = page_of.get(dst)
        if a is None or b is None:  # uncovered PEs are off-limits
            return False
        return layout.ring_hop_allowed(a, b)

    return allowed


def paged_bus_key(layout: PageLayout) -> Callable[[Coord], Hashable]:
    """Bus segment key ``(page, local row)`` for the banked-memory model."""

    def key(pe: Coord) -> Hashable:
        page = layout.page_of.get(pe)
        if page is None:
            raise ConstraintViolation(f"memory op on uncovered PE {pe}")
        return (page, layout.local_of[pe].row)

    return key


def register_usage_report(mapping) -> dict[str, int]:
    """How much value-transfer state a mapping keeps in flight.

    ``self_holds`` counts route steps that stay on the same PE (a value
    parked in place for a cycle — occupying a slot, not a deep register);
    ``move_hops`` counts real mesh hops.  Under the register-usage
    constraint both are explicit schedule slots, so rotating registers stay
    free.
    """
    from repro.compiler.mapping import materialized_edges

    self_holds = 0
    move_hops = 0
    for e in materialized_edges(mapping.dfg):
        src = mapping.placement(e.src)
        holder = src.pe
        for step in mapping.route(e.id).steps:
            if step.pe == holder:
                self_holds += 1
            else:
                move_hops += 1
            holder = step.pe
    return {"self_holds": self_holds, "move_hops": move_hops}


def assert_register_constraint(config: ConfigTable) -> None:
    """Verify the register-usage constraint on a built configuration:
    every neighbour read has depth exactly 1 (no rotating-file reliance)."""
    for (pe, mtime), slot in config.slots.items():
        for src in slot.operands:
            if isinstance(src, ReadNeighbor) and src.delta != 1:
                raise ConstraintViolation(
                    f"slot {slot.op_id} at {pe} mod {mtime} reads at register "
                    f"depth {src.delta}; compiled mappings must be depth-1"
                )
