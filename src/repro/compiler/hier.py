"""Hierarchical two-level place-and-route (the "hier" backend).

The flat paged mapper treats the whole page chain as one big restricted
fabric: every op considers every covered PE, and the ring constraint is
only discovered through failed routes.  That scales poorly past ~16 PEs —
the candidate lists grow with the array while the per-op budgets stay
fixed, so low-II rungs burn their evaluation budget probing hopeless
placements.  Following the space/time-decoupling idea of recent CGRA
mappers (Tirelli et al., PAPERS.md), this backend decides *where* at page
granularity before deciding *when* at PE granularity:

1. **Cluster.**  Contract the DFG's SCCs (a recurrence can never span
   pages on a chain — data cannot flow backwards) and order the blocks by
   a deterministic lexicographic topological sort.  A contiguous partition
   of that block sequence into ``k`` groups is then ring-feasible by
   construction: every cross-group edge points forward along the chain.
   The partition is chosen by dynamic programming to minimise the total
   forward page distance of cut edges (the min-cut objective — each page
   boundary an edge spans costs one route slot per firing) subject to
   per-page slot and memory capacities (capability-aware: a page's memory
   budget is ``min(bus slots, mem-capable PEs x II)``).  ``k`` starts at
   the capacity lower bound and grows only while the DP is infeasible, so
   the clustered attempt also *minimises the page need* up front.
2. **Place.**  Run the existing intra-page mapper once, with every op's
   candidate pool pinned to its page's PEs (``domains``) — candidate
   enumeration is O(page size), not O(array), and routing distances are
   short because endpoints are at most one page gap apart.

The backend plugs into the (II, attempt) lattice as *attempt 0* of every
II rung; attempts 1..N replay the flat ladder's probes unchanged.  The
lattice therefore stays a deterministic total order that the PR-3
portfolio engine can race speculatively and reduce canonically — serial
and parallel runs of the hier backend are byte-identical, and the flat
fallback guarantees the hier backend never maps less than the flat chain
pass at the same II.

The hier backend is chain-only (it never uses the ring-wrap link): the
contiguous forward partition cannot produce a wrap dependency, and flat
fallback attempts run on the chain topology.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.arch.capability import OpClass
from repro.arch.cgra import CGRA
from repro.compiler.check import validate_mapping
from repro.compiler.constraints import paged_bus_key, ring_hop_filter
from repro.compiler.ems import EMSMapper, MapperConfig
from repro.compiler.mapping import Mapping, materialized_ops
from repro.compiler.paged import PagedMapping, _map_once, paged_mapper
from repro.compiler.stats import counters, search_stats
from repro.core.page_schedule import extract_page_schedule
from repro.core.paging import PageLayout
from repro.dfg.graph import DFG
from repro.util.errors import MappingError

__all__ = ["HierMapper", "map_dfg_hier", "cluster_dfg"]

_INF = float("inf")


def _blocks(dfg: DFG):
    """The DFG's materialized ops as SCC blocks in deterministic
    topological order, plus the cross-block edge list (block indices).

    Returns ``(block_ops, block_edges)`` where ``block_ops`` is a list of
    op-id tuples and every ``(bi, bj)`` in ``block_edges`` has
    ``bi < bj``.  Determinism: blocks are ordered by a lexicographic
    topological sort keyed on the smallest op id in the block, so equal
    DFGs produce identical partitions on every run and every worker.
    """
    import networkx as nx

    from repro.arch.isa import Opcode

    mat = set(materialized_ops(dfg))
    g = nx.DiGraph()
    g.add_nodes_from(mat)
    for e in dfg.edges.values():
        if (
            e.src in mat
            and e.dst in mat
            and e.src != e.dst
            and dfg.ops[e.src].opcode is not Opcode.CONST
        ):
            g.add_edge(e.src, e.dst)
    cond = nx.condensation(g)
    order = list(
        nx.lexicographical_topological_sort(
            cond, key=lambda n: min(cond.nodes[n]["members"])
        )
    )
    index = {scc: i for i, scc in enumerate(order)}
    block_ops = [tuple(sorted(cond.nodes[scc]["members"])) for scc in order]
    block_edges = sorted(
        {
            (index[u], index[v])
            for u, v in cond.edges()
        }
    )
    return block_ops, block_edges


def _partition(
    sizes: list[tuple[int, int]],
    block_edges: list[tuple[int, int]],
    caps: list[tuple[int, int]],
) -> list[int] | None:
    """Min-cut contiguous partition of the block sequence into
    ``len(caps)`` non-empty groups.

    ``sizes[i]`` is ``(ops, mem_ops)`` of block *i*; ``caps[j]`` is the
    ``(slot, mem)`` capacity of group (page) *j*.  The cost of a partition
    is the sum over group boundaries of the number of edges crossing that
    boundary — exactly the total forward page distance of all cut edges,
    since an edge spanning *d* boundaries is counted *d* times.  Returns
    the per-block group index, or None when no feasible partition exists.
    """
    m, k = len(sizes), len(caps)
    if k < 1 or k > m:
        return None
    # edges crossing each boundary b (between blocks b-1 and b), via a
    # difference array: edge (bi, bj) crosses boundaries bi+1 .. bj
    diff = [0] * (m + 1)
    for bi, bj in block_edges:
        diff[bi + 1] += 1
        diff[bj + 1] -= 1
    cross = [0] * (m + 1)
    acc = 0
    for b in range(1, m):
        acc += diff[b]
        cross[b] = acc
    p_ops = [0] * (m + 1)
    p_mem = [0] * (m + 1)
    for i, (n_ops, n_mem) in enumerate(sizes):
        p_ops[i + 1] = p_ops[i] + n_ops
        p_mem[i + 1] = p_mem[i] + n_mem
    # f[j][i]: min cut cost of packing the first i blocks into the first j
    # groups, with group j-1 ending at block i-1
    f = [[_INF] * (m + 1) for _ in range(k + 1)]
    back = [[-1] * (m + 1) for _ in range(k + 1)]
    f[0][0] = 0.0
    for j in range(1, k + 1):
        op_cap, mem_cap = caps[j - 1]
        # group j-1 must leave at least k-j blocks for the remaining groups
        for i in range(j, m - (k - j) + 1):
            best, arg = _INF, -1
            for i0 in range(j - 1, i):
                if p_ops[i] - p_ops[i0] > op_cap:
                    continue  # segment grows as i0 shrinks; keep scanning up
                if p_mem[i] - p_mem[i0] > mem_cap:
                    continue
                prev = f[j - 1][i0]
                if prev is _INF:
                    continue
                c = prev + (cross[i0] if i0 else 0)
                if c < best:
                    best, arg = c, i0
            f[j][i], back[j][i] = best, arg
    if f[k][m] is _INF or back[k][m] < 0:
        return None
    groups = [0] * m
    i = m
    for j in range(k, 0, -1):
        i0 = back[j][i]
        for b in range(i0, i):
            groups[b] = j - 1
        i = i0
    return groups


def _page_caps(layout: PageLayout, k: int, ii: int) -> list[tuple[int, int]]:
    """Per-page ``(slot, mem)`` capacities of the first *k* chain pages at
    initiation interval *ii* (capability-aware memory budgets)."""
    caps: list[tuple[int, int]] = []
    bus_rows = layout.shape[0] * layout.cgra.mem_ports_per_row
    for n in range(k):
        mem_pes = layout.class_capable_count(n, OpClass.MEM)
        caps.append(
            (layout.page_size * ii, min(bus_rows, mem_pes) * ii)
        )
    return caps


def cluster_dfg(
    dfg: DFG,
    layout: PageLayout,
    ii: int,
    *,
    k_min: int | None = None,
    blocks=None,
) -> dict[int, int] | None:
    """Assign every materialized op to a page of *layout*'s chain prefix.

    Tries the smallest feasible page count first (from the capacity lower
    bound, or *k_min*) and grows it while the capacity-constrained min-cut
    DP is infeasible.  Returns ``{op_id: page}`` or None when no prefix of
    the chain can hold the clustering (e.g. a recurrence SCC bigger than a
    page).  Pure function of its arguments — no randomness — so every
    worker computes the identical clustering.  *blocks* may carry a
    precomputed ``_blocks(dfg)`` result — the decomposition is
    II-independent, so ladder callers compute it once per DFG.
    """
    block_ops, block_edges = blocks if blocks is not None else _blocks(dfg)
    if not block_ops:
        return None
    sizes = [
        (
            len(ops),
            sum(1 for o in ops if dfg.ops[o].is_memory),
        )
        for ops in block_ops
    ]
    n_mat = sum(s[0] for s in sizes)
    n_mem = sum(s[1] for s in sizes)
    full_caps = _page_caps(layout, layout.num_pages, ii)
    if k_min is None:
        per_page_mem = max((c[1] for c in full_caps), default=1)
        k_min = max(
            1,
            math.ceil(n_mat / (layout.page_size * ii)),
            math.ceil(n_mem / max(1, per_page_mem)),
        )
    for k in range(max(1, k_min), layout.num_pages + 1):
        groups = _partition(sizes, block_edges, full_caps[:k])
        if groups is None:
            continue
        assignment: dict[int, int] = {}
        for b, ops in enumerate(block_ops):
            for op in ops:
                assignment[op] = groups[b]
        return assignment
    return None


class HierMapper:
    """Two-level paged mapper speaking the lattice-attempt protocol.

    Rung layout: attempt 0 is the clustered (hierarchical) probe; attempts
    ``1 .. config.attempts_per_ii`` are the flat chain ladder's attempts
    ``0 .. attempts_per_ii - 1``, bit for bit (same op orders, same
    replayed rng perturbations).  Both the serial :meth:`map` ladder and
    the portfolio engine enumerate exactly this lattice, which keeps the
    hier backend's artifacts byte-identical across worker counts.
    """

    def __init__(
        self,
        cgra: CGRA,
        layout: PageLayout,
        config: MapperConfig | None = None,
    ) -> None:
        self.cgra = cgra
        self.layout = layout
        self.config = config or MapperConfig()
        #: the flat chain mapper used for fallback attempts (and for the
        #: ladder bounds, so hier and flat ladders start at the same rung)
        self.flat = paged_mapper(cgra, layout, self.config)
        # per-prefix sub-mappers for clustered attempts, built lazily
        self._subs: dict[tuple[int, bool], tuple[EMSMapper, PageLayout]] = {}
        # reduced-budget single-page mapper for the diversification probes
        # (fail fast; an easy win still lands well inside these budgets)
        self._cheap: EMSMapper | None = None
        # SCC/topo block decomposition is II-independent: one entry per DFG,
        # shared by every rung of a ladder (and every probe in a worker)
        self._block_cache: dict[str, tuple] = {}

    # -- ladder protocol (mirrors EMSMapper's) --------------------------------------

    def ladder_start_ii(self, dfg: DFG, *, min_ii: int | None = None) -> int:
        return self.flat.ladder_start_ii(dfg, min_ii=min_ii)

    def ladder_fail_message(self, dfg: DFG) -> str:
        return self.flat.ladder_fail_message(dfg)

    def attempt_orders(self, dfg: DFG) -> list[list[int]]:
        return self.flat.attempt_orders(dfg)

    def lattice_attempts_per_ii(self) -> int:
        return self.config.attempts_per_ii + 1

    def run_lattice_attempt(
        self, dfg: DFG, start_ii: int, ii: int, attempt: int, orders
    ) -> Mapping | None:
        if attempt == 0:
            counters().hier_attempts += 1
            mapping = self._hier_attempt(dfg, ii, orders)
            if mapping is not None:
                counters().hier_wins += 1
            return mapping
        counters().hier_flat_attempts += 1
        order = self.flat.attempt_order(orders, start_ii, ii, attempt - 1)
        mapping = self.flat._try_map(dfg, ii, order)
        if mapping is not None:
            counters().hier_flat_wins += 1
        return mapping

    def map(self, dfg: DFG, *, min_ii: int | None = None) -> Mapping:
        """Serial ladder over the widened lattice (first success wins)."""
        start_ii = self.ladder_start_ii(dfg, min_ii=min_ii)
        search_stats().serial_ladders += 1
        orders = self.attempt_orders(dfg)
        for ii in range(start_ii, self.config.max_ii + 1):
            for attempt in range(self.lattice_attempts_per_ii()):
                result = self.run_lattice_attempt(
                    dfg, start_ii, ii, attempt, orders
                )
                if result is not None:
                    return result
        raise MappingError(self.ladder_fail_message(dfg))

    # -- the clustered attempt -------------------------------------------------------

    def _sub(
        self, k: int, *, cheap: bool = False
    ) -> tuple[EMSMapper, PageLayout]:
        key = (k, cheap)
        hit = self._subs.get(key)
        if hit is None:
            sub = (
                self.layout.subchain(k)
                if k < self.layout.num_pages
                else self.layout
            )
            config = (
                replace(
                    self.config, eval_budget=50, route_budget=800, candidate_cap=6
                )
                if cheap
                else self.config
            )
            hit = (paged_mapper(self.cgra, sub, config), sub)
            self._subs[key] = hit
        return hit

    def _hier_attempt(self, dfg: DFG, ii: int, orders) -> Mapping | None:
        # Single-row/column page tiles (ps=2 is 2x1) leave clustered
        # domains no lateral routing room: the probe essentially never
        # succeeds but still burns its full eval budget at every rung.
        # Fall straight through to the flat replay attempts there.
        if min(self.layout.shape) < 2:
            return None
        fp = dfg.fingerprint()
        blocks = self._block_cache.get(fp)
        if blocks is None:
            blocks = self._block_cache[fp] = _blocks(dfg)
        assignment = cluster_dfg(dfg, self.layout, ii, blocks=blocks)
        if assignment is None:
            return None
        k = 1 + max(assignment.values())
        mapper, sub = self._sub(k, cheap=k > 1)
        id_of = self.cgra.grid_index.id_of
        page_ids = {
            n: tuple(sorted(id_of[pe] for pe in sub.coords_of_page(n)))
            for n in range(k)
        }
        domains = {op: page_ids[page] for op, page in assignment.items()}
        # primary probe, first base order (reverse dataflow: consumers
        # first, so each op's edges route the moment it lands).  Multi-page
        # probes run at reduced budget: hard page domains either place
        # quickly or not at all, and a cheap failure keeps the rung's cost
        # near the flat ladder's.
        mapping = mapper._try_map(dfg, ii, list(orders[0]), domains=domains)
        if mapping is not None or k > 1:
            return mapping
        # Single-page kernels: the page domain is vacuous (every op may use
        # the whole 1-page prefix), so the clustered probe is really a
        # small-prefix search — worth diversifying over the remaining base
        # orders at reduced budget.  A win here short-circuits the rung's
        # full-array flat attempts AND the page-minimisation epilogue; a
        # loss costs little because the budgets fail fast on 1 page.
        if self._cheap is None:
            self._cheap = paged_mapper(
                self.cgra,
                sub,
                replace(
                    self.config,
                    eval_budget=50,
                    route_budget=800,
                    candidate_cap=6,
                ),
            )
        for oi in range(1, len(orders)):
            mapping = self._cheap._try_map(
                dfg, ii, list(orders[oi]), domains=domains
            )
            if mapping is not None:
                return mapping
        return None


def _spanned_prefix(mapping: Mapping, layout: PageLayout) -> int:
    """Number of chain-prefix pages the mapping actually touches
    (placements and route steps)."""
    page_of = layout.page_of
    top = 0
    for p in mapping.placements.values():
        top = max(top, page_of[p.pe])
    for r in mapping.routes.values():
        for s in r.steps:
            top = max(top, page_of[s.pe])
    return top + 1


def map_dfg_hier(
    dfg: DFG,
    cgra: CGRA,
    layout: PageLayout,
    *,
    config: MapperConfig | None = None,
    min_ii: int | None = None,
    validate: bool = True,
    minimize_pages: bool = True,
    search=None,
    search_log=None,
) -> PagedMapping:
    """Map *dfg* with the hierarchical backend (see the module docstring).

    Entry point the paged compiler dispatches to for
    ``config.backend == "hier"``; the signature mirrors
    :func:`~repro.compiler.paged.map_dfg_paged` minus ``wrap_fallback``
    (the hier backend is chain-only).  With a live *search* context the
    widened (II, attempt) lattice is raced speculatively with canonical
    reduction — byte-identical to the serial path.
    """
    if layout.cgra is not cgra:
        raise MappingError("layout was built for a different CGRA instance")
    cfg = config or MapperConfig()
    if search is not None:
        from repro.compiler.search import MapperSpec, portfolio_map

        spec = MapperSpec.for_paged(cgra, layout, cfg)
        mapping = portfolio_map(
            spec, dfg, cgra=cgra, min_ii=min_ii, ctx=search, log=search_log
        )
    else:
        mapping = HierMapper(cgra, layout, cfg).map(dfg, min_ii=min_ii)
    k = _spanned_prefix(mapping, layout)
    sub = layout.subchain(k) if k < layout.num_pages else layout
    if validate:
        validate_mapping(
            mapping,
            allowed_pes=[pe for pe in cgra.coords() if pe in sub.page_of],
            hop_allowed=ring_hop_filter(sub),
            bus_key=paged_bus_key(sub),
        )
    best = PagedMapping(mapping, sub, extract_page_schedule(mapping, sub), layout)
    if not minimize_pages:
        return best
    # Same page-need minimisation as the flat backend: re-map onto smaller
    # prefixes while the II is preserved.  When the clustered attempt won,
    # k already sits at the capacity lower bound and this loop is empty.
    # (A capability-starved prefix just fails its ladder and is skipped.)
    n_mat = len(materialized_ops(dfg))
    slots_per_page = layout.page_size * best.ii
    mem_per_page = layout.shape[0] * cgra.mem_ports_per_row * best.ii
    k_min = max(
        1,
        math.ceil(n_mat / slots_per_page),
        math.ceil(dfg.num_memory_ops / max(1, mem_per_page)),
    )
    tight = replace(cfg, max_ii=best.ii, backend="flat")
    for k2 in range(k_min, best.layout.num_pages):
        try:
            candidate = _map_once(
                dfg,
                cgra,
                layout.subchain(k2),
                tight,
                min_ii,
                validate,
                full_layout=layout,
                search=search,
                search_log=search_log,
            )
        except MappingError:
            continue
        if candidate.ii <= best.ii:
            return candidate
    return best
