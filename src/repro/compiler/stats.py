"""Compile-perf instrumentation for the place-and-route hot path.

The mapper's cost model is search volume: how many time-extended states the
router expands, how many (time, PE) candidates the placer probes, how often
the memoized routing tables answer without a search.  These counters are
what ``python -m repro.bench compile-speed`` prints next to wall-clock
timings, so a perf regression shows up as a *search-volume* regression even
on noisy CI machines.

Counting is process-local and cumulative; callers snapshot before/after a
compile and diff (:meth:`MapperCounters.delta`).  The increments live on
paths executed millions of times per kernel, so they are plain integer
adds on a module-level object — no locks, no indirection.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["MapperCounters", "PhaseTimes", "COUNTERS"]


@dataclass
class PhaseTimes:
    """Wall-clock seconds spent per compile phase (one compile_job)."""

    base_map: float = 0.0
    paged_map: float = 0.0

    @property
    def total(self) -> float:
        return self.base_map + self.paged_map


@dataclass
class MapperCounters:
    """Cumulative search-effort counters for this process."""

    route_calls: int = 0  #: find_route invocations
    bfs_calls: int = 0  #: layered-BFS searches (route shorter than II)
    dfs_calls: int = 0  #: depth-first searches (route >= II, self-collisions)
    expansions: int = 0  #: time-extended states expanded across both searches
    placement_probes: int = 0  #: (time, PE) candidates probed by the placer
    trial_commits: int = 0  #: tentative commit+rollback scoring passes
    target_cache_hits: int = 0  #: memoized per-(dst, hop-filter) goal tables reused
    move_cache_hits: int = 0  #: memoized per-(pe, hint) move orderings reused

    def snapshot(self) -> "MapperCounters":
        return MapperCounters(**asdict(self))

    def delta(self, since: "MapperCounters") -> dict[str, int]:
        """Counter increments since *since*, as a plain dict."""
        now = asdict(self)
        then = asdict(since)
        return {k: now[k] - then[k] for k in now}

    def reset(self) -> None:
        for k in asdict(self):
            setattr(self, k, 0)

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


#: The process-wide counter instance the compiler increments.
COUNTERS = MapperCounters()
