"""Compile-perf instrumentation for the place-and-route hot path.

The mapper's cost model is search volume: how many time-extended states the
router expands, how many (time, PE) candidates the placer probes, how often
the memoized routing tables answer without a search.  These counters are
what ``python -m repro.bench compile-speed`` prints next to wall-clock
timings, so a perf regression shows up as a *search-volume* regression even
on noisy CI machines.

Counting is two-level.  The process-wide totals (:data:`COUNTERS`,
:data:`SEARCH`) stay cumulative, as before.  On top of them sits a
*per-job counter context* (:func:`job_counters`): a compile job opens a
scope, the hot paths increment the scope's own thread-local instances
(fetched via :func:`counters` / :func:`search_stats`), and the scope
merges its totals into the process-wide singletons — under a lock — when
it closes.  That gives ``compile_many``'s concurrent thread jobs *exact*
per-job attribution (no interleaved snapshot/delta windows) while the
cumulative totals remain exactly what they always were.

The increments live on paths executed millions of times per kernel, so
hot functions fetch the active instance once (one thread-local read) and
then do plain integer adds on it — no locks and no indirection inside the
inner loops; the only lock is taken once per job, at merge time.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass

__all__ = [
    "MapperCounters",
    "PhaseTimes",
    "SearchStats",
    "COUNTERS",
    "SEARCH",
    "counters",
    "search_stats",
    "job_counters",
    "merge_counter_delta",
    "merge_search_delta",
]


@dataclass
class PhaseTimes:
    """Wall-clock seconds spent per compile phase (one compile_job)."""

    base_map: float = 0.0
    paged_map: float = 0.0

    @property
    def total(self) -> float:
        return self.base_map + self.paged_map


@dataclass
class MapperCounters:
    """Cumulative search-effort counters for this process."""

    route_calls: int = 0  #: find_route invocations
    bfs_calls: int = 0  #: layered-BFS searches (route shorter than II)
    dfs_calls: int = 0  #: depth-first searches (route >= II, self-collisions)
    expansions: int = 0  #: time-extended states expanded across both searches
    placement_probes: int = 0  #: (time, PE) candidates probed by the placer
    trial_commits: int = 0  #: tentative commit+rollback scoring passes
    target_cache_hits: int = 0  #: memoized per-(dst, hop-filter) goal tables reused
    move_cache_hits: int = 0  #: memoized per-(pe, hint) move orderings reused
    hier_attempts: int = 0  #: hierarchical (cluster-then-place) probes run
    hier_wins: int = 0  #: hierarchical probes that produced a mapping
    hier_flat_attempts: int = 0  #: flat-ladder probes run inside the hier backend
    hier_flat_wins: int = 0  #: flat fallback probes that produced a mapping
    rungs_skipped: int = 0  #: II rungs skipped as already proven failed (memoized)
    rungs_pruned: int = 0  #: II rungs skipped by a feasibility certificate
    exact_probes: int = 0  #: SAT-backend exact scheduling probes run
    exact_wins: int = 0  #: exact probes that produced a mapping

    def snapshot(self) -> "MapperCounters":
        return MapperCounters(**asdict(self))

    def delta(self, since: "MapperCounters") -> dict[str, int]:
        """Counter increments since *since*, as a plain dict."""
        now = asdict(self)
        then = asdict(since)
        return {k: now[k] - then[k] for k in now}

    def reset(self) -> None:
        for k in asdict(self):
            setattr(self, k, 0)

    def as_dict(self) -> dict[str, int]:
        return asdict(self)

    def add(self, delta: dict[str, int]) -> None:
        """Fold a counter delta (from a probe worker process) into this
        instance, so search effort spent in speculative probes still shows
        up in the parent's totals."""
        for k, v in delta.items():
            if hasattr(self, k):
                setattr(self, k, getattr(self, k) + v)


@dataclass
class SearchStats:
    """Cumulative speculative-II-search effort for this process.

    Tracks what the portfolio engine (:mod:`repro.compiler.search`) did
    with its worker budget: how many (II, attempt) probes it launched, how
    many a landed success cancelled before they started, and how the probe
    wall clock splits into *useful* seconds (probes the serial ladder would
    also have run, i.e. at or below the canonical winner) and *wasted*
    seconds (speculation that overshot the winner).  ``ladders`` counts
    portfolio searches; ``serial_ladders`` counts searches that took the
    in-process serial path (workers=1 or no free budget).
    """

    ladders: int = 0  #: portfolio (parallel) ladder searches run
    serial_ladders: int = 0  #: ladders that took the serial in-process path
    probes_launched: int = 0  #: (II, attempt) probes submitted to workers
    probes_completed: int = 0  #: probes that ran to a success/fail verdict
    probes_cancelled: int = 0  #: probes cancelled before they started
    probes_wasted: int = 0  #: completed probes above the winner (discarded)
    useful_seconds: float = 0.0  #: probe seconds at/below the canonical winner
    wasted_seconds: float = 0.0  #: probe seconds above the winner (speculation)

    @property
    def speculation_efficiency(self) -> float:
        """Fraction of probe wall clock the canonical reduction kept."""
        total = self.useful_seconds + self.wasted_seconds
        return self.useful_seconds / total if total > 0 else 1.0

    def snapshot(self) -> "SearchStats":
        return SearchStats(**asdict(self))

    def delta(self, since: "SearchStats") -> dict[str, float]:
        """Stat increments since *since*, as a plain dict (ints stay int)."""
        now = asdict(self)
        then = asdict(since)
        return {k: now[k] - then[k] for k in now}

    def add(self, delta: dict[str, float]) -> None:
        for k, v in delta.items():
            if hasattr(self, k):
                setattr(self, k, getattr(self, k) + v)

    def reset(self) -> None:
        for k in asdict(self):
            setattr(self, k, type(getattr(self, k))(0))

    def as_dict(self) -> dict[str, float]:
        return asdict(self)


#: The process-wide counter totals (merged from finished job contexts, or
#: incremented directly when no context is active).
COUNTERS = MapperCounters()

#: The process-wide speculative-search totals.
SEARCH = SearchStats()

#: Per-thread active counter context.  ``threading.local`` keeps each
#: compile thread's scope private, so concurrent jobs never interleave.
_TLS = threading.local()

#: Guards every merge into the process-wide singletons: job contexts close
#: on their own threads, and probe done-callbacks bill waste from whatever
#: thread the executor runs them on.
_MERGE_LOCK = threading.Lock()


def counters() -> MapperCounters:
    """The :class:`MapperCounters` increments should target on this thread:
    the active job context's instance, else the process-wide totals."""
    active = getattr(_TLS, "counters", None)
    return COUNTERS if active is None else active


def search_stats() -> SearchStats:
    """The :class:`SearchStats` the portfolio engine should update on this
    thread: the active job context's instance, else the totals."""
    active = getattr(_TLS, "search", None)
    return SEARCH if active is None else active


def merge_counter_delta(delta: dict[str, int]) -> None:
    """Fold a counter delta straight into the process-wide totals (used by
    done-callbacks that run outside any job context)."""
    with _MERGE_LOCK:
        COUNTERS.add(delta)


def merge_search_delta(delta: dict[str, float]) -> None:
    """Fold a search-stat delta straight into the process-wide totals."""
    with _MERGE_LOCK:
        SEARCH.add(delta)


@contextmanager
def job_counters():
    """Per-job counter scope: yields fresh ``(MapperCounters, SearchStats)``
    instances that every increment on this thread targets for the duration,
    then merges them into the process-wide totals under the lock.

    Scopes nest (the previous context is restored on exit), and the yielded
    instances remain readable after the scope closes — that is the per-job
    delta, attributed exactly even when many jobs compile concurrently on
    sibling threads.
    """
    prev_counters = getattr(_TLS, "counters", None)
    prev_search = getattr(_TLS, "search", None)
    local_counters = MapperCounters()
    local_search = SearchStats()
    _TLS.counters = local_counters
    _TLS.search = local_search
    try:
        yield local_counters, local_search
    finally:
        _TLS.counters = prev_counters
        _TLS.search = prev_search
        if prev_counters is not None:
            # nested scope: roll up into the enclosing job only — the
            # outermost scope carries the totals to COUNTERS exactly once
            prev_counters.add(local_counters.as_dict())
            prev_search.add(local_search.as_dict())
        else:
            with _MERGE_LOCK:
                COUNTERS.add(local_counters.as_dict())
                SEARCH.add(local_search.as_dict())
