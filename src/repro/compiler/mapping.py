"""Mapping data model: the compiler's output.

A :class:`Mapping` fixes, for every DFG operation, the PE and *flat* start
time of its iteration-0 firing (iteration *i* fires at ``time + i * II``),
and for every DFG edge the route its value takes through the mesh.

Timing convention (single-cycle PEs, 1-cycle neighbour links):

* op *u* fires at cycle ``c``; its value is readable (from its output
  register) during cycle ``c + 1`` by *u* itself and its mesh neighbours;
* a route step is a ROUTE pseudo-op on some PE that re-emits the value,
  extending its reach by one hop per cycle (the "routing PEs" of §II);
* consumer *v* of edge ``(u, v, distance=d)`` fires at ``t_v`` and reads the
  value of producer iteration ``i - d``; the timing gap in the consumer's
  frame is ``gap = t_v - (t_u - d * II)`` and must be >= 1.  The route for
  the edge has exactly ``gap - 1`` steps, at consumer-frame times
  ``t_u - d*II + 1 .. t_v - 1``.

All slot bookkeeping is modulo II: an op or route step at flat time ``t``
occupies its PE at modulo slot ``t % II``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.dfg.graph import DFG, Edge
from repro.util.errors import MappingError

__all__ = [
    "Placement",
    "RouteStep",
    "Route",
    "Mapping",
    "edge_gap",
    "materialized_ops",
    "materialized_edges",
]


def materialized_ops(dfg: DFG) -> list[int]:
    """Ops that occupy fabric slots.  CONST ops are *not* materialized:
    constants live in the PE's local register file / configuration (§II of
    the paper: the RF stores "constants and temporary values"), so they are
    baked into consumer operands as immediates by the lowering stage."""
    from repro.arch.isa import Opcode

    return [op_id for op_id, op in dfg.ops.items() if op.opcode is not Opcode.CONST]


def materialized_edges(dfg: DFG) -> list[Edge]:
    """Edges that need routing: those whose producer is materialized."""
    from repro.arch.isa import Opcode

    return [
        e
        for e in dfg.edges.values()
        if dfg.ops[e.src].opcode is not Opcode.CONST
    ]


@dataclass(frozen=True)
class Placement:
    """Where and when a DFG op fires (iteration 0)."""

    op_id: int
    pe: Coord
    time: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise MappingError(f"op {self.op_id}: negative start time {self.time}")


@dataclass(frozen=True)
class RouteStep:
    """One routing hop: PE *pe* re-emits the value at consumer-frame time
    *time* (it read the value produced/re-emitted at ``time - 1``)."""

    pe: Coord
    time: int


@dataclass(frozen=True)
class Route:
    """The interconnect path of one DFG edge.

    ``tap`` implements *fanout sharing*: when several edges carry the same
    value (same producer, same loop distance), a later route may start from
    a step of an earlier sibling's route instead of from the producer — in
    hardware, any neighbour can read a routing PE's output, so the chains
    form a tree.  ``steps`` then covers only the path from the tap onward;
    with no steps and a tap, the consumer reads the sibling's step
    directly.
    """

    edge_id: int
    steps: tuple[RouteStep, ...] = ()
    tap: RouteStep | None = None


def edge_gap(edge: Edge, t_src: int, t_dst: int, ii: int) -> int:
    """Timing gap of *edge* in the consumer's iteration frame."""
    return t_dst - (t_src - edge.distance * ii)


@dataclass
class Mapping:
    """A complete modulo-scheduled mapping of *dfg* onto *cgra*."""

    cgra: CGRA
    dfg: DFG
    ii: int
    placements: dict[int, Placement] = field(default_factory=dict)
    routes: dict[int, Route] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise MappingError(f"II must be >= 1, got {self.ii}")

    # -- queries ------------------------------------------------------------------

    @property
    def schedule_length(self) -> int:
        """Flat length of one iteration's schedule (prologue depth driver)."""
        if not self.placements:
            return 0
        return max(p.time for p in self.placements.values()) + 1

    @property
    def stage_count(self) -> int:
        """Number of pipeline stages (kernel iterations in flight)."""
        import math

        return max(1, math.ceil(self.schedule_length / self.ii))

    def placement(self, op_id: int) -> Placement:
        try:
            return self.placements[op_id]
        except KeyError:
            raise MappingError(f"op {op_id} is not placed") from None

    def route(self, edge_id: int) -> Route:
        return self.routes.get(edge_id, Route(edge_id))

    def holder_before(self, edge: Edge) -> tuple[Coord, int]:
        """PE whose output the consumer of *edge* reads, and the cycle (in
        the consumer frame) that PE produced/re-emitted the value."""
        r = self.route(edge.id)
        if r.steps:
            last = r.steps[-1]
            return last.pe, last.time
        if r.tap is not None:
            return r.tap.pe, r.tap.time
        src = self.placement(edge.src)
        return src.pe, src.time - edge.distance * self.ii

    def route_origin(self, edge: Edge) -> tuple[Coord, int]:
        """Where this edge's route chain starts reading the value: the tap
        position for shared fanout, else the producer itself."""
        r = self.route(edge.id)
        if r.tap is not None:
            return r.tap.pe, r.tap.time
        src = self.placement(edge.src)
        return src.pe, src.time - edge.distance * self.ii

    def value_holders(self, src_op: int, distance: int) -> list[RouteStep]:
        """All committed positions re-emitting ``src_op``'s value at the
        given loop distance (the tappable points for new fanout edges)."""
        out: list[RouteStep] = []
        for e in self.dfg.out_edges(src_op):
            if e.distance != distance:
                continue
            out.extend(self.route(e.id).steps)
        return out

    def slot_occupancy(self) -> dict[tuple[Coord, int], list[str]]:
        """All (PE, modulo-slot) claims: op ids and route step labels."""
        occ: dict[tuple[Coord, int], list[str]] = {}
        for p in self.placements.values():
            occ.setdefault((p.pe, p.time % self.ii), []).append(f"op{p.op_id}")
        for r in self.routes.values():
            for s in r.steps:
                occ.setdefault((s.pe, s.time % self.ii), []).append(
                    f"route{r.edge_id}@{s.time}"
                )
        return occ

    def pe_utilization(self) -> float:
        """Fraction of (PE, modulo-slot) pairs doing work — the *U* of the
        paper's throughput identity ``I = N x U x II`` (§IV)."""
        return len(self.slot_occupancy()) / float(self.cgra.num_pes * self.ii)

    def ops_on_pe(self, pe: Coord) -> list[int]:
        return sorted(
            op_id for op_id, p in self.placements.items() if p.pe == pe
        )

    def summary(self) -> str:
        return (
            f"mapping of {self.dfg.name!r} on {self.cgra.rows}x{self.cgra.cols}: "
            f"II={self.ii}, length={self.schedule_length}, "
            f"stages={self.stage_count}, "
            f"routes={sum(len(r.steps) for r in self.routes.values())} steps, "
            f"util={self.pe_utilization():.2f}"
        )
